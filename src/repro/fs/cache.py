"""Per-client page cache.

Modes (the Figure 7 experiment turns on ``incoherent``):

* ``coherent`` — write-back; dirty bytes are flushed and the pages
  dropped when the lock manager revokes the client's extent (the file
  system keeps every client's view consistent, at a price);
* ``incoherent`` — write-back with **no** coherence actions: maximum
  locality, but consistency is the application's problem.  Persistent
  file realms are exactly the discipline that makes this safe (a single
  aggregator owns each byte for the file's lifetime);
* ``writethrough`` — writes go straight to the server (reads cache);
* ``off`` — no caching at all.

Semantics follow a real FS client's page cache:

* writes are **write-around**: bytes land in the cached page and are
  tracked as dirty/valid runs — no read-for-ownership round trip; the
  server's page RMW penalty is paid when partial pages are flushed;
* validity and dirtiness are tracked per byte (interval runs per
  page), so two clients dirtying disjoint parts of one page can flush
  in any order without clobbering each other — page-level false
  sharing costs time (lock transfers, RMW), never correctness;
* reads served from valid cached bytes are free of server traffic;
  anything else fetches whole pages and merges them under the locally
  valid bytes.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import FileSystemError
from repro.fs.filesystem import SimFileSystem
from repro.fs.runs import ByteRuns
from repro.obs.metrics import MetricsView
from repro.sim.engine import RankContext

__all__ = ["PageCache", "CACHE_MODES"]

CACHE_MODES = ("coherent", "incoherent", "writethrough", "off")


def _page_runs(sorted_pages: List[int]) -> List[Tuple[int, int]]:
    """Group sorted page indices into [first, last] contiguous runs."""
    runs: List[Tuple[int, int]] = []
    for p in sorted_pages:
        if runs and p == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], p)
        else:
            runs.append((p, p))
    return runs


class PageCache:
    """Write-back page cache for one (client, file) pair."""

    def __init__(
        self,
        fs: SimFileSystem,
        path: str,
        client_id: int,
        mode: str = "coherent",
        capacity_pages: int = 16384,
    ) -> None:
        if mode not in CACHE_MODES:
            raise FileSystemError(f"unknown cache mode {mode!r}; options: {CACHE_MODES}")
        if capacity_pages <= 0:
            raise FileSystemError("cache capacity must be positive")
        self.fs = fs
        self.path = path
        self.client_id = client_id
        self.mode = mode
        self.capacity_pages = capacity_pages
        self.page_size = fs.cost.page_size
        self._pages: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._valid: Dict[int, ByteRuns] = {}
        self._dirty: Dict[int, ByteRuns] = {}
        #: Pages with a server fetch in flight, and the subset whose
        #: range a concurrent revocation/invalidation touched while the
        #: fetch yielded — their snapshot is stale and must not be
        #: installed (the revoker dirtied bytes *after* our store read).
        self._fetching: set[int] = set()
        self._fetch_poisoned: set[int] = set()
        # cache.* series live in the file system's registry, keyed by
        # (client, path) so per-client behaviour stays distinguishable
        # and harnesses can meter phases with snapshot()/diff().
        self._metrics = fs.registry.view((client_id, path))
        self._hits = self._metrics.counter("cache.hits")
        self._misses = self._metrics.counter("cache.misses")
        self._flushed = self._metrics.counter("cache.flushed_pages")
        if mode in ("coherent", "incoherent", "writethrough"):
            fs.register_cache(client_id, self)

    @property
    def metrics(self) -> MetricsView:
        """This cache's registry view (``cache.*`` instruments)."""
        return self._metrics

    def _deprecated(self, old: str, new: str):
        warnings.warn(
            f"PageCache.{old} is deprecated; read {new!r} from the metrics "
            "registry (cache.metrics / fs.registry) instead",
            DeprecationWarning,
            stacklevel=3,
        )

    @property
    def stats_hits(self) -> int:
        """Deprecated alias for the ``cache.hits`` counter."""
        self._deprecated("stats_hits", "cache.hits")
        return self._hits.value

    @property
    def stats_misses(self) -> int:
        """Deprecated alias for the ``cache.misses`` counter."""
        self._deprecated("stats_misses", "cache.misses")
        return self._misses.value

    @property
    def stats_flushed_pages(self) -> int:
        """Deprecated alias for the ``cache.flushed_pages`` counter."""
        self._deprecated("stats_flushed_pages", "cache.flushed_pages")
        return self._flushed.value

    @property
    def coherent(self) -> bool:
        return self.mode == "coherent"

    @property
    def caching(self) -> bool:
        return self.mode != "off"

    @property
    def writeback(self) -> bool:
        return self.mode in ("coherent", "incoherent")

    @property
    def dirty_pages(self) -> int:
        return len(self._dirty)

    @property
    def cached_pages(self) -> int:
        return len(self._pages)

    # -- internals ----------------------------------------------------------
    def _touch(self, page: int) -> None:
        self._pages.move_to_end(page)

    def _drop(self, page: int) -> None:
        self._pages.pop(page, None)
        self._valid.pop(page, None)
        self._dirty.pop(page, None)

    def _pages_of(
        self, offsets: np.ndarray, lengths: np.ndarray
    ) -> "OrderedDict[int, List[Tuple[int, int, int]]]":
        """page -> list of (page_offset, length, data_position) pieces."""
        ps = self.page_size
        out: "OrderedDict[int, List[Tuple[int, int, int]]]" = OrderedDict()
        pos = 0
        for o, l in zip(offsets.tolist(), lengths.tolist()):
            cur = o
            remaining = l
            dpos = pos
            while remaining > 0:
                pidx, poff = divmod(cur, ps)
                chunk = min(remaining, ps - poff)
                out.setdefault(pidx, []).append((poff, chunk, dpos))
                cur += chunk
                dpos += chunk
                remaining -= chunk
            pos += l
        return out

    def _fetch_pages(self, ctx: RankContext, pages: List[int]) -> None:
        """Read whole pages from the server, merging under locally valid
        bytes (our writes win over the fetched snapshot).

        The server call yields the processor between reading the store
        and this method installing the result.  A conflicting writer can
        use that window to steal our just-acquired granules (nothing was
        dirty, so the revocation had nothing to flush or drop) and dirty
        bytes in them — making the snapshot stale before it lands.  The
        revocation callback poisons in-flight pages it overlaps; a
        poisoned snapshot is discarded, and the caller's miss path
        re-reads those pieces from the server under fresh locks."""
        if not pages:
            return
        ps = self.page_size
        runs = _page_runs(sorted(pages))
        offs = np.array([lo * ps for lo, _ in runs], dtype=np.int64)
        lens = np.array([(hi - lo + 1) * ps for lo, hi in runs], dtype=np.int64)
        self._fetching.update(pages)
        try:
            data = self.fs.server_read(ctx, self.client_id, self.path, offs, lens)
        finally:
            self._fetching.difference_update(pages)
        poisoned = self._fetch_poisoned.intersection(pages)
        self._fetch_poisoned.difference_update(pages)
        pos = 0
        for lo, hi in runs:
            for p in range(lo, hi + 1):
                fresh = data[pos : pos + ps].copy()
                pos += ps
                if p in poisoned:
                    continue
                cached = self._pages.get(p)
                if cached is not None:
                    for s, e in self._valid.get(p, ByteRuns()):
                        fresh[s:e] = cached[s:e]
                self._pages[p] = fresh
                v = self._valid.setdefault(p, ByteRuns())
                v.set_full(ps)
        self._misses.value += len(pages)

    def _evict_if_needed(self, ctx: RankContext) -> None:
        over = len(self._pages) - self.capacity_pages
        if over <= 0:
            return
        # Clean pages go first, LRU order, no I/O.
        clean = [p for p in self._pages if p not in self._dirty]
        for p in clean[:over]:
            self._drop(p)
        over = len(self._pages) - self.capacity_pages
        if over <= 0:
            return
        # Batched writeout: flush at least a quarter of the capacity at
        # once so per-call overheads amortize (single-page writeout would
        # thrash the server, which no real writeback daemon does).
        target = max(over, self.capacity_pages // 4)
        victims = list(self._pages)[:target]
        self._flush_pages(ctx, victims)
        for p in victims:
            # The flush yields the processor; a concurrent revocation may
            # already have dropped some of these pages, or new dirty
            # bytes may have landed (those must survive to a later flush).
            if p not in self._dirty:
                self._drop(p)

    def _flush_pages(self, ctx: RankContext, pages: List[int], *, acquire_locks: bool = True) -> int:
        """Write this client's dirty bytes of the given pages back.

        The dirty runs are snapshotted and REMOVED before the server
        call: the call yields the processor, and bytes dirtied during
        the yield must survive as fresh dirty state rather than being
        clobbered by our post-flush cleanup.  If the server call fails
        (an injected transient fault fires before the store mutates),
        the snapshot is restored so a caller's retry re-flushes it."""
        ps = self.page_size
        dirty = [p for p in sorted(pages) if p in self._dirty and p in self._pages]
        if not dirty:
            return 0
        offs: List[int] = []
        lens: List[int] = []
        parts: List[np.ndarray] = []
        snapshot: List[Tuple[int, List[Tuple[int, int, np.ndarray]]]] = []
        for p in dirty:
            runs = self._dirty.pop(p)
            saved: List[Tuple[int, int, np.ndarray]] = []
            for start, end in runs:
                off = p * ps + start
                length = end - start
                # Copy now: the page may be rewritten during the yield.
                part = self._pages[p][start:end].copy()
                saved.append((start, end, part))
                # Merge with the previous extent when byte-adjacent
                # (common case: fully dirty neighbouring pages).
                if offs and offs[-1] + lens[-1] == off:
                    lens[-1] += length
                else:
                    offs.append(off)
                    lens.append(length)
                parts.append(part)
            snapshot.append((p, saved))
        with ctx.trace("cache:flush", path=self.path, pages=len(dirty)):
            ctx.charge(len(dirty) * self.fs.cost.cache_flush_page)
            try:
                self.fs.server_write(
                    ctx,
                    self.client_id,
                    self.path,
                    np.array(offs, dtype=np.int64),
                    np.array(lens, dtype=np.int64),
                    np.concatenate(parts) if parts else np.empty(0, dtype=np.uint8),
                    acquire_locks=acquire_locks,
                )
            except FileSystemError:
                self._restore_dirty(snapshot)
                raise
        self._flushed.value += len(dirty)
        return len(dirty)

    def _restore_dirty(
        self, snapshot: List[Tuple[int, List[Tuple[int, int, np.ndarray]]]]
    ) -> None:
        """Put snapshotted dirty bytes back after a failed writeback.

        Bytes re-dirtied during the failed call's yield are newer than
        the snapshot and win; everything else is restored byte-for-byte
        (the page may have been dropped or re-fetched meanwhile)."""
        ps = self.page_size
        for p, saved in snapshot:
            buf = self._pages.get(p)
            if buf is None:
                buf = np.zeros(ps, dtype=np.uint8)
                self._pages[p] = buf
            valid = self._valid.setdefault(p, ByteRuns())
            dirty = self._dirty.setdefault(p, ByteRuns())
            for start, end, part in saved:
                cur = start
                for s, e in dirty:
                    if e <= cur:
                        continue
                    if s >= end:
                        break
                    if s > cur:
                        buf[cur:s] = part[cur - start : s - start]
                    cur = max(cur, e)
                    if cur >= end:
                        break
                if cur < end:
                    buf[cur:end] = part[cur - start : end - start]
                valid.add(start, end)
                dirty.add(start, end)

    # -- public operations -------------------------------------------------------
    def write(
        self, ctx: RankContext, offsets: np.ndarray, lengths: np.ndarray, data: np.ndarray
    ) -> None:
        """Write a batch of extents (data concatenated in batch order)."""
        offsets = np.asarray(offsets, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        data = np.asarray(data, dtype=np.uint8)
        if not self.caching:
            self.fs.server_write(ctx, self.client_id, self.path, offsets, lengths, data)
            return
        pieces = self._pages_of(offsets, lengths)
        ps = self.page_size
        total = int(lengths.sum())
        # Charge the copy BEFORE taking the locks: ctx.charge yields the
        # processor, and a yield between acquisition and the dirtying
        # below would let a concurrent conflicting access steal the
        # granules while our bytes are still clean (nothing to flush) —
        # it would then cache a fully-valid stale page that no later
        # revocation repairs, because our subsequent dirty bytes sit
        # under a lock we no longer hold.
        ctx.charge(total * self.fs.cost.cpu_per_byte_copy)
        if self.coherent:
            # Caching dirty bytes requires holding the extent locks, so
            # later conflicting accesses can revoke-and-flush them.  (An
            # incoherent cache skips this — the whole point of PFRs.)
            # No yield may occur between this returning and the dirty
            # marking below.
            self.fs.acquire_extents(ctx, self.client_id, self.path, offsets, lengths)
        for page, parts in pieces.items():
            buf = self._pages.get(page)
            if buf is None:
                buf = np.zeros(ps, dtype=np.uint8)
                self._pages[page] = buf
            else:
                self._hits.value += 1
            valid = self._valid.setdefault(page, ByteRuns())
            dirty = self._dirty.setdefault(page, ByteRuns())
            for poff, ln, dpos in parts:
                buf[poff : poff + ln] = data[dpos : dpos + ln]
                valid.add(poff, poff + ln)
                dirty.add(poff, poff + ln)
            self._touch(page)
        if self.mode == "writethrough":
            self._flush_pages(ctx, list(pieces.keys()))
        self._evict_if_needed(ctx)

    def read(
        self, ctx: RankContext, offsets: np.ndarray, lengths: np.ndarray
    ) -> np.ndarray:
        """Read a batch of extents; returns concatenated bytes."""
        offsets = np.asarray(offsets, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if not self.caching:
            return self.fs.server_read(ctx, self.client_id, self.path, offsets, lengths)
        pieces = self._pages_of(offsets, lengths)
        # A page must be fetched unless every requested piece of it is
        # locally valid.
        need = []
        for page, parts in pieces.items():
            valid = self._valid.get(page)
            if valid is None or not all(
                valid.covers(poff, poff + ln) for poff, ln, _ in parts
            ):
                need.append(page)
        self._fetch_pages(ctx, need)
        total = int(lengths.sum())
        out = np.empty(total, dtype=np.uint8)
        ctx.charge(total * self.fs.cost.cpu_per_byte_copy)
        need_set = set(need)
        for page, parts in pieces.items():
            buf = self._pages.get(page)
            valid = self._valid.get(page)
            covered = buf is not None and valid is not None and all(
                valid.covers(poff, poff + ln) for poff, ln, _ in parts
            )
            if not covered:
                # Revoked (or the fetch poisoned) while we yielded: the
                # page may be gone, or may survive holding only bytes
                # from an earlier write that never covered this piece.
                # Either way, go straight to the server for just these
                # pieces.
                ps = self.page_size
                po = np.array([page * ps + poff for poff, _, _ in parts], dtype=np.int64)
                pl = np.array([ln for _, ln, _ in parts], dtype=np.int64)
                got = self.fs.server_read(ctx, self.client_id, self.path, po, pl)
                pos = 0
                for (_, ln, dpos) in parts:
                    out[dpos : dpos + ln] = got[pos : pos + ln]
                    pos += ln
                continue
            if page not in need_set:
                self._hits.value += 1
            for poff, ln, dpos in parts:
                out[dpos : dpos + ln] = buf[poff : poff + ln]
            self._touch(page)
        self._evict_if_needed(ctx)
        return out

    def sync(self, ctx: RankContext) -> int:
        """Flush every dirty page; returns the count flushed."""
        return self._flush_pages(ctx, list(self._dirty))

    def invalidate(self) -> None:
        """Drop all cached pages.  Dirty bytes are lost — call
        :meth:`sync` first unless discarding is intended."""
        self._pages.clear()
        self._valid.clear()
        self._dirty.clear()
        self._fetch_poisoned.update(self._fetching)

    def invalidate_range(self, lo: int, hi: int, *, keep_dirty: bool = False) -> int:
        """Drop cached pages intersecting [lo, hi) without flushing.

        Used when the server-side contents of a range changed out of
        band (file truncation, journal commit): cached copies are stale
        and must be refetched.  Dirty bytes in the range are discarded
        — callers sync first when they must survive — unless
        ``keep_dirty`` is set, in which case pages holding dirty bytes
        are left alone (their writes are newer than the out-of-band
        change and still owed to the server).  Returns the number of
        pages dropped."""
        if hi <= lo:
            return 0
        ps = self.page_size
        p_lo, p_hi = lo // ps, -(-hi // ps)
        self._fetch_poisoned.update(
            p for p in self._fetching if p_lo <= p < p_hi
        )
        inside = [
            p
            for p in self._pages
            if p_lo <= p < p_hi and not (keep_dirty and p in self._dirty)
        ]
        for p in inside:
            self._drop(p)
        return len(inside)

    def flush_and_invalidate_range(self, ctx: RankContext, lo: int, hi: int) -> int:
        """Revocation callback: flush dirty bytes in [lo, hi) without
        re-acquiring the (already transferred) locks, then drop the pages."""
        ps = self.page_size
        p_lo, p_hi = lo // ps, -(-hi // ps)
        # An in-flight fetch overlapping the revoked range read the
        # store before the requester's write lands: its snapshot must
        # not be installed when the fetch resumes.
        self._fetch_poisoned.update(
            p for p in self._fetching if p_lo <= p < p_hi
        )
        inside = [p for p in self._pages if p_lo <= p < p_hi]
        flushed = self._flush_pages(ctx, inside, acquire_locks=False)
        for p in inside:
            if p in self._dirty:
                # Re-dirtied while the flush yielded the processor: the
                # new bytes must survive to a later flush.
                continue
            self._drop(p)
        return flushed
