"""Per-rank file-system client and open-file handles."""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import FileSystemError
from repro.fs.cache import PageCache
from repro.fs.filesystem import SimFileSystem
from repro.sim.engine import RankContext

__all__ = ["FSClient", "LocalFile"]


class FSClient:
    """A rank's connection to the shared file system."""

    def __init__(self, fs: SimFileSystem, ctx: RankContext, client_id: Optional[int] = None):
        self.fs = fs
        self.ctx = ctx
        self.client_id = ctx.rank if client_id is None else client_id

    def open(
        self,
        path: str,
        *,
        create: bool = True,
        cache_mode: str = "coherent",
        cache_capacity_pages: int = 16384,
    ) -> "LocalFile":
        if create:
            self.fs.ensure_file(path)
        elif not self.fs.exists(path):
            raise FileSystemError(f"no such file: {path!r}")
        return LocalFile(self, path, cache_mode, cache_capacity_pages)


class LocalFile:
    """An open file as seen by one client, fronted by its page cache."""

    def __init__(
        self, client: FSClient, path: str, cache_mode: str, cache_capacity_pages: int
    ) -> None:
        self.client = client
        self.fs = client.fs
        self.ctx = client.ctx
        self.path = path
        self.cache = PageCache(
            client.fs,
            path,
            client.client_id,
            mode=cache_mode,
            capacity_pages=cache_capacity_pages,
        )
        self._open = True

    # -- basic ops ----------------------------------------------------------
    def _require_open(self) -> None:
        if not self._open:
            raise FileSystemError(f"file {self.path!r} is closed")

    def write(self, offset: int, data: np.ndarray) -> None:
        """Write one contiguous extent."""
        self._require_open()
        data = np.asarray(data, dtype=np.uint8)
        self.cache.write(
            self.ctx,
            np.array([offset], dtype=np.int64),
            np.array([data.size], dtype=np.int64),
            data,
        )

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        """Read one contiguous extent."""
        self._require_open()
        return self.cache.read(
            self.ctx,
            np.array([offset], dtype=np.int64),
            np.array([nbytes], dtype=np.int64),
        )

    def write_batch(
        self,
        offsets: Iterable[int] | np.ndarray,
        lengths: Iterable[int] | np.ndarray,
        data: np.ndarray,
    ) -> None:
        """Write many extents in one call (list-I/O style)."""
        self._require_open()
        self.cache.write(
            self.ctx,
            np.asarray(offsets, dtype=np.int64),
            np.asarray(lengths, dtype=np.int64),
            np.asarray(data, dtype=np.uint8),
        )

    def read_batch(
        self,
        offsets: Iterable[int] | np.ndarray,
        lengths: Iterable[int] | np.ndarray,
    ) -> np.ndarray:
        """Read many extents in one call (list-I/O style)."""
        self._require_open()
        return self.cache.read(
            self.ctx,
            np.asarray(offsets, dtype=np.int64),
            np.asarray(lengths, dtype=np.int64),
        )

    # -- lifecycle --------------------------------------------------------------
    def sync(self) -> int:
        """Flush dirty cached pages to the server."""
        self._require_open()
        return self.cache.sync(self.ctx)

    def invalidate(self) -> None:
        """Drop clean cached pages (dirty ones too — sync first)."""
        self.cache.invalidate()

    def close(self) -> int:
        """Sync and close; returns pages flushed."""
        if not self._open:
            return 0
        flushed = self.cache.sync(self.ctx)
        self.cache.invalidate()
        self._open = False
        return flushed

    @property
    def size(self) -> int:
        """Server-visible file size (cached dirty data may exceed it)."""
        return self.fs.file_size(self.path)

    def __enter__(self) -> "LocalFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
