"""Per-rank file-system client and open-file handles."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Hashable, Iterable, Iterator, Optional

import numpy as np

from repro.errors import FileSystemError
from repro.fs.cache import PageCache
from repro.fs.filesystem import SimFileSystem
from repro.sim.engine import RankContext

__all__ = ["FSClient", "LocalFile"]


class FSClient:
    """A rank's connection to the shared file system."""

    def __init__(
        self,
        fs: SimFileSystem,
        ctx: RankContext,
        client_id: Optional[Hashable] = None,
    ):
        self.fs = fs
        self.ctx = ctx
        self.client_id = ctx.rank if client_id is None else client_id

    def open(
        self,
        path: str,
        *,
        create: bool = True,
        cache_mode: str = "coherent",
        cache_capacity_pages: int = 16384,
    ) -> "LocalFile":
        if create:
            self.fs.ensure_file(path)
        elif not self.fs.exists(path):
            raise FileSystemError(f"no such file: {path!r}")
        return LocalFile(self, path, cache_mode, cache_capacity_pages)


class LocalFile:
    """An open file as seen by one client, fronted by its page cache."""

    def __init__(
        self, client: FSClient, path: str, cache_mode: str, cache_capacity_pages: int
    ) -> None:
        self.client = client
        self.fs = client.fs
        self.ctx = client.ctx
        self.path = path
        self.cache = PageCache(
            client.fs,
            path,
            client.client_id,
            mode=cache_mode,
            capacity_pages=cache_capacity_pages,
        )
        self._open = True
        self._journal_mode = False

    # -- basic ops ----------------------------------------------------------
    def _require_open(self) -> None:
        if not self._open:
            raise FileSystemError(f"file {self.path!r} is closed")

    def write(self, offset: int, data: np.ndarray) -> None:
        """Write one contiguous extent."""
        self._require_open()
        data = np.asarray(data, dtype=np.uint8)
        self.write_batch(
            np.array([offset], dtype=np.int64),
            np.array([data.size], dtype=np.int64),
            data,
        )

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        """Read one contiguous extent."""
        self._require_open()
        return self.read_batch(
            np.array([offset], dtype=np.int64),
            np.array([nbytes], dtype=np.int64),
        )

    def write_batch(
        self,
        offsets: Iterable[int] | np.ndarray,
        lengths: Iterable[int] | np.ndarray,
        data: np.ndarray,
    ) -> None:
        """Write many extents in one call (list-I/O style)."""
        self._require_open()
        offs = np.asarray(offsets, dtype=np.int64)
        lens = np.asarray(lengths, dtype=np.int64)
        data = np.asarray(data, dtype=np.uint8)
        if self._journal_mode:
            # Journaled writes bypass the cache: shadow bytes must reach
            # the server before commit, and a cached copy would go stale
            # the moment the transaction publishes.
            self.fs.server_write(
                self.ctx, self.client.client_id, self.path, offs, lens, data,
                journaled=True,
            )
            return
        self.cache.write(self.ctx, offs, lens, data)

    def read_batch(
        self,
        offsets: Iterable[int] | np.ndarray,
        lengths: Iterable[int] | np.ndarray,
    ) -> np.ndarray:
        """Read many extents in one call (list-I/O style)."""
        self._require_open()
        offs = np.asarray(offsets, dtype=np.int64)
        lens = np.asarray(lengths, dtype=np.int64)
        if self._journal_mode:
            # Direct read with the transaction's bytes overlaid, so data
            # sieving's read-modify-write sees its own journaled writes.
            return self.fs.server_read(
                self.ctx, self.client.client_id, self.path, offs, lens,
                journaled=True,
            )
        return self.cache.read(self.ctx, offs, lens)

    # -- journal mode -----------------------------------------------------------
    @contextmanager
    def journaled(self) -> Iterator["LocalFile"]:
        """Route writes/reads through the file's open shadow transaction.

        On entry the cache is synced and dropped (journal-mode reads
        must see the server's committed bytes plus the journal overlay,
        never a private cached view).  The caller is responsible for
        the transaction lifecycle (:meth:`txn_begin` / commit / abort
        on the file system) — this context only switches the data
        path."""
        self._require_open()
        if self._journal_mode:
            yield self
            return
        self.cache.sync(self.ctx)
        self.cache.invalidate()
        self._journal_mode = True
        try:
            yield self
        finally:
            self._journal_mode = False

    def truncate(self, size: int) -> None:
        """Resize the file (flushes dirty cached data first: bytes past
        the cut are discarded server-side, not written back)."""
        self._require_open()
        self.cache.sync(self.ctx)
        self.fs.resize(self.ctx, self.client.client_id, self.path, size)

    # -- lifecycle --------------------------------------------------------------
    def sync(self) -> int:
        """Flush dirty cached pages to the server."""
        self._require_open()
        return self.cache.sync(self.ctx)

    def invalidate(self) -> None:
        """Drop clean cached pages (dirty ones too — sync first)."""
        self.cache.invalidate()

    def close(self) -> int:
        """Sync and close; returns pages flushed."""
        if not self._open:
            return 0
        flushed = self.cache.sync(self.ctx)
        self.cache.invalidate()
        self._open = False
        return flushed

    @property
    def size(self) -> int:
        """Server-visible file size (cached dirty data may exceed it)."""
        return self.fs.file_size(self.path)

    def rebound(self, ctx: RankContext) -> "LocalFile":
        """A view of this open file that charges time to ``ctx``.

        Engine coroutines (pipelined flushes, nonblocking collectives)
        run file I/O on their own virtual clock; the view shares the
        page cache, journal-mode flag, and open state with the base
        handle — only the context differs, so a journal toggle or close
        on either side is visible through both."""
        return _LocalFileView(self, ctx)

    def __enter__(self) -> "LocalFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _LocalFileView(LocalFile):
    """Context-rebound view over a base :class:`LocalFile`.

    All state is the base's (the mutable ``_open``/``_journal_mode``
    flags delegate through properties); only ``ctx`` is the view's own,
    so every cache/server call made through the view charges the
    coroutine's clock instead of the opener's."""

    def __init__(self, base: LocalFile, ctx: RankContext) -> None:
        self._base = base
        self.client = base.client
        self.fs = base.fs
        self.ctx = ctx
        self.path = base.path
        self.cache = base.cache

    @property
    def _open(self) -> bool:
        return self._base._open

    @_open.setter
    def _open(self, value: bool) -> None:
        self._base._open = value

    @property
    def _journal_mode(self) -> bool:
        return self._base._journal_mode

    @_journal_mode.setter
    def _journal_mode(self, value: bool) -> None:
        self._base._journal_mode = value
