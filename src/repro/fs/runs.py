"""Sorted disjoint byte-interval sets (per-page valid/dirty tracking).

A :class:`ByteRuns` holds [start, end) intervals, merged on insert.
Used by the client cache to track which bytes of a page are valid
(safe to serve to reads) and which are dirty (must be written back) —
byte-accurate, without the memory cost of boolean masks.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.errors import FileSystemError

__all__ = ["ByteRuns"]


class ByteRuns:
    """A set of disjoint, sorted [start, end) integer intervals."""

    __slots__ = ("_runs",)

    def __init__(self) -> None:
        self._runs: List[Tuple[int, int]] = []

    def add(self, lo: int, hi: int) -> None:
        """Insert [lo, hi), merging with touching/overlapping runs."""
        if hi < lo or lo < 0:
            raise FileSystemError(f"invalid run [{lo}, {hi})")
        if hi == lo:
            return
        out: List[Tuple[int, int]] = []
        placed = False
        for s, e in self._runs:
            if e < lo:
                out.append((s, e))
            elif s > hi:
                if not placed:
                    out.append((lo, hi))
                    placed = True
                out.append((s, e))
            else:  # overlaps or touches: absorb into the new run
                lo = min(lo, s)
                hi = max(hi, e)
        if not placed:
            out.append((lo, hi))
        self._runs = out

    def remove(self, lo: int, hi: int) -> None:
        """Delete [lo, hi) from the set, splitting runs that straddle it.

        The inverse of :meth:`add`; the replication layer uses it to
        mark stale bytes fresh again once they are rewritten or
        re-replicated."""
        if hi < lo or lo < 0:
            raise FileSystemError(f"invalid run [{lo}, {hi})")
        if hi == lo or not self._runs:
            return
        out: List[Tuple[int, int]] = []
        for s, e in self._runs:
            if e <= lo or s >= hi:
                out.append((s, e))
                continue
            if s < lo:
                out.append((s, lo))
            if e > hi:
                out.append((hi, e))
        self._runs = out

    def overlaps(self, lo: int, hi: int) -> bool:
        """True when any run intersects [lo, hi)."""
        if hi <= lo:
            return False
        for s, e in self._runs:
            if s < hi and e > lo:
                return True
            if s >= hi:
                break
        return False

    def intersect(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """The runs clipped to [lo, hi) (re-replication's work list)."""
        out: List[Tuple[int, int]] = []
        for s, e in self._runs:
            a, b = max(s, lo), min(e, hi)
            if b > a:
                out.append((a, b))
        return out

    def covers(self, lo: int, hi: int) -> bool:
        """True when [lo, hi) lies entirely inside one run."""
        if hi <= lo:
            return True
        for s, e in self._runs:
            if s <= lo and hi <= e:
                return True
            if s > lo:
                break
        return False

    def is_full(self, size: int) -> bool:
        """True when the runs cover [0, size) exactly."""
        return len(self._runs) == 1 and self._runs[0] == (0, size)

    def set_full(self, size: int) -> None:
        self._runs = [(0, size)] if size > 0 else []

    def clear(self) -> None:
        self._runs = []

    @property
    def empty(self) -> bool:
        return not self._runs

    @property
    def total(self) -> int:
        return sum(e - s for s, e in self._runs)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self._runs)

    def __len__(self) -> int:
        return len(self._runs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ByteRuns({self._runs!r})"
