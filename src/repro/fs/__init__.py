"""Simulated Lustre-like parallel file system.

Components:

* :mod:`~repro.fs.store` — sparse paged byte store (the authoritative
  server-side file contents);
* :mod:`~repro.fs.locks` — extent lock manager with configurable
  granularity and transfer (revocation) costs;
* :mod:`~repro.fs.filesystem` — :class:`SimFileSystem`: files striped
  over OSTs whose service queues model contention, page-granular
  read-modify-write penalties, and the server entry points;
* :mod:`~repro.fs.cache` — per-client page cache (write-back /
  write-through / off) with read-allocate for partial pages;
* :mod:`~repro.fs.client` — :class:`FSClient` / :class:`LocalFile`, the
  per-rank handle every higher layer talks to;
* :mod:`~repro.fs.ostfault` — per-OST health (``ost_crash`` /
  ``ost_slow`` / ``ost_flap`` fault kinds), circuit breakers, and the
  storage trace lanes (docs/storage_faults.md).

Data correctness is real (bytes live in numpy pages); *time* comes from
the :class:`repro.config.CostModel`.
"""

from repro.fs.client import FSClient, LocalFile
from repro.fs.filesystem import SimFileSystem
from repro.fs.locks import ExtentLockManager
from repro.fs.ostfault import BreakerPolicy, CircuitBreaker, health_lanes, ost_state
from repro.fs.schedule import FIFOScheduler, FairShareScheduler, OSTScheduler, make_scheduler
from repro.fs.store import PageStore, ReplicatedStore

__all__ = [
    "SimFileSystem",
    "FSClient",
    "LocalFile",
    "ExtentLockManager",
    "PageStore",
    "ReplicatedStore",
    "OSTScheduler",
    "FIFOScheduler",
    "FairShareScheduler",
    "make_scheduler",
    "BreakerPolicy",
    "CircuitBreaker",
    "health_lanes",
    "ost_state",
]
