"""The shared file-system server model.

One :class:`SimFileSystem` instance is shared by every rank (it lives
in the simulator's ``shared`` dict or is captured by the rank mains).
Under the engine's single-running-thread invariant it needs no locking.

Cost model of one server call (a batch of contiguous extents):

* the calling client pays ``io_call_overhead``;
* extent locks are acquired per batch span (see
  :class:`~repro.fs.locks.ExtentLockManager`): an RPC when the grant is
  not already held, a revocation penalty per granule taken from another
  client, plus — for *coherent* victim caches — the victim's dirty
  pages in the range are flushed and invalidated;
* each extent is split over the file's OSTs by the stripe map; every
  OST charges ``ost_op_latency`` per request fragment plus
  ``ost_byte_time`` per byte plus ``page_rmw_penalty`` per partially
  covered page (writes only), serialized on that OST's availability —
  which is how OST contention between aggregators arises;
* the call completes when the slowest OST involved finishes.

**Storage fault domain** (``docs/storage_faults.md``): when a fault
plan carries OST events (``ost_crash`` / ``ost_slow`` / ``ost_flap``),
every server call runs a *plan phase* before touching any store byte:
per-OST circuit breakers fast-fail calls against OSTs that keep
failing, down OSTs raise a typed retryable
:class:`~repro.errors.OSTUnavailable`, ``ost_slow`` brownouts multiply
the affected OST's service time, and — with a ``queue_limit`` armed —
batches whose queueing delay would exceed it are shed with
:class:`~repro.errors.OSTOverloaded` instead of ever being booked.
Files opened with a ``replication_factor`` hint swap their store for a
:class:`~repro.fs.store.ReplicatedStore`: writes commit on a majority
write-quorum of live replicas (missed replicas are healed by
background re-replication once their OST recovers), reads fail over to
surviving fresh replicas.  The fault-free path runs none of this —
costs and contents stay bit-identical to the seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, Iterable, List, Optional, Set, Tuple

import numpy as np

import math

from repro.config import CostModel, DEFAULT_COST_MODEL
from repro.errors import (
    FileSystemError,
    IntegrityError,
    LockDeadlock,
    OSTOverloaded,
    OSTUnavailable,
)
from repro.faults.plan import FAULTS_KEY
from repro.fs.locks import ExtentLockManager, LockCharge
from repro.fs.ostfault import BreakerPolicy, CircuitBreaker
from repro.fs.schedule import OSTScheduler, make_scheduler
from repro.liveness import LIVENESS_KEY
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import BLOCK_TIMEOUT
from repro.fs.runs import ByteRuns
from repro.fs.store import PageStore, ReplicatedStore
from repro.sim.engine import RankContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.cache import PageCache

__all__ = ["SimFileSystem", "FileStats"]


class FileStats:
    """Operation counters for one file (inspected by tests/benches).

    Each legacy attribute is a property over a registry counter under
    the dotted names in :data:`FileStats.METRICS`, keyed by the file's
    path — so a file system hosting several files reports distinct
    ``fs.*``/``lock.*``/``journal.*`` series per path."""

    #: legacy attribute -> registry metric name.
    METRICS: Dict[str, str] = {
        "server_reads": "fs.server.reads",
        "server_writes": "fs.server.writes",
        "bytes_read": "fs.bytes.read",
        "bytes_written": "fs.bytes.written",
        "rmw_pages": "fs.rmw.pages",
        "lock_rpcs": "lock.rpcs",
        "lock_revocations": "lock.revocations",
        "revoke_flush_pages": "lock.revoke.flush_pages",
        "journal_writes": "journal.writes",
        "journal_commits": "journal.commits",
        "journal_aborts": "journal.aborts",
        "journal_pages_committed": "journal.pages_committed",
        "journal_epochs": "journal.epochs",
    }

    __slots__ = ("registry", "path", "_instruments")

    def __init__(
        self, registry: Optional[MetricsRegistry] = None, path: Optional[str] = None
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.path = path
        self._instruments = {
            attr: self.registry.counter(name, path)
            for attr, name in self.METRICS.items()
        }

    def snapshot(self) -> Dict[str, int]:
        return {attr: inst.value for attr, inst in self._instruments.items()}


def _fs_counter_property(attr: str) -> property:
    def getter(self):
        return self._instruments[attr].value

    def setter(self, v):
        self._instruments[attr].value = v

    return property(getter, setter)


for _attr in FileStats.METRICS:
    setattr(FileStats, _attr, _fs_counter_property(_attr))
del _attr


class _Txn:
    """An open shadow-write transaction (the journal) for one file.

    Journaled writes land in a private shadow :class:`PageStore` at
    their final file offsets; ``valid`` records, per page, which byte
    runs the journal owns.  Commit publishes those runs into the main
    store atomically (no yield point between the first and last byte);
    abort — or simply never committing, which is what a crash looks
    like — discards them, leaving the main store at its pre-transaction
    image."""

    __slots__ = ("txid", "store", "valid", "epochs")

    def __init__(self, txid: int, page_size: int, integrity: bool) -> None:
        self.txid = txid
        self.store = PageStore(page_size, integrity=integrity)
        self.valid: Dict[int, ByteRuns] = {}
        #: Epoch commit records staged inside this transaction; they
        #: become durable (join the file's epoch log) only at commit.
        self.epochs: List[dict] = []

    def record(self, offset: int, nbytes: int) -> None:
        ps = self.store.page_size
        lo, hi = offset, offset + nbytes
        for pidx in range(lo // ps, -(-hi // ps)):
            s = max(lo, pidx * ps) - pidx * ps
            e = min(hi, (pidx + 1) * ps) - pidx * ps
            self.valid.setdefault(pidx, ByteRuns()).add(s, e)


class _File:
    __slots__ = ("store", "locks", "stats", "txn", "epoch_log")

    def __init__(
        self,
        page_size: int,
        lock_granularity: int,
        path: str,
        registry: MetricsRegistry,
    ) -> None:
        self.store = PageStore(page_size)
        self.locks = ExtentLockManager(lock_granularity)
        self.stats = FileStats(registry, path)
        self.txn: Optional[_Txn] = None
        #: Committed per-epoch records (``docs/crash_recovery.md``):
        #: one entry per collective round whose bytes are durable, in
        #: commit order.  A rejoining rank replays this log to learn
        #: which of its rounds survived its crash.
        self.epoch_log: List[dict] = []


class SimFileSystem:
    """Striped object store shared by all simulated clients.

    ``registry`` is the metrics registry the per-file counters (and the
    client page caches) report into; by default each file system owns a
    private one, and :class:`~repro.obs.session.Session` passes its own
    so server-side series land next to the rest of the run's metrics."""

    def __init__(
        self,
        cost: CostModel = DEFAULT_COST_MODEL,
        lock_granularity: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        scheduler: "OSTScheduler | str | None" = None,
        *,
        storage_faults=None,
        queue_limit: Optional[float] = None,
        breaker: "BreakerPolicy | bool" = True,
    ) -> None:
        cost.validate()
        self.cost = cost
        self.lock_granularity = (
            lock_granularity if lock_granularity is not None else cost.page_size
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self._files: Dict[str, _File] = {}
        #: Per-OST serving discipline ("fifo" reproduces the seed's
        #: single-queue model exactly; "fair"/"wfq" arbitrate tenants).
        self.scheduler = make_scheduler(scheduler)
        #: client_id -> list of caches to notify on revocation.
        self._caches: Dict[Hashable, List["PageCache"]] = {}
        #: client_id -> tenant name, for scheduling and attribution.
        self._tenant_of: Dict[Hashable, str] = {}
        #: tenant name -> QoS weight (the ``tenant_priority`` hint).
        self._tenant_weight: Dict[str, float] = {}
        #: tenant name -> lazily-built mirror counters / histograms.
        self._tenant_mirrors: Dict[Optional[str], Dict[str, object]] = {}
        #: File-system-level fault injector (multi-tenant runs: OST
        #: faults belong to the shared storage, not any one tenant's
        #: plan — per-tenant overlays mask the shared FAULTS_KEY).
        self.storage_faults = storage_faults
        #: Admission-control bound on one batch fragment's queueing
        #: delay (virtual seconds; ``None`` = queues grow unboundedly,
        #: the seed's behaviour).
        self.queue_limit = queue_limit
        #: Per-OST circuit-breaker policy (``True`` = defaults,
        #: ``False`` = breakers disabled — every retry probes the OST).
        if breaker is True:
            self.breaker_policy: Optional[BreakerPolicy] = BreakerPolicy()
        elif breaker:
            self.breaker_policy = breaker
        else:
            self.breaker_policy = None
        self._breakers: Dict[int, CircuitBreaker] = {}
        #: Lazily-interned fs.ost.* counters: a fault-free session's
        #: registry stays exactly as the seed left it.
        self._ost_counter_cache: Dict[str, object] = {}

    # -- OST health / breakers ----------------------------------------------
    def _ost_counter(self, name: str):
        c = self._ost_counter_cache.get(name)
        if c is None:
            c = self._ost_counter_cache[name] = self.registry.counter(f"fs.ost.{name}")
        return c
    def _fault_views(self, ctx: Optional[RankContext]):
        """The distinct installed injectors carrying OST events."""
        views = []
        for inj in (
            self.storage_faults,
            ctx.shared.get(FAULTS_KEY) if ctx is not None else None,
        ):
            if inj is not None and inj not in views and inj.has_ost_faults():
                views.append(inj)
        return views

    def _breaker(self, ost: int) -> Optional[CircuitBreaker]:
        if self.breaker_policy is None:
            return None
        br = self._breakers.get(ost)
        if br is None:
            br = self._breakers[ost] = CircuitBreaker(self.breaker_policy)
        return br

    def _set_ost_gauges(self, views, now: float) -> None:
        for ost in range(self.cost.num_osts):
            state = max(inj.ost_state(ost, now) for inj in views)
            self.registry.gauge("fs.ost.health", ost).set(state)
            br = self._breakers.get(ost)
            if br is not None:
                self.registry.gauge("fs.ost.breaker_state", ost).set(br.state)

    def _ost_is_down(self, views, ost: int, now: float) -> bool:
        return any(inj.ost_down(ost, now) for inj in views)

    def _check_ost(self, views, ost: int, now: float, client_id, path: str, site: str) -> None:
        """Breaker-gated health check for one OST; raises typed errors.

        Fast-fails on an open breaker *without* touching the OST;
        otherwise a down OST counts one wasted hit (the probe that the
        breaker exists to avoid), feeds the breaker, and raises."""
        br = self._breaker(ost)
        if br is not None and not br.allow(now):
            self._ost_counter("breaker_fastfail").inc()
            raise OSTUnavailable(site, client_id, path, ost=ost, reason="breaker-open")
        if self._ost_is_down(views, ost, now):
            self._ost_counter("down_hits").inc()
            views[0].note_ost_rejection()
            if br is not None:
                br.record_failure(now)
                self.registry.gauge("fs.ost.breaker_state", ost).set(br.state)
            raise OSTUnavailable(site, client_id, path, ost=ost, reason="down")
        if br is not None and br.state != 0:
            br.record_success()
            self.registry.gauge("fs.ost.breaker_state", ost).set(br.state)

    def _up_set(self, views, now: float) -> Set[int]:
        """Live OSTs for replica placement: up *and* breaker-admitted."""
        up: Set[int] = set()
        for ost in range(self.cost.num_osts):
            br = self._breaker(ost)
            if br is not None and not br.allow(now):
                continue
            if self._ost_is_down(views, ost, now):
                if br is not None:
                    br.record_failure(now)
                continue
            if br is not None and br.state != 0:
                br.record_success()
            up.add(ost)
        return up

    def _check_admission(
        self, views, bytes_per, reqs_per, rmw_pages, now, client_id, path, site
    ) -> None:
        """Reject the batch when any fragment's queueing delay would
        exceed :attr:`queue_limit` — before any scheduler booking."""
        if self.queue_limit is None:
            return
        cost = self.cost
        tenant = self._tenant_of.get(client_id)
        weight = self._tenant_weight.get(tenant, 1.0)
        total_reqs = int(reqs_per.sum())
        for ost in range(cost.num_osts):
            if reqs_per[ost] == 0:
                continue
            share = rmw_pages * (reqs_per[ost] / total_reqs) if total_reqs else 0.0
            service = (
                int(reqs_per[ost]) * cost.ost_op_latency
                + int(bytes_per[ost]) * cost.ost_byte_time
                + share * cost.page_rmw_penalty
            )
            delay = self.scheduler.queue_delay(ost, tenant, weight, now, service)
            if delay > self.queue_limit:
                self._ost_counter("overloads").inc()
                if views:
                    views[0].note_ost_rejection()
                raise OSTOverloaded(
                    site,
                    client_id,
                    path,
                    ost=ost,
                    backlog=delay,
                    limit=self.queue_limit,
                )

    def _storage_plan(
        self,
        ctx: RankContext,
        client_id: Hashable,
        f: "_File",
        path: str,
        offs: np.ndarray,
        lens: np.ndarray,
        rmw: int,
        site: str,
        *,
        write: bool,
    ):
        """Pre-mutation storage checks for one server call.

        Runs health/breaker checks, write-quorum validation, background
        healing, and admission control — raising typed retryable errors
        before any store byte or scheduler booking is touched.  Returns
        ``(demand, up, views)``: ``demand`` is the per-OST
        ``(bytes, request-fragments)`` service demand for :meth:`_serve`
        (``None`` = derive from the stripe map, the seed's path), ``up``
        the live-OST set for a replicated store (``None`` for plain
        stores).  The fault-free unreplicated path returns immediately
        with no state touched."""
        views = self._fault_views(ctx)
        store = f.store
        replicated = isinstance(store, ReplicatedStore)
        if (
            not views
            and not self._breakers
            and self.queue_limit is None
            and not replicated
        ):
            return None, None, views
        now = ctx.now
        if views:
            self._set_ost_gauges(views, now)
        if not replicated:
            bytes_per, reqs_per = self._split_over_osts(offs, lens)
            if views or self._breakers:
                for ost in range(self.cost.num_osts):
                    if reqs_per[ost]:
                        self._check_ost(views, ost, now, client_id, path, site)
            self._check_admission(
                views, bytes_per, reqs_per, rmw, now, client_id, path, site
            )
            return (bytes_per, reqs_per), None, views
        if views or self._breakers:
            up = self._up_set(views, now)
        else:
            up = set(range(self.cost.num_osts))
        self._heal(store, up)
        if not write:
            # Reads only need one live fresh replica per piece; the
            # service demand depends on which replica actually serves
            # and is built by the caller from the store's report.
            for o, l in zip(offs.tolist(), lens.tolist()):
                for pos, chunk, osts in store._pieces(int(o), int(l)):
                    if store.fresh_replicas(pos, chunk, up):
                        continue
                    self._ost_counter("down_hits").inc()
                    if views:
                        views[0].note_ost_rejection()
                    bad = next((x for x in osts if x not in up), osts[0])
                    raise OSTUnavailable(site, client_id, path, ost=bad, reason="down")
            return None, up, views
        n_ost = self.cost.num_osts
        bytes_per = np.zeros(n_ost, dtype=np.int64)
        reqs_per = np.zeros(n_ost, dtype=np.int64)
        quorum = store.quorum
        for o, l in zip(offs.tolist(), lens.tolist()):
            for pos, chunk, osts in store._pieces(int(o), int(l)):
                live = [x for x in osts if x in up]
                if len(live) < quorum:
                    self._ost_counter("quorum_failures").inc()
                    if views:
                        views[0].note_ost_quorum_failure()
                    missing = next(x for x in osts if x not in up)
                    raise OSTUnavailable(
                        site, client_id, path, ost=missing, reason="quorum"
                    )
                for x in live:
                    bytes_per[x] += chunk
                    reqs_per[x] += 1
        self._check_admission(
            views, bytes_per, reqs_per, rmw, now, client_id, path, site
        )
        return (bytes_per, reqs_per), up, views

    # -- namespace ---------------------------------------------------------
    def ensure_file(self, path: str) -> None:
        if path not in self._files:
            self._files[path] = _File(
                self.cost.page_size, self.lock_granularity, path, self.registry
            )

    def exists(self, path: str) -> bool:
        return path in self._files

    def _file(self, path: str) -> _File:
        f = self._files.get(path)
        if f is None:
            raise FileSystemError(f"no such file: {path!r}")
        return f

    def file_size(self, path: str) -> int:
        return self._file(path).store.size

    def stats(self, path: str) -> FileStats:
        return self._file(path).stats

    def paths(self) -> List[str]:
        """Every file in the namespace (fsck's iteration order)."""
        return sorted(self._files)

    def page_store(self, path: str) -> "PageStore | ReplicatedStore":
        """Direct access to a file's page store (fsck, tests)."""
        return self._file(path).store

    def enable_integrity(self, path: str) -> None:
        """Arm the CRC32 page sidecar for ``path`` (idempotent)."""
        self.ensure_file(path)
        self._file(path).store.enable_integrity()

    def enable_replication(self, path: str, factor: int) -> None:
        """Swap ``path``'s store for a :class:`ReplicatedStore` with
        ``factor`` replicas per stripe (the ``replication_factor``
        hint).  Idempotent for the same factor; existing contents are
        migrated.  ``factor=1`` is a no-op (the plain store *is*
        1-way replication)."""
        if factor <= 1:
            return
        self.ensure_file(path)
        f = self._file(path)
        store = f.store
        if isinstance(store, ReplicatedStore):
            if store.factor != factor:
                raise FileSystemError(
                    f"{path!r} already replicated with factor {store.factor}, "
                    f"cannot re-open with {factor}"
                )
            return
        cost = self.cost
        repl = ReplicatedStore(
            cost.page_size,
            cost.stripe_size,
            cost.num_osts,
            factor,
            integrity=store.integrity,
        )
        ps = cost.page_size
        for idx in sorted(store._pages):
            repl.write(idx * ps, store._pages[idx])
        repl.size = store.size
        f.store = repl

    def replication_of(self, path: str) -> int:
        """The file's replication factor (1 = unreplicated)."""
        store = self._file(path).store
        return store.factor if isinstance(store, ReplicatedStore) else 1

    def rereplicate(self, path: str, *, now: float = 0.0, faults=None) -> int:
        """Admin re-replication pass: rebuild stale replicas on OSTs
        that are up at ``now`` (``repro fsck``'s healing hook; the same
        healing also runs opportunistically before every server call on
        a replicated file).  Returns bytes healed."""
        f = self._file(path)
        if not isinstance(f.store, ReplicatedStore):
            return 0
        views = [
            inj
            for inj in (faults, self.storage_faults)
            if inj is not None and inj.has_ost_faults()
        ]
        up = {
            ost
            for ost in range(self.cost.num_osts)
            if not self._ost_is_down(views, ost, now)
        }
        healed = f.store.rereplicate(up)
        if healed:
            self._ost_counter("rereplicated_bytes").inc(healed)
        return healed

    def _heal(self, store: ReplicatedStore, up: Set[int]) -> None:
        """Opportunistic background re-replication (no client cost:
        the rebuild daemon is not on the caller's critical path)."""
        if store.stale_bytes():
            healed = store.rereplicate(up)
            if healed:
                self._ost_counter("rereplicated_bytes").inc(healed)

    def raw_bytes(self, path: str, offset: int, nbytes: int) -> np.ndarray:
        """Server-side contents, for verification only (no cost).

        Deliberately unverified: oracles compare these bytes against
        expectations even when pages are known-corrupt."""
        return self._file(path).store.read(offset, nbytes, verify=False)

    def raw_write(self, path: str, offset: int, data: np.ndarray) -> None:
        """Install contents directly, for test setup only (no cost)."""
        self.ensure_file(path)
        self._file(path).store.write(offset, data)

    def register_cache(self, client_id: Hashable, cache: "PageCache") -> None:
        self._caches.setdefault(client_id, []).append(cache)

    # -- tenancy -----------------------------------------------------------
    def register_tenant(
        self, client_id: Hashable, tenant: str, weight: float = 1.0
    ) -> None:
        """Attribute ``client_id``'s server traffic to ``tenant``.

        ``weight`` feeds the weighted OST schedulers (the
        ``tenant_priority`` hint); registration also arms the per-tenant
        ``tenant.<name>.fs.*`` / ``tenant.<name>.lock.*`` mirror
        counters, whose per-tenant totals sum to the shared globals
        (the conservation invariant the tenancy tests check)."""
        if weight <= 0:
            raise FileSystemError(f"tenant weight must be positive, got {weight}")
        self._tenant_of[client_id] = str(tenant)
        self._tenant_weight[str(tenant)] = float(weight)

    def tenant_of(self, client_id: Hashable) -> Optional[str]:
        """The registered tenant of a client, or ``None``."""
        return self._tenant_of.get(client_id)

    def tenants(self) -> List[str]:
        """Registered tenant names, sorted."""
        return sorted(self._tenant_weight)

    def _tenant_mirror(self, tenant: Optional[str]) -> Dict[str, object]:
        """Lazily-built per-tenant instruments (mirrors + queue waits)."""
        m = self._tenant_mirrors.get(tenant)
        if m is None:
            m = {
                "queue_wait": self.registry.histogram(
                    "fs.ost.queue_wait_seconds", tenant
                )
            }
            if tenant is not None:
                view = self.registry.view(prefix=f"tenant.{tenant}.")
                for name in (
                    "fs.bytes.written",
                    "fs.bytes.read",
                    "fs.server.writes",
                    "fs.server.reads",
                    "fs.rmw.pages",
                    "lock.rpcs",
                    "lock.revocations",
                ):
                    m[name] = view.counter(name)
            self._tenant_mirrors[tenant] = m
        return m

    def _mirror_inc(self, client_id: Hashable, name: str, n: int) -> None:
        """Bump a tenant mirror counter (no-op for untenanted clients)."""
        tenant = self._tenant_of.get(client_id)
        if tenant is not None and n:
            self._tenant_mirror(tenant)[name].inc(n)

    # -- fault hooks ------------------------------------------------------
    @staticmethod
    def _maybe_io_fault(ctx: RankContext, client_id: Hashable, path: str, site: str) -> None:
        """Raise an injected :class:`~repro.errors.TransientIOError`
        when a fault plan says this server call fails.  The client has
        already paid the call overhead — a failed call costs real time,
        which is what makes retry storms expensive."""
        faults = ctx.shared.get(FAULTS_KEY)
        if faults is not None:
            faults.io_fault(client_id, path, site, ctx.now)

    # -- cost helpers ---------------------------------------------------------
    def _charge_locks(
        self,
        ctx: RankContext,
        f: _File,
        client_id: Hashable,
        offsets: np.ndarray,
        lengths: np.ndarray,
        path: str,
    ) -> None:
        """Acquire extent locks for a batch, one acquisition per merged
        contiguous run (span-locking the whole batch would over-lock
        wildly for sparse batches, e.g. a cyclic realm's flush)."""
        g = f.locks.granularity
        if offsets.size > 1 and not (offsets[1:] >= offsets[:-1]).all():
            order = np.argsort(offsets, kind="stable")
            offsets = offsets[order]
            lengths = lengths[order]
        faults = ctx.shared.get(FAULTS_KEY)
        runs: list[tuple[int, int]] = []
        run_lo = run_hi = None
        for o, l in zip(offsets.tolist(), lengths.tolist()):
            lo, hi = o, o + l
            if run_lo is None:
                run_lo, run_hi = lo, hi
            elif lo <= run_hi + g - 1:  # same or adjacent granule: merge
                run_hi = max(run_hi, hi)
            else:
                runs.append((run_lo, run_hi))
                run_lo, run_hi = lo, hi
        if run_lo is not None:
            runs.append((run_lo, run_hi))
        charges: list[LockCharge] = []
        for lo, hi in runs:
            # A conflicting *pinned* granule (lock_hold fault: the
            # holder's callback thread is wedged) cannot be revoked —
            # wait for recovery, lease reclaim, or deadlock breaking.
            if f.locks.pinned:
                self._await_pins(ctx, f, client_id, lo, hi, path)
            charges.append(
                f.locks.acquire(client_id, lo, hi, faults=faults, now=ctx.now)
            )
        if faults is not None and runs and faults.enabled("lock_hold"):
            hold = faults.lock_hold_seconds(client_id, ctx.now)
            if hold > 0.0:
                for lo, hi in runs:
                    f.locks.pin_range(client_id, lo, hi, ctx.now, ctx.now + hold)
        rpcs = sum(c.rpcs for c in charges)
        revoked = sum(c.revoked_granules for c in charges)
        f.stats.lock_rpcs += rpcs
        f.stats.lock_revocations += revoked
        self._mirror_inc(client_id, "lock.rpcs", rpcs)
        self._mirror_inc(client_id, "lock.revocations", revoked)
        ctx.charge(rpcs * self.cost.lock_rpc + revoked * self.cost.lock_revoke)
        # Coherent victims must flush and drop their pages in the range;
        # the requester waits for it, so the requester's clock pays.
        for charge in charges:
            for victim, r_lo, r_hi in charge.revoked_ranges:
                for cache in self._caches.get(victim, []):
                    if cache.path == path and cache.coherent:
                        flushed = cache.flush_and_invalidate_range(ctx, r_lo, r_hi)
                        f.stats.revoke_flush_pages += flushed

    def _await_pins(
        self,
        ctx: RankContext,
        f: _File,
        client_id: Hashable,
        lo: int,
        hi: int,
        path: str,
    ) -> None:
        """Block (virtual time) until no conflicting pin covers [lo, hi).

        Three exits per conflicting pin: the holder releases early (we
        wake at its release time), the pin expires or the liveness
        lease reclaims it (we wake at that instant and clear it), or a
        waits-for cycle is found — we are the victim, drop our own pins
        so the rest of the cycle can progress, and raise a typed,
        retryable :class:`~repro.errors.LockDeadlock`."""
        locks = f.locks
        faults = ctx.shared.get(FAULTS_KEY)
        liv = ctx.shared.get(LIVENESS_KEY)
        lease = (
            liv.config.lock_lease
            if liv is not None and liv.config.lock_lease > 0.0
            else math.inf
        )
        while True:
            pin = locks.blocking_pin(client_id, lo, hi)
            if pin is None:
                locks.clear_wait(client_id)
                return
            holder, t_pinned, expires = pin
            locks.note_wait(client_id, holder)
            cycle = locks.find_cycle(client_id)
            if cycle is not None:
                locks.release_pins(client_id, ctx.now)
                locks.clear_wait(client_id)
                if faults is not None:
                    faults.note_lock_deadlock()
                raise LockDeadlock(client_id, cycle, path)
            reclaim_at = min(expires, t_pinned + lease)
            woke = ctx.block(
                lambda: (
                    None
                    if locks.blocking_pin(client_id, lo, hi) is not None
                    else locks.last_pin_release
                ),
                reason=f"lock-pin wait [{lo}, {hi}) on {path!r}",
                timeout_at=reclaim_at,
            )
            if woke is BLOCK_TIMEOUT:
                ctx.charge_to(reclaim_at)
                reclaimed = locks.reclaim_pins(lo, hi, ctx.now, lease)
                if reclaimed and faults is not None:
                    faults.note_lock_reclaim(reclaimed)
            else:
                # Holder unlocked early: our wait ends at its release.
                ctx.charge_to(float(woke))

    def _split_over_osts(
        self, offsets: np.ndarray, lengths: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(bytes_per_ost, request_fragments_per_ost) for a batch."""
        cost = self.cost
        n_ost = cost.num_osts
        stripe = cost.stripe_size
        bytes_per = np.zeros(n_ost, dtype=np.int64)
        reqs_per = np.zeros(n_ost, dtype=np.int64)
        offs = offsets.astype(np.int64).copy()
        lens = lengths.astype(np.int64).copy()
        # Peel one stripe-bounded piece off every extent per iteration;
        # iterations = max stripes crossed by any extent.
        while True:
            active = lens > 0
            if not active.any():
                break
            o = offs[active]
            l = lens[active]
            piece = np.minimum(l, stripe - (o % stripe))
            ost = (o // stripe) % n_ost
            np.add.at(bytes_per, ost, piece)
            np.add.at(reqs_per, ost, 1)
            offs[active] += piece
            lens[active] -= piece
        return bytes_per, reqs_per

    @staticmethod
    def _partial_pages(offsets: np.ndarray, lengths: np.ndarray, page: int) -> int:
        """Pages touched but not fully covered, per extent (RMW count)."""
        if offsets.size == 0:
            return 0
        a = offsets.astype(np.int64)
        b = a + lengths.astype(np.int64)
        first_partial = (a % page) != 0
        last_partial = (b % page) != 0
        partial = first_partial.astype(np.int64) + last_partial.astype(np.int64)
        same_page = (a // page) == ((b - 1) // page)
        partial[same_page] = np.minimum(partial[same_page], 1)
        return int(partial.sum())

    def _serve(
        self,
        ctx: RankContext,
        client_id: Hashable,
        offsets: np.ndarray,
        lengths: np.ndarray,
        rmw_pages: int,
        *,
        demand: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        views=None,
    ) -> None:
        """Charge OST service for a batch, honoring per-OST queues.

        The queueing discipline itself lives in :attr:`scheduler`
        (FIFO by default; fair-share/weighted lanes for multi-tenant
        runs) — this method computes service demands, books them, and
        records each fragment's queueing delay against the client's
        tenant.  ``demand`` overrides the stripe-map split (replicated
        stores: every live replica does the write work, one replica the
        read work); ``views`` carries the OST-faulted injectors whose
        ``ost_slow`` brownouts inflate the affected OSTs' service."""
        cost = self.cost
        faults = ctx.shared.get(FAULTS_KEY)
        if views is None:
            views = self._fault_views(ctx)
        if demand is not None:
            bytes_per, reqs_per = demand
        else:
            bytes_per, reqs_per = self._split_over_osts(offsets, lengths)
        # Spread the RMW penalty over the OSTs proportionally to requests.
        total_reqs = int(reqs_per.sum())
        arrive = ctx.now
        finish = arrive
        tenant = self._tenant_of.get(client_id)
        weight = self._tenant_weight.get(tenant, 1.0)
        wait_hist = self._tenant_mirror(tenant)["queue_wait"]
        for ost in range(cost.num_osts):
            if reqs_per[ost] == 0:
                continue
            share = rmw_pages * (reqs_per[ost] / total_reqs) if total_reqs else 0.0
            service = (
                int(reqs_per[ost]) * cost.ost_op_latency
                + int(bytes_per[ost]) * cost.ost_byte_time
                + share * cost.page_rmw_penalty
            )
            if faults is not None:
                service += faults.disk_penalty(ost, arrive, service)
            if views:
                factor = 1.0
                for inj in views:
                    factor *= inj.ost_service_factor(ost, arrive)
                if factor > 1.0:
                    extra = service * (factor - 1.0)
                    service += extra
                    views[0].note_ost_slow(extra)
            done = self.scheduler.request(ost, tenant, weight, arrive, service)
            wait_hist.record(max(0.0, done - arrive - service))
            finish = max(finish, done)
        ctx.charge_to(finish)
        ctx.yield_now()

    @staticmethod
    def _as_batch(
        offsets: Iterable[int] | np.ndarray, lengths: Iterable[int] | np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        offs = np.asarray(offsets, dtype=np.int64).ravel()
        lens = np.asarray(lengths, dtype=np.int64).ravel()
        if offs.shape != lens.shape:
            raise FileSystemError("offsets and lengths must have the same shape")
        if offs.size and (offs < 0).any() or (lens < 0).any():
            raise FileSystemError("offsets and lengths must be non-negative")
        keep = lens > 0
        if not keep.all():
            offs, lens = offs[keep], lens[keep]
        return offs, lens

    def acquire_extents(
        self,
        ctx: RankContext,
        client_id: Hashable,
        path: str,
        offsets: Iterable[int] | np.ndarray,
        lengths: Iterable[int] | np.ndarray,
    ) -> None:
        """Take the extent locks for a byte range without moving data.

        Coherent client caches call this before dirtying bytes: holding
        the lock while caching dirty data is what lets a later conflicting
        access find (and flush) that data via revocation — without it, a
        write-around cache would hide bytes from other clients.

        Acquisition verifies and retries: revoking a victim's dirty
        pages yields the processor, during which another client may
        steal the very granules being acquired.  The caller must
        actually hold them when this returns (its next step is dirtying
        bytes under their protection)."""
        f = self._file(path)
        offs, lens = self._as_batch(offsets, lengths)
        if offs.size == 0:
            return
        lo_all = offs.min()
        hi_all = int((offs + lens).max())
        with ctx.trace("fs:lock", path=path):
            for _ in range(64):
                self._charge_locks(ctx, f, client_id, offs, lens, path)
                held = all(
                    f.locks.holds(client_id, int(o), int(o + l))
                    for o, l in zip(offs.tolist(), lens.tolist())
                )
                if held:
                    return
        raise FileSystemError(
            f"extent lock livelock on {path!r} [{lo_all}, {hi_all}) for client {client_id}"
        )

    # -- server entry points -----------------------------------------------------
    def server_write(
        self,
        ctx: RankContext,
        client_id: Hashable,
        path: str,
        offsets: Iterable[int] | np.ndarray,
        lengths: Iterable[int] | np.ndarray,
        data: np.ndarray,
        *,
        acquire_locks: bool = True,
        journaled: bool = False,
    ) -> None:
        """One write call carrying a batch of contiguous extents.

        ``data`` holds the extents' bytes concatenated in batch order.
        With ``journaled=True`` the bytes land in the file's open shadow
        transaction instead of the main store (same locks, same costs,
        same fault exposure); they become visible only at
        :meth:`txn_commit`.
        """
        f = self._file(path)
        offs, lens = self._as_batch(offsets, lengths)
        data = np.asarray(data, dtype=np.uint8)
        total = int(lens.sum())
        if data.size != total:
            raise FileSystemError(
                f"server_write: data has {data.size} bytes, extents total {total}"
            )
        ctx.charge(self.cost.io_call_overhead)
        if offs.size == 0:
            return
        # Transient faults fire before the store is touched, so a
        # failed call leaves no partial contents and a retry is safe.
        self._maybe_io_fault(ctx, client_id, path, "server_write")
        if acquire_locks:
            self._charge_locks(ctx, f, client_id, offs, lens, path)
        rmw = self._partial_pages(offs, lens, self.cost.page_size)
        # Storage plan phase: typed health/quorum/admission failures
        # fire here, before any byte mutates — a retried call starts
        # from an untouched store.
        demand, up, views = self._storage_plan(
            ctx, client_id, f, path, offs, lens, rmw, "server_write", write=True
        )
        f.stats.rmw_pages += rmw
        f.stats.server_writes += 1
        f.stats.bytes_written += total
        self._mirror_inc(client_id, "fs.rmw.pages", rmw)
        self._mirror_inc(client_id, "fs.server.writes", 1)
        self._mirror_inc(client_id, "fs.bytes.written", total)
        target = f.store
        txn = None
        if journaled:
            txn = f.txn
            if txn is None:
                raise FileSystemError(
                    f"journaled write on {path!r} without an open transaction"
                )
            target = txn.store
            f.stats.journal_writes += 1
            # Journaled bytes go to the (plain) shadow store; the live
            # set matters at commit time, when they publish.
            demand = None
        pos = 0
        for o, l in zip(offs.tolist(), lens.tolist()):
            if txn is None and isinstance(target, ReplicatedStore):
                target.write(o, data[pos : pos + l], up=up)
            else:
                target.write(o, data[pos : pos + l])
            if txn is not None:
                txn.record(o, l)
            pos += l
        # Silent-corruption injection: bits flip in whichever store the
        # bytes landed in, after the checksum sidecar was updated.
        faults = ctx.shared.get(FAULTS_KEY)
        if faults is not None and faults.enabled("bit_flip_page"):
            faults.corrupt_stored(
                target, self._touched_pages(offs, lens), client_id, ctx.now
            )
        self._serve(ctx, client_id, offs, lens, rmw, demand=demand, views=views)

    def _touched_pages(self, offs: np.ndarray, lens: np.ndarray) -> List[int]:
        """Sorted page indices covered by a batch (corruption targets)."""
        ps = self.cost.page_size
        touched: set[int] = set()
        for o, l in zip(offs.tolist(), lens.tolist()):
            touched.update(range(o // ps, (o + l - 1) // ps + 1))
        return sorted(touched)

    def server_read(
        self,
        ctx: RankContext,
        client_id: Hashable,
        path: str,
        offsets: Iterable[int] | np.ndarray,
        lengths: Iterable[int] | np.ndarray,
        *,
        acquire_locks: bool = True,
        journaled: bool = False,
    ) -> np.ndarray:
        """One read call for a batch of extents; returns concatenated bytes.

        With ``journaled=True`` and an open transaction, bytes the
        journal owns overlay the main store (read-your-writes inside
        the transaction — data sieving's pre-reads need it)."""
        f = self._file(path)
        offs, lens = self._as_batch(offsets, lengths)
        ctx.charge(self.cost.io_call_overhead)
        total = int(lens.sum())
        out = np.empty(total, dtype=np.uint8)
        if offs.size == 0:
            return out
        self._maybe_io_fault(ctx, client_id, path, "server_read")
        if acquire_locks:
            self._charge_locks(ctx, f, client_id, offs, lens, path)
        demand, up, views = self._storage_plan(
            ctx, client_id, f, path, offs, lens, 0, "server_read", write=False
        )
        f.stats.server_reads += 1
        f.stats.bytes_read += total
        self._mirror_inc(client_id, "fs.server.reads", 1)
        self._mirror_inc(client_id, "fs.bytes.read", total)
        replicated = isinstance(f.store, ReplicatedStore)
        served: List[Tuple[int, int]] = []
        failovers: List[int] = []
        pos = 0
        try:
            for o, l in zip(offs.tolist(), lens.tolist()):
                if replicated:
                    piece = f.store.read(
                        o, l, up=up, served=served, failovers=failovers
                    )
                else:
                    piece = f.store.read(o, l)
                if journaled and f.txn is not None:
                    self._overlay_txn(f.txn, o, piece)
                out[pos : pos + l] = piece
                pos += l
        except IntegrityError as exc:
            self._note_page_corruption(ctx)
            raise IntegrityError(exc.site, exc.page_index, path) from exc
        if failovers:
            self._ost_counter("failovers").inc(len(failovers))
            if views:
                for _ in failovers:
                    views[0].note_ost_failover()
        if replicated:
            # Service demand is whatever replicas actually served.
            bytes_per = np.zeros(self.cost.num_osts, dtype=np.int64)
            reqs_per = np.zeros(self.cost.num_osts, dtype=np.int64)
            for ost, chunk in served:
                bytes_per[ost] += chunk
                reqs_per[ost] += 1
            demand = (bytes_per, reqs_per)
            self._check_admission(
                views, bytes_per, reqs_per, 0, ctx.now, client_id, path, "server_read"
            )
        self._serve(ctx, client_id, offs, lens, 0, demand=demand, views=views)
        return out

    @staticmethod
    def _overlay_txn(txn: _Txn, offset: int, out: np.ndarray) -> None:
        """Patch journal-owned byte runs over a main-store read."""
        ps = txn.store.page_size
        lo, hi = offset, offset + int(out.size)
        for pidx in range(lo // ps, -(-hi // ps)):
            runs = txn.valid.get(pidx)
            if runs is None:
                continue
            base = pidx * ps
            for s, e in runs:
                g_lo, g_hi = max(lo, base + s), min(hi, base + e)
                if g_hi > g_lo:
                    out[g_lo - lo : g_hi - lo] = txn.store.read(g_lo, g_hi - g_lo)

    @staticmethod
    def _note_page_corruption(ctx: RankContext) -> None:
        faults = ctx.shared.get(FAULTS_KEY)
        if faults is not None:
            faults.note_page_corruption_detected()

    # -- epoch commit records (resumable collectives) -----------------------
    def journal_record_epoch(
        self,
        path: str,
        *,
        call_index: int,
        epoch: int,
        participants: Iterable[int],
        intervals: Iterable[Tuple[int, int]],
        journaled: bool = False,
    ) -> None:
        """Record one completed collective round (an *epoch*) for ``path``.

        ``participants`` are the world ranks whose data entered this
        round's exchange (a rank that crashed before the round is not a
        participant — its bytes for the round never reached an
        aggregator).  ``intervals`` are the file byte ranges the round's
        flush covered, union over all aggregator windows.

        Un-journaled collectives append straight to the durable epoch
        log: the round's bytes hit the main store before the record is
        cut, so the record never claims more than the store holds.
        With ``journaled=True`` the record is staged inside the open
        shadow transaction and becomes durable only when the
        transaction commits — uncommitted journal bytes and their epoch
        records vanish together."""
        f = self._file(path)
        record = {
            "call_index": int(call_index),
            "epoch": int(epoch),
            "participants": tuple(sorted(int(r) for r in participants)),
            "intervals": tuple(
                (int(lo), int(hi)) for lo, hi in intervals if int(hi) > int(lo)
            ),
        }
        if journaled and f.txn is not None:
            f.txn.epochs.append(record)
        else:
            self._publish_epoch(f, record)

    def _publish_epoch(self, f: _File, record: dict) -> None:
        rec = dict(record)
        rec["seq"] = len(f.epoch_log)
        f.epoch_log.append(rec)
        f.stats.journal_epochs += 1

    def journal_replay(self, path: str) -> List[dict]:
        """The committed epoch records for ``path``, in commit order.

        This is crash recovery's first step: a rejoining rank scans the
        replayed records for the rounds it participated in, intersects
        their intervals with its own access, and re-writes only what no
        committed epoch covers (:func:`repro.core.resume.resume_write`).
        Returns copies — the log itself is append-only."""
        return [dict(r) for r in self._file(path).epoch_log]

    # -- shadow-write transactions (the journal) -----------------------------
    def txn_begin(self, path: str, txid: int) -> None:
        """Open (or join) shadow transaction ``txid`` on ``path``.

        Collective callers all pass the same txid, so the first one
        creates the journal and the rest join it.  A *different* txid
        found open means the previous transaction never committed — a
        crashed collective call — and is discarded, which is exactly
        the crash-recovery contract: uncommitted journal bytes never
        reach the file."""
        f = self._file(path)
        if f.txn is not None and f.txn.txid != txid:
            f.txn = None
            f.stats.journal_aborts += 1
        if f.txn is None:
            f.txn = _Txn(txid, self.cost.page_size, f.store.integrity)

    def txn_active(self, path: str) -> bool:
        return self._file(path).txn is not None

    def txn_abort(self, path: str) -> None:
        """Discard the open transaction (its bytes were never visible)."""
        f = self._file(path)
        if f.txn is not None:
            f.txn = None
            f.stats.journal_aborts += 1

    def txn_commit(self, ctx: RankContext, client_id: Hashable, path: str) -> int:
        """Atomically publish the open transaction into the main store.

        The injected-fault point fires *before* any byte is applied and
        the apply loop has no yield point, so the commit is all-or-
        nothing: a retried commit (transient fault) re-applies from an
        untouched journal, and a crash before commit leaves the file at
        its pre-transaction image.  Shadow pages are verified against
        their sidecars as they are read, so corruption that hit the
        journal itself surfaces here as a typed
        :class:`~repro.errors.IntegrityError` instead of being
        laundered into freshly-checksummed file pages.  Returns the
        number of pages published."""
        f = self._file(path)
        ctx.charge(self.cost.io_call_overhead)
        txn = f.txn
        if txn is None:
            return 0
        with ctx.trace("fs:journal_commit", path=path):
            self._maybe_io_fault(ctx, client_id, path, "txn_commit")
            pages = sorted(txn.valid)
            # Health/quorum gate before any byte publishes: an outage
            # mid-commit yields a typed retryable failure with the
            # journal intact, never a torn publish.
            up = self._txn_commit_gate(ctx, client_id, f, path, pages)
            ctx.charge(len(pages) * self.cost.journal_commit_page)
            ps = self.cost.page_size
            replicated = isinstance(f.store, ReplicatedStore)
            for pidx in pages:
                base = pidx * ps
                for s, e in txn.valid[pidx]:
                    try:
                        good = txn.store.read(base + s, e - s)
                    except IntegrityError as exc:
                        self._note_page_corruption(ctx)
                        raise IntegrityError("journal-commit", pidx, path) from exc
                    if replicated:
                        f.store.write(base + s, good, up=up)
                    else:
                        f.store.write(base + s, good)
            f.txn = None
            f.stats.journal_commits += 1
            f.stats.journal_pages_committed += len(pages)
            # Staged epoch records become durable with their bytes.
            for rec in txn.epochs:
                self._publish_epoch(f, rec)
        # Cached pre-commit copies of the published pages are stale in
        # every client; drop clean copies (dirty bytes are newer than
        # the commit and must survive to their own flush).
        for caches in self._caches.values():
            for cache in caches:
                if cache.path == path and cache.caching:
                    for pidx in pages:
                        cache.invalidate_range(
                            pidx * ps, (pidx + 1) * ps, keep_dirty=True
                        )
        ctx.yield_now()
        return len(pages)

    def _txn_commit_gate(
        self,
        ctx: RankContext,
        client_id: Hashable,
        f: _File,
        path: str,
        pages: List[int],
    ) -> Optional[Set[int]]:
        """Pre-publish storage checks for a journal commit.

        Plain store: every OST holding a committed page must be up (and
        breaker-admitted).  Replicated store: every committed page's
        stripe must retain a write-quorum of live replicas; returns the
        live set the publish writes to (missed replicas go stale and
        heal later)."""
        views = self._fault_views(ctx)
        store = f.store
        replicated = isinstance(store, ReplicatedStore)
        if not views and not self._breakers and not replicated:
            return None
        now = ctx.now
        if views:
            self._set_ost_gauges(views, now)
        ps = self.cost.page_size
        if not replicated:
            stripe = self.cost.stripe_size
            osts = sorted({(pidx * ps // stripe) % self.cost.num_osts for pidx in pages})
            for ost in osts:
                self._check_ost(views, ost, now, client_id, path, "txn_commit")
            return None
        if views or self._breakers:
            up = self._up_set(views, now)
        else:
            up = set(range(self.cost.num_osts))
        self._heal(store, up)
        quorum = store.quorum
        for pidx in pages:
            osts = store.replicas_of(pidx * ps)
            live = [x for x in osts if x in up]
            if len(live) < quorum:
                self._ost_counter("quorum_failures").inc()
                if views:
                    views[0].note_ost_quorum_failure()
                missing = next(x for x in osts if x not in up)
                raise OSTUnavailable(
                    "txn_commit", client_id, path, ost=missing, reason="quorum"
                )
        return up

    # -- resize --------------------------------------------------------------
    def resize(self, ctx: RankContext, client_id: Hashable, path: str, size: int) -> None:
        """Set the file's logical size (MPI_File_set_size's server op).

        Shrinking trims store pages and drops every client's cached
        pages from the truncation point on — callers flush dirty data
        first (the collective ``set_size`` does), because cached bytes
        past the cut are discarded, not written back."""
        f = self._file(path)
        ctx.charge(self.cost.io_call_overhead)
        self._maybe_io_fault(ctx, client_id, path, "server_resize")
        old = f.store.size
        f.store.truncate(size)
        if size < old:
            ps = self.cost.page_size
            cut = (size // ps) * ps
            for caches in self._caches.values():
                for cache in caches:
                    if cache.path == path:
                        cache.invalidate_range(cut, max(old, cut + ps))
