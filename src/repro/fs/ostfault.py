"""Per-OST fault domains: health state, circuit breaking, trace lanes.

PRs 1–3 made clients fallible; this module makes the *storage servers*
fallible.  Three fault kinds in :mod:`repro.faults.plan` drive a pure
health function over virtual time:

``ost_crash``
    down for the whole window; the window end is the recovery epoch.
``ost_slow``
    degraded (service multiplied by ``factor``) — a gray brownout.
``ost_flap``
    alternating up/down with half-period ``delay`` inside the window.

Health is **stateless**: :func:`ost_state` is a pure function of
``(plan events, ost, t)``, so every client evaluates the same truth
without communication and replays are deterministic.  The stateful
piece is the :class:`CircuitBreaker` — per-OST, owned by the file
system, shared by every tenant — which converts repeated down-OST
hits into fast local failures (open state) and probes for recovery
(half-open) instead of letting every retry pay a full server call
against a dead target.

Health states are small ints so they can live in ``fs.ost.health``
gauges: 0 = up, 1 = degraded, 2 = down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

__all__ = [
    "UP",
    "DEGRADED",
    "DOWN",
    "STATE_NAMES",
    "ost_state",
    "ost_down",
    "ost_service_factor",
    "next_recovery",
    "health_lanes",
    "chrome_lane_events",
    "OST_LANE_TID",
    "BreakerPolicy",
    "CircuitBreaker",
]

#: Gauge values for the ``fs.ost.health`` series.
UP, DEGRADED, DOWN = 0, 1, 2
STATE_NAMES = {UP: "up", DEGRADED: "degraded", DOWN: "down"}


def _flap_down(event, t: float) -> bool:
    """A flapping OST is down during the odd half-periods of its window."""
    return int((t - event.start) // event.delay) % 2 == 1


def ost_down(events: Iterable, ost: int, t: float) -> bool:
    """True when any crash/flap event holds ``ost`` down at time ``t``."""
    for e in events:
        if e.osts is None or ost not in e.osts:
            continue
        if e.kind == "ost_crash" and e.active(t):
            return True
        if e.kind == "ost_flap" and e.active(t) and _flap_down(e, t):
            return True
    return False


def ost_service_factor(events: Iterable, ost: int, t: float) -> float:
    """Combined brownout multiplier (1.0 = healthy) at time ``t``."""
    f = 1.0
    for e in events:
        if e.kind == "ost_slow" and e.active(t) and e.osts is not None and ost in e.osts:
            f *= e.factor
    return f


def ost_state(events: Iterable, ost: int, t: float) -> int:
    """The health gauge value for ``ost`` at time ``t``."""
    if ost_down(events, ost, t):
        return DOWN
    if ost_service_factor(events, ost, t) > 1.0:
        return DEGRADED
    return UP


def next_recovery(events: Iterable, ost: int, t: float) -> float:
    """Earliest time ``>= t`` at which ``ost`` is not down.

    Used by tests and the re-replication pass to find the recovery
    epoch; returns ``t`` itself when the OST is already up, ``inf``
    when no event schedule ever brings it back."""
    now = t
    for _ in range(10_000):
        if not ost_down(events, ost, now):
            return now
        candidates = []
        for e in events:
            if e.osts is None or ost not in e.osts or not e.active(now):
                continue
            if e.kind == "ost_crash":
                candidates.append(e.end)
            elif e.kind == "ost_flap" and _flap_down(e, now):
                k = int((now - e.start) // e.delay) + 1
                candidates.append(min(e.start + k * e.delay, e.end))
        if not candidates:
            return math.inf
        now = max(now, min(candidates))
    return math.inf


def _boundaries(events: List, ost: int, horizon: float) -> List[float]:
    """Times in [0, horizon] where ``ost``'s health may change."""
    cuts = {0.0, horizon}
    for e in events:
        if e.osts is None or ost not in e.osts:
            continue
        for t in (e.start, e.end):
            if 0.0 <= t <= horizon:
                cuts.add(t)
        if e.kind == "ost_flap" and e.delay > 0:
            t = e.start + e.delay
            stop = min(e.end, horizon)
            while t < stop:
                cuts.add(t)
                t += e.delay
    return sorted(cuts)


def health_lanes(
    events: Iterable, num_osts: int, horizon: float
) -> List[Tuple[int, str, float, float]]:
    """Non-``up`` health spans per OST, clamped to ``[0, horizon]``.

    Returns ``(ost, state_name, t0, t1)`` rows for the Chrome-trace
    exporter: one row per maximal span during which the OST's state is
    constant and not ``up``."""
    events = [e for e in events if e.kind in ("ost_crash", "ost_slow", "ost_flap")]
    lanes: List[Tuple[int, str, float, float]] = []
    if horizon <= 0.0 or not events:
        return lanes
    for ost in range(num_osts):
        cuts = _boundaries(events, ost, horizon)
        prev_t = cuts[0]
        prev_s = ost_state(events, ost, prev_t)
        for t in cuts[1:]:
            s = ost_state(events, ost, t)
            if s != prev_s:
                if prev_s != UP and t > prev_t:
                    lanes.append((ost, STATE_NAMES[prev_s], prev_t, t))
                prev_t, prev_s = t, s
        if prev_s != UP and horizon > prev_t:
            lanes.append((ost, STATE_NAMES[prev_s], prev_t, horizon))
    return lanes


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-OST circuit-breaker knobs (virtual seconds)."""

    #: Consecutive down-hits that trip the breaker open.
    trip_after: int = 3
    #: Seconds the breaker stays open before allowing a half-open probe.
    cooldown: float = 5e-3

    def validate(self) -> None:
        if self.trip_after <= 0:
            raise ValueError(f"trip_after must be positive, got {self.trip_after}")
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")


#: Breaker states for the ``fs.ost.breaker_state`` gauge.
CLOSED, OPEN, HALF_OPEN = 0, 1, 2


class CircuitBreaker:
    """Classic three-state breaker over one OST's observed failures.

    *Closed*: calls flow; consecutive failures count up.  *Open*: calls
    are shed without touching the OST until ``cooldown`` elapses.
    *Half-open*: one probe call is allowed through — success closes the
    breaker, failure re-opens it (restarting the cooldown)."""

    __slots__ = ("policy", "failures", "opened_at", "state")

    def __init__(self, policy: BreakerPolicy = BreakerPolicy()) -> None:
        policy.validate()
        self.policy = policy
        self.failures = 0
        self.opened_at = 0.0
        self.state = CLOSED

    def allow(self, now: float) -> bool:
        """May a call touch the OST right now?  (False = shed it.)"""
        if self.state == CLOSED:
            return True
        if now - self.opened_at >= self.policy.cooldown:
            self.state = HALF_OPEN
            return True
        return False

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self.state = OPEN
            self.opened_at = now
            return
        self.failures += 1
        if self.state == CLOSED and self.failures >= self.policy.trip_after:
            self.state = OPEN
            self.opened_at = now

    def record_success(self) -> None:
        self.failures = 0
        self.state = CLOSED


def breaker_states() -> Dict[str, int]:
    """Name -> gauge value map (docs/tests convenience)."""
    return {"closed": CLOSED, "open": OPEN, "half-open": HALF_OPEN}


#: Chrome-trace tid base for OST lanes — far above any rank tid so the
#: storage rows sort below the compute rows in the viewer.
OST_LANE_TID = 1_000_000


def chrome_lane_events(
    events: Iterable, num_osts: int, horizon: float
) -> List[Dict]:
    """Chrome ``trace_event`` rows for the per-OST health lanes.

    One metadata row names each faulted OST's lane (``ost N``), and one
    complete (``"X"``) event per non-``up`` health span shows when the
    OST was down or degraded — appended to a run's trace so storage
    outages line up against the compute rows."""
    lanes = health_lanes(events, num_osts, horizon)
    out: List[Dict] = []
    for ost in sorted({ost for ost, _, _, _ in lanes}):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": OST_LANE_TID + ost,
                "ts": 0,
                "args": {"name": f"ost {ost}"},
            }
        )
    for ost, state, t0, t1 in lanes:
        out.append(
            {
                "name": f"ost:{state}",
                "cat": "ost",
                "ph": "X",
                "pid": 0,
                "tid": OST_LANE_TID + ost,
                "ts": t0 * 1e6,
                "dur": (t1 - t0) * 1e6,
                "args": {"ost": ost, "state": state},
            }
        )
    return out
