"""Per-OST request scheduling policies for the shared file system.

A single job saturating idle OSTs only needs the seed's model: one
availability time per OST, requests served in virtual-time arrival
order.  A *multi-tenant* file system needs a policy for who waits when
several jobs' aggregators hit the same OST, so the serving discipline
is factored out here behind :class:`OSTScheduler`:

``fifo``
    The seed's discipline, bit-identical to the old inline
    ``_ost_available`` bookkeeping: one queue per OST, a request starts
    at ``max(arrive, available)`` and occupies the OST for its whole
    service time.  Tenant-blind — an elephant tenant issuing large
    requests starves small-request tenants in proportion to request
    size.

``fair`` / ``fair_share``
    Start-time-fair queueing approximation (a GPS/WFQ-style model, not
    an event-accurate packet scheduler): each tenant has its own
    backlog lane per OST, and the *interference* a request suffers from
    other tenants is capped by both (a) the others' actual pending
    backlog and (b) the service the others could receive while this
    tenant's own work drains at its fair share::

        own   = backlog_self + service
        done  = arrive + own + min(backlog_others, own * W_others / w)

    With one tenant (or unregistered clients, which share the ``None``
    lane) the interference term is zero and the policy degenerates to
    exactly FIFO — so single-session runs are unaffected by switching.

``wfq`` / ``weighted``
    The same model honoring per-tenant weights (the ``tenant_priority``
    hint): a weight-2 tenant's lane drains as if it held twice the
    share, i.e. it absorbs half the interference a weight-1 tenant
    would.  ``fair`` is ``wfq`` with every weight forced to 1.

Schedulers are deterministic, keep all state in plain dicts (the
engine's single-running-thread invariant), and are consulted only by
:meth:`repro.fs.filesystem.SimFileSystem._serve`.

**Admission control** (``docs/storage_faults.md``): every scheduler
also exposes ``queue_delay`` — the queueing delay a request *would*
suffer, computed without booking it.  The file system compares that
estimate against its ``queue_limit`` before mutating any scheduler
state and rejects over-limit batches with a typed
:class:`~repro.errors.OSTOverloaded`, so a saturated OST sheds load
instead of growing its queue without bound.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.errors import FileSystemError

__all__ = [
    "OSTScheduler",
    "FIFOScheduler",
    "FairShareScheduler",
    "make_scheduler",
    "SCHEDULER_NAMES",
]


class OSTScheduler:
    """Serving discipline for one file system's OSTs.

    ``request(ost, tenant, weight, arrive, service)`` books one request
    batch fragment and returns its completion time; the queueing delay
    is ``done - arrive - service``.  ``tenant`` is ``None`` for clients
    of no registered tenant (they share one anonymous lane)."""

    name = "base"

    def request(
        self,
        ost: int,
        tenant: Hashable,
        weight: float,
        arrive: float,
        service: float,
    ) -> float:
        raise NotImplementedError

    def queue_delay(
        self,
        ost: int,
        tenant: Hashable,
        weight: float,
        arrive: float,
        service: float,
    ) -> float:
        """The queueing delay (``done - arrive - service``) this request
        would suffer, *without* booking it — the admission-control
        probe.  Must match what an immediate :meth:`request` with the
        same arguments would charge."""
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class FIFOScheduler(OSTScheduler):
    """One arrival-ordered queue per OST (the seed's discipline)."""

    name = "fifo"

    def __init__(self) -> None:
        self._available: Dict[int, float] = {}

    def request(
        self,
        ost: int,
        tenant: Hashable,
        weight: float,
        arrive: float,
        service: float,
    ) -> float:
        start = max(arrive, self._available.get(ost, 0.0))
        done = start + service
        self._available[ost] = done
        return done

    def queue_delay(
        self,
        ost: int,
        tenant: Hashable,
        weight: float,
        arrive: float,
        service: float,
    ) -> float:
        return max(0.0, self._available.get(ost, 0.0) - arrive)

    def reset(self) -> None:
        self._available.clear()


class FairShareScheduler(OSTScheduler):
    """Per-tenant lanes with share-capped interference (see module doc).

    ``weighted=False`` (the ``fair`` policy) treats every tenant's lane
    equally regardless of registered weights; ``weighted=True`` (the
    ``wfq`` policy) lets a tenant's weight shrink the interference it
    absorbs relative to the active competition."""

    def __init__(self, weighted: bool = False) -> None:
        self.weighted = weighted
        self.name = "wfq" if weighted else "fair"
        #: (ost, tenant) -> this lane's busy-until time.
        self._busy: Dict[Tuple[int, Hashable], float] = {}
        #: tenant -> last-declared weight (what competitors see).
        self._weights: Dict[Hashable, float] = {}

    def _delay(
        self,
        ost: int,
        tenant: Hashable,
        weight: float,
        arrive: float,
        service: float,
    ) -> float:
        """Queueing delay (own backlog + capped interference); pure."""
        backlog_self = max(0.0, self._busy.get((ost, tenant), 0.0) - arrive)
        others = 0.0
        w_others = 0.0
        for (o, t), busy in self._busy.items():
            if o != ost or t == tenant:
                continue
            pending = busy - arrive
            if pending > 0.0:
                others += pending
                w_others += self._weights.get(t, 1.0)
        own = backlog_self + service
        interference = min(others, own * (w_others / weight)) if w_others else 0.0
        return backlog_self + interference

    def request(
        self,
        ost: int,
        tenant: Hashable,
        weight: float,
        arrive: float,
        service: float,
    ) -> float:
        weight = max(weight, 1e-9) if self.weighted else 1.0
        self._weights[tenant] = weight
        done = arrive + service + self._delay(ost, tenant, weight, arrive, service)
        self._busy[(ost, tenant)] = done
        return done

    def queue_delay(
        self,
        ost: int,
        tenant: Hashable,
        weight: float,
        arrive: float,
        service: float,
    ) -> float:
        weight = max(weight, 1e-9) if self.weighted else 1.0
        return self._delay(ost, tenant, weight, arrive, service)

    def reset(self) -> None:
        self._busy.clear()
        self._weights.clear()


def make_scheduler(spec: "OSTScheduler | str | None") -> OSTScheduler:
    """Resolve a scheduler instance from a policy name (or pass one through)."""
    if spec is None:
        return FIFOScheduler()
    if isinstance(spec, OSTScheduler):
        return spec
    name = str(spec).strip().lower().replace("-", "_")
    if name == "fifo":
        return FIFOScheduler()
    if name in ("fair", "fair_share"):
        return FairShareScheduler(weighted=False)
    if name in ("wfq", "weighted", "weighted_fair"):
        return FairShareScheduler(weighted=True)
    raise FileSystemError(
        f"unknown OST scheduler {spec!r}; known policies: {SCHEDULER_NAMES}"
    )


SCHEDULER_NAMES = ("fifo", "fair", "wfq")
