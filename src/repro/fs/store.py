"""Sparse paged byte store — the authoritative file contents.

Pages are allocated lazily; unwritten bytes read back as zero, like a
POSIX sparse file.  The store is pure data: no cost accounting here.

With integrity enabled (:meth:`PageStore.enable_integrity`, gated by
the ``integrity_pages`` hint upstream) every allocated page carries a
CRC32 sidecar word: writes update it, reads verify it, and a mismatch
raises :class:`~repro.errors.IntegrityError` carrying the page index —
silent corruption (e.g. the fault model's ``bit_flip_page`` events,
which mutate page bytes *without* touching the sidecar) becomes a loud,
typed failure at the first read.  :meth:`verify_all` is the offline
scrub used by ``repro fsck``.
"""

from __future__ import annotations

import zlib
from typing import Dict, List

import numpy as np

from repro.errors import FileSystemError, IntegrityError

__all__ = ["PageStore"]


class PageStore:
    """A sparse file as a dict of fixed-size numpy pages."""

    __slots__ = ("page_size", "_pages", "size", "integrity", "_crcs")

    def __init__(self, page_size: int, *, integrity: bool = False) -> None:
        if page_size <= 0:
            raise FileSystemError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        self._pages: Dict[int, np.ndarray] = {}
        #: Logical file size (highest byte written + 1).
        self.size = 0
        #: When True, a CRC32 sidecar per page is maintained and
        #: verified on read.
        self.integrity = integrity
        self._crcs: Dict[int, int] = {}

    def _page(self, index: int) -> np.ndarray:
        page = self._pages.get(index)
        if page is None:
            page = np.zeros(self.page_size, dtype=np.uint8)
            self._pages[index] = page
        return page

    # -- checksum sidecar ---------------------------------------------------
    def _crc(self, index: int) -> int:
        return zlib.crc32(self._pages[index].tobytes()) & 0xFFFFFFFF

    def enable_integrity(self) -> None:
        """Turn on the CRC sidecar, fingerprinting any existing pages.

        Idempotent; existing content is trusted as-is (the sidecar
        protects from here on)."""
        if self.integrity:
            return
        self.integrity = True
        for idx in self._pages:
            self._crcs[idx] = self._crc(idx)

    def verify_page(self, index: int) -> bool:
        """True when the page's bytes still match its sidecar (holes
        are vacuously good)."""
        if index not in self._pages:
            return True
        return self._crcs.get(index) == self._crc(index)

    def verify_all(self) -> List[int]:
        """Page indices whose contents fail their sidecar (a scrub)."""
        if not self.integrity:
            return []
        return [idx for idx in sorted(self._pages) if not self.verify_page(idx)]

    def flip_bit(self, page_index: int, bit_index: int) -> None:
        """Silently flip one bit of an allocated page — the corruption
        model's entry point.  Deliberately does NOT update the sidecar:
        that mismatch is what detection detects."""
        page = self._pages.get(page_index)
        if page is None:
            raise FileSystemError(f"cannot corrupt unallocated page {page_index}")
        nbits = self.page_size * 8
        bit = bit_index % nbits
        page[bit >> 3] ^= np.uint8(1 << (bit & 7))

    # -- repair (fsck) ------------------------------------------------------
    def zero_page(self, index: int) -> None:
        """Repair a page by dropping it back to a hole."""
        self._pages.pop(index, None)
        self._crcs.pop(index, None)

    def accept_page(self, index: int) -> None:
        """Repair a page by blessing its current bytes (recompute CRC)."""
        if index in self._pages and self.integrity:
            self._crcs[index] = self._crc(index)

    def rewrite_page(self, index: int, data: np.ndarray) -> None:
        """Repair a page by rewriting it from a known-good copy."""
        data = np.asarray(data, dtype=np.uint8)
        if data.size != self.page_size:
            raise FileSystemError(
                f"rewrite_page needs exactly {self.page_size} bytes, got {data.size}"
            )
        self._page(index)[:] = data
        if self.integrity:
            self._crcs[index] = self._crc(index)

    # -- data plane ---------------------------------------------------------
    def write(self, offset: int, data: np.ndarray) -> None:
        """Write ``data`` (uint8) at ``offset``, extending the file."""
        if offset < 0:
            raise FileSystemError(f"negative file offset {offset}")
        data = np.asarray(data, dtype=np.uint8)
        n = int(data.size)
        if n == 0:
            return
        ps = self.page_size
        pos = offset
        written = 0
        touched = [] if self.integrity else None
        while written < n:
            pidx, poff = divmod(pos, ps)
            chunk = min(n - written, ps - poff)
            self._page(pidx)[poff : poff + chunk] = data[written : written + chunk]
            if touched is not None:
                touched.append(pidx)
            written += chunk
            pos += chunk
        self.size = max(self.size, offset + n)
        if touched is not None:
            for pidx in touched:
                self._crcs[pidx] = self._crc(pidx)

    def read(self, offset: int, nbytes: int, *, verify: bool = True) -> np.ndarray:
        """Read ``nbytes`` from ``offset``; holes and EOF read as zero.

        With integrity enabled (and ``verify`` true), every allocated
        page touched is checked against its sidecar first; a mismatch
        raises :class:`~repro.errors.IntegrityError`.  ``verify=False``
        is for out-of-band access (verification oracles, fsck itself)."""
        if offset < 0 or nbytes < 0:
            raise FileSystemError(f"invalid read range ({offset}, {nbytes})")
        out = np.zeros(nbytes, dtype=np.uint8)
        if nbytes == 0:
            return out
        check = self.integrity and verify
        ps = self.page_size
        pos = offset
        got = 0
        while got < nbytes:
            pidx, poff = divmod(pos, ps)
            chunk = min(nbytes - got, ps - poff)
            page = self._pages.get(pidx)
            if page is not None:
                if check and not self.verify_page(pidx):
                    raise IntegrityError("page-read", pidx)
                out[got : got + chunk] = page[poff : poff + chunk]
            got += chunk
            pos += chunk
        return out

    def truncate(self, size: int) -> None:
        """Set the logical file size, POSIX-style.

        Shrinking trims whole pages past the new end and zeroes the
        tail of a partially covered boundary page (those bytes must
        read as zero if the file regrows); growing just extends the
        logical size — the new bytes are a hole."""
        if size < 0:
            raise FileSystemError(f"negative truncate size {size}")
        if size < self.size:
            ps = self.page_size
            boundary, keep = divmod(size, ps)
            for idx in [p for p in self._pages if p > boundary or (p == boundary and keep == 0)]:
                del self._pages[idx]
                self._crcs.pop(idx, None)
            if keep and boundary in self._pages:
                self._pages[boundary][keep:] = 0
                if self.integrity:
                    self._crcs[boundary] = self._crc(boundary)
        self.size = size

    @property
    def allocated_pages(self) -> int:
        return len(self._pages)

    def checksum(self) -> int:
        """Cheap content fingerprint for tests.

        All-zero pages are skipped when folding: an explicitly
        allocated page of zeros is logically identical to a hole, and
        two stores with identical logical bytes must hash identically
        regardless of allocation history."""
        acc = self.size
        for idx in sorted(self._pages):
            page = self._pages[idx]
            if not page.any():
                continue
            acc = (acc * 1000003 + idx) & 0xFFFFFFFFFFFF
            acc = (acc + int(page.astype(np.uint64).sum())) & 0xFFFFFFFFFFFF
        return acc
