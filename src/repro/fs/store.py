"""Sparse paged byte store — the authoritative file contents.

Pages are allocated lazily; unwritten bytes read back as zero, like a
POSIX sparse file.  The store is pure data: no cost accounting here.

With integrity enabled (:meth:`PageStore.enable_integrity`, gated by
the ``integrity_pages`` hint upstream) every allocated page carries a
CRC32 sidecar word: writes update it, reads verify it, and a mismatch
raises :class:`~repro.errors.IntegrityError` carrying the page index —
silent corruption (e.g. the fault model's ``bit_flip_page`` events,
which mutate page bytes *without* touching the sidecar) becomes a loud,
typed failure at the first read.  :meth:`verify_all` is the offline
scrub used by ``repro fsck``.

:class:`ReplicatedStore` (the ``replication_factor`` hint) composes
``r`` per-OST :class:`PageStore` shards behind the same interface:
each stripe's pages live on ``r`` distinct OSTs, writes land on every
*live* replica (missed ones are tracked as stale byte runs for later
re-replication), and reads serve from the first fresh replica — with
integrity-driven failover to the next when a shard's page fails its
sidecar.  Health/quorum policy stays in
:class:`~repro.fs.filesystem.SimFileSystem`; the store only tracks
bytes and staleness.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import FileSystemError, IntegrityError
from repro.fs.runs import ByteRuns

__all__ = ["PageStore", "ReplicatedStore"]


class PageStore:
    """A sparse file as a dict of fixed-size numpy pages."""

    __slots__ = ("page_size", "_pages", "size", "integrity", "_crcs")

    def __init__(self, page_size: int, *, integrity: bool = False) -> None:
        if page_size <= 0:
            raise FileSystemError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        self._pages: Dict[int, np.ndarray] = {}
        #: Logical file size (highest byte written + 1).
        self.size = 0
        #: When True, a CRC32 sidecar per page is maintained and
        #: verified on read.
        self.integrity = integrity
        self._crcs: Dict[int, int] = {}

    def _page(self, index: int) -> np.ndarray:
        page = self._pages.get(index)
        if page is None:
            page = np.zeros(self.page_size, dtype=np.uint8)
            self._pages[index] = page
        return page

    # -- checksum sidecar ---------------------------------------------------
    def _crc(self, index: int) -> int:
        return zlib.crc32(self._pages[index].tobytes()) & 0xFFFFFFFF

    def enable_integrity(self) -> None:
        """Turn on the CRC sidecar, fingerprinting any existing pages.

        Idempotent; existing content is trusted as-is (the sidecar
        protects from here on)."""
        if self.integrity:
            return
        self.integrity = True
        for idx in self._pages:
            self._crcs[idx] = self._crc(idx)

    def verify_page(self, index: int) -> bool:
        """True when the page's bytes still match its sidecar (holes
        are vacuously good)."""
        if index not in self._pages:
            return True
        return self._crcs.get(index) == self._crc(index)

    def verify_all(self) -> List[int]:
        """Page indices whose contents fail their sidecar (a scrub)."""
        if not self.integrity:
            return []
        return [idx for idx in sorted(self._pages) if not self.verify_page(idx)]

    def flip_bit(self, page_index: int, bit_index: int) -> None:
        """Silently flip one bit of an allocated page — the corruption
        model's entry point.  Deliberately does NOT update the sidecar:
        that mismatch is what detection detects."""
        page = self._pages.get(page_index)
        if page is None:
            raise FileSystemError(f"cannot corrupt unallocated page {page_index}")
        nbits = self.page_size * 8
        bit = bit_index % nbits
        page[bit >> 3] ^= np.uint8(1 << (bit & 7))

    # -- repair (fsck) ------------------------------------------------------
    def zero_page(self, index: int) -> None:
        """Repair a page by dropping it back to a hole."""
        self._pages.pop(index, None)
        self._crcs.pop(index, None)

    def accept_page(self, index: int) -> None:
        """Repair a page by blessing its current bytes (recompute CRC)."""
        if index in self._pages and self.integrity:
            self._crcs[index] = self._crc(index)

    def rewrite_page(self, index: int, data: np.ndarray) -> None:
        """Repair a page by rewriting it from a known-good copy."""
        data = np.asarray(data, dtype=np.uint8)
        if data.size != self.page_size:
            raise FileSystemError(
                f"rewrite_page needs exactly {self.page_size} bytes, got {data.size}"
            )
        self._page(index)[:] = data
        if self.integrity:
            self._crcs[index] = self._crc(index)

    # -- data plane ---------------------------------------------------------
    def write(self, offset: int, data: np.ndarray) -> None:
        """Write ``data`` (uint8) at ``offset``, extending the file."""
        if offset < 0:
            raise FileSystemError(f"negative file offset {offset}")
        data = np.asarray(data, dtype=np.uint8)
        n = int(data.size)
        if n == 0:
            return
        ps = self.page_size
        pos = offset
        written = 0
        touched = [] if self.integrity else None
        while written < n:
            pidx, poff = divmod(pos, ps)
            chunk = min(n - written, ps - poff)
            self._page(pidx)[poff : poff + chunk] = data[written : written + chunk]
            if touched is not None:
                touched.append(pidx)
            written += chunk
            pos += chunk
        self.size = max(self.size, offset + n)
        if touched is not None:
            for pidx in touched:
                self._crcs[pidx] = self._crc(pidx)

    def read(self, offset: int, nbytes: int, *, verify: bool = True) -> np.ndarray:
        """Read ``nbytes`` from ``offset``; holes and EOF read as zero.

        With integrity enabled (and ``verify`` true), every allocated
        page touched is checked against its sidecar first; a mismatch
        raises :class:`~repro.errors.IntegrityError`.  ``verify=False``
        is for out-of-band access (verification oracles, fsck itself)."""
        if offset < 0 or nbytes < 0:
            raise FileSystemError(f"invalid read range ({offset}, {nbytes})")
        out = np.zeros(nbytes, dtype=np.uint8)
        if nbytes == 0:
            return out
        check = self.integrity and verify
        ps = self.page_size
        pos = offset
        got = 0
        while got < nbytes:
            pidx, poff = divmod(pos, ps)
            chunk = min(nbytes - got, ps - poff)
            page = self._pages.get(pidx)
            if page is not None:
                if check and not self.verify_page(pidx):
                    raise IntegrityError("page-read", pidx)
                out[got : got + chunk] = page[poff : poff + chunk]
            got += chunk
            pos += chunk
        return out

    def truncate(self, size: int) -> None:
        """Set the logical file size, POSIX-style.

        Shrinking trims whole pages past the new end and zeroes the
        tail of a partially covered boundary page (those bytes must
        read as zero if the file regrows); growing just extends the
        logical size — the new bytes are a hole."""
        if size < 0:
            raise FileSystemError(f"negative truncate size {size}")
        if size < self.size:
            ps = self.page_size
            boundary, keep = divmod(size, ps)
            for idx in [p for p in self._pages if p > boundary or (p == boundary and keep == 0)]:
                del self._pages[idx]
                self._crcs.pop(idx, None)
            if keep and boundary in self._pages:
                self._pages[boundary][keep:] = 0
                if self.integrity:
                    self._crcs[boundary] = self._crc(boundary)
        self.size = size

    @property
    def allocated_pages(self) -> int:
        return len(self._pages)

    def checksum(self) -> int:
        """Cheap content fingerprint for tests.

        All-zero pages are skipped when folding: an explicitly
        allocated page of zeros is logically identical to a hole, and
        two stores with identical logical bytes must hash identically
        regardless of allocation history."""
        acc = self.size
        for idx in sorted(self._pages):
            page = self._pages[idx]
            if not page.any():
                continue
            acc = (acc * 1000003 + idx) & 0xFFFFFFFFFFFF
            acc = (acc + int(page.astype(np.uint64).sum())) & 0xFFFFFFFFFFFF
        return acc


class ReplicatedStore:
    """``r`` per-OST page-store shards behind the PageStore interface.

    Placement: the pages of stripe ``s`` replicate to OSTs
    ``(s + k) % num_osts`` for ``k < factor`` — the primary is exactly
    where the unreplicated striping formula puts the stripe, so with
    ``factor=1`` the layout degenerates to the seed's.

    The store is *mechanism only*: callers (the file system) decide
    which OSTs are up and whether a write has quorum; the store applies
    a write to the given live subset and records the missed replicas'
    byte ranges as **stale** so reads skip them and
    :meth:`rereplicate` can heal them later.  Each shard stores pages
    at their *logical* file offsets (sparse, so no address translation
    is needed); staleness is the only divergence tracked.
    """

    __slots__ = ("page_size", "stripe_size", "num_osts", "factor", "shards", "stale", "size")

    def __init__(
        self,
        page_size: int,
        stripe_size: int,
        num_osts: int,
        factor: int,
        *,
        integrity: bool = False,
    ) -> None:
        if stripe_size <= 0 or stripe_size % page_size:
            raise FileSystemError(
                f"stripe size must be a positive multiple of page size, got {stripe_size}"
            )
        if not 1 < factor <= num_osts:
            raise FileSystemError(
                f"replication factor must be in (1, num_osts={num_osts}], got {factor}"
            )
        self.page_size = page_size
        self.stripe_size = stripe_size
        self.num_osts = num_osts
        self.factor = factor
        self.shards: List[PageStore] = [
            PageStore(page_size, integrity=integrity) for _ in range(num_osts)
        ]
        #: Per-OST byte ranges whose replica on that OST missed a write
        #: (the OST was down) and must not serve reads until healed.
        self.stale: List[ByteRuns] = [ByteRuns() for _ in range(num_osts)]
        self.size = 0

    # -- geometry -----------------------------------------------------------
    @property
    def quorum(self) -> int:
        """Live replicas a write needs to commit (majority)."""
        return self.factor // 2 + 1

    def replicas_of(self, offset: int) -> List[int]:
        """The OSTs holding the stripe containing ``offset``, primary first."""
        stripe = offset // self.stripe_size
        return [(stripe + k) % self.num_osts for k in range(self.factor)]

    def _pieces(self, offset: int, nbytes: int):
        """Split [offset, offset+nbytes) at stripe boundaries: yields
        (piece offset, piece length, replica OSTs)."""
        pos, end = offset, offset + nbytes
        while pos < end:
            chunk = min(end - pos, self.stripe_size - pos % self.stripe_size)
            yield pos, chunk, self.replicas_of(pos)
            pos += chunk

    # -- data plane ---------------------------------------------------------
    def write(self, offset: int, data: np.ndarray, up: Optional[Set[int]] = None) -> None:
        """Write to every live replica; mark missed ones stale.

        ``up=None`` means all OSTs are live.  Quorum enforcement is the
        caller's job — by the time this runs the write is committed."""
        data = np.asarray(data, dtype=np.uint8)
        n = int(data.size)
        if n == 0:
            return
        if offset < 0:
            raise FileSystemError(f"negative file offset {offset}")
        for pos, chunk, osts in self._pieces(offset, n):
            piece = data[pos - offset : pos - offset + chunk]
            for ost in osts:
                if up is None or ost in up:
                    self.shards[ost].write(pos, piece)
                    self.stale[ost].remove(pos, pos + chunk)
                else:
                    self.stale[ost].add(pos, pos + chunk)
        self.size = max(self.size, offset + n)

    def fresh_replicas(self, offset: int, nbytes: int, up: Optional[Set[int]] = None) -> List[int]:
        """Live replicas of the (single-stripe) range with no stale bytes
        in it, in placement (primary-first) order."""
        return [
            ost
            for ost in self.replicas_of(offset)
            if (up is None or ost in up) and not self.stale[ost].overlaps(offset, offset + nbytes)
        ]

    def readable(self, offset: int, nbytes: int, up: Optional[Set[int]] = None) -> bool:
        """True when every piece of the range has a live fresh replica."""
        return all(
            self.fresh_replicas(pos, chunk, up) for pos, chunk, _ in self._pieces(offset, nbytes)
        )

    def read(
        self,
        offset: int,
        nbytes: int,
        *,
        verify: bool = True,
        up: Optional[Set[int]] = None,
        served: Optional[List[Tuple[int, int]]] = None,
        failovers: Optional[List[int]] = None,
    ) -> np.ndarray:
        """Read from the first live *fresh* replica of each piece.

        A replica whose page fails its integrity sidecar is skipped in
        favour of the next fresh candidate (recorded in ``failovers``
        as the bad OST); only when every candidate is corrupt does the
        :class:`~repro.errors.IntegrityError` propagate.  ``served``
        collects ``(ost, nbytes)`` per piece actually read, so the
        caller can charge service time to the OSTs that did the work.
        Raises when a piece has no live fresh replica — callers should
        pre-check with :meth:`readable` to raise a typed error with
        more context."""
        if offset < 0 or nbytes < 0:
            raise FileSystemError(f"invalid read range ({offset}, {nbytes})")
        out = np.zeros(nbytes, dtype=np.uint8)
        for pos, chunk, _ in self._pieces(offset, nbytes):
            candidates = self.fresh_replicas(pos, chunk, up)
            if not candidates:
                raise FileSystemError(
                    f"no live fresh replica for bytes [{pos}, {pos + chunk})"
                )
            error: Optional[IntegrityError] = None
            for ost in candidates:
                try:
                    piece = self.shards[ost].read(pos, chunk, verify=verify)
                except IntegrityError as exc:
                    if error is None:
                        error = exc
                    if failovers is not None:
                        failovers.append(ost)
                    continue
                out[pos - offset : pos - offset + chunk] = piece
                if served is not None:
                    served.append((ost, chunk))
                break
            else:
                raise error  # every fresh replica corrupt
        return out

    def truncate(self, size: int) -> None:
        if size < 0:
            raise FileSystemError(f"negative truncate size {size}")
        for shard in self.shards:
            shard.truncate(size)
        for runs in self.stale:
            end = max((hi for _, hi in runs), default=0)
            if end > size:
                runs.remove(size, end)
        self.size = size

    # -- healing ------------------------------------------------------------
    def stale_bytes(self) -> int:
        """Total bytes awaiting re-replication across all OSTs."""
        return sum(runs.total for runs in self.stale)

    def rereplicate(self, up: Optional[Set[int]] = None) -> int:
        """Rebuild stale replicas on live OSTs from fresh copies.

        Returns the number of bytes healed.  Ranges with no live fresh
        source are left stale (healed on a later pass once a holder
        recovers)."""
        healed = 0
        verify = self.integrity  # never launder corrupt bytes into a
        # freshly-checksummed replica: corrupt sources are skipped (the
        # read fails over) or, with none good, the range stays stale.
        for ost, runs in enumerate(self.stale):
            if up is not None and ost not in up:
                continue
            for lo, hi in list(runs):
                try:
                    data = self.read(lo, hi - lo, verify=verify, up=up)
                except (FileSystemError, IntegrityError):
                    continue
                self.shards[ost].write(lo, data)
                runs.remove(lo, hi)
                healed += hi - lo
        return healed

    # -- integrity / repair (fsck) ------------------------------------------
    @property
    def integrity(self) -> bool:
        return self.shards[0].integrity

    def enable_integrity(self) -> None:
        for shard in self.shards:
            shard.enable_integrity()

    def _holders(self, index: int) -> List[int]:
        """Replica OSTs of page ``index``, primary first."""
        return self.replicas_of(index * self.page_size)

    def verify_page(self, index: int) -> bool:
        return all(self.shards[ost].verify_page(index) for ost in self._holders(index))

    def verify_all(self) -> List[int]:
        bad: Set[int] = set()
        for shard in self.shards:
            bad.update(shard.verify_all())
        return sorted(bad)

    def flip_bit(self, page_index: int, bit_index: int) -> None:
        """Corrupt one replica (the primary shard holding the page) —
        divergence between replicas is exactly what the corruption
        model should produce."""
        for ost in self._holders(page_index):
            if page_index in self.shards[ost]._pages:
                self.shards[ost].flip_bit(page_index, bit_index)
                return
        raise FileSystemError(f"cannot corrupt unallocated page {page_index}")

    def zero_page(self, index: int) -> None:
        for ost in self._holders(index):
            self.shards[ost].zero_page(index)

    def accept_page(self, index: int) -> None:
        for ost in self._holders(index):
            self.shards[ost].accept_page(index)

    def rewrite_page(self, index: int, data: np.ndarray) -> None:
        lo = index * self.page_size
        for ost in self._holders(index):
            self.shards[ost].rewrite_page(index, data)
            self.stale[ost].remove(lo, lo + self.page_size)

    # -- fingerprints -------------------------------------------------------
    @property
    def allocated_pages(self) -> int:
        pages: Set[int] = set()
        for shard in self.shards:
            pages.update(shard._pages)
        return len(pages)

    def checksum(self) -> int:
        """Logical-content fingerprint, identical to an unreplicated
        :meth:`PageStore.checksum` of the same bytes."""
        pages: Set[int] = set()
        for shard in self.shards:
            pages.update(shard._pages)
        ps = self.page_size
        acc = self.size
        for idx in sorted(pages):
            page = self.read(idx * ps, ps, verify=False)
            if not page.any():
                continue
            acc = (acc * 1000003 + idx) & 0xFFFFFFFFFFFF
            acc = (acc + int(page.astype(np.uint64).sum())) & 0xFFFFFFFFFFFF
        return acc
