"""Sparse paged byte store — the authoritative file contents.

Pages are allocated lazily; unwritten bytes read back as zero, like a
POSIX sparse file.  The store is pure data: no cost accounting here.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import FileSystemError

__all__ = ["PageStore"]


class PageStore:
    """A sparse file as a dict of fixed-size numpy pages."""

    __slots__ = ("page_size", "_pages", "size")

    def __init__(self, page_size: int) -> None:
        if page_size <= 0:
            raise FileSystemError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        self._pages: Dict[int, np.ndarray] = {}
        #: Logical file size (highest byte written + 1).
        self.size = 0

    def _page(self, index: int) -> np.ndarray:
        page = self._pages.get(index)
        if page is None:
            page = np.zeros(self.page_size, dtype=np.uint8)
            self._pages[index] = page
        return page

    def write(self, offset: int, data: np.ndarray) -> None:
        """Write ``data`` (uint8) at ``offset``, extending the file."""
        if offset < 0:
            raise FileSystemError(f"negative file offset {offset}")
        data = np.asarray(data, dtype=np.uint8)
        n = int(data.size)
        if n == 0:
            return
        ps = self.page_size
        pos = offset
        written = 0
        while written < n:
            pidx, poff = divmod(pos, ps)
            chunk = min(n - written, ps - poff)
            self._page(pidx)[poff : poff + chunk] = data[written : written + chunk]
            written += chunk
            pos += chunk
        self.size = max(self.size, offset + n)

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        """Read ``nbytes`` from ``offset``; holes and EOF read as zero."""
        if offset < 0 or nbytes < 0:
            raise FileSystemError(f"invalid read range ({offset}, {nbytes})")
        out = np.zeros(nbytes, dtype=np.uint8)
        if nbytes == 0:
            return out
        ps = self.page_size
        pos = offset
        got = 0
        while got < nbytes:
            pidx, poff = divmod(pos, ps)
            chunk = min(nbytes - got, ps - poff)
            page = self._pages.get(pidx)
            if page is not None:
                out[got : got + chunk] = page[poff : poff + chunk]
            got += chunk
            pos += chunk
        return out

    @property
    def allocated_pages(self) -> int:
        return len(self._pages)

    def checksum(self) -> int:
        """Cheap content fingerprint for tests."""
        acc = self.size
        for idx in sorted(self._pages):
            acc = (acc * 1000003 + idx) & 0xFFFFFFFFFFFF
            acc = (acc + int(self._pages[idx].astype(np.uint64).sum())) & 0xFFFFFFFFFFFF
        return acc
