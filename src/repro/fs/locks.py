"""Extent lock manager.

Models a Lustre-style distributed lock manager at a configurable
granularity (pages by default; the Figure 7 experiments use the stripe
size).  State is the current holder of each granule.  A server access
by client ``c`` over a byte range:

* costs nothing extra if ``c`` already holds every granule (the
  locality that file-realm alignment and PFRs buy);
* otherwise pays one lock RPC, plus a revocation penalty per granule
  currently held by a *different* client (the ping-pong misaligned
  realm boundaries cause).

The manager reports which (client, granule-range) pairs were revoked so
coherent caches can flush/invalidate the victim's pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import FileSystemError

__all__ = ["LockCharge", "ExtentLockManager"]


@dataclass
class LockCharge:
    """Outcome of a lock acquisition."""

    #: Number of lock-manager RPCs (0 when the grant already covered).
    rpcs: int
    #: Granules taken away from other clients.
    revoked_granules: int
    #: (victim client, granule_lo, granule_hi) byte ranges revoked.
    revoked_ranges: List[Tuple[int, int, int]]

    @property
    def hit(self) -> bool:
        """True when the access was fully covered by an existing grant."""
        return self.rpcs == 0


class ExtentLockManager:
    """Per-file granule->holder map with transfer accounting."""

    __slots__ = ("granularity", "_holder", "stats_rpcs", "stats_revocations")

    def __init__(self, granularity: int) -> None:
        if granularity <= 0:
            raise FileSystemError(f"lock granularity must be positive, got {granularity}")
        self.granularity = granularity
        self._holder: Dict[int, int] = {}
        self.stats_rpcs = 0
        self.stats_revocations = 0

    def _granules(self, lo: int, hi: int) -> range:
        if lo < 0 or hi < lo:
            raise FileSystemError(f"invalid lock range [{lo}, {hi})")
        if hi == lo:
            return range(0)
        g = self.granularity
        return range(lo // g, (hi - 1) // g + 1)

    def acquire(
        self, client: int, lo: int, hi: int, *, faults=None, now: float = 0.0
    ) -> LockCharge:
        """Ensure ``client`` holds every granule of [lo, hi).

        ``faults``/``now`` feed the lock-storm fault model: when an
        installed :class:`repro.faults.FaultInjector` declares a storm
        active at virtual time ``now``, an acquisition that needs an
        RPC pays extra round-trips (the manager timing out and
        re-enqueueing the request).  Covered grants stay free — a storm
        punishes lock traffic, not lock locality."""
        granules = self._granules(lo, hi)
        missing = [g for g in granules if self._holder.get(g) != client]
        if not missing:
            return LockCharge(rpcs=0, revoked_granules=0, revoked_ranges=[])
        rpcs = 1
        if faults is not None:
            rpcs += faults.lock_storm_rpcs(client, now)
        revoked: List[Tuple[int, int, int]] = []
        n_revoked = 0
        g_size = self.granularity
        for g in missing:
            victim = self._holder.get(g)
            if victim is not None and victim != client:
                n_revoked += 1
                # Merge adjacent revocations from the same victim.
                if revoked and revoked[-1][0] == victim and revoked[-1][2] == g * g_size:
                    revoked[-1] = (victim, revoked[-1][1], (g + 1) * g_size)
                else:
                    revoked.append((victim, g * g_size, (g + 1) * g_size))
            self._holder[g] = client
        self.stats_rpcs += rpcs
        self.stats_revocations += n_revoked
        return LockCharge(rpcs=rpcs, revoked_granules=n_revoked, revoked_ranges=revoked)

    def holder_of(self, offset: int) -> int | None:
        """Current holder of the granule containing ``offset`` (tests)."""
        return self._holder.get(offset // self.granularity)

    def holds(self, client: int, lo: int, hi: int) -> bool:
        """True when ``client`` currently holds every granule of [lo, hi)."""
        return all(self._holder.get(g) == client for g in self._granules(lo, hi))

    def release_all(self, client: int) -> int:
        """Drop every granule held by ``client``; returns the count."""
        mine = [g for g, c in self._holder.items() if c == client]
        for g in mine:
            del self._holder[g]
        return len(mine)
