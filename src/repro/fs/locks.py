"""Extent lock manager.

Models a Lustre-style distributed lock manager at a configurable
granularity (pages by default; the Figure 7 experiments use the stripe
size).  State is the current holder of each granule.  A server access
by client ``c`` over a byte range:

* costs nothing extra if ``c`` already holds every granule (the
  locality that file-realm alignment and PFRs buy);
* otherwise pays one lock RPC, plus a revocation penalty per granule
  currently held by a *different* client (the ping-pong misaligned
  realm boundaries cause).

The manager reports which (client, granule-range) pairs were revoked so
coherent caches can flush/invalidate the victim's pages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import FileSystemError

__all__ = ["ClientId", "LockCharge", "ExtentLockManager"]

#: A lock-manager client identity.  Single-session runs use the bare
#: world rank (an ``int``); multi-tenant runs use a ``(tenant, rank)``
#: tuple so two tenants' rank 0 never alias in the holder map, the pin
#: table, or — critically — the waits-for graph used for deadlock
#: detection.  Any hashable works; equality is identity of the client.
ClientId = Hashable


@dataclass
class LockCharge:
    """Outcome of a lock acquisition."""

    #: Number of lock-manager RPCs (0 when the grant already covered).
    rpcs: int
    #: Granules taken away from other clients.
    revoked_granules: int
    #: (victim client, granule_lo, granule_hi) byte ranges revoked.
    revoked_ranges: List[Tuple[ClientId, int, int]]

    @property
    def hit(self) -> bool:
        """True when the access was fully covered by an existing grant."""
        return self.rpcs == 0


class ExtentLockManager:
    """Per-file granule->holder map with transfer accounting.

    Revocation is normally instant (a cost, not a wait).  The
    ``lock_hold`` fault model breaks that: a *pinned* granule's holder
    has a wedged lock-callback thread and cannot service revocations,
    so a conflicting acquirer must wait — until the holder recovers
    (pin expiry), the liveness layer's lease reclaims the lock early,
    or a waits-for cycle is broken with a typed
    :class:`~repro.errors.LockDeadlock`.  The waits-for graph and pin
    table live here; the *waiting* itself (virtual-time blocking) is
    done by :class:`~repro.fs.filesystem.SimFileSystem`, which owns a
    rank context."""

    __slots__ = (
        "granularity",
        "_holder",
        "_pins",
        "_waiting",
        "last_pin_release",
        "stats_rpcs",
        "stats_revocations",
    )

    def __init__(self, granularity: int) -> None:
        if granularity <= 0:
            raise FileSystemError(f"lock granularity must be positive, got {granularity}")
        self.granularity = granularity
        self._holder: Dict[int, ClientId] = {}
        #: granule -> (holder, t_pinned, expires): the holder's callback
        #: thread is wedged until ``expires`` (fault-injected only).
        self._pins: Dict[int, Tuple[ClientId, float, float]] = {}
        #: waiter client -> holder client it is blocked on (waits-for).
        self._waiting: Dict[ClientId, ClientId] = {}
        #: Virtual time of the most recent voluntary pin release — the
        #: causal wake time for a waiter whose holder unlocked early.
        self.last_pin_release = 0.0
        self.stats_rpcs = 0
        self.stats_revocations = 0

    def _granules(self, lo: int, hi: int) -> range:
        if lo < 0 or hi < lo:
            raise FileSystemError(f"invalid lock range [{lo}, {hi})")
        if hi == lo:
            return range(0)
        g = self.granularity
        return range(lo // g, (hi - 1) // g + 1)

    def acquire(
        self, client: ClientId, lo: int, hi: int, *, faults=None, now: float = 0.0
    ) -> LockCharge:
        """Ensure ``client`` holds every granule of [lo, hi).

        ``faults``/``now`` feed the lock-storm fault model: when an
        installed :class:`repro.faults.FaultInjector` declares a storm
        active at virtual time ``now``, an acquisition that needs an
        RPC pays extra round-trips (the manager timing out and
        re-enqueueing the request).  Covered grants stay free — a storm
        punishes lock traffic, not lock locality."""
        granules = self._granules(lo, hi)
        missing = [g for g in granules if self._holder.get(g) != client]
        if not missing:
            return LockCharge(rpcs=0, revoked_granules=0, revoked_ranges=[])
        rpcs = 1
        if faults is not None:
            rpcs += faults.lock_storm_rpcs(client, now)
        revoked: List[Tuple[int, int, int]] = []
        n_revoked = 0
        g_size = self.granularity
        for g in missing:
            victim = self._holder.get(g)
            if victim is not None and victim != client:
                n_revoked += 1
                # Merge adjacent revocations from the same victim.
                if revoked and revoked[-1][0] == victim and revoked[-1][2] == g * g_size:
                    revoked[-1] = (victim, revoked[-1][1], (g + 1) * g_size)
                else:
                    revoked.append((victim, g * g_size, (g + 1) * g_size))
            self._holder[g] = client
        self.stats_rpcs += rpcs
        self.stats_revocations += n_revoked
        return LockCharge(rpcs=rpcs, revoked_granules=n_revoked, revoked_ranges=revoked)

    def holder_of(self, offset: int) -> Optional[ClientId]:
        """Current holder of the granule containing ``offset`` (tests)."""
        return self._holder.get(offset // self.granularity)

    def holds(self, client: ClientId, lo: int, hi: int) -> bool:
        """True when ``client`` currently holds every granule of [lo, hi)."""
        return all(self._holder.get(g) == client for g in self._granules(lo, hi))

    def release_all(self, client: ClientId, now: float = 0.0) -> int:
        """Drop every granule held by ``client``; returns the count.

        Also drops the client's pins (a closing client's callback
        thread is gone with it) and its waits-for edge."""
        mine = [g for g, c in self._holder.items() if c == client]
        for g in mine:
            del self._holder[g]
        self.release_pins(client, now)
        self._waiting.pop(client, None)
        return len(mine)

    # -- pins (the lock_hold fault model) -------------------------------
    @property
    def pinned(self) -> bool:
        """Cheap fast-path guard: any pin outstanding at all?"""
        return bool(self._pins)

    def pin_range(
        self, client: ClientId, lo: int, hi: int, now: float, expires: float
    ) -> int:
        """Pin every [lo, hi) granule ``client`` holds until ``expires``.

        Models the holder's lock-callback thread wedging *after* the
        grant: the holder keeps computing (and may itself wait on other
        pins — that is what makes genuine deadlock cycles possible),
        but nobody can revoke these granules until the pin clears.
        Returns the number of granules pinned."""
        n = 0
        for g in self._granules(lo, hi):
            if self._holder.get(g) == client:
                self._pins[g] = (client, now, expires)
                n += 1
        return n

    def release_pins(self, client: ClientId, now: float = 0.0) -> int:
        """Drop every pin held by ``client``; returns the count."""
        mine = [g for g, pin in self._pins.items() if pin[0] == client]
        for g in mine:
            del self._pins[g]
        if mine:
            self.last_pin_release = max(self.last_pin_release, now)
        return len(mine)

    def blocking_pin(
        self, client: ClientId, lo: int, hi: int
    ) -> Optional[Tuple[ClientId, float, float]]:
        """The first pin in [lo, hi) held by *another* client, or None.

        A client's own pins never block it — the wedged thread only
        fails to service revocations from others."""
        for g in self._granules(lo, hi):
            pin = self._pins.get(g)
            if pin is not None and pin[0] != client:
                return pin
        return None

    def reclaim_pins(self, lo: int, hi: int, now: float, lease: float = math.inf) -> int:
        """Clear expired pins in [lo, hi); returns lease *reclaims*.

        A pin is cleared once ``now`` reaches its natural expiry (the
        holder's callback thread recovered) or ``t_pinned + lease``
        (the lock server's lease ran out and it revoked unilaterally).
        Only the latter counts toward the returned reclaim count."""
        reclaimed = 0
        for g in list(self._granules(lo, hi)):
            pin = self._pins.get(g)
            if pin is None:
                continue
            holder, t_pinned, expires = pin
            if now >= expires:
                del self._pins[g]
            elif now >= t_pinned + lease:
                del self._pins[g]
                reclaimed += 1
        return reclaimed

    # -- waits-for graph (deadlock detection) ---------------------------
    def note_wait(self, waiter: ClientId, holder: ClientId) -> None:
        """Record that ``waiter`` is blocked on a pin held by ``holder``."""
        self._waiting[waiter] = holder

    def clear_wait(self, waiter: ClientId) -> None:
        self._waiting.pop(waiter, None)

    def find_cycle(self, start: ClientId) -> Optional[Tuple[ClientId, ...]]:
        """The waits-for cycle through ``start``, or None.

        Walks the single outgoing edge per waiter; a client blocked on
        a pin whose holder is (transitively) blocked on one of *its*
        pins can never make progress without intervention."""
        path = [start]
        seen = {start}
        cur = start
        while True:
            nxt = self._waiting.get(cur)
            if nxt is None:
                return None
            if nxt == start:
                return tuple(path)
            if nxt in seen:
                return None  # a cycle exists, but start is not on it
            seen.add(nxt)
            path.append(nxt)
            cur = nxt
