"""HPIO-style workload generation (§6.2) and the PFR time-series
pattern (Figure 6).

HPIO (Ching et al., IPDPS 2006) characterizes accesses by region size,
region count, and region spacing, with independently contiguous or
non-contiguous memory and file sides.  :mod:`~repro.hpio.patterns`
builds those datatypes — in both the *succinct* form (one pair per
filetype tile, skipping-friendly) and the *enumerated* form (every pair
spelled out, Figure 4's ``vect`` runs).

:mod:`~repro.hpio.timeseries` builds the multi-variable time-step
pattern of Figure 6: all time slices of a data point stored together,
one interleaved collective write per time step.
"""

from repro.hpio.patterns import HPIOPattern
from repro.hpio.timeseries import TimeSeriesPattern
from repro.hpio.verify import expected_file_bytes, fill_pattern, verify_write

__all__ = [
    "HPIOPattern",
    "TimeSeriesPattern",
    "expected_file_bytes",
    "fill_pattern",
    "verify_write",
]
