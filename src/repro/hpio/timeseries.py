"""The Figure 6 access pattern: multi-variable time-series data points.

File layout: ``points`` data-point blocks; each block holds every time
step of that point back to back (``timesteps`` slots of
``elems_per_point * element_size`` bytes).  One collective write per
time step: step ``t`` touches slot ``t`` of *every* point block, and
within a slot the processes interleave elements round-robin (element
``e`` belongs to process ``e % nprocs``) — "four processes access an
element each in every data point".

Note the aggregate access region of every time step spans essentially
the whole file (the slots are strided through all point blocks), which
is why non-persistent realms move only slightly between steps yet still
break cache ownership.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datatypes.base import BYTE, Datatype
from repro.datatypes.constructors import contiguous, hindexed, resized
from repro.errors import CollectiveIOError

__all__ = ["TimeSeriesPattern"]


@dataclass(frozen=True)
class TimeSeriesPattern:
    """Figure 6/7 workload configuration (paper defaults)."""

    nprocs: int
    element_size: int = 32
    elems_per_point: int = 100
    points: int = 2048
    timesteps: int = 32

    def __post_init__(self) -> None:
        if min(self.nprocs, self.element_size, self.elems_per_point, self.points, self.timesteps) <= 0:
            raise CollectiveIOError("all time-series parameters must be positive")

    # -- geometry ---------------------------------------------------------
    @property
    def slot_bytes(self) -> int:
        """One time slice of one data point."""
        return self.elems_per_point * self.element_size

    @property
    def point_bytes(self) -> int:
        """One whole data-point block (all time steps)."""
        return self.slot_bytes * self.timesteps

    @property
    def file_bytes(self) -> int:
        return self.point_bytes * self.points

    @property
    def bytes_per_step(self) -> int:
        """Aggregate data written by one collective call."""
        return self.slot_bytes * self.points

    def my_elements(self, rank: int) -> np.ndarray:
        """Element indices within a slot owned by ``rank``."""
        if not 0 <= rank < self.nprocs:
            raise CollectiveIOError(f"rank {rank} out of range")
        return np.arange(rank, self.elems_per_point, self.nprocs, dtype=np.int64)

    def bytes_per_rank_per_step(self, rank: int) -> int:
        return int(self.my_elements(rank).size) * self.element_size

    # -- datatypes -----------------------------------------------------------
    def filetype(self, rank: int, step: int) -> Datatype:
        """Filetype for one rank at one time step (tiles over points)."""
        if not 0 <= step < self.timesteps:
            raise CollectiveIOError(f"step {step} out of range")
        elems = self.my_elements(rank)
        displs = (step * self.slot_bytes + elems * self.element_size).tolist()
        inner = hindexed([1] * len(displs), displs, contiguous(self.element_size, BYTE))
        return resized(inner, 0, self.point_bytes)

    def memtype(self) -> None:
        """Memory is contiguous (the app packs its elements)."""
        return None

    def step_buffer(self, rank: int, step: int, *, seed: int = 0) -> np.ndarray:
        """Deterministic per-(rank, step) payload for verification."""
        n = self.bytes_per_rank_per_step(rank) * self.points
        base = (rank * 131 + step * 17 + seed) % 251
        return ((np.arange(n, dtype=np.int64) + base) % 251).astype(np.uint8)

    def describe(self) -> str:
        return (
            f"TimeSeries[{self.nprocs} procs, {self.element_size}B elems, "
            f"{self.elems_per_point}/point, {self.points} points, "
            f"{self.timesteps} steps, {self.bytes_per_step / 1e6:.2f} MB/step]"
        )

    def ascii_diagram(self, max_points: int = 3, max_steps: int = 3) -> str:
        """Render the access pattern the way the paper's Figure 6 draws
        it: data points across, time-slice slots down, one digit per
        element showing the owning rank."""
        pts = min(self.points, max_points)
        steps = min(self.timesteps, max_steps)
        owner = [e % self.nprocs for e in range(self.elems_per_point)]
        cell = "".join(f"{o % 10}" for o in owner)
        lines = [
            f"file layout ({pts} of {self.points} data points, "
            f"{steps} of {self.timesteps} time slices; digit = owning rank)"
        ]
        header = "          " + " ".join(f"point {p:<{len(cell) - 6}}" for p in range(pts))
        lines.append(header)
        for t in range(steps):
            lines.append(f"slot t{t:<2}:  " + " ".join(cell for _ in range(pts)))
        lines.append(
            f"(each slot = {self.slot_bytes} B; one collective write per slot row)"
        )
        return "\n".join(lines)
