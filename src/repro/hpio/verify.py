"""Verification helpers: oracle file images for HPIO workloads."""

from __future__ import annotations

import numpy as np

from repro.datatypes.packing import gather_segments, scatter_segments
from repro.datatypes.segments import FlatCursor, data_to_file_segments
from repro.fs.filesystem import SimFileSystem
from repro.hpio.patterns import HPIOPattern

__all__ = ["fill_pattern", "expected_file_bytes", "verify_write"]


def fill_pattern(pattern: HPIOPattern, rank: int, *, seed: int = 0) -> np.ndarray:
    """Deterministic user buffer for one rank (sized for the pattern).

    Data bytes are a per-rank arithmetic sequence; with non-contiguous
    memory, gap bytes are 0xEE so tests can detect gap leakage."""
    size = pattern.buffer_bytes()
    buf = np.full(size, 0xEE, dtype=np.uint8)
    n = pattern.bytes_per_client
    data = ((np.arange(n, dtype=np.int64) * 7 + rank * 13 + seed) % 251).astype(np.uint8)
    memtype = pattern.memtype()
    if memtype is None:
        buf[:n] = data
    else:
        memflat = memtype.flatten()
        batch = data_to_file_segments(memflat, 0, 0, n)
        scatter_segments(buf, batch, data)
    return buf


def expected_file_bytes(pattern: HPIOPattern, *, seed: int = 0) -> np.ndarray:
    """Oracle: the file image a correct collective write must produce."""
    out = np.zeros(pattern.file_extent, dtype=np.uint8)
    for rank in range(pattern.nprocs):
        n = pattern.bytes_per_client
        data = ((np.arange(n, dtype=np.int64) * 7 + rank * 13 + seed) % 251).astype(np.uint8)
        flat = pattern.filetype(rank, "succinct").flatten()
        batch = FlatCursor(flat, pattern.file_disp(rank), n).all_segments()
        scatter_segments(out, batch, data)
    return out


def verify_write(fs: SimFileSystem, path: str, pattern: HPIOPattern, *, seed: int = 0) -> bool:
    """Compare server-side bytes against the oracle image."""
    got = fs.raw_bytes(path, 0, pattern.file_extent)
    return bool(np.array_equal(got, expected_file_bytes(pattern, seed=seed)))


def gather_expected_read(pattern: HPIOPattern, rank: int, file_image: np.ndarray) -> np.ndarray:
    """What a collective read must return for ``rank`` given a file image."""
    flat = pattern.filetype(rank, "succinct").flatten()
    batch = FlatCursor(flat, pattern.file_disp(rank), pattern.bytes_per_client).all_segments()
    return gather_segments(file_image, batch)
