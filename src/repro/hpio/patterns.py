"""HPIO access-pattern builder.

The file layout interleaves clients round-robin over fixed slots: slot
``k`` (of ``region_size + region_spacing`` bytes) belongs to client
``k % nprocs``; each client touches ``region_count`` slots, writing the
first ``region_size`` bytes of each.  Contiguous-file variants pack each
client's regions back to back instead.

Memory is either one contiguous block or regions separated by
``region_spacing`` (HPIO's non-contiguous memory side).

Filetype representations (the Figure 4 axis):

* ``succinct`` — ``resized(contiguous(region), extent=slot*nprocs)``:
  one offset/length pair per tile, so realm routing can skip whole
  tiles ("the very succinct MPI struct datatype");
* ``enumerated`` — the same typemap with all ``region_count`` pairs in
  a single tile ("an MPI vector type explicitly enumerating the entire
  access"), which defeats tile skipping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datatypes.base import BYTE, Datatype, RawFlatType
from repro.datatypes.constructors import contiguous, hvector, resized
from repro.datatypes.flatten import FlatType
from repro.errors import CollectiveIOError

__all__ = ["HPIOPattern"]


@dataclass(frozen=True)
class HPIOPattern:
    """One HPIO workload configuration."""

    nprocs: int
    region_size: int
    region_count: int
    region_spacing: int = 128
    mem_contig: bool = False
    file_contig: bool = False

    def __post_init__(self) -> None:
        if self.nprocs <= 0:
            raise CollectiveIOError("nprocs must be positive")
        if self.region_size <= 0 or self.region_count <= 0:
            raise CollectiveIOError("region size and count must be positive")
        if self.region_spacing < 0:
            raise CollectiveIOError("region spacing must be non-negative")

    # -- geometry -------------------------------------------------------------
    @property
    def slot(self) -> int:
        """One slot: a region plus its trailing spacing."""
        return self.region_size + self.region_spacing

    @property
    def bytes_per_client(self) -> int:
        return self.region_size * self.region_count

    @property
    def total_bytes(self) -> int:
        """Aggregate data bytes across all clients."""
        return self.bytes_per_client * self.nprocs

    @property
    def file_extent(self) -> int:
        """Span of the file region the pattern touches."""
        if self.file_contig:
            return self.total_bytes
        return self.slot * self.nprocs * self.region_count

    # -- file side ----------------------------------------------------------------
    def file_disp(self, rank: int) -> int:
        self._check_rank(rank)
        if self.file_contig:
            return rank * self.bytes_per_client
        return rank * self.slot

    def filetype(self, rank: int, representation: str = "succinct") -> Datatype:
        """The file datatype for ``rank``.

        ``representation``: ``"succinct"`` or ``"enumerated"``."""
        self._check_rank(rank)
        if self.file_contig:
            return contiguous(self.bytes_per_client, BYTE)
        tile_extent = self.slot * self.nprocs
        succinct = resized(contiguous(self.region_size, BYTE), 0, tile_extent)
        if representation == "succinct":
            return succinct
        if representation == "enumerated":
            flat: FlatType = succinct.flatten().replicate(self.region_count)
            return RawFlatType(flat, name="hpio-enumerated")
        raise CollectiveIOError(
            f"unknown filetype representation {representation!r}; "
            "use 'succinct' or 'enumerated'"
        )

    # -- memory side ----------------------------------------------------------------
    def memtype(self) -> Datatype | None:
        """Memory datatype (None means plain contiguous buffer)."""
        if self.mem_contig:
            return None
        return hvector(self.region_count, self.region_size, self.slot, BYTE)

    def buffer_bytes(self) -> int:
        """Required user-buffer size in bytes."""
        if self.mem_contig:
            return self.bytes_per_client
        # Last region needs no trailing spacing.
        return self.slot * (self.region_count - 1) + self.region_size

    # -- helpers ------------------------------------------------------------------
    def region_file_offset(self, rank: int, index: int) -> int:
        """Absolute file offset of the rank's index-th region."""
        self._check_rank(rank)
        if not 0 <= index < self.region_count:
            raise CollectiveIOError(f"region index {index} out of range")
        if self.file_contig:
            return rank * self.bytes_per_client + index * self.region_size
        return (index * self.nprocs + rank) * self.slot

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nprocs:
            raise CollectiveIOError(f"rank {rank} out of range for {self.nprocs} procs")

    def describe(self) -> str:
        mem = "contig" if self.mem_contig else "noncontig"
        fil = "contig" if self.file_contig else "noncontig"
        return (
            f"HPIO[{self.nprocs} procs, region={self.region_size}B x "
            f"{self.region_count}, space={self.region_spacing}B, mem {mem}, file {fil}]"
        )
