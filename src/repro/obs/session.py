"""The :class:`Session` façade — the documented front door to a run.

A session wires together everything a simulated collective-I/O
experiment needs — simulator, shared file system, hints, optional
fault plan, span tracer, and **one** metrics registry — so user code
stops hand-assembling ``Simulator``/``SimFileSystem``/``Communicator``
plumbing and poking scattered stats objects afterwards::

    import numpy as np
    from repro import Session, contiguous, resized, BYTE

    with Session.open("/data", nprocs=4,
                      hints={"coll_impl": "new", "cb_nodes": 2},
                      trace=True) as s:
        region = 64

        def body(ctx, comm, f):
            tile = resized(contiguous(region, BYTE), 0, region * comm.size)
            f.set_view(disp=comm.rank * region, filetype=tile)
            f.write_all(np.full(region, comm.rank, dtype=np.uint8))

        s.run(body)
        print(s.metrics.format("coll."))   # registry, stable names
        print(s.time_by_state())           # MPE-style decomposition
        s.write_trace("out.json")          # Perfetto-loadable JSON

Every component reports into :attr:`Session.registry` — the per-file
server counters and page caches through the file system's registry
reference, the per-rank collective counters / topology / fault
counters through ``Simulator.shared`` (the session pre-installs its
registry there under :data:`~repro.obs.metrics.METRICS_KEY`).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Union

from repro.config import CostModel, DEFAULT_COST_MODEL
from repro.obs.metrics import METRICS_KEY, MetricsRegistry
from repro.obs.schema import validate_chrome_trace

__all__ = ["Session"]


class Session:
    """One experiment: a path, a cluster shape, hints, and observability.

    Parameters
    ----------
    path:
        File path the session's collective file opens (shared by all
        ranks).
    nprocs:
        Ranks in the simulated cluster.
    hints:
        A :class:`~repro.mpi.hints.Hints` instance or a plain mapping
        of hint keys (``{"coll_impl": "new", "cb_nodes": 2}``).
    cost:
        The cluster cost model.
    faults:
        ``None``, a scenario spec string (``"bit-flip:42"``), or a
        :class:`~repro.faults.FaultPlan`; installed into every run.
    trace:
        When true, record structured spans (exportable with
        :meth:`chrome_trace`/:meth:`write_trace`).  Off by default —
        the tracer's fast path is a bare ``yield``.
    lock_granularity:
        Optional lock granularity override for the file system.
    queue_limit:
        Per-OST admission bound (virtual seconds of queueing delay;
        ``None`` = unbounded queues, the seed's behaviour).  See
        ``docs/storage_faults.md``.
    breaker:
        Per-OST circuit breakers: ``True`` (default policy), ``False``
        (off — every retry probes the OST), or a
        :class:`~repro.fs.ostfault.BreakerPolicy`.
    """

    def __init__(
        self,
        path: str = "/data",
        *,
        nprocs: int = 4,
        hints: Union[None, Dict[str, Any], "Hints"] = None,
        cost: CostModel = DEFAULT_COST_MODEL,
        faults: Union[None, str, "FaultPlan"] = None,
        trace: bool = False,
        lock_granularity: Optional[int] = None,
        queue_limit: Optional[float] = None,
        breaker: Any = True,
    ) -> None:
        from repro.fs.filesystem import SimFileSystem
        from repro.mpi.hints import Hints
        from repro.sim.trace import Tracer

        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        self.path = path
        self.nprocs = nprocs
        if hints is None:
            self.hints = Hints()
        elif isinstance(hints, Hints):
            self.hints = hints
        else:
            self.hints = Hints(**dict(hints))
        self.cost = cost
        self.plan = self._resolve_plan(faults)
        #: The session-wide metrics registry every component reports to.
        self.registry = MetricsRegistry()
        #: The session-wide span tracer (shared across runs, so a
        #: second run's spans append after the first's).
        self.tracer = Tracer(enabled=trace)
        self.fs = SimFileSystem(
            cost,
            lock_granularity=lock_granularity,
            registry=self.registry,
            queue_limit=queue_limit,
            breaker=breaker,
        )
        self._injector = None
        self._results: List[Any] = []
        self._t0: Optional[float] = None
        self._t1: Optional[float] = None
        #: The most recent run's simulator (``None`` before any run).
        self.sim = None

    @staticmethod
    def _resolve_plan(faults):
        if faults is None:
            return None
        from repro.faults import FaultPlan, load_scenario

        if isinstance(faults, FaultPlan):
            return faults
        return load_scenario(faults)

    @classmethod
    def open(cls, path: str = "/data", **kwargs: Any) -> "Session":
        """Open a session (the spelling used in the docs)."""
        return cls(path, **kwargs)

    # -- running -------------------------------------------------------------
    def launch(self, main: Callable[..., Any]) -> list:
        """Run ``main(ctx)`` on every rank of a fresh simulator.

        The simulator shares this session's tracer and registry, and
        has the session's fault plan (if any) installed.  Returns the
        per-rank results."""
        from repro.errors import CollectiveAborted, RankFailed
        from repro.sim.engine import Simulator

        sim = Simulator(self.nprocs, tracer=self.tracer)
        sim.shared[METRICS_KEY] = self.registry
        if self.plan is not None:
            self._injector = self.plan.install(sim)
        self.sim = sim
        try:
            self._results = sim.run(main)
        except RankFailed as exc:
            # Quorum loss surfaces as the typed abort, not the engine's
            # generic rank-failure wrapper (docs/crash_recovery.md).
            if isinstance(exc.__cause__, CollectiveAborted):
                raise exc.__cause__ from None
            raise
        return self._results

    def run(self, body: Callable[..., Any]) -> list:
        """Run ``body(ctx, comm, f)`` on every rank against the session file.

        Each rank gets a communicator and an open
        :class:`~repro.core.CollectiveFile` on :attr:`path` with the
        session's hints; the file is closed (collectively) after
        ``body`` returns.  The timed window — :attr:`makespan` — spans
        the post-open barrier to the slowest rank's close, so deferred
        cache flushes are charged to the run that deferred them.
        Returns the per-rank ``body`` results."""
        from repro.core.file_handle import CollectiveFile, sanctioned_construction
        from repro.mpi.comm import Communicator

        from repro.liveness import find_crash_state
        from repro.mpi.agreement import AliveGroup

        def main(ctx):
            comm = Communicator(ctx, self.cost)
            with sanctioned_construction():
                f = CollectiveFile(
                    ctx, comm, self.fs, self.path, hints=self.hints, cost=self.cost
                )
            t0 = comm.allreduce(ctx.now, op=max)
            try:
                out = body(ctx, comm, f)
            finally:
                f.close()
            # The closing timestamp reduction runs over the survivors:
            # ranks dead fail-stop never reach it, and waiting on them
            # would hang the teardown forever.
            crash = find_crash_state(ctx.shared)
            if crash is not None and crash.dead:
                t1 = AliveGroup(comm, frozenset(crash.dead), -3).allreduce(
                    ctx.now, op=max
                )
            else:
                t1 = comm.allreduce(ctx.now, op=max)
            return (out, t0, t1)

        results = self.launch(main)
        # Crashed ranks yield no result; time the run off any survivor.
        finished = [r for r in results if r is not None]
        if finished:
            self._t0 = finished[0][1]
            self._t1 = finished[0][2]
        return [r[0] if r is not None else None for r in results]

    def run_async(self, body: Callable[..., Any]) -> list:
        """Like :meth:`run`, for bodies that use the nonblocking surface.

        ``body(ctx, comm, f)`` may leave ``iwrite_all``/``iread_all``
        requests in flight when it returns; this wrapper completes them
        with :func:`repro.core.request.waitall` before the collective
        close, so the first deferred typed error (``DeadlineExceeded``,
        storage faults, ...) re-raises on the issuing rank exactly as
        the blocking path would have raised it inline.  Returns the
        per-rank ``body`` results."""
        from repro.core.request import waitall

        def wrapped(ctx, comm, f):
            out = body(ctx, comm, f)
            waitall(f.outstanding())
            return out

        return self.run(wrapped)

    def rejoin(self, rank: int, body: Callable[..., Any]) -> Dict[str, Any]:
        """Restart a crashed ``rank`` and replay ``body`` to completion.

        The rank runs alone in a fresh one-process simulation against
        the *same* session file system and registry.  Its communicator
        (:class:`~repro.core.resume.ResumeComm`) keeps the original
        rank/size coordinates so views and plans resolve identically,
        but collectives are one-process identities; each collective
        write is routed through the resumable-write path, which replays
        the journal's epoch records and rewrites only the bytes no
        survivor committed on the rank's behalf.  Returns a dict with
        the rank's ``result`` plus ``rewritten``/``skipped`` byte
        totals.  See ``docs/crash_recovery.md``."""
        from repro.core.file_handle import CollectiveFile, sanctioned_construction
        from repro.core.resume import ResumeComm
        from repro.sim.engine import Simulator

        if self.sim is None or rank not in self.sim.crashed:
            raise ValueError(
                f"rank {rank} did not crash in the last run "
                f"(crashed: {sorted(self.sim.crashed) if self.sim else []})"
            )
        if self._injector is not None:
            self._injector.note_rejoin()

        def replay(ctx):
            comm = ResumeComm(ctx, self.cost, rank, self.nprocs)
            with sanctioned_construction():
                f = CollectiveFile(
                    ctx,
                    comm,
                    self.fs,
                    self.path,
                    hints=self.hints,
                    cost=self.cost,
                    client_id=("rejoin", rank),
                    resume_rank=rank,
                )
            try:
                out = body(ctx, comm, f)
            finally:
                f.close()
            return (out, f.resume_rewritten, f.resume_skipped)

        sim = Simulator(1, tracer=self.tracer)
        sim.shared[METRICS_KEY] = self.registry
        (result,) = sim.run(replay)
        out, rewritten, skipped = result
        if self._injector is not None:
            self._injector.note_resume(rewritten, skipped)
        return {"result": out, "rewritten": rewritten, "skipped": skipped}

    # -- results -------------------------------------------------------------
    @property
    def metrics(self) -> MetricsRegistry:
        """Alias for :attr:`registry` (reads nicely at call sites)."""
        return self.registry

    @property
    def fault_stats(self):
        """The installed injector's :class:`~repro.faults.FaultStats`,
        or ``None`` when the session has no fault plan or has not run."""
        return None if self._injector is None else self._injector.stats

    @property
    def makespan(self) -> float:
        """Virtual seconds from post-open barrier to slowest close of
        the most recent :meth:`run` (0.0 before any run)."""
        if self._t0 is None or self._t1 is None:
            return 0.0
        return max(self._t1 - self._t0, 0.0)

    def time_by_state(self, rank: Optional[int] = None) -> Dict[str, float]:
        """MPE-style per-state virtual-second totals (needs ``trace=True``)."""
        return self.tracer.time_by_state(rank)

    def chrome_trace(self) -> Dict[str, Any]:
        """The recorded spans as a Chrome ``trace_event`` JSON object.

        When the session's fault plan carries OST events, per-OST
        health lanes (``ost:down`` / ``ost:degraded`` spans on their
        own rows) are appended so storage outages line up against the
        compute rows."""
        doc = self.tracer.to_chrome_trace()
        if self.plan is not None:
            from repro.faults.plan import OST_KINDS
            from repro.fs.ostfault import chrome_lane_events

            events = [e for e in self.plan.events if e.kind in OST_KINDS]
            if events:
                horizon = max(
                    (
                        (ev["ts"] + ev.get("dur", 0.0)) / 1e6
                        for ev in doc["traceEvents"]
                        if ev["ph"] == "X"
                    ),
                    default=0.0,
                )
                doc["traceEvents"].extend(
                    chrome_lane_events(events, self.cost.num_osts, horizon)
                )
        return doc

    def write_trace(self, path: str, *, validate: bool = True) -> Dict[str, Any]:
        """Write the Chrome trace JSON to ``path`` and return it.

        Validates against the checked-in schema first (so a broken
        export fails loudly rather than producing a file Perfetto
        rejects)."""
        doc = self.chrome_trace()
        if validate:
            validate_chrome_trace(doc)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
        return doc

    def summary(self) -> str:
        """Human-readable digest: makespan, metrics, retry-budget
        headroom, per-OST breaker states, fault table."""
        lines = [
            f"session {self.path!r}: nprocs={self.nprocs}, "
            f"makespan={self.makespan * 1e3:.3f} ms"
        ]
        lines.append(self.registry.format())
        limit = self.hints["io_retry_budget"]
        if limit:
            lines.append("")
            lines.append(f"retry budget (limit {limit}/rank):")
            for rank in range(self.nprocs):
                used = self.registry.gauge("retry.budget.used", rank).value
                left = self.registry.gauge("retry.budget.remaining", rank).value
                lines.append(f"  rank {rank:<4} used={used} remaining={left}")
        if self.fs._breakers:
            from repro.fs.ostfault import breaker_states

            names = {v: k for k, v in breaker_states().items()}
            lines.append("")
            lines.append("ost breakers:")
            for ost in sorted(self.fs._breakers):
                br = self.fs._breakers[ost]
                lines.append(
                    f"  ost {ost:<4} {names[br.state]:<9} "
                    f"failures={br.failures}"
                )
        if self.fault_stats is not None:
            lines.append("")
            lines.append("faults:")
            for name, value in self.fault_stats.rows():
                lines.append(f"  {name:<26} {value}")
        return "\n".join(lines)

    # -- context manager -----------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session({self.path!r}, nprocs={self.nprocs}, "
            f"trace={self.tracer.enabled})"
        )
