"""Phase-boundary profiling hooks.

A *hook* is any object with ``span_open(rank, state, t, depth, info)``
and ``span_close(event)`` methods, registered on a tracer with
:meth:`~repro.sim.trace.Tracer.add_hook`.  Hooks fire at every phase
boundary (collective call, plan, exchange, flush, lock, journal
commit, failover) even when event recording is off, which is how the
chaos harness and the benchmarks observe phases without poking
implementation internals — and without paying for a full event log.

:class:`PhaseAccumulator` is the standard consumer: it folds closed
spans into per-state totals (optionally per rank) on the fly, so a
harness gets the MPE-style decomposition from a run that never stored
a single event.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.sim.trace import TraceEvent

__all__ = ["PhaseHook", "PhaseAccumulator"]


class PhaseHook:
    """No-op base class documenting the hook interface."""

    def span_open(
        self, rank: int, state: str, t: float, depth: int, info: Dict[str, Any]
    ) -> None:  # pragma: no cover - interface default
        pass

    def span_close(self, event: TraceEvent) -> None:  # pragma: no cover
        pass


class PhaseAccumulator(PhaseHook):
    """Folds closed spans into per-state time and count totals.

    ``prefix`` restricts accounting to matching states (e.g. ``"tp:"``
    for the two-phase phases).  Totals are virtual seconds, summed the
    same way :meth:`Tracer.time_by_state` sums stored events — so a
    harness using this hook with recording disabled reports identical
    numbers to one post-processing a full trace."""

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self.seconds: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self.by_rank: Dict[int, Dict[str, float]] = {}

    def span_close(self, event: TraceEvent) -> None:
        if self.prefix and not event.state.startswith(self.prefix):
            return
        d = event.duration
        self.seconds[event.state] = self.seconds.get(event.state, 0.0) + d
        self.counts[event.state] = self.counts.get(event.state, 0) + 1
        per = self.by_rank.setdefault(event.rank, {})
        per[event.state] = per.get(event.state, 0.0) + d

    def time_by_state(self, rank: Optional[int] = None) -> Dict[str, float]:
        if rank is None:
            return dict(self.seconds)
        return dict(self.by_rank.get(rank, {}))

    def clear(self) -> None:
        self.seconds.clear()
        self.counts.clear()
        self.by_rank.clear()
