"""Chrome-trace schema loading and dependency-free validation.

The trace export's contract is the checked-in JSON Schema at
``docs/trace_schema.json``.  CI's trace-export smoke job (and the
``python -m repro trace`` command itself) validate every emitted file
against it.  The validator below implements exactly the JSON-Schema
subset the checked-in schema uses — ``type``, ``required``,
``properties``, ``additionalProperties``, ``items``, ``enum``,
``minimum`` — so validation needs no third-party package; when the
real ``jsonschema`` library is importable the tests cross-check
against it too.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

__all__ = ["load_trace_schema", "validate_chrome_trace", "SchemaError"]

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


class SchemaError(ValueError):
    """A document does not conform to the trace schema."""


#: Fallback for installs that ship the package without the repo docs.
_EMBEDDED_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["traceEvents", "displayTimeUnit"],
    "additionalProperties": False,
    "properties": {
        "displayTimeUnit": {"enum": ["ms", "ns"]},
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid", "ts"],
                "additionalProperties": False,
                "properties": {
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "ph": {"enum": ["X", "M"]},
                    "pid": {"type": "integer", "minimum": 0},
                    "tid": {"type": "integer", "minimum": 0},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "args": {"type": "object"},
                },
            },
        },
    },
}


def load_trace_schema() -> Dict[str, Any]:
    """The checked-in Chrome-trace schema (``docs/trace_schema.json``)."""
    path = Path(__file__).resolve().parents[3] / "docs" / "trace_schema.json"
    if path.exists():
        return json.loads(path.read_text())
    return _EMBEDDED_SCHEMA


def _validate(doc: Any, schema: Dict[str, Any], where: str, errors: List[str]) -> None:
    typ = schema.get("type")
    if typ is not None:
        expect = _TYPES[typ]
        ok = isinstance(doc, expect)
        if typ in ("integer", "number") and isinstance(doc, bool):
            ok = False
        if typ == "integer" and isinstance(doc, float):
            ok = doc.is_integer()
        if not ok:
            errors.append(f"{where}: expected {typ}, got {type(doc).__name__}")
            return
    if "enum" in schema and doc not in schema["enum"]:
        errors.append(f"{where}: {doc!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(doc, (int, float)):
        if doc < schema["minimum"]:
            errors.append(f"{where}: {doc!r} below minimum {schema['minimum']}")
    if isinstance(doc, dict):
        for req in schema.get("required", ()):
            if req not in doc:
                errors.append(f"{where}: missing required property {req!r}")
        props = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            for key in doc:
                if key not in props:
                    errors.append(f"{where}: unexpected property {key!r}")
        for key, sub in props.items():
            if key in doc:
                _validate(doc[key], sub, f"{where}.{key}", errors)
    if isinstance(doc, list) and "items" in schema:
        for i, item in enumerate(doc):
            _validate(item, schema["items"], f"{where}[{i}]", errors)


def validate_chrome_trace(doc: Any, schema: Dict[str, Any] = None) -> None:
    """Raise :class:`SchemaError` unless ``doc`` matches the schema.

    ``doc`` is the parsed JSON object (as returned by
    :meth:`~repro.sim.trace.Tracer.to_chrome_trace`)."""
    if schema is None:
        schema = load_trace_schema()
    errors: List[str] = []
    _validate(doc, schema, "$", errors)
    if errors:
        head = "; ".join(errors[:5])
        more = f" (+{len(errors) - 5} more)" if len(errors) > 5 else ""
        raise SchemaError(f"trace does not match schema: {head}{more}")
