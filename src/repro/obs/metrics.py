"""Typed metrics instruments and the registry that interns them.

The registry replaces the repo's scattered ad-hoc counters with named,
typed instruments:

* :class:`Counter` — a monotonically *written* number (plain attribute
  adds; nothing is locked because the engine runs one rank thread at a
  time).  Counters are what the old ``stats.x += 1`` fields become.
* :class:`Gauge` — a last-written value (``set``); merges by ``max`` so
  cross-rank/cross-run merging stays associative.
* :class:`Histogram` — power-of-two bucketed distribution with count /
  total / min / max, mergeable bucket-wise.

Instruments are interned under ``(name, key)`` where ``name`` is a
stable dotted metric name (``net.inter.bytes``, ``cache.hits``) and
``key`` is an optional discriminator — a rank for per-rank views, a
path for per-file server counters, a client id for caches.  ``key=None``
is the simulation-global series.

The registry supports:

* **per-key views** (:meth:`MetricsRegistry.view`) that pre-bind the
  key so hot paths pay one dict lookup at setup, not per increment;
* **prefix views** (``registry.view(prefix="tenant.a.")``) — a
  :class:`PrefixRegistry` that namespaces every instrument registered
  through it under the prefix, and *reads back* with the prefix
  stripped, so a tenant's slice of a shared registry looks exactly like
  a private registry (the multi-tenant engine's attribution mechanism);
* **cross-rank / cross-run merge** (:meth:`MetricsRegistry.merge`) —
  counters add, gauges max, histograms add, which makes merging
  associative and commutative (tested) — and the inverse
  :meth:`MetricsRegistry.fold`, which extracts one prefix namespace
  into a standalone registry for cross-tenant comparison;
* **snapshot / diff** so harnesses can meter one phase of a run
  (``before = reg.snapshot(); ...; delta = reg.diff(before)``);
  ``snapshot(prefix=...)`` filters to one namespace without folding.

One registry per simulation is interned in ``Simulator.shared`` under
:data:`METRICS_KEY` (the same pattern as the topology stats);
:class:`~repro.obs.session.Session` supplies its own registry so every
component of a session reports to one coherent, exportable source.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterator, Optional, Tuple

__all__ = [
    "METRICS_KEY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsView",
    "PrefixRegistry",
    "metrics_registry",
]

#: Key of the shared per-simulation :class:`MetricsRegistry`.
METRICS_KEY = "metrics-registry"


class Counter:
    """A named cumulative number.  ``inc`` is a plain attribute add."""

    __slots__ = ("name", "key", "value")

    kind = "counter"

    def __init__(self, name: str, key: Hashable = None) -> None:
        self.name = name
        self.key = key
        self.value = 0

    def inc(self, n=1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, key={self.key!r}, value={self.value})"


class Gauge:
    """A named last-written value.  Merges by ``max`` (associative)."""

    __slots__ = ("name", "key", "value")

    kind = "gauge"

    def __init__(self, name: str, key: Hashable = None) -> None:
        self.name = name
        self.key = key
        self.value = 0

    def set(self, v) -> None:
        self.value = v

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name!r}, key={self.key!r}, value={self.value})"


class Histogram:
    """Power-of-two bucketed distribution of non-negative samples.

    Bucket ``e`` counts samples with ``2**(e-1) < v <= 2**e`` (sample
    0 lands in the dedicated zero bucket).  Exact count / total /
    min / max ride along, so summaries stay exact even though the
    shape is quantized."""

    __slots__ = ("name", "key", "count", "total", "min", "max", "buckets")

    kind = "histogram"

    def __init__(self, name: str, key: Hashable = None) -> None:
        self.name = name
        self.key = key
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: bucket exponent -> sample count ("zero" for v == 0).
        self.buckets: Dict[object, int] = {}

    @staticmethod
    def bucket_of(v) -> object:
        if v <= 0:
            return "zero"
        return math.ceil(math.log2(v))

    def record(self, v) -> None:
        self.count += 1
        self.total += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        b = self.bucket_of(v)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.buckets.clear()

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        for side in ("min", "max"):
            mine, theirs = getattr(self, side), getattr(other, side)
            if theirs is not None:
                pick = min if side == "min" else max
                setattr(self, side, theirs if mine is None else pick(mine, theirs))
        for b, n in other.buckets.items():
            self.buckets[b] = self.buckets.get(b, 0) + n

    def summary(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items(), key=str)},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Histogram({self.name!r}, key={self.key!r}, count={self.count}, "
            f"mean={self.mean:g})"
        )


def _key_text(key: Hashable) -> str:
    if isinstance(key, tuple):
        return ":".join(str(k) for k in key)
    return str(key)


class MetricsRegistry:
    """Interning registry of named, keyed instruments."""

    __slots__ = ("_instruments",)

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, Hashable], object] = {}

    # -- interning -------------------------------------------------------
    def _intern(self, cls, name: str, key: Hashable):
        inst = self._instruments.get((name, key))
        if inst is None:
            inst = cls(name, key)
            self._instruments[(name, key)] = inst
        elif type(inst) is not cls:
            raise TypeError(
                f"metric {name!r} (key {key!r}) already registered as "
                f"{inst.kind}, not {cls.kind}"
            )
        return inst

    def counter(self, name: str, key: Hashable = None) -> Counter:
        return self._intern(Counter, name, key)

    def gauge(self, name: str, key: Hashable = None) -> Gauge:
        return self._intern(Gauge, name, key)

    def histogram(self, name: str, key: Hashable = None) -> Histogram:
        return self._intern(Histogram, name, key)

    def view(
        self, key: Hashable = None, *, prefix: Optional[str] = None
    ) -> "MetricsView | PrefixRegistry":
        """A view with ``key`` pre-bound (per-rank, per-path, ...), or —
        with ``prefix`` — a :class:`PrefixRegistry` namespacing every
        instrument under ``prefix``.  Both at once compose: the key view
        is taken over the prefix registry."""
        if prefix is not None:
            reg = PrefixRegistry(self, prefix)
            return reg if key is None else MetricsView(reg, key)
        return MetricsView(self, key)

    # -- reads -----------------------------------------------------------
    def _iter_items(self) -> Iterator[tuple]:
        """((name, key), instrument) pairs — the single read seam that
        :class:`PrefixRegistry` overrides to filter and strip."""
        return iter(self._instruments.items())

    def __iter__(self) -> Iterator[object]:
        return (inst for _, inst in self._iter_items())

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_items())

    def get(self, name: str, key: Hashable = None):
        """The instrument, or ``None`` if never registered."""
        return self._instruments.get((name, key))

    def value(self, name: str, key: Hashable = None):
        """Current value of a counter/gauge (0 if never registered)."""
        inst = self.get(name, key)
        if inst is None:
            return 0
        if isinstance(inst, Histogram):
            return inst.count
        return inst.value

    def total(self, name: str):
        """Sum of a counter's values across every key (gauges: max)."""
        total = 0
        is_gauge = False
        values = []
        for (n, _), inst in self._iter_items():
            if n != name:
                continue
            if isinstance(inst, Histogram):
                values.append(inst.count)
            elif isinstance(inst, Gauge):
                is_gauge = True
                values.append(inst.value)
            else:
                values.append(inst.value)
        if not values:
            return 0
        return max(values) if is_gauge else sum(values)

    def names(self) -> list:
        return sorted({name for (name, _), _ in self._iter_items()})

    def keys_of(self, name: str) -> list:
        return [k for (n, k), _ in self._iter_items() if n == name]

    # -- snapshot / diff --------------------------------------------------
    def snapshot(self, prefix: str = "") -> Dict[str, object]:
        """Flat ``{"name" | "name[key]": value}`` map of every instrument.

        Histograms snapshot as their summary dict; counters and gauges
        as plain numbers.  Deterministically ordered.  ``prefix``
        filters to instruments whose *name* starts with it (per-tenant
        namespaces can be inspected without folding the registry)."""
        out: Dict[str, object] = {}
        for (name, key), inst in sorted(
            self._iter_items(), key=lambda kv: (kv[0][0], _key_text(kv[0][1]))
        ):
            if prefix and not name.startswith(prefix):
                continue
            label = name if key is None else f"{name}[{_key_text(key)}]"
            out[label] = (
                inst.summary() if isinstance(inst, Histogram) else inst.value
            )
        return out

    def diff(self, before: Dict[str, object]) -> Dict[str, object]:
        """Changes since ``before`` (a prior :meth:`snapshot`).

        Numeric series subtract; histogram summaries subtract their
        counts/totals.  Unchanged series are omitted, so the result is
        exactly "what this phase did"."""
        out: Dict[str, object] = {}
        now = self.snapshot()
        for label, value in now.items():
            prev = before.get(label)
            if isinstance(value, dict):
                pcount = prev["count"] if isinstance(prev, dict) else 0
                ptotal = prev["total"] if isinstance(prev, dict) else 0.0
                if value["count"] != pcount:
                    out[label] = {
                        "count": value["count"] - pcount,
                        "total": value["total"] - ptotal,
                    }
            else:
                delta = value - (prev if isinstance(prev, (int, float)) else 0)
                if delta:
                    out[label] = delta
        return out

    # -- merge -----------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (associatively); returns self.

        Counters add, gauges take the max, histograms merge bucket-wise
        — all associative and commutative, so merging rank registries
        (or per-run registries) in any grouping yields the same totals.
        """
        for (name, key), inst in other._iter_items():
            if isinstance(inst, Counter):
                self.counter(name, key).value += inst.value
            elif isinstance(inst, Gauge):
                g = self.gauge(name, key)
                g.value = max(g.value, inst.value)
            else:
                self.histogram(name, key).merge(inst)
        return self

    @classmethod
    def merged(cls, *registries: "MetricsRegistry") -> "MetricsRegistry":
        out = cls()
        for r in registries:
            out.merge(r)
        return out

    def fold(self, prefix: str) -> "MetricsRegistry":
        """Extract one ``prefix`` namespace as a standalone registry.

        The inverse of writing through ``view(prefix=...)``: the result
        holds *copies* of the namespace's instruments under their bare
        names, so a tenant's slice can be compared against a solo run's
        registry (or re-merged across tenants) with plain :meth:`merge`
        arithmetic."""
        return MetricsRegistry().merge(self.view(prefix=prefix))

    # -- rendering -------------------------------------------------------
    def format(self, prefix: str = "") -> str:
        """Human-readable table (optionally filtered by name prefix)."""
        rows = []
        for label, value in self.snapshot().items():
            if prefix and not label.startswith(prefix):
                continue
            if isinstance(value, dict):
                text = (
                    f"count={value['count']} mean={value['mean']:g} "
                    f"max={value['max']}"
                )
            elif isinstance(value, float):
                text = f"{value:.6f}"
            else:
                text = str(value)
            rows.append((label, text))
        if not rows:
            return "(no metrics)"
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label:<{width}}  {text}" for label, text in rows)


class PrefixRegistry(MetricsRegistry):
    """A namespace slice of a parent registry.

    Writes intern instruments in the *parent* under ``prefix + name``;
    reads (``get``/``value``/``total``/``names``/``snapshot``/iteration)
    see only the namespace, with the prefix stripped — so the slice is
    indistinguishable from a private :class:`MetricsRegistry` to the
    components writing through it.  This is how one shared registry
    serves N tenants: each tenant's components receive
    ``registry.view(prefix=f"tenant.{name}.")`` and report ``coll.*`` /
    ``faults.*`` series that land as ``tenant.<name>.coll.*`` globally.

    Nested prefixes compose (a prefix view of a prefix view flattens to
    the concatenated prefix on the root registry)."""

    __slots__ = ("_parent", "_prefix")

    def __init__(self, parent: MetricsRegistry, prefix: str) -> None:
        if isinstance(parent, PrefixRegistry):
            prefix = parent._prefix + prefix
            parent = parent._parent
        self._parent = parent
        self._prefix = prefix
        # Alias the parent's store: instruments interned through this
        # view are shared state, not copies.
        self._instruments = parent._instruments

    @property
    def prefix(self) -> str:
        return self._prefix

    @property
    def parent(self) -> MetricsRegistry:
        return self._parent

    # -- writes: intern under the prefixed name --------------------------
    def _intern(self, cls, name: str, key: Hashable):
        return self._parent._intern(cls, self._prefix + name, key)

    # -- reads: filter to the namespace, strip the prefix ----------------
    def _iter_items(self) -> Iterator[tuple]:
        p = self._prefix
        n = len(p)
        for (name, key), inst in self._parent._iter_items():
            if name.startswith(p):
                yield (name[n:], key), inst

    def get(self, name: str, key: Hashable = None):
        return self._parent.get(self._prefix + name, key)

    def keys_of(self, name: str) -> list:
        return self._parent.keys_of(self._prefix + name)


class MetricsView:
    """A registry view with the instrument key pre-bound."""

    __slots__ = ("registry", "key")

    def __init__(self, registry: MetricsRegistry, key: Hashable) -> None:
        self.registry = registry
        self.key = key

    def counter(self, name: str) -> Counter:
        return self.registry.counter(name, self.key)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name, self.key)

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(name, self.key)

    def value(self, name: str):
        return self.registry.value(name, self.key)

    def snapshot(self) -> Dict[str, object]:
        """This key's instruments only, under their bare names."""
        out: Dict[str, object] = {}
        for (name, key), inst in sorted(
            self.registry._iter_items(), key=lambda kv: kv[0][0]
        ):
            if key == self.key:
                out[name] = (
                    inst.summary() if isinstance(inst, Histogram) else inst.value
                )
        return out


def metrics_registry(shared: dict) -> MetricsRegistry:
    """The simulation's shared registry (interned on first use).

    :class:`~repro.obs.session.Session` pre-installs its own registry
    under the same key, so components discover the session registry
    transparently."""
    reg = shared.get(METRICS_KEY)
    if reg is None:
        reg = shared.setdefault(METRICS_KEY, MetricsRegistry())
    return reg
