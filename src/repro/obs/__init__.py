"""Unified observability layer: metrics registry, span tracing, Session.

Everything the scattered stats APIs used to provide — ``CollStats``,
``TopologyStats``, ``FaultStats``, the page cache's bare hit/miss ints,
the per-file server counters — now flows through one
:class:`MetricsRegistry` of named, typed instruments under stable
dotted names (``net.inter.bytes``, ``cache.hits``, ``faults.injected``;
the full catalogue lives in ``docs/observability.md``).  Span tracing
(:mod:`repro.sim.trace`) covers every collective phase and exports
Chrome ``trace_event`` JSON loadable in Perfetto, and
:class:`Session` is the documented front door that wires the
simulator, file system, fault plan, liveness, integrity, and the
registry together.
"""

from repro.obs.metrics import (
    METRICS_KEY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsView,
    metrics_registry,
)
from repro.obs.hooks import PhaseAccumulator, PhaseHook
from repro.obs.schema import load_trace_schema, validate_chrome_trace


def __getattr__(name):
    # Session pulls in the whole stack (engine, fs, core), while the
    # core modules import the registry from this package — so the
    # façade is resolved lazily to keep the import graph acyclic.
    if name == "Session":
        from repro.obs.session import Session

        return Session
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "METRICS_KEY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsView",
    "metrics_registry",
    "PhaseAccumulator",
    "PhaseHook",
    "Session",
    "load_trace_schema",
    "validate_chrome_trace",
]
