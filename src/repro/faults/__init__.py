"""Fault injection and resilience (the chaos-engineering subsystem).

The seed faithfully reproduced the paper on a perfect machine; this
package supplies the imperfect one.  A :class:`FaultPlan` is a seeded,
deterministic schedule of faults — transient I/O errors, slow disks,
straggler ranks, delayed/dropped messages, lock-manager storms, and
aggregator crashes at phase boundaries — injected through hooks in the
engine (:mod:`repro.sim.engine`), the network (:mod:`repro.mpi.network`),
the file system (:mod:`repro.fs.filesystem`), and the lock manager
(:mod:`repro.fs.locks`).  The resilience side lives with the code it
protects: a retry/backoff policy in the independent-I/O layer
(:mod:`repro.io.retry`) and aggregator failover in the flexible
two-phase driver (:mod:`repro.core.two_phase_new`).

Everything stays deterministic under the virtual clock: every injection
decision is a pure hash of (seed, kind, actor, counter), so a chaos run
is exactly replayable — same seed, same faults, same virtual
completion times, byte-identical file contents.

Usage::

    from repro.faults import load_scenario

    plan = load_scenario("transient-io:42")   # or build via the DSL
    sim = Simulator(4)
    injector = plan.install(sim)
    sim.run(main)
    print(injector.stats.rows())
"""

from repro.faults.injector import FaultInjector, FaultStats, find_injector
from repro.faults.plan import (
    EVENT_KINDS,
    FAULTS_KEY,
    OST_KINDS,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
)
from repro.faults.scenarios import SCENARIOS, load_scenario, scenario, scenario_names

__all__ = [
    "FAULTS_KEY",
    "EVENT_KINDS",
    "OST_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultPlanError",
    "FaultInjector",
    "FaultStats",
    "find_injector",
    "SCENARIOS",
    "scenario",
    "scenario_names",
    "load_scenario",
]
