"""Deterministic, seeded fault plans (the chaos scenario DSL).

A :class:`FaultPlan` is a seed plus a list of :class:`FaultEvent`
specifications.  Events never fire by wall-clock randomness: every
injection decision is a pure hash of ``(seed, kind, actor, counter)``
(see :mod:`repro.faults.injector`), and time windows are *virtual*
times, so the same plan replayed against the same workload produces
byte-identical file contents and identical virtual completion times.

Event kinds
-----------

``transient_io``
    Server read/write calls fail with
    :class:`~repro.errors.TransientIOError` with probability ``rate``
    per call while the window is active.
``slow_disk``
    OST service time is multiplied by ``factor`` while active (a
    degraded disk / RAID rebuild).
``straggler``
    CPU charges on the affected ranks are multiplied by ``factor``
    while active (a slow or oversubscribed node).
``net_delay``
    Each message is delayed by an extra ``delay`` seconds with
    probability ``rate`` (congestion, duplicate ACK stalls).
``net_drop``
    Each message is *dropped* with probability ``rate``; the transport
    detects the loss after a ``delay``-second retransmit timeout and
    resends, so the message arrives late but the run stays live.
``lock_storm``
    Lock acquisitions that need an RPC pay ``extra_rpcs`` additional
    round-trips with probability ``rate`` (an overloaded lock manager
    timing out and re-enqueueing requests).
``agg_crash``
    Aggregator ``ranks`` lose their aggregator role at the
    ``round_index``-th phase boundary of collective call
    ``call_index``.  The rank stays alive as a client (its compute
    process is fine; its I/O delegate died) and the collective layer
    fails the realm over to the surviving aggregators — or raises
    :class:`~repro.errors.AggregatorLost` when failover is disabled.
``bit_flip_page``
    With probability ``rate`` per server write, one bit of one just-
    written store page flips *after* the checksum sidecar was updated
    (media/DMA corruption).  Silent unless the ``integrity_pages``
    hint arms verification.
``bit_flip_net``
    With probability ``rate`` per data-frame message, one bit of the
    in-flight payload copy flips (link-level corruption slipping past
    a weak hardware CRC).  Silent unless ``integrity_network`` arms
    frame checksums, in which case the receiver detects it and
    re-requests the frame.
``rank_stall``
    Rank ``ranks`` freeze for ``delay`` virtual seconds at the
    ``round_index``-th phase boundary of collective call
    ``call_index`` (a GC pause, page-fault storm, OS jitter burst).
    Deterministic and boundary-addressed like ``agg_crash``, but
    transient: the rank resumes after the stall.  With the
    ``liveness`` hint on, peers declare the rank *suspect* and
    complete the collective without waiting for it.
``lock_hold``
    With probability ``rate`` per lock acquisition, the just-granted
    extent locks stay *pinned* for ``delay`` virtual seconds (a
    wedged lock-callback thread that cannot service revocations).
    Conflicting acquirers must wait; the liveness layer's lock lease
    caps the wait and a waits-for cycle among pinned holders is broken
    with a typed :class:`~repro.errors.LockDeadlock`.
``ost_crash``
    The named ``osts`` are *down* for the whole window: every server
    call needing one raises a typed
    :class:`~repro.errors.OSTUnavailable` before any byte moves.  The
    window's end is the OST's recovery epoch — replicated files
    re-replicate stale ranges from there on.
``ost_slow``
    Gray brownout: the named ``osts`` serve at ``factor``× service
    time while the window is active and report health *degraded* (not
    down — calls succeed, slowly).  Differs from ``slow_disk`` in
    being a first-class health state: it shows in the ``fs.ost.health``
    gauges, the per-OST trace rows, and the breaker's view.
``ost_flap``
    The named ``osts`` alternate up/down with half-period ``delay``
    seconds inside the window (a flaky controller or link): down
    during the odd half-periods, up during the even ones.  The worst
    case for naive retry loops — which is what the circuit breaker and
    retry budget exist for.
``rank_crash``
    Fail-stop process death: rank ``ranks`` dies — engine coroutine
    and all — inside round ``round_index`` of collective call
    ``call_index``, at the point named by ``site`` (``"boundary"``
    before the round's exchange, ``"exchange"`` mid-exchange,
    ``"flush"`` mid-flush).  Unlike ``agg_crash`` (the I/O delegate
    dies, the process lives) and ``rank_stall`` (transient), the rank
    is *gone*: survivors run the epoch-agreement protocol at the next
    phase boundary, converge on the dead set, shrink the exchange
    schedule, and complete their own bytes — or raise a typed
    :class:`~repro.errors.CollectiveAborted` when fewer than
    ``crash_quorum`` participants remain.  With ``journal_writes`` on,
    the per-epoch commit records let the dead rank
    ``Session.rejoin()`` later and rewrite only its un-committed
    bytes.

Scenario strings (``name[:seed]``, e.g. ``transient-io:42``) are
resolved by :func:`repro.faults.scenarios.load_scenario`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "FAULTS_KEY",
    "FaultPlanError",
    "FaultEvent",
    "FaultPlan",
    "EVENT_KINDS",
    "OST_KINDS",
    "CRASH_SITES",
]

#: Key under which the installed injector lives in ``Simulator.shared``.
FAULTS_KEY = "fault-injector"

EVENT_KINDS = (
    "transient_io",
    "slow_disk",
    "straggler",
    "net_delay",
    "net_drop",
    "lock_storm",
    "agg_crash",
    "bit_flip_page",
    "bit_flip_net",
    "rank_stall",
    "lock_hold",
    "ost_crash",
    "ost_slow",
    "ost_flap",
    "rank_crash",
)

#: Where inside its target round a ``rank_crash`` victim dies.
CRASH_SITES = ("boundary", "exchange", "flush")

#: Kinds evaluated against per-OST health (see :mod:`repro.fs.ostfault`).
OST_KINDS = frozenset({"ost_crash", "ost_slow", "ost_flap"})


class FaultPlanError(ReproError):
    """A fault plan or scenario specification is malformed."""


def _rankset(ranks) -> Optional[FrozenSet[int]]:
    if ranks is None:
        return None
    out = frozenset(int(r) for r in ranks)
    if any(r < 0 for r in out):
        raise FaultPlanError(f"ranks must be non-negative, got {sorted(out)}")
    return out


@dataclass(frozen=True)
class FaultEvent:
    """One fault specification (see the module docstring for kinds)."""

    kind: str
    #: Virtual-time window [start, end) in which the event is active.
    start: float = 0.0
    end: float = math.inf
    #: Probability per opportunity (per server call, per message, ...).
    rate: float = 1.0
    #: Affected ranks / client ids (``None`` = all).
    ranks: Optional[FrozenSet[int]] = None
    #: Affected OSTs for ``slow_disk`` (``None`` = all) and the
    #: ``ost_*`` health kinds (which must name them explicitly).
    osts: Optional[FrozenSet[int]] = None
    #: Slowdown multiplier for ``slow_disk`` / ``straggler``.
    factor: float = 1.0
    #: Extra seconds: added latency (``net_delay``) or retransmit
    #: timeout (``net_drop``).
    delay: float = 0.0
    #: Additional lock-manager round-trips per stormed acquisition.
    extra_rpcs: int = 1
    #: ``agg_crash`` target: which collective call (0-based, counted
    #: per rank in program order) ...
    call_index: int = 0
    #: ... and which phase boundary within it (0 = before round 0).
    round_index: int = 0
    #: ``rank_crash`` only: where inside the target round the victim
    #: dies (``"boundary"`` | ``"exchange"`` | ``"flush"``).
    site: str = "boundary"

    def validate(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; known kinds: {EVENT_KINDS}"
            )
        if not (0.0 <= self.rate <= 1.0):
            raise FaultPlanError(f"rate must be in [0, 1], got {self.rate}")
        if self.start < 0 or self.end < self.start:
            raise FaultPlanError(f"bad window [{self.start}, {self.end})")
        if self.factor < 1.0:
            raise FaultPlanError(f"factor must be >= 1, got {self.factor}")
        if self.delay < 0:
            raise FaultPlanError(f"delay must be >= 0, got {self.delay}")
        if self.extra_rpcs < 0:
            raise FaultPlanError(f"extra_rpcs must be >= 0, got {self.extra_rpcs}")
        if self.call_index < 0 or self.round_index < 0:
            raise FaultPlanError("call_index/round_index must be >= 0")
        if self.kind == "agg_crash" and self.ranks is None:
            raise FaultPlanError("agg_crash events must name the crashing ranks")
        if self.kind == "rank_stall":
            if self.ranks is None:
                raise FaultPlanError("rank_stall events must name the stalling ranks")
            if self.delay <= 0:
                raise FaultPlanError("rank_stall events need a positive delay")
        if self.kind == "lock_hold" and self.delay <= 0:
            raise FaultPlanError("lock_hold events need a positive hold (delay)")
        if self.kind in OST_KINDS and self.osts is None:
            raise FaultPlanError(f"{self.kind} events must name the affected osts")
        if self.kind == "ost_crash" and self.end == math.inf:
            raise FaultPlanError(
                "ost_crash events need a finite window end (the recovery epoch)"
            )
        if self.kind == "ost_slow" and self.factor <= 1.0:
            raise FaultPlanError(
                f"ost_slow events need a brownout factor > 1, got {self.factor}"
            )
        if self.kind == "ost_flap" and self.delay <= 0:
            raise FaultPlanError(
                "ost_flap events need a positive half-period (delay, seconds)"
            )
        if self.kind == "rank_crash":
            if self.ranks is None:
                raise FaultPlanError("rank_crash events must name the dying ranks")
            if self.site not in CRASH_SITES:
                raise FaultPlanError(
                    f"unknown crash site {self.site!r}; options: {CRASH_SITES}"
                )

    def active(self, t: float) -> bool:
        """True when virtual time ``t`` falls inside the event window."""
        return self.start <= t < self.end

    def applies_to(self, rank) -> bool:
        """True when the event targets ``rank``.

        ``rank`` is normally an int; multi-tenant runs pass composite
        ``(tenant, local_rank)`` client ids, which match on their int
        component — a plan scoped to one tenant's injector keeps using
        plain local ranks in ``ranks``."""
        if self.ranks is None:
            return True
        if rank in self.ranks:
            return True
        if isinstance(rank, tuple):
            return any(isinstance(p, int) and p in self.ranks for p in rank)
        return False


@dataclass
class FaultPlan:
    """A seeded, immutable-after-construction chaos schedule.

    Build one with the chained-builder DSL::

        plan = (FaultPlan(seed=42)
                .transient_io(rate=0.05)
                .slow_disk(factor=4.0, start=0.0, end=0.5, osts=[1])
                .agg_crash(rank=1, round_index=1))

    then hand it to :meth:`repro.faults.FaultInjector.install` (or
    ``plan.install(sim)``) before ``Simulator.run``.
    """

    seed: int = 0
    events: List[FaultEvent] = field(default_factory=list)

    # -- builder DSL -----------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultPlan":
        event.validate()
        self.events.append(event)
        return self

    def transient_io(
        self, rate: float, *, start: float = 0.0, end: float = math.inf, ranks=None
    ) -> "FaultPlan":
        return self.add(
            FaultEvent("transient_io", start, end, rate, ranks=_rankset(ranks))
        )

    def slow_disk(
        self, factor: float, *, start: float = 0.0, end: float = math.inf, osts=None
    ) -> "FaultPlan":
        return self.add(
            FaultEvent("slow_disk", start, end, factor=factor, osts=_rankset(osts))
        )

    def straggler(
        self, factor: float, ranks, *, start: float = 0.0, end: float = math.inf
    ) -> "FaultPlan":
        return self.add(
            FaultEvent("straggler", start, end, factor=factor, ranks=_rankset(ranks))
        )

    def net_delay(
        self, rate: float, delay: float, *, start: float = 0.0, end: float = math.inf,
        ranks=None,
    ) -> "FaultPlan":
        return self.add(
            FaultEvent("net_delay", start, end, rate, delay=delay, ranks=_rankset(ranks))
        )

    def net_drop(
        self, rate: float, *, timeout: float = 5e-3, start: float = 0.0,
        end: float = math.inf, ranks=None,
    ) -> "FaultPlan":
        return self.add(
            FaultEvent("net_drop", start, end, rate, delay=timeout, ranks=_rankset(ranks))
        )

    def lock_storm(
        self, rate: float, *, extra_rpcs: int = 2, start: float = 0.0,
        end: float = math.inf, ranks=None,
    ) -> "FaultPlan":
        return self.add(
            FaultEvent(
                "lock_storm", start, end, rate,
                extra_rpcs=extra_rpcs, ranks=_rankset(ranks),
            )
        )

    def agg_crash(
        self, rank: int, *, call_index: int = 0, round_index: int = 0
    ) -> "FaultPlan":
        return self.add(
            FaultEvent(
                "agg_crash", ranks=_rankset([rank]),
                call_index=call_index, round_index=round_index,
            )
        )

    def rank_stall(
        self, rank: int, *, delay: float, call_index: int = 0, round_index: int = 0
    ) -> "FaultPlan":
        return self.add(
            FaultEvent(
                "rank_stall", ranks=_rankset([rank]), delay=delay,
                call_index=call_index, round_index=round_index,
            )
        )

    def rank_crash(
        self, rank: int, *, call_index: int = 0, round_index: int = 0,
        site: str = "boundary",
    ) -> "FaultPlan":
        """Rank ``rank`` dies fail-stop in round ``round_index`` of
        collective call ``call_index``, at ``site`` within the round."""
        return self.add(
            FaultEvent(
                "rank_crash", ranks=_rankset([rank]),
                call_index=call_index, round_index=round_index, site=site,
            )
        )

    def lock_hold(
        self, rate: float, *, hold: float = 5e-2, start: float = 0.0,
        end: float = math.inf, ranks=None,
    ) -> "FaultPlan":
        return self.add(
            FaultEvent("lock_hold", start, end, rate, delay=hold, ranks=_rankset(ranks))
        )

    def ost_crash(
        self, osts, *, start: float = 0.0, end: float = 0.0
    ) -> "FaultPlan":
        """OSTs hard-down during [start, end); ``end`` is the recovery
        epoch (re-replication may begin there)."""
        return self.add(FaultEvent("ost_crash", start, end, osts=_rankset(osts)))

    def ost_slow(
        self, osts, factor: float, *, start: float = 0.0, end: float = math.inf
    ) -> "FaultPlan":
        """Gray brownout: OSTs degraded (``factor``× service) in window."""
        return self.add(
            FaultEvent("ost_slow", start, end, factor=factor, osts=_rankset(osts))
        )

    def ost_flap(
        self, osts, *, period: float, start: float = 0.0, end: float = math.inf
    ) -> "FaultPlan":
        """OSTs alternate up/down with half-period ``period`` seconds."""
        return self.add(
            FaultEvent("ost_flap", start, end, delay=period, osts=_rankset(osts))
        )

    def page_bitflip(
        self, rate: float, *, start: float = 0.0, end: float = math.inf, ranks=None
    ) -> "FaultPlan":
        return self.add(
            FaultEvent("bit_flip_page", start, end, rate, ranks=_rankset(ranks))
        )

    def net_bitflip(
        self, rate: float, *, start: float = 0.0, end: float = math.inf, ranks=None
    ) -> "FaultPlan":
        return self.add(
            FaultEvent("bit_flip_net", start, end, rate, ranks=_rankset(ranks))
        )

    # -- queries ---------------------------------------------------------
    def of_kind(self, kind: str) -> Iterator[FaultEvent]:
        return (e for e in self.events if e.kind == kind)

    def has(self, kind: str) -> bool:
        return any(e.kind == kind for e in self.events)

    def crashes_through(self, call_index: int, boundary: int) -> FrozenSet[int]:
        """Ranks whose aggregator role is dead at (or before) phase
        boundary ``boundary`` of collective call ``call_index``.

        Crashes are permanent: a rank dead in call 2 is still dead in
        call 5 (it never regains the aggregator role)."""
        dead: set[int] = set()
        for e in self.of_kind("agg_crash"):
            if (e.call_index, e.round_index) <= (call_index, boundary):
                dead.update(e.ranks or ())
        return frozenset(dead)

    def rank_crashes_through(self, call_index: int, boundary: int) -> FrozenSet[int]:
        """Ranks dead fail-stop at phase boundary ``boundary`` of call
        ``call_index`` — i.e. every ``rank_crash`` victim whose target
        round has been reached.  Death is permanent: once a victim's
        ``(call_index, round_index)`` is ``<=`` the queried boundary it
        stays in the set for every later boundary and call.  Like all
        fault detection here this is a pure function of the plan, so
        every survivor converges on the same dead set with no
        failure-detector messages — the agreement exchange then
        *confirms* (and exercises) the convergence."""
        dead: set[int] = set()
        for e in self.of_kind("rank_crash"):
            if (e.call_index, e.round_index) <= (call_index, boundary):
                dead.update(e.ranks or ())
        return frozenset(dead)

    def crash_for(self, rank: int, call_index: int) -> Optional[FaultEvent]:
        """The earliest ``rank_crash`` event that kills ``rank`` at or
        before call ``call_index`` (None when the rank survives it)."""
        best: Optional[FaultEvent] = None
        for e in self.of_kind("rank_crash"):
            if e.call_index <= call_index and rank in (e.ranks or ()):
                if best is None or (e.call_index, e.round_index) < (
                    best.call_index, best.round_index
                ):
                    best = e
        return best

    def stalls_at(self, call_index: int, boundary: int) -> dict:
        """``{rank: stall seconds}`` for ranks frozen at exactly phase
        boundary ``boundary`` of collective call ``call_index``.

        Unlike crashes, stalls are transient — they match one boundary
        exactly and the rank resumes afterwards.  Like crash detection,
        this is a pure function every rank evaluates identically."""
        out: dict[int, float] = {}
        for e in self.of_kind("rank_stall"):
            if (e.call_index, e.round_index) == (call_index, boundary):
                for r in e.ranks or ():
                    out[r] = max(out.get(r, 0.0), e.delay)
        return out

    def reseed(self, seed: int) -> "FaultPlan":
        """The same schedule under a different seed."""
        return FaultPlan(seed=seed, events=list(self.events))

    def scaled(self, rate_scale: float) -> "FaultPlan":
        """A copy with every probabilistic rate multiplied by
        ``rate_scale`` (clamped to 1); used by the chaos harness to
        sweep fault intensity with one scenario definition."""
        out = FaultPlan(seed=self.seed)
        scalable = (
            "transient_io", "net_delay", "net_drop", "lock_storm",
            "bit_flip_page", "bit_flip_net", "lock_hold",
        )
        for e in self.events:
            if e.kind in scalable:
                out.add(replace(e, rate=min(e.rate * rate_scale, 1.0)))
            else:
                out.add(e)
        return out

    def describe(self) -> List[Tuple[str, str]]:
        """(kind, human summary) per event, for CLI/report tables."""
        rows = []
        for e in self.events:
            bits = []
            if e.kind in (
                "transient_io", "net_delay", "net_drop", "lock_storm",
                "bit_flip_page", "bit_flip_net", "lock_hold",
            ):
                bits.append(f"rate={e.rate:g}")
            if e.kind in ("slow_disk", "straggler", "ost_slow"):
                bits.append(f"factor={e.factor:g}x")
            if e.kind == "ost_flap":
                bits.append(f"period={e.delay:g}s")
            elif e.delay:
                bits.append(f"delay={e.delay:g}s")
            if e.kind in ("agg_crash", "rank_stall", "rank_crash"):
                bits.append(
                    f"ranks={sorted(e.ranks or ())} call={e.call_index} "
                    f"boundary={e.round_index}"
                )
                if e.kind == "rank_crash":
                    bits.append(f"site={e.site}")
            elif e.ranks is not None:
                bits.append(f"ranks={sorted(e.ranks)}")
            if e.osts is not None:
                bits.append(f"osts={sorted(e.osts)}")
            if e.end != math.inf or e.start != 0.0:
                end = "inf" if e.end == math.inf else f"{e.end:g}"
                bits.append(f"window=[{e.start:g}, {end})")
            rows.append((e.kind, ", ".join(bits)))
        return rows

    # -- installation ----------------------------------------------------
    def install(self, sim) -> "FaultInjector":  # noqa: F821 - forward ref
        """Attach a fresh injector for this plan to ``sim``; returns it."""
        from repro.faults.injector import FaultInjector

        return FaultInjector(self).install(sim)
