"""Fault injector: turns a :class:`FaultPlan` into hook decisions.

One injector is shared by every rank of a run (it lives in the
simulator's ``shared`` dict under :data:`~repro.faults.plan.FAULTS_KEY`
and on ``Simulator.faults`` for the engine's CPU hook).  Each hook
decision is a pure hash of ``(seed, kind, actor, counter)`` with
per-actor counters, so

* two runs of the same workload under the same plan make identical
  decisions (replayable chaos), and
* rank A's decisions do not depend on how many opportunities rank B
  has consumed (perturbation-robust keying).

Mutating hook state is safe without locks because the engine runs one
rank thread at a time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.errors import TransientIOError
from repro.faults.plan import FAULTS_KEY, OST_KINDS, FaultPlan
from repro.fs import ostfault
from repro.obs.metrics import MetricsRegistry, metrics_registry

__all__ = ["FaultStats", "FaultInjector"]

_U64 = float(1 << 64)


class FaultStats:
    """What the injector (and the resilience layers reporting back to
    it) actually did; the CLI's post-run summary table.

    Every legacy attribute is a property over a registry counter under
    the ``faults.*`` names in :data:`FaultStats.METRICS`.  A standalone
    ``FaultStats()`` reports to a private registry;
    :meth:`FaultInjector.install` rebinds the injector's stats to the
    simulation's shared registry so fault activity lands next to the
    I/O and network metrics.  The counters in :data:`INJECTED` also
    bump the ``faults.injected`` umbrella total."""

    #: legacy attribute -> registry metric name.
    METRICS: Dict[str, str] = {
        "io_faults": "faults.io",
        "disk_slowdowns": "faults.disk.slowdowns",
        "disk_extra_seconds": "faults.disk.extra_seconds",
        "straggler_events": "faults.straggler.events",
        "straggler_extra_seconds": "faults.straggler.extra_seconds",
        "rank_stalls": "faults.stalls",
        "stall_seconds": "faults.stall_seconds",
        "messages_delayed": "faults.net.delayed",
        "messages_dropped": "faults.net.dropped",
        "net_extra_seconds": "faults.net.extra_seconds",
        "lock_storm_rpcs": "faults.lock.storm_rpcs",
        "lock_holds": "faults.lock.holds",
        "lock_hold_seconds": "faults.lock.hold_seconds",
        "lock_lease_reclaims": "faults.lock.lease_reclaims",
        "lock_deadlocks": "faults.lock.deadlocks",
        "agg_crashes": "faults.agg.crashes",
        "failovers": "faults.failovers",
        "realm_bytes_rebalanced": "faults.realm_bytes_rebalanced",
        "suspects_declared": "faults.suspects_declared",
        "deadlines_exceeded": "faults.deadlines_exceeded",
        "retries": "faults.retries",
        "retry_backoff_seconds": "faults.retry.backoff_seconds",
        "retries_exhausted": "faults.retries_exhausted",
        "page_bits_flipped": "faults.page.bits_flipped",
        "net_bits_flipped": "faults.net.bits_flipped",
        "page_corruptions_detected": "faults.page.corruptions_detected",
        "net_corruptions_detected": "faults.net.corruptions_detected",
        "net_redeliveries": "faults.net.redeliveries",
        "ost_rejections": "faults.ost.rejections",
        "ost_slow_extra_seconds": "faults.ost.slow_extra_seconds",
        "ost_failovers": "faults.ost.failovers",
        "ost_quorum_failures": "faults.ost.quorum_failures",
        "rank_crashes": "faults.crashes",
        "crash_agreements": "faults.crash.agreements",
        "collectives_aborted": "faults.crash.aborted",
        "rejoins": "faults.crash.rejoins",
        "resume_rewritten_bytes": "faults.crash.resume_rewritten_bytes",
        "resume_skipped_bytes": "faults.crash.resume_skipped_bytes",
        "suppressed": "faults.suppressed",
    }

    #: attributes counting *injected* events — increments to these also
    #: bump the ``faults.injected`` umbrella (recovery/detection
    #: counters like retries and failovers deliberately do not).
    INJECTED: FrozenSet[str] = frozenset(
        {
            "io_faults",
            "disk_slowdowns",
            "straggler_events",
            "rank_stalls",
            "messages_delayed",
            "messages_dropped",
            "lock_storm_rpcs",
            "lock_holds",
            "lock_lease_reclaims",
            "agg_crashes",
            "page_bits_flipped",
            "net_bits_flipped",
            "ost_rejections",
            "rank_crashes",
        }
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._instruments = {
            attr: self.registry.counter(name) for attr, name in self.METRICS.items()
        }
        self._injected = self.registry.counter("faults.injected")

    def rebind(self, registry: MetricsRegistry) -> "FaultStats":
        """Re-home the counters into ``registry``, carrying values over."""
        carried = {attr: inst.value for attr, inst in self._instruments.items()}
        injected = self._injected.value
        self.registry = registry
        self._instruments = {
            attr: registry.counter(name) for attr, name in self.METRICS.items()
        }
        self._injected = registry.counter("faults.injected")
        for attr, value in carried.items():
            self._instruments[attr].value += value
        self._injected.value += injected
        return self

    @property
    def injected(self):
        """Total injected fault events (the ``faults.injected`` umbrella)."""
        return self._injected.value

    def merge(self, other: "FaultStats") -> None:
        for name in self.METRICS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def snapshot(self) -> Dict[str, float]:
        return {attr: inst.value for attr, inst in self._instruments.items()}

    def rows(self) -> list[tuple[str, str]]:
        """(counter, rendered value) rows, seconds formatted, for tables."""
        out = []
        for name, value in self.snapshot().items():
            text = f"{value:.6f}" if isinstance(value, float) else str(value)
            out.append((name, text))
        return out


def _fault_counter_property(attr: str, umbrella: bool) -> property:
    def getter(self):
        return self._instruments[attr].value

    def setter(self, v):
        inst = self._instruments[attr]
        if umbrella:
            delta = v - inst.value
            if delta > 0:
                self._injected.value += delta
        inst.value = v

    return property(getter, setter)


for _attr in FaultStats.METRICS:
    setattr(
        FaultStats,
        _attr,
        _fault_counter_property(_attr, _attr in FaultStats.INJECTED),
    )
del _attr


class FaultInjector:
    """Hook implementation consulted by the sim/mpi/fs/io layers."""

    def __init__(self, plan: FaultPlan) -> None:
        for event in plan.events:
            event.validate()
        self.plan = plan
        self.stats = FaultStats()
        #: (kind, actor) -> opportunities consumed so far.
        self._counters: Dict[Tuple[str, int], int] = {}
        #: rank -> collective calls begun (for agg_crash targeting).
        self._calls: Dict[int, int] = {}
        # Kind presence flags let the fault-free fast paths stay cheap.
        self._active_kinds = frozenset(e.kind for e in plan.events)

    def install(self, sim) -> "FaultInjector":
        """Attach to a :class:`~repro.sim.engine.Simulator` before run.

        Rebinds :attr:`stats` into the simulation's shared metrics
        registry, so ``faults.*`` series land next to the I/O and
        network metrics of the same run."""
        sim.shared[FAULTS_KEY] = self
        sim.faults = self
        self.stats.rebind(metrics_registry(sim.shared))
        return self

    # -- deterministic coin flips ---------------------------------------
    def _chance(self, kind: str, actor: int, p: float) -> bool:
        """Seeded Bernoulli(p) draw for this (kind, actor) opportunity."""
        if p >= 1.0:
            self._counters[(kind, actor)] = self._counters.get((kind, actor), 0) + 1
            return True
        if p <= 0.0:
            return False
        n = self._counters.get((kind, actor), 0)
        self._counters[(kind, actor)] = n + 1
        digest = hashlib.blake2b(
            f"{self.plan.seed}/{kind}/{actor}/{n}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / _U64 < p

    def enabled(self, kind: str) -> bool:
        return kind in self._active_kinds

    def _draw(self, kind: str, actor: int) -> int:
        """Seeded 64-bit draw (position choice, not a coin flip).

        Keyed like :meth:`_chance` but under its own counter namespace,
        so interleaving position draws with coin flips never perturbs
        either sequence."""
        key = (kind + "#pos", actor)
        n = self._counters.get(key, 0)
        self._counters[key] = n + 1
        digest = hashlib.blake2b(
            f"{self.plan.seed}/{kind}#pos/{actor}/{n}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    # -- sim.engine hook --------------------------------------------------
    def cpu_factor(self, rank: int, now: float) -> float:
        """Multiplier applied to CPU charges of ``rank`` at time ``now``."""
        if "straggler" not in self._active_kinds:
            return 1.0
        f = 1.0
        for e in self.plan.of_kind("straggler"):
            if e.active(now) and e.applies_to(rank):
                f *= e.factor
        return f

    def note_straggler(self, extra: float) -> None:
        self.stats.straggler_events += 1
        self.stats.straggler_extra_seconds += extra

    # -- liveness hooks ---------------------------------------------------
    def stalled_ranks(self, call_index: int, boundary: int) -> Dict[int, float]:
        """``{rank: stall seconds}`` frozen at exactly this boundary."""
        if "rank_stall" not in self._active_kinds:
            return {}
        return self.plan.stalls_at(call_index, boundary)

    def note_stall(self, seconds: float) -> None:
        self.stats.rank_stalls += 1
        self.stats.stall_seconds += seconds

    def note_suspect(self) -> None:
        self.stats.suspects_declared += 1

    def note_deadline_exceeded(self) -> None:
        self.stats.deadlines_exceeded += 1

    # -- fs.filesystem hooks ----------------------------------------------
    def io_fault(self, client: int, path: str, site: str, now: float) -> None:
        """Raise :class:`TransientIOError` when a transient-I/O event
        fires for this server call; otherwise return normally."""
        if "transient_io" not in self._active_kinds:
            return
        for e in self.plan.of_kind("transient_io"):
            if e.active(now) and e.applies_to(client):
                if self._chance("transient_io", client, e.rate):
                    self.stats.io_faults += 1
                    raise TransientIOError(site, client, path)

    def disk_penalty(self, ost: int, now: float, service: float) -> float:
        """Extra service seconds for this OST request batch."""
        if "slow_disk" not in self._active_kinds:
            return 0.0
        f = 1.0
        for e in self.plan.of_kind("slow_disk"):
            if e.active(now) and (e.osts is None or ost in e.osts):
                f *= e.factor
        extra = service * (f - 1.0)
        if extra > 0.0:
            self.stats.disk_slowdowns += 1
            self.stats.disk_extra_seconds += extra
        return extra

    # -- fs.ostfault hooks -------------------------------------------------
    def has_ost_faults(self) -> bool:
        """Fast-path gate: any ``ost_*`` health kinds in the plan?"""
        return bool(self._active_kinds & OST_KINDS)

    def ost_events(self) -> list:
        """The plan's OST health events (lane export, health checks)."""
        return [e for e in self.plan.events if e.kind in OST_KINDS]

    def ost_down(self, ost: int, now: float) -> bool:
        if not self.has_ost_faults():
            return False
        return ostfault.ost_down(self.plan.events, ost, now)

    def ost_state(self, ost: int, now: float) -> int:
        if not self.has_ost_faults():
            return ostfault.UP
        return ostfault.ost_state(self.plan.events, ost, now)

    def ost_service_factor(self, ost: int, now: float) -> float:
        """Brownout multiplier from ``ost_slow`` events (stats noted)."""
        if "ost_slow" not in self._active_kinds:
            return 1.0
        return ostfault.ost_service_factor(self.plan.events, ost, now)

    def note_ost_rejection(self) -> None:
        self.stats.ost_rejections += 1

    def note_ost_slow(self, extra: float) -> None:
        self.stats.ost_slow_extra_seconds += extra

    def note_ost_failover(self) -> None:
        self.stats.ost_failovers += 1

    def note_ost_quorum_failure(self) -> None:
        self.stats.ost_quorum_failures += 1

    def retry_jitter(self, actor: int) -> float:
        """Seeded uniform draw in [0, 1) for full-jitter backoff.

        Keyed per actor so concurrently-faulted ranks desynchronize
        their retry waves instead of stampeding in lockstep; drawn from
        the position-draw counter namespace so arming jitter never
        perturbs the fault decision sequences."""
        return self._draw("retry_jitter", actor) / _U64

    # -- fs.locks hook ----------------------------------------------------
    def lock_storm_rpcs(self, client: int, now: float) -> int:
        """Additional RPC round-trips this acquisition must pay."""
        if "lock_storm" not in self._active_kinds:
            return 0
        extra = 0
        for e in self.plan.of_kind("lock_storm"):
            if e.active(now) and e.applies_to(client):
                if self._chance("lock_storm", client, e.rate):
                    extra += e.extra_rpcs
        if extra:
            self.stats.lock_storm_rpcs += extra
        return extra

    def lock_hold_seconds(self, client: int, now: float) -> float:
        """Seconds the locks just granted to ``client`` stay pinned
        (0 = the holder's callback thread is healthy)."""
        if "lock_hold" not in self._active_kinds:
            return 0.0
        hold = 0.0
        for e in self.plan.of_kind("lock_hold"):
            if e.active(now) and e.applies_to(client):
                if self._chance("lock_hold", client, e.rate):
                    hold = max(hold, e.delay)
        if hold > 0.0:
            self.stats.lock_holds += 1
            self.stats.lock_hold_seconds += hold
        return hold

    def note_lock_reclaim(self, granules: int) -> None:
        self.stats.lock_lease_reclaims += granules

    def note_lock_deadlock(self) -> None:
        self.stats.lock_deadlocks += 1

    # -- mpi.network hook --------------------------------------------------
    def net_penalty(self, src: int, dst: int, now: float, transit: float) -> float:
        """Extra transit seconds for one message from ``src``.

        Drops are modelled as retransmission: the sender's transport
        notices the loss after the event's timeout and resends, so the
        payload arrives ``timeout + transit`` late instead of never
        (an outright loss would deadlock the receive side, which is a
        *bug* model, not a fault model)."""
        if not self._active_kinds & {"net_delay", "net_drop"}:
            return 0.0
        extra = 0.0
        for e in self.plan.of_kind("net_delay"):
            if e.active(now) and e.applies_to(src):
                if self._chance("net_delay", src, e.rate):
                    self.stats.messages_delayed += 1
                    extra += e.delay
        for e in self.plan.of_kind("net_drop"):
            if e.active(now) and e.applies_to(src):
                if self._chance("net_drop", src, e.rate):
                    self.stats.messages_dropped += 1
                    extra += e.delay + transit
        if extra:
            self.stats.net_extra_seconds += extra
        return extra

    # -- corruption hooks ---------------------------------------------------
    def corrupt_stored(self, store, pages, client: int, now: float) -> None:
        """Maybe flip one bit of one just-written page of ``store``.

        ``pages`` are the (allocated) page indices the write touched;
        the flip happens *after* the sidecar update, which is exactly
        the window a real medium corrupts in.  The sidecar is left
        stale on purpose — that mismatch is what detection detects."""
        if not pages or "bit_flip_page" not in self._active_kinds:
            return
        for e in self.plan.of_kind("bit_flip_page"):
            if e.active(now) and e.applies_to(client):
                if self._chance("bit_flip_page", client, e.rate):
                    draw = self._draw("bit_flip_page", client)
                    store.flip_bit(pages[draw % len(pages)], draw // len(pages))
                    self.stats.page_bits_flipped += 1

    def corrupt_net(self, src: int, dst: int, now: float) -> Optional[int]:
        """Position draw for flipping one bit of an in-flight payload,
        or ``None`` when this message travels clean.  The transport owns
        the actual flip (it holds the payload copy)."""
        if "bit_flip_net" not in self._active_kinds:
            return None
        for e in self.plan.of_kind("bit_flip_net"):
            if e.active(now) and e.applies_to(src):
                if self._chance("bit_flip_net", src, e.rate):
                    self.stats.net_bits_flipped += 1
                    return self._draw("bit_flip_net", src)
        return None

    def note_page_corruption_detected(self) -> None:
        self.stats.page_corruptions_detected += 1

    def note_net_corruption_detected(self) -> None:
        self.stats.net_corruptions_detected += 1

    def note_net_redelivery(self) -> None:
        self.stats.net_redeliveries += 1

    # -- core.two_phase hooks ----------------------------------------------
    def begin_collective(self, rank: int) -> int:
        """Per-rank ordinal of the collective call now starting.

        Every rank makes the same collective calls in the same order,
        so the ordinal is globally consistent without communication."""
        n = self._calls.get(rank, 0)
        self._calls[rank] = n + 1
        return n

    def dead_aggregators(self, call_index: int, boundary: int) -> FrozenSet[int]:
        """Ranks whose aggregator role is gone at this phase boundary."""
        if "agg_crash" not in self._active_kinds:
            return frozenset()
        return self.plan.crashes_through(call_index, boundary)

    def note_failover(self, dead_rank: int, bytes_rebalanced: int) -> None:
        self.stats.agg_crashes += 1
        self.stats.failovers += 1
        self.stats.realm_bytes_rebalanced += bytes_rebalanced

    # -- fail-stop crash hooks ----------------------------------------------
    def crashed_ranks(self, call_index: int, boundary: int) -> FrozenSet[int]:
        """Ranks dead fail-stop at this phase boundary (``rank_crash``).

        Like :meth:`dead_aggregators` this is a pure function of the
        plan, evaluated identically by every survivor — the agreement
        exchange then confirms the converged set over real messages."""
        if "rank_crash" not in self._active_kinds:
            return frozenset()
        return self.plan.rank_crashes_through(call_index, boundary)

    def crash_event_for(self, rank: int, call_index: int):
        """The ``rank_crash`` event that kills ``rank`` by this call."""
        if "rank_crash" not in self._active_kinds:
            return None
        return self.plan.crash_for(rank, call_index)

    def note_crash(self) -> None:
        self.stats.rank_crashes += 1

    def note_agreement(self) -> None:
        self.stats.crash_agreements += 1

    def note_aborted(self) -> None:
        self.stats.collectives_aborted += 1

    def note_rejoin(self) -> None:
        self.stats.rejoins += 1

    def note_resume(self, rewritten: int, skipped: int) -> None:
        self.stats.resume_rewritten_bytes += rewritten
        self.stats.resume_skipped_bytes += skipped

    def note_suppressed(self, n: int = 1) -> None:
        """Count fault events whose target rank was already dead when
        their boundary arrived — the event could not apply, and before
        this counter it silently vanished from the summary."""
        self.stats.suppressed += n

    def suppressed_for(self, dead: FrozenSet[int], call_index: int, boundary: int) -> int:
        """How many plan events aimed at exactly this boundary target
        only already-dead ranks (stalls and role-crashes of a corpse
        cannot fire).  The caller gates the counting on one designated
        survivor so the total is counted once, not once per rank."""
        if not dead:
            return 0
        n = 0
        key = (call_index, boundary)
        for e in self.plan.events:
            if e.kind not in ("rank_stall", "agg_crash", "rank_crash"):
                continue
            if (e.call_index, e.round_index) != key:
                continue
            targets = e.ranks or frozenset()
            if not targets or not targets <= dead:
                continue
            if e.kind == "rank_crash":
                # The event that *creates* a death is not suppressed;
                # it is only when every victim already died at an
                # earlier boundary (a crash aimed at a corpse).
                earlier: set = set()
                for o in self.plan.of_kind("rank_crash"):
                    if o is not e and (o.call_index, o.round_index) < key:
                        earlier.update(o.ranks or ())
                if not targets <= earlier:
                    continue
            n += 1
        return n

    # -- io retry reporting -------------------------------------------------
    def note_retry(self, backoff: float) -> None:
        self.stats.retries += 1
        self.stats.retry_backoff_seconds += backoff

    def note_retry_exhausted(self) -> None:
        self.stats.retries_exhausted += 1


def find_injector(shared: dict) -> Optional[FaultInjector]:
    """The installed injector, if any (components' discovery helper)."""
    return shared.get(FAULTS_KEY)
