"""Canned chaos scenarios and the ``name[:seed]`` spec parser.

Each scenario is a function ``seed -> FaultPlan``.  They are the
library's regression vocabulary: the CLI's ``--faults`` flag, the CI
smoke run, and the chaos harness all speak these names.  Registering a
new scenario is one :func:`scenario` decorator away.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.faults.plan import FaultPlan, FaultPlanError

__all__ = ["SCENARIOS", "scenario", "load_scenario", "scenario_names"]

SCENARIOS: Dict[str, Callable[[int], FaultPlan]] = {}


def scenario(name: str):
    """Register ``fn(seed) -> FaultPlan`` under ``name``."""

    def register(fn: Callable[[int], FaultPlan]) -> Callable[[int], FaultPlan]:
        if name in SCENARIOS:
            raise FaultPlanError(f"duplicate scenario name {name!r}")
        SCENARIOS[name] = fn
        return fn

    return register


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def load_scenario(spec: str) -> FaultPlan:
    """Resolve ``name[:seed]`` (e.g. ``transient-io:42``) to a plan."""
    name, _, seed_text = spec.partition(":")
    name = name.strip().lower()
    if name not in SCENARIOS:
        raise FaultPlanError(
            f"unknown fault scenario {name!r}; known: {scenario_names()}"
        )
    seed = 0
    if seed_text:
        try:
            seed = int(seed_text)
        except ValueError as exc:
            raise FaultPlanError(f"bad scenario seed {seed_text!r}") from exc
    return SCENARIOS[name](seed)


@scenario("transient-io")
def _transient_io(seed: int) -> FaultPlan:
    """Occasional retryable server-call failures on every client."""
    return FaultPlan(seed).transient_io(rate=0.05)


@scenario("io-outage")
def _io_outage(seed: int) -> FaultPlan:
    """Every server call fails inside a short window: retries with
    backoff must ride the outage out (rate 1.0 makes the window a hard
    wall rather than a lottery)."""
    return FaultPlan(seed).transient_io(rate=1.0, start=5e-3, end=2e-2)


@scenario("slow-disk")
def _slow_disk(seed: int) -> FaultPlan:
    """One OST serving at quarter speed (degraded RAID member)."""
    return FaultPlan(seed).slow_disk(factor=4.0, osts=[0])


@scenario("straggler")
def _straggler(seed: int) -> FaultPlan:
    """Rank 1's CPU runs 8x slower (oversubscribed/thermally-throttled
    node) — the classic collective-I/O long pole."""
    return FaultPlan(seed).straggler(factor=8.0, ranks=[1])


@scenario("flaky-network")
def _flaky_network(seed: int) -> FaultPlan:
    """Delayed and dropped (retransmitted) messages."""
    return FaultPlan(seed).net_delay(rate=0.1, delay=2e-3).net_drop(
        rate=0.02, timeout=5e-3
    )


@scenario("lock-storm")
def _lock_storm(seed: int) -> FaultPlan:
    """Overloaded lock manager: acquisitions repeat their RPCs."""
    return FaultPlan(seed).lock_storm(rate=0.5, extra_rpcs=3)


@scenario("agg-crash")
def _agg_crash(seed: int) -> FaultPlan:
    """Aggregator rank 0 dies at the second phase boundary of the first
    collective call; survivors adopt its file realm.  (Rank 0 holds an
    aggregator role under every cb_nodes/cb_layout combination.)"""
    return FaultPlan(seed).agg_crash(rank=0, round_index=1)


@scenario("bit-flip-pages")
def _bit_flip_pages(seed: int) -> FaultPlan:
    """Stored pages silently corrupt after writes (bad medium/DMA).
    Run with the ``integrity_pages`` hint to see detection; without it,
    this is the silent-wrong-answer scenario."""
    return FaultPlan(seed).page_bitflip(rate=0.25)


@scenario("bit-flip-net")
def _bit_flip_net(seed: int) -> FaultPlan:
    """In-flight data frames corrupt on the wire.  With the
    ``integrity_network`` hint the receiver detects and re-requests;
    without it, corrupt exchange bytes land in the file."""
    return FaultPlan(seed).net_bitflip(rate=0.05)


@scenario("bit-flip")
def _bit_flip(seed: int) -> FaultPlan:
    """Both corruption surfaces at once — the end-to-end integrity
    soak (pair with integrity_pages + integrity_network)."""
    return FaultPlan(seed).page_bitflip(rate=0.2).net_bitflip(rate=0.05)


@scenario("stall")
def _stall(seed: int) -> FaultPlan:
    """Ranks wedge mid-collective (GC pause, NFS hiccup, ptrace stop):
    aggregator rank 0 stalls at the second phase boundary of the first
    call, client rank 3 at the first boundary of the second.  With the
    ``liveness`` hint the stalled ranks are suspected and completed
    around; with only ``coll_deadline`` armed, waiting ranks raise
    :class:`~repro.errors.DeadlineExceeded` instead of hanging."""
    return (
        FaultPlan(seed)
        .rank_stall(0, delay=5e-2, call_index=0, round_index=1)
        .rank_stall(3, delay=5e-2, call_index=1, round_index=0)
    )


@scenario("lock-hold")
def _lock_hold(seed: int) -> FaultPlan:
    """Wedged lock-callback threads: granted locks stay pinned so
    conflicting acquirers must wait for pin expiry — or for the
    liveness layer's lease reclaim / deadlock breaking."""
    return FaultPlan(seed).lock_hold(rate=0.3, hold=3e-2)


@scenario("gray")
def _gray(seed: int) -> FaultPlan:
    """Gray failure: nothing is down, everything is sick.  A stalling
    aggregator, a slow rank, a lossy network, and sticky locks — the
    combination that turns into a hang without a liveness layer."""
    return (
        FaultPlan(seed)
        .rank_stall(0, delay=4e-2, call_index=0, round_index=1)
        .straggler(factor=3.0, ranks=[1])
        .net_drop(rate=0.02, timeout=4e-3)
        .lock_hold(rate=0.2, hold=2e-2)
    )


@scenario("ost-crash")
def _ost_crash(seed: int) -> FaultPlan:
    """OST 0 dies mid-run and recovers (docs/storage_faults.md).

    Test-scale files (< one stripe) live entirely on OST 0, so every
    server call inside the window hits the outage.  The window is
    sized so the default retry policy's backoff can ride it out; with
    ``replication_factor >= 2`` reads degrade to surviving replicas,
    while writes ride the window on retries (majority write-quorum)."""
    return FaultPlan(seed).ost_crash([0], start=2e-3, end=1e-2)


@scenario("ost-slow")
def _ost_slow(seed: int) -> FaultPlan:
    """OST 0 browns out at quarter speed — like ``slow-disk`` but as a
    first-class health state: the OST reports *degraded*, feeds the
    ``fs.ost.health`` gauge, and gets its own trace lane."""
    return FaultPlan(seed).ost_slow([0], factor=4.0)


@scenario("ost-flap")
def _ost_flap(seed: int) -> FaultPlan:
    """OST 0 flaps — alternating 2 ms up/down phases for 20 ms.  The
    worst case for naive retry loops (a retry can land in the *next*
    down phase) and the scenario circuit breakers are judged on."""
    return FaultPlan(seed).ost_flap([0], period=2e-3, start=0.0, end=2e-2)


@scenario("rank-crash")
def _rank_crash(seed: int) -> FaultPlan:
    """Fail-stop rank death mid-collective (docs/crash_recovery.md).

    A non-aggregator rank (1) dies at the second phase boundary of the
    first collective; survivors agree on the dead set, shrink the
    exchange, and finish their own bytes.  Vary the seed to move the
    victim and site: seed picks from ranks {1, 2, 3} and the three
    crash sites, so a seed sweep exercises boundary, exchange, and
    flush deaths."""
    victims = (1, 2, 3)
    sites = ("boundary", "exchange", "flush")
    return FaultPlan(seed).rank_crash(
        victims[seed % len(victims)],
        call_index=0,
        round_index=1 + (seed // 3) % 3,
        site=sites[seed % len(sites)],
    )


@scenario("chaos")
def _chaos(seed: int) -> FaultPlan:
    """Everything at once, gently: the kitchen-sink soak scenario."""
    return (
        FaultPlan(seed)
        .transient_io(rate=0.02)
        .slow_disk(factor=2.0, osts=[0])
        .straggler(factor=2.0, ranks=[0])
        .net_delay(rate=0.05, delay=1e-3)
        .net_drop(rate=0.01, timeout=4e-3)
        .lock_storm(rate=0.2, extra_rpcs=2)
    )
