"""repro — reproduction of "A New Flexible MPI Collective I/O
Implementation" (Coloma et al., IEEE Cluster 2006).

A deterministic, simulation-backed implementation of the paper's
flexible two-phase collective I/O framework and every substrate it
needs: an MPI subset with derived datatypes, a Lustre-like striped file
system with extent locks and client caches, an ADIO-style independent
I/O layer, and both the new flexible and the original ROMIO-style
collective implementations.

Quickstart — the :class:`Session` façade wires the simulator, file
system, hints, metrics registry, and tracer together::

    import numpy as np
    from repro import Session, BYTE, contiguous, resized

    with Session.open("/data", nprocs=4,
                      hints={"io_method": "conditional"}) as s:

        def body(ctx, comm, f):
            region = 64
            tile = resized(contiguous(region, BYTE), 0, region * comm.size)
            f.set_view(disp=comm.rank * region, filetype=tile)
            f.write_all(np.full(region * 16, comm.rank, dtype=np.uint8))

        s.run(body)
        print(s.makespan, s.metrics.total("coll.rounds"))

See DESIGN.md for the architecture, docs/observability.md for the
metrics/tracing layer, and EXPERIMENTS.md for the paper-figure
reproductions.
"""

from repro.config import CostModel, DEFAULT_COST_MODEL, FaultConfig, LivenessConfig
from repro.core import CollectiveFile, CollStats, FileView
from repro.datatypes import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    INT64,
    SHORT,
    Datatype,
    contiguous,
    hindexed,
    hvector,
    indexed,
    indexed_block,
    resized,
    struct,
    subarray,
    vector,
)
from repro.errors import (
    AggregatorLost,
    CollectiveIOError,
    DatatypeError,
    DeadlineExceeded,
    FileSystemError,
    HintError,
    IntegrityError,
    LockDeadlock,
    MPIError,
    ReproError,
    RetryExhausted,
    SimDeadlock,
    SimHang,
    SimulationError,
    TransientIOError,
    TransientNetworkError,
)
from repro.faults import FaultInjector, FaultPlan, FaultStats, load_scenario
from repro.fs import FSClient, SimFileSystem
from repro.integrity import FsckReport, IntegrityConfig, fsck, scrub_store
from repro.io import AdioFile, RetryPolicy
from repro.liveness import LivenessState, find_liveness, install_liveness
from repro.mpi import ANY_SOURCE, ANY_TAG, Communicator, Hints
from repro.obs import (
    MetricsRegistry,
    MetricsView,
    PhaseAccumulator,
    PhaseHook,
    metrics_registry,
)
from repro.obs.session import Session
from repro.sim import RankContext, Simulator, Tracer, Watchdog
from repro.tenancy import Cluster, TenantResult, TenantSpec

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # engine
    "Simulator",
    "RankContext",
    "Tracer",
    "Watchdog",
    # tenancy
    "Cluster",
    "TenantSpec",
    "TenantResult",
    # config
    "CostModel",
    "DEFAULT_COST_MODEL",
    # mpi
    "Communicator",
    "Hints",
    "ANY_SOURCE",
    "ANY_TAG",
    # datatypes
    "Datatype",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "INT64",
    "FLOAT",
    "DOUBLE",
    "contiguous",
    "vector",
    "hvector",
    "indexed",
    "hindexed",
    "indexed_block",
    "struct",
    "subarray",
    "resized",
    # fs / io
    "SimFileSystem",
    "FSClient",
    "AdioFile",
    "RetryPolicy",
    # core
    "CollectiveFile",
    "CollStats",
    "FileView",
    # observability
    "Session",
    "MetricsRegistry",
    "MetricsView",
    "metrics_registry",
    "PhaseAccumulator",
    "PhaseHook",
    # faults / resilience
    "FaultConfig",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "load_scenario",
    # liveness
    "LivenessConfig",
    "LivenessState",
    "install_liveness",
    "find_liveness",
    # integrity
    "IntegrityConfig",
    "FsckReport",
    "fsck",
    "scrub_store",
    # errors
    "ReproError",
    "SimulationError",
    "SimDeadlock",
    "SimHang",
    "MPIError",
    "DatatypeError",
    "FileSystemError",
    "CollectiveIOError",
    "HintError",
    "TransientIOError",
    "TransientNetworkError",
    "IntegrityError",
    "RetryExhausted",
    "AggregatorLost",
    "DeadlineExceeded",
    "LockDeadlock",
]
