"""Command-line entry point: ``python -m repro [selfcheck|demo|info]``.

* ``selfcheck`` (default) — run a fast end-to-end verification: a
  collective write/read cycle on a 4-rank simulated cluster under both
  implementations and every flush method, checked against oracles.
* ``demo`` — the quickstart scenario with a printed activity timeline.
* ``info`` — version, default cost model, and known hints.
"""

from __future__ import annotations

import sys

import numpy as np


def selfcheck() -> int:
    from repro import (
        BYTE,
        CollectiveFile,
        Communicator,
        Hints,
        SimFileSystem,
        Simulator,
        contiguous,
        resized,
    )

    nprocs, region, count = 4, 64, 16
    failures = 0
    for impl in ("new", "old"):
        for method in ("datasieve", "naive", "listio", "conditional"):
            fs = SimFileSystem()
            hints = Hints(coll_impl=impl, io_method=method, cb_nodes=2)

            def main(ctx):
                comm = Communicator(ctx)
                f = CollectiveFile(ctx, comm, fs, "/check", hints=hints)
                tile = resized(contiguous(region, BYTE), 0, region * nprocs)
                f.set_view(disp=comm.rank * region, filetype=tile)
                data = (np.arange(region * count, dtype=np.int64) * (comm.rank + 1) % 251).astype(np.uint8)
                f.write_all(data)
                f.seek(0)
                out = np.zeros_like(data)
                f.read_all(out)
                f.close()
                return bool(np.array_equal(out, data))

            ok = all(Simulator(nprocs).run(main))
            status = "ok" if ok else "FAILED"
            print(f"  {impl:>3} + {method:<12} {status}")
            failures += 0 if ok else 1
    if failures:
        print(f"selfcheck: {failures} combinations FAILED")
        return 1
    print("selfcheck: all combinations verified")
    return 0


def demo() -> int:
    import runpy
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return 0
    print("examples/quickstart.py not found (installed without examples)")
    return 1


def info() -> int:
    import dataclasses

    from repro import DEFAULT_COST_MODEL, __version__
    from repro.mpi import Hints

    print(f"repro {__version__} — flexible MPI collective I/O reproduction")
    print("\ndefault cost model:")
    for field in dataclasses.fields(DEFAULT_COST_MODEL):
        print(f"  {field.name:<24} {getattr(DEFAULT_COST_MODEL, field.name)}")
    print("\nknown hints (default values):")
    for key in Hints.known_keys():
        print(f"  {key:<24} {Hints.default(key)!r}")
    return 0


def main(argv: list[str]) -> int:
    cmd = argv[0] if argv else "selfcheck"
    commands = {"selfcheck": selfcheck, "demo": demo, "info": info}
    if cmd not in commands:
        print(f"usage: python -m repro [{'|'.join(commands)}]")
        return 2
    return commands[cmd]()


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
