"""Command-line entry point: ``python -m repro [command] [--faults SPEC]``.

* ``selfcheck`` (default) — run a fast end-to-end verification: a
  collective write/read cycle on a 4-rank simulated cluster under both
  implementations and every flush method, checked against oracles.
* ``demo`` — the quickstart scenario with a printed activity timeline.
* ``info`` — version, default cost model, known hints, fault scenarios.
* ``chaos`` — sweep a fault scenario's intensity and report the
  completion-time degradation (always data-verified).
* ``fsck`` — demonstrate the scrub/repair pass: write a checksummed
  file, corrupt it, scrub, repair from a reference image, verify.
* ``mt`` — multi-tenant contention smoke: ``--tenants N`` collective
  jobs plus background traffic share one file system under both the
  ``fifo`` and ``--sched NAME`` OST policies; read-backs and
  per-tenant attribution conservation are verified, per-tenant
  makespans and the cross-tenant spread printed.

``--faults NAME[:SEED]`` (e.g. ``--faults transient-io:42``) installs
the named deterministic fault scenario into every simulated cluster the
command builds, and prints a fault/retry summary table afterwards.  The
selfcheck still requires byte-perfect results — that is the resilience
machinery's contract under test.

``--integrity`` arms the end-to-end integrity hints (page checksums,
frame checksums, journaled collective writes) in the command's
workloads; with corruption scenarios (``--faults bit-flip:SEED``) the
chaos sweep then requires every injected flip to be *detected* — a
wrong byte nobody flagged fails the run.

``--liveness`` (alias ``--deadline``) arms the liveness hints (a
per-collective deadline plus suspect-driven failover) in the command's
workloads; with stall scenarios (``--faults stall:SEED``,
``--faults gray:SEED``) every run must terminate within the deadline
budget — verified data or a typed error, never a hang.

``--ppn N`` arms the node topology at N ranks per node in the
command's workloads (the ``procs_per_node``/``node_aggregation``
hints): the new implementation's exchanges run through the two-layer
intra-node aggregation path, still held to byte-perfect results.

``--plan-cache`` (selfcheck) arms the persistent-plan cache
(``plan_cache=True``, docs/plan_cache.md) and repeats each combination's
collective call three times: the first call must build (a miss), every
identical later call must replay (hits), and the read-backs must stay
byte-perfect — the cache-correctness smoke CI runs on every push.

``--async`` (selfcheck, chaos) issues every collective through the
nonblocking surface (``iwrite_all``/``iread_all`` +
``Request.wait()``, docs/async_io.md) instead of the blocking calls;
``--pipeline D`` arms ``pipeline_depth=D`` (double-buffered rounds).
Both are held to the same byte-perfect contract and compose with
``--integrity``/``--ppn``.

``--replicate R`` (selfcheck, chaos) arms ``replication_factor=R``:
every stripe's pages land on R distinct OSTs, writes commit on a
majority quorum, reads fail over to surviving replicas.  Pair with
``--faults ost-crash`` to watch degraded-mode service stay
byte-perfect (docs/storage_faults.md).

``mt --json`` emits the fifo-vs-policy comparison as one
machine-readable JSON document instead of the human tables.
"""

from __future__ import annotations

import sys
from typing import Optional

import numpy as np


def selfcheck(
    fault_spec: Optional[str] = None,
    integrity: bool = False,
    liveness: bool = False,
    ppn: int = 0,
    replicate: int = 1,
    plan_cache: bool = False,
    async_io: bool = False,
    pipeline: int = 0,
) -> int:
    from repro import (
        BYTE,
        CollectiveFile,
        Communicator,
        Hints,
        SimFileSystem,
        Simulator,
        contiguous,
        resized,
    )
    from repro.core.file_handle import sanctioned_construction
    from repro.faults import FaultStats, load_scenario

    plan = load_scenario(fault_spec) if fault_spec else None
    totals = FaultStats()
    nprocs, region, count = 4, 64, 16
    failures = 0
    for impl in ("new", "old"):
        for method in ("datasieve", "naive", "listio", "conditional"):
            fs = SimFileSystem()
            hints = Hints(coll_impl=impl, io_method=method, cb_nodes=2)
            if integrity:
                hints = hints.replace(
                    integrity_pages=True,
                    integrity_network=True,
                    # The journal rides the new implementation only.
                    journal_writes=(impl == "new"),
                )
            if liveness:
                # Suspect-driven failover rides the new implementation
                # only; the deadline guards both.
                hints = hints.replace(
                    coll_deadline=0.5, liveness=(impl == "new")
                )
            if ppn > 1:
                # Two-layer exchange rides the new implementation only
                # (the old one hardwires its nonblocking exchange).
                hints = hints.replace(
                    procs_per_node=ppn, node_aggregation=(impl == "new")
                )
            if replicate > 1:
                # Replication is a file-system property, so it rides
                # both implementations identically.  Extra retries let
                # quorum-blocked writes outlast the canned ost-crash
                # window: four jittered backoffs cap at 15 ms but
                # average half that, short of the 10 ms outage.
                hints = hints.replace(
                    replication_factor=replicate, io_retries=8
                )
            if plan_cache:
                hints = hints.replace(plan_cache=True)
            if pipeline > 0:
                # Double-buffered rounds (docs/async_io.md) ride both
                # implementations; byte-identity is exactly what this
                # check verifies.
                hints = hints.replace(pipeline_depth=pipeline)
            reps = 3 if plan_cache else 1

            def main(ctx):
                comm = Communicator(ctx)
                with sanctioned_construction():
                    f = CollectiveFile(ctx, comm, fs, "/check", hints=hints)
                tile = resized(contiguous(region, BYTE), 0, region * nprocs)
                f.set_view(disp=comm.rank * region, filetype=tile)
                data = (np.arange(region * count, dtype=np.int64) * (comm.rank + 1) % 251).astype(np.uint8)
                ok = True
                for _ in range(reps):
                    f.seek(0)
                    out = np.zeros_like(data)
                    if async_io:
                        # Nonblocking surface: same collectives, issued
                        # split-phase and completed at wait().
                        f.iwrite_all(data).wait()
                        f.seek(0)
                        f.iread_all(out).wait()
                    else:
                        f.write_all(data)
                        f.seek(0)
                        f.read_all(out)
                    ok = ok and bool(np.array_equal(out, data))
                pc = f.plancache
                hits, misses = (pc.hits, pc.misses) if pc is not None else (0, 0)
                f.close()
                return ok, hits, misses

            sim = Simulator(nprocs)
            injector = plan.install(sim) if plan is not None else None
            results = sim.run(main)
            ok = all(r[0] for r in results)
            extra = ""
            if plan_cache:
                hits = sum(r[1] for r in results)
                misses = sum(r[2] for r in results)
                extra = f"  plan {hits}h/{misses}m"
                if plan is None:
                    # Identical repeats must replay: one build per rank,
                    # every later call a hit.  (Fault plans may stand the
                    # cache down — bypass — so only the clean run gates.)
                    ok = ok and misses == nprocs and hits == (2 * reps - 1) * nprocs
            if injector is not None:
                totals.merge(injector.stats)
            status = "ok" if ok else "FAILED"
            print(f"  {impl:>3} + {method:<12} {status}{extra}")
            failures += 0 if ok else 1
    if plan is not None:
        _print_fault_summary(fault_spec, plan, totals)
    if failures:
        print(f"selfcheck: {failures} combinations FAILED")
        return 1
    print("selfcheck: all combinations verified")
    return 0


def crash_check(spec: str) -> int:
    """``selfcheck --crash RANK[:EPOCH]``: fail-stop crash + rejoin.

    Kills RANK at phase boundary EPOCH (default 1) of the first
    collective write, at each crash site, under both implementations
    and every exchange backend.  Survivors must finish their bytes,
    the rejoined rank resumes from the epoch commit records, and the
    recovered file must match the oracle byte-for-byte.  Prints the
    re-written vs. skipped byte split per combination
    (docs/crash_recovery.md)."""
    from repro.bench import ChaosHarness
    from repro.faults import FaultPlan
    from repro.mpi import Hints

    nprocs = 4
    rank_text, _, epoch_text = spec.partition(":")
    try:
        rank = int(rank_text)
        epoch = int(epoch_text) if epoch_text else 1
    except ValueError:
        print(f"--crash requires RANK[:EPOCH] integers, got {spec!r}")
        return 2
    if not 0 <= rank < nprocs:
        print(f"--crash rank must be in [0, {nprocs}), got {rank}")
        return 2
    if epoch < 0:
        print(f"--crash epoch must be >= 0, got {epoch}")
        return 2
    modes = [
        ("new+two_layer", "new", "two_layer"),
        ("new+alltoallw", "new", "alltoallw"),
        ("new+nonblocking", "new", "nonblocking"),
        ("old", "old", None),
    ]
    print(f"crash selfcheck: kill rank {rank} at epoch {epoch}, then rejoin")
    failures = 0
    for label, impl, exchange in modes:
        for site in ("boundary", "exchange", "flush"):
            hints = Hints(coll_impl=impl, cb_nodes=2, cb_buffer_size=512)
            if exchange is not None:
                hints = hints.replace(exchange=exchange)
            plan = FaultPlan(seed=0).rank_crash(
                rank, call_index=0, round_index=epoch, site=site
            )
            harness = ChaosHarness(plan, nprocs=nprocs, hints=hints)
            _, verified, _, stats, _ = harness.run_once(plan)
            ok = verified and stats.rejoins == 1
            status = "ok" if ok else "FAILED"
            print(
                f"  {label:<16} site={site:<9} {status:<6} "
                f"rewritten={stats.resume_rewritten_bytes:>5} "
                f"skipped={stats.resume_skipped_bytes:>5}"
            )
            failures += 0 if ok else 1
    if failures:
        print(f"crash selfcheck: {failures} combinations FAILED")
        return 1
    print("crash selfcheck: all combinations recovered byte-identical")
    return 0


def _print_fault_summary(spec, plan, stats) -> None:
    print(f"\nfault scenario {spec!r} (seed {plan.seed}):")
    for kind, detail in plan.describe():
        print(f"  {kind:<14} {detail}")
    print("\nfault/retry summary:")
    for name, value in stats.rows():
        print(f"  {name:<26} {value}")


def chaos(
    fault_spec: Optional[str] = None,
    integrity: bool = False,
    liveness: bool = False,
    ppn: int = 0,
    replicate: int = 1,
    async_io: bool = False,
) -> int:
    from repro.bench import ChaosHarness
    from repro.mpi import Hints

    hints = None
    if ppn > 1:
        hints = Hints(
            cb_nodes=2, cb_buffer_size=512, procs_per_node=ppn, node_aggregation=True
        )
    harness = ChaosHarness(
        fault_spec or "chaos",
        integrity=integrity,
        liveness=liveness,
        hints=hints,
        replication=replicate,
        async_io=async_io,
    )
    report = harness.sweep()
    print(report.format())
    if not report.all_verified:
        print("chaos: SILENT DATA CORRUPTION under faults")
        return 1
    print("chaos: no silent corruption at any intensity")
    return 0


def fsck(
    fault_spec: Optional[str] = None,
    integrity: bool = False,
    liveness: bool = False,
    ppn: int = 0,
) -> int:
    """Scrub/repair demonstration on a deliberately corrupted store."""
    from repro import (
        BYTE,
        CollectiveFile,
        Communicator,
        Hints,
        SimFileSystem,
        Simulator,
        contiguous,
        resized,
    )
    from repro.core.file_handle import sanctioned_construction
    from repro.integrity import fsck as run_fsck

    nprocs, region, count = 4, 64, 64
    path = "/fsck"
    fs = SimFileSystem()
    hints = Hints(cb_nodes=2, integrity_pages=True)

    def main(ctx):
        comm = Communicator(ctx)
        with sanctioned_construction():
            f = CollectiveFile(ctx, comm, fs, path, hints=hints)
        tile = resized(contiguous(region, BYTE), 0, region * nprocs)
        f.set_view(disp=comm.rank * region, filetype=tile)
        data = (
            np.arange(region * count, dtype=np.int64) * (comm.rank + 1) % 251
        ).astype(np.uint8)
        f.write_all(data)
        f.close()

    Simulator(nprocs).run(main)
    total = nprocs * region * count
    reference = fs.raw_bytes(path, 0, total)
    store = fs.page_store(path)
    last_page = (store.size - 1) // store.page_size
    store.flip_bit(0, 12345)
    if last_page != 0:
        store.flip_bit(last_page, 7)
    print(f"wrote {total} bytes ({store.allocated_pages} pages), then corrupted "
          f"page(s) {sorted({0, last_page})}")
    print("\nscrub (report only):")
    scrub = run_fsck(fs)
    for rep in scrub:
        print(rep.format())
    if all(rep.clean for rep in scrub):
        print("fsck: corruption NOT detected")
        return 1
    print("\nrepair from reference image:")
    for rep in run_fsck(fs, repair="reference", references={path: reference}):
        print(rep.format())
    clean = all(rep.clean for rep in run_fsck(fs))
    restored = bool(np.array_equal(fs.raw_bytes(path, 0, total), reference))
    if not (clean and restored):
        print("fsck: repair FAILED")
        return 1
    print("fsck: corruption detected and repaired, contents verified")
    return 0


def trace(
    fault_spec: Optional[str] = None,
    integrity: bool = False,
    liveness: bool = False,
    ppn: int = 0,
    out: str = "out.json",
) -> int:
    """Run one traced collective write/read and export a Chrome trace.

    The workload is the selfcheck's interleaved tile pattern on the new
    implementation (two-layer when ``--ppn`` arms a topology), recorded
    as nested spans and written to ``out`` as ``trace_event`` JSON that
    Perfetto / ``chrome://tracing`` loads directly.  The export is
    validated against the checked-in schema, and the per-state span
    totals are cross-checked against the tracer's MPE-style
    aggregation before the file is declared good."""
    from repro import BYTE, Hints, Session, contiguous, resized
    from repro.obs.schema import validate_chrome_trace

    nprocs = 2 * ppn if ppn > 1 else 8
    region, count = 64, 16
    hints = Hints(coll_impl="new", cb_nodes=2, cb_buffer_size=512)
    if ppn > 1:
        hints = hints.replace(procs_per_node=ppn, node_aggregation=True)
    if integrity:
        hints = hints.replace(
            integrity_pages=True, integrity_network=True, journal_writes=True
        )
    if liveness:
        hints = hints.replace(coll_deadline=0.5, liveness=True)

    session = Session(
        "/trace", nprocs=nprocs, hints=hints, faults=fault_spec, trace=True
    )

    def body(ctx, comm, f):
        tile = resized(contiguous(region, BYTE), 0, region * comm.size)
        f.set_view(disp=comm.rank * region, filetype=tile)
        data = (
            np.arange(region * count, dtype=np.int64) * (comm.rank + 1) % 251
        ).astype(np.uint8)
        f.write_all(data)
        f.seek(0)
        back = np.zeros_like(data)
        f.read_all(back)
        return bool(np.array_equal(back, data))

    verified = session.run(body)
    doc = session.write_trace(out, validate=True)
    validate_chrome_trace(doc)

    # Cross-check: the Chrome export's per-name dur totals must equal
    # the tracer's MPE-style per-state aggregation (µs vs seconds).
    chrome_totals: dict[str, float] = {}
    spans = 0
    for ev in doc["traceEvents"]:
        if ev["ph"] != "X":
            continue
        spans += 1
        chrome_totals[ev["name"]] = chrome_totals.get(ev["name"], 0.0) + ev["dur"]
    by_state = session.time_by_state()
    drift = 0.0
    for state, seconds in by_state.items():
        drift = max(drift, abs(chrome_totals.get(state, 0.0) - seconds * 1e6))
    if drift > 1e-3:  # µs
        print(f"trace: export disagrees with aggregation by {drift:.3f} µs")
        return 1

    print(f"wrote {out}: {spans} spans, {len(by_state)} states, schema-valid")
    print(f"makespan {session.makespan * 1e3:.3f} ms; time by state:")
    for state in sorted(by_state, key=by_state.get, reverse=True):
        print(f"  {state:<20} {by_state[state] * 1e3:9.3f} ms")
    if session.fault_stats is not None:
        fired = ", ".join(
            f"{k}={v:g}" for k, v in session.fault_stats.snapshot().items() if v
        )
        print(f"faults: {fired or '-'}")
    if not all(verified):
        bad = [r for r, okr in enumerate(verified) if not okr]
        print(f"read-back mismatch on rank(s) {bad} (uncaught injected faults)")
    print("trace: span totals match MPE-style aggregation")
    return 0


def mt(
    fault_spec: Optional[str] = None,
    integrity: bool = False,
    liveness: bool = False,
    ppn: int = 0,
    tenants: int = 3,
    sched: str = "fair",
    as_json: bool = False,
) -> int:
    """Multi-tenant smoke: N collective tenants + background traffic on
    one shared file system, run under FIFO and the selected scheduler.

    Every tenant's read-back must be byte-perfect and the per-tenant
    registry mirrors must sum exactly to the shared-fs globals
    (conservation).  ``--faults`` installs the scenario into tenant
    ``t0`` only — per-tenant fault isolation is part of the smoke.
    ``--json`` replaces the human tables with one machine-readable
    JSON document comparing FIFO against the selected policy."""
    import json

    from repro import BYTE, Cluster, contiguous, resized

    region, count = 64, 8

    def mkbody():
        def body(ctx, comm, f):
            tile = resized(contiguous(region, BYTE), 0, region * comm.size)
            f.set_view(disp=comm.rank * region, filetype=tile)
            data = (
                np.arange(region * count, dtype=np.int64) * (comm.rank + 2) % 251
            ).astype(np.uint8)
            f.write_all(data)
            f.seek(0)
            back = np.zeros_like(data)
            f.read_all(back)
            return bool(np.array_equal(back, data))

        return body

    failures = 0
    doc = {
        "tenants": tenants,
        "background": ["scan", "random"],
        "faults": fault_spec,
        "policies": {},
    }
    for policy in dict.fromkeys(("fifo", sched)):
        cl = Cluster(scheduler=policy)
        for i in range(tenants):
            hints = {"coll_impl": "new", "cb_nodes": 2, "tenant_priority": 1 + i % 2}
            if integrity:
                hints.update(integrity_pages=True, integrity_network=True)
            if liveness:
                hints.update(coll_deadline=0.5, liveness=True)
            if ppn > 1:
                hints.update(procs_per_node=ppn, node_aggregation=True)
            cl.add_tenant(
                f"t{i}",
                mkbody(),
                nprocs=4,
                hints=hints,
                arrival=0.0005 * i,
                faults=fault_spec if i == 0 else None,
            )
        cl.add_background("scan", nprocs=1, total_bytes=1 << 16)
        cl.add_background("random", nprocs=1, ops=32)
        out = cl.run()
        entry = {"makespans": {}, "verified": {}, "conservation": {}}
        if not as_json:
            print(f"scheduler {policy!r}:")
        for name, res in out.items():
            verified = all(r is True for r in res.results if isinstance(r, bool))
            entry["makespans"][name] = res.makespan
            entry["verified"][name] = verified
            if not as_json:
                print(
                    f"  {name:<12} makespan {res.makespan * 1e3:9.3f} ms"
                    + ("" if verified else "  READ-BACK MISMATCH")
                )
            if not verified:
                failures += 1
        entry["spread"] = cl.spread
        if not as_json:
            print(f"  spread {cl.spread * 1e3:.3f} ms")
        for metric in ("fs.bytes.written", "fs.bytes.read"):
            mirrored, total = cl.conservation(metric)
            conserved = mirrored == total
            entry["conservation"][metric] = {
                "mirrored": mirrored,
                "total": total,
                "ok": conserved,
            }
            if not as_json:
                status = "ok" if conserved else "VIOLATED"
                print(f"  conservation {metric}: {mirrored} vs {total} {status}")
            if not conserved:
                failures += 1
        doc["policies"][policy] = entry
    ok = failures == 0
    if as_json:
        fifo = doc["policies"].get("fifo")
        other = doc["policies"].get(sched)
        if fifo is not None and other is not None and sched != "fifo":
            doc["comparison"] = {
                "policy": sched,
                "spread_fifo": fifo["spread"],
                "spread_policy": other["spread"],
                "spread_ratio": (
                    other["spread"] / fifo["spread"] if fifo["spread"] > 0 else None
                ),
            }
        doc["ok"] = ok
        print(json.dumps(doc, indent=1, sort_keys=True))
        return 0 if ok else 1
    if not ok:
        print(f"mt: {failures} check(s) FAILED")
        return 1
    print(f"mt: {tenants} tenants + 2 background, data verified, "
          "attribution conserved")
    return 0


def demo(
    fault_spec: Optional[str] = None,
    integrity: bool = False,
    liveness: bool = False,
    ppn: int = 0,
) -> int:
    import runpy
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return 0
    print("examples/quickstart.py not found (installed without examples)")
    return 1


def info(
    fault_spec: Optional[str] = None,
    integrity: bool = False,
    liveness: bool = False,
    ppn: int = 0,
) -> int:
    import dataclasses

    from repro import DEFAULT_COST_MODEL, __version__
    from repro.faults import scenario_names
    from repro.mpi import Hints

    print(f"repro {__version__} — flexible MPI collective I/O reproduction")
    print("\ndefault cost model:")
    for field in dataclasses.fields(DEFAULT_COST_MODEL):
        print(f"  {field.name:<24} {getattr(DEFAULT_COST_MODEL, field.name)}")
    print("\nknown hints (default values):")
    for key in Hints.known_keys():
        print(f"  {key:<24} {Hints.default(key)!r}")
    print("\nfault scenarios (--faults NAME[:SEED]):")
    for name in scenario_names():
        print(f"  {name}")
    return 0


def main(argv: list[str]) -> int:
    args = list(argv)
    fault_spec: Optional[str] = None
    if "--faults" in args:
        i = args.index("--faults")
        if i + 1 >= len(args):
            print("--faults requires a scenario spec (NAME[:SEED]); see `info`")
            return 2
        fault_spec = args[i + 1]
        del args[i : i + 2]
    integrity = "--integrity" in args
    if integrity:
        args.remove("--integrity")
    liveness = False
    for flag in ("--liveness", "--deadline"):
        if flag in args:
            liveness = True
            args.remove(flag)
    ppn = 0
    if "--ppn" in args:
        i = args.index("--ppn")
        if i + 1 >= len(args):
            print("--ppn requires a ranks-per-node count")
            return 2
        try:
            ppn = int(args[i + 1])
        except ValueError:
            print(f"--ppn requires an integer, got {args[i + 1]!r}")
            return 2
        if ppn < 1:
            print(f"--ppn must be >= 1, got {ppn}")
            return 2
        del args[i : i + 2]
    tenants = 3
    if "--tenants" in args:
        i = args.index("--tenants")
        if i + 1 >= len(args):
            print("--tenants requires a tenant count")
            return 2
        try:
            tenants = int(args[i + 1])
        except ValueError:
            print(f"--tenants requires an integer, got {args[i + 1]!r}")
            return 2
        if tenants < 1:
            print(f"--tenants must be >= 1, got {tenants}")
            return 2
        del args[i : i + 2]
    sched = "fair"
    if "--sched" in args:
        i = args.index("--sched")
        if i + 1 >= len(args):
            print("--sched requires a policy name (fifo|fair|wfq)")
            return 2
        sched = args[i + 1]
        del args[i : i + 2]
    replicate = 1
    if "--replicate" in args:
        i = args.index("--replicate")
        if i + 1 >= len(args):
            print("--replicate requires a replica count")
            return 2
        try:
            replicate = int(args[i + 1])
        except ValueError:
            print(f"--replicate requires an integer, got {args[i + 1]!r}")
            return 2
        if replicate < 1:
            print(f"--replicate must be >= 1, got {replicate}")
            return 2
        del args[i : i + 2]
    crash_spec: Optional[str] = None
    if "--crash" in args:
        i = args.index("--crash")
        if i + 1 >= len(args):
            print("--crash requires RANK[:EPOCH] (e.g. --crash 2:1)")
            return 2
        crash_spec = args[i + 1]
        del args[i : i + 2]
    plan_cache = "--plan-cache" in args
    if plan_cache:
        args.remove("--plan-cache")
    async_io = "--async" in args
    if async_io:
        args.remove("--async")
    pipeline = 0
    if "--pipeline" in args:
        i = args.index("--pipeline")
        if i + 1 >= len(args):
            print("--pipeline requires a depth (rounds in flight)")
            return 2
        try:
            pipeline = int(args[i + 1])
        except ValueError:
            print(f"--pipeline requires an integer, got {args[i + 1]!r}")
            return 2
        if pipeline < 0:
            print(f"--pipeline must be >= 0, got {pipeline}")
            return 2
        del args[i : i + 2]
    as_json = "--json" in args
    if as_json:
        args.remove("--json")
    cmd = args[0] if args else "selfcheck"
    commands = {
        "selfcheck": selfcheck,
        "demo": demo,
        "info": info,
        "chaos": chaos,
        "fsck": fsck,
        "trace": trace,
        "mt": mt,
    }
    if cmd not in commands:
        print(
            f"usage: python -m repro [{'|'.join(commands)}] "
            "[--faults NAME[:SEED]] [--integrity] [--liveness] [--ppn N] "
            "[--replicate R] [--plan-cache] [--async] [--pipeline D]\n"
            "       python -m repro selfcheck --crash RANK[:EPOCH]\n"
            "       python -m repro trace [OUT.json] [--ppn N] "
            "[--faults NAME[:SEED]]\n"
            "       python -m repro mt [--tenants N] [--sched fifo|fair|wfq] "
            "[--json] [--faults NAME[:SEED]]"
        )
        return 2
    if cmd == "trace":
        out = args[1] if len(args) > 1 else "out.json"
        return trace(fault_spec, integrity, liveness, ppn, out)
    if cmd == "mt":
        return mt(fault_spec, integrity, liveness, ppn, tenants, sched, as_json)
    if cmd == "selfcheck" and crash_spec is not None:
        return crash_check(crash_spec)
    if cmd == "selfcheck":
        return selfcheck(
            fault_spec, integrity, liveness, ppn, replicate, plan_cache,
            async_io, pipeline,
        )
    if cmd == "chaos":
        return chaos(fault_spec, integrity, liveness, ppn, replicate, async_io)
    return commands[cmd](fault_spec, integrity, liveness, ppn)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
