"""Chaos harness: completion-time degradation versus fault intensity.

A :class:`ChaosHarness` runs one fixed collective-write workload (the
selfcheck's interleaved tile pattern) repeatedly: once fault-free for
the baseline, then once per requested intensity with the scenario's
probabilistic rates scaled by that intensity.  Every run is verified
byte-for-byte against a direct numpy oracle — a chaos run that degrades
*correctness* instead of completion time is a failed run, whatever its
timing says.

Corruption scenarios refine "verified" into *no silent corruption*:
with the integrity hints armed (``integrity=True``), a run whose bytes
mismatch the oracle still passes if every mismatching page fails its
checksum sidecar (the corruption was caught — an fsck would find and
repair it), and a run killed by a typed
:class:`~repro.errors.IntegrityError` (or by exhausting frame
re-requests) also counts as detected.  A mismatch nobody flagged is a
silent wrong answer: the one outcome integrity must make impossible.

Stall scenarios refine "terminates" into *bounded*: with the liveness
hints armed (``liveness=True``), every run must end within the
collective deadline budget — either completing with verified bytes
(suspects failed over) or dying with a typed liveness error
(:class:`~repro.errors.DeadlineExceeded`,
:class:`~repro.errors.LockDeadlock`,
:class:`~repro.errors.AggregatorLost`).  A hang is the one outcome the
liveness layer must make impossible.

Storage scenarios (``ost-crash`` / ``ost-slow`` / ``ost-flap``) apply
the same bounded-completion contract to the OST fault domain: a run
must either complete with verified bytes (retries rode the outage out,
or replicas served around it — pass ``replication=2``) or die with a
typed storage error (:class:`~repro.errors.OSTUnavailable`,
:class:`~repro.errors.OSTOverloaded`, or a retry/budget exhaustion
chained from one).  Never a hang, never silent corruption.

Each point rebuilds the whole simulated cluster from scratch (fresh
file system, fresh injector), so points are independent and the whole
sweep is deterministic for a given (scenario, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import CostModel, DEFAULT_COST_MODEL
from repro.core import CollectiveFile
from repro.core.file_handle import sanctioned_construction
from repro.datatypes import BYTE, contiguous, resized
from repro.datatypes.segments import FlatCursor
from repro.datatypes.packing import scatter_segments
from repro.errors import (
    AggregatorLost,
    CollectiveAborted,
    DeadlineExceeded,
    IntegrityError,
    LockDeadlock,
    OSTOverloaded,
    OSTUnavailable,
    ReproError,
    RetryBudgetExhausted,
    RetryExhausted,
)
from repro.faults import FaultPlan, FaultStats, OST_KINDS, load_scenario
from repro.mpi import Communicator, Hints
from repro.obs.session import Session

__all__ = ["ChaosPoint", "ChaosReport", "ChaosHarness"]

_PATH = "/chaos"


def _chain(exc: Optional[BaseException]):
    """Walk an exception's cause/context chain (cycle-safe)."""
    seen = set()
    while exc is not None and id(exc) not in seen:
        seen.add(id(exc))
        yield exc
        exc = exc.__cause__ or exc.__context__


def _detection_in_chain(exc: Optional[BaseException]) -> bool:
    """True when a failure chain shows corruption was *caught*: a typed
    IntegrityError anywhere, or frame re-requests exhausting at the
    ``net-frame`` site."""
    for e in _chain(exc):
        if isinstance(e, IntegrityError):
            return True
        if isinstance(e, RetryExhausted) and e.site == "net-frame":
            return True
    return False


def _liveness_in_chain(exc: Optional[BaseException]) -> bool:
    """True when a failure chain ends in a typed liveness error — the
    loud, bounded alternative to a hang."""
    return any(
        isinstance(e, (DeadlineExceeded, LockDeadlock, AggregatorLost))
        for e in _chain(exc)
    )


def _storage_in_chain(exc: Optional[BaseException]) -> bool:
    """True when a failure chain carries a typed storage error: an
    :class:`OSTUnavailable` / :class:`OSTOverloaded` anywhere (a retry
    or budget exhaustion raised *from* one keeps it in the chain), or
    a :class:`RetryBudgetExhausted` — the admission layer refusing to
    keep hammering a sick OST."""
    return any(
        isinstance(e, (OSTUnavailable, OSTOverloaded, RetryBudgetExhausted))
        for e in _chain(exc)
    )


@dataclass
class ChaosPoint:
    """One intensity step of a chaos sweep."""

    rate_scale: float
    sim_seconds: float
    slowdown: float
    verified: bool
    #: Corruption was injected and caught (checksum mismatch flagged,
    #: frame re-requested, or the run killed loudly) — never silent.
    detected: bool = False
    fault_stats: Dict[str, float] = field(default_factory=dict)
    #: The point's full metrics-registry snapshot (stable dotted names:
    #: ``cache.*``, ``fs.*``, ``net.*``, ``faults.*``, ...), so cache
    #: behaviour under faults is visible per intensity step.
    counters: Dict[str, object] = field(default_factory=dict)


@dataclass
class ChaosReport:
    """A full sweep: baseline plus one point per intensity."""

    scenario: str
    seed: int
    nprocs: int
    total_bytes: int
    baseline_seconds: float
    points: List[ChaosPoint] = field(default_factory=list)

    @property
    def all_verified(self) -> bool:
        return all(p.verified for p in self.points)

    def format(self) -> str:
        lines = [
            f"chaos sweep: scenario={self.scenario!r} seed={self.seed} "
            f"nprocs={self.nprocs} bytes={self.total_bytes}",
            f"  baseline (fault-free): {self.baseline_seconds * 1e3:9.3f} ms",
            f"  {'scale':>6} {'sim ms':>10} {'slowdown':>9} {'ok':>3}  faults",
        ]
        for p in self.points:
            fired = ", ".join(
                f"{k}={v:g}" for k, v in p.fault_stats.items() if v
            ) or "-"
            flag = "BAD" if not p.verified else ("det" if p.detected else "ok")
            lines.append(
                f"  {p.rate_scale:6.2f} {p.sim_seconds * 1e3:10.3f} "
                f"{p.slowdown:8.2f}x {flag:>3}  {fired}"
            )
        return "\n".join(lines)


class ChaosHarness:
    """Sweep a fault scenario's intensity over a fixed collective write.

    ``scenario`` is a ``name[:seed]`` spec or an explicit
    :class:`FaultPlan`.  The workload is ``count`` interleaved
    ``region``-byte tiles per rank, written with one ``write_all``."""

    def __init__(
        self,
        scenario: str | FaultPlan,
        *,
        nprocs: int = 4,
        region: int = 64,
        count: int = 16,
        hints: Optional[Hints] = None,
        cost: CostModel = DEFAULT_COST_MODEL,
        integrity: bool = False,
        liveness: bool = False,
        deadline: float = 0.25,
        replication: int = 1,
        queue_limit: Optional[float] = None,
        breaker: object = True,
        async_io: bool = False,
    ) -> None:
        if isinstance(scenario, FaultPlan):
            self.plan = scenario
            self.scenario_name = "<custom>"
        else:
            self.plan = load_scenario(scenario)
            self.scenario_name = scenario.partition(":")[0]
        self.nprocs = nprocs
        self.region = region
        self.count = count
        # Default geometry: two aggregators, a collective buffer small
        # enough for several rounds per call — phase-boundary scenarios
        # (agg-crash) need boundaries to exist.
        self.hints = (
            hints if hints is not None else Hints(cb_nodes=2, cb_buffer_size=512)
        )
        self.integrity = integrity
        if integrity:
            self.hints = self.hints.replace(
                integrity_pages=True, integrity_network=True
            )
        self.liveness = liveness
        self.deadline = deadline
        if liveness:
            self.hints = self.hints.replace(coll_deadline=deadline, liveness=True)
        #: The plan carries OST fault events — typed storage errors are
        #: then bounded outcomes, not harness bugs.
        self.storage = any(e.kind in OST_KINDS for e in self.plan.events)
        #: The plan carries fail-stop rank crashes — survivors must
        #: still terminate, the crashed ranks are rejoined and resumed,
        #: and after resume the *full* oracle must match
        #: (docs/crash_recovery.md).  A quorum-loss
        #: :class:`~repro.errors.CollectiveAborted` is a bounded typed
        #: outcome, same contract as the liveness and storage domains.
        self.crash = any(e.kind == "rank_crash" for e in self.plan.events)
        self.replication = replication
        if replication > 1:
            self.hints = self.hints.replace(replication_factor=replication)
        self.queue_limit = queue_limit
        self.breaker = breaker
        #: Issue the workload through the nonblocking surface
        #: (``iwrite_all`` + ``Request.wait()``) instead of the blocking
        #: ``write_all``.  The bounded-completion contract is identical:
        #: ``wait()`` re-raises the operation's *original* typed
        #: exception object, so the cause/context chain the classifier
        #: whitelists is the same one the inline path produces.
        self.async_io = async_io
        self.cost = cost
        self.total_bytes = nprocs * region * count

    # -- workload -----------------------------------------------------------
    def _rank_buffer(self, rank: int) -> np.ndarray:
        n = self.region * self.count
        return ((np.arange(n, dtype=np.int64) * (rank + 1) + rank) % 251).astype(
            np.uint8
        )

    def _oracle(self) -> np.ndarray:
        """The expected file image, built without the simulator."""
        out = np.zeros(self.total_bytes, dtype=np.uint8)
        period = self.region * self.nprocs
        tile = resized(contiguous(self.region, BYTE), 0, period).flatten()
        for rank in range(self.nprocs):
            total = self.region * self.count
            batch = FlatCursor(tile, rank * self.region, total).all_segments()
            scatter_segments(out, batch, self._rank_buffer(rank))
        return out

    def run_once(
        self, plan: Optional[FaultPlan]
    ) -> tuple[float, bool, bool, FaultStats, Dict[str, object]]:
        """One full run (open, write_all, close) under ``plan``.

        Returns (virtual completion seconds, no-silent-corruption,
        corruption-detected, fault stats, registry snapshot).
        ``plan=None`` runs fault-free.  Failures unrelated to
        corruption detection propagate (they are harness bugs, not
        chaos outcomes).

        Each run builds a fresh :class:`~repro.obs.session.Session`, so
        the returned registry snapshot is the per-run counter set —
        including the page caches' ``cache.hits`` / ``cache.misses``,
        which the old harness never saw."""
        session = Session(
            _PATH,
            nprocs=self.nprocs,
            hints=self.hints,
            cost=self.cost,
            faults=plan,
            queue_limit=self.queue_limit,
            breaker=self.breaker,
        )
        fs = session.fs
        region, nprocs = self.region, self.nprocs
        hints = self.hints

        def main(ctx):
            comm = Communicator(ctx, self.cost)
            with sanctioned_construction():
                f = CollectiveFile(ctx, comm, fs, _PATH, hints=hints, cost=self.cost)
            tile = resized(contiguous(region, BYTE), 0, region * nprocs)
            f.set_view(disp=comm.rank * region, filetype=tile)
            if self.async_io:
                # Split collective: any typed failure is captured by the
                # coroutine's handle and re-raised here — same object,
                # same chain, same classifier outcome as the inline path.
                f.iwrite_all(self._rank_buffer(comm.rank)).wait()
            else:
                f.write_all(self._rank_buffer(comm.rank))
            f.close()
            return ctx.now

        try:
            times = session.launch(main)
        except ReproError as exc:
            stats = session.fault_stats or FaultStats()
            counters = session.registry.snapshot()
            if self.crash and any(
                isinstance(e, CollectiveAborted) for e in _chain(exc)
            ):
                # Quorum lost: the collective died loudly with the typed
                # abort instead of hanging on the corpses.  Bounded.
                return 0.0, True, True, stats, counters
            if self.liveness and _liveness_in_chain(exc):
                # Killed loudly by a typed liveness error — the bounded
                # (and reported) alternative to a hang.  The raising
                # rank's clock was at most one deadline past the call's
                # start, so boundedness holds by construction.
                return 0.0, True, True, stats, counters
            if self.storage and _storage_in_chain(exc):
                # Killed loudly by a typed storage error (the OST stayed
                # down past what retries/replicas could absorb) — the
                # bounded alternative to hammering a dead OST forever.
                return 0.0, True, True, stats, counters
            if not _detection_in_chain(exc):
                raise
            # Killed loudly by detected corruption — the opposite of a
            # silent wrong answer.  No meaningful completion time.
            return 0.0, True, True, stats, counters
        if self.crash and session.sim is not None and session.sim.crashed:
            # Rejoin every corpse and resume: replay the same program,
            # rewriting only what no survivor committed on its behalf.
            # After resume the *full* oracle must match.
            def rejoin_body(rank):
                def run(ctx, comm, f):
                    tile = resized(contiguous(region, BYTE), 0, region * nprocs)
                    f.set_view(disp=rank * region, filetype=tile)
                    f.write_all(self._rank_buffer(rank))

                return run

            for rank in sorted(session.sim.crashed):
                session.rejoin(rank, rejoin_body(rank))
        stats = session.fault_stats or FaultStats()
        counters = session.registry.snapshot()
        seconds = max(t for t in times if t is not None)
        got = fs.raw_bytes(_PATH, 0, self.total_bytes)
        diff = np.flatnonzero(got != self._oracle())
        detected = bool(
            stats.net_corruptions_detected or stats.page_corruptions_detected
        )
        if diff.size == 0:
            return seconds, True, detected, stats, counters
        # Bytes are wrong.  That is still "caught" when every wrong page
        # fails its sidecar (an fsck scrub flags exactly the damage);
        # anything less is silent corruption.
        store = fs.page_store(_PATH)
        bad = set(store.verify_all())
        wrong_pages = set((diff // store.page_size).tolist())
        caught = bool(bad) and wrong_pages <= bad
        return seconds, caught, caught or detected, stats, counters

    def sweep(
        self, rate_scales: Sequence[float] = (0.25, 0.5, 1.0, 2.0)
    ) -> ChaosReport:
        """Baseline plus one verified run per intensity."""
        baseline, ok, _, _, _ = self.run_once(None)
        report = ChaosReport(
            scenario=self.scenario_name,
            seed=self.plan.seed,
            nprocs=self.nprocs,
            total_bytes=self.total_bytes,
            baseline_seconds=baseline,
        )
        if not ok:
            raise AssertionError("fault-free chaos baseline wrote corrupt data")
        for scale in rate_scales:
            seconds, verified, detected, stats, counters = self.run_once(
                self.plan.scaled(scale)
            )
            report.points.append(
                ChaosPoint(
                    rate_scale=float(scale),
                    sim_seconds=seconds,
                    slowdown=seconds / baseline if baseline > 0 else float("inf"),
                    verified=verified,
                    detected=detected,
                    fault_stats=stats.snapshot(),
                    counters=counters,
                )
            )
        return report
