"""Chaos harness: completion-time degradation versus fault intensity.

A :class:`ChaosHarness` runs one fixed collective-write workload (the
selfcheck's interleaved tile pattern) repeatedly: once fault-free for
the baseline, then once per requested intensity with the scenario's
probabilistic rates scaled by that intensity.  Every run is verified
byte-for-byte against a direct numpy oracle — a chaos run that degrades
*correctness* instead of completion time is a failed run, whatever its
timing says.

Each point rebuilds the whole simulated cluster from scratch (fresh
file system, fresh injector), so points are independent and the whole
sweep is deterministic for a given (scenario, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import CostModel, DEFAULT_COST_MODEL
from repro.core import CollectiveFile
from repro.datatypes import BYTE, contiguous, resized
from repro.datatypes.segments import FlatCursor
from repro.datatypes.packing import scatter_segments
from repro.faults import FaultPlan, FaultStats, load_scenario
from repro.fs import SimFileSystem
from repro.mpi import Communicator, Hints
from repro.sim import Simulator

__all__ = ["ChaosPoint", "ChaosReport", "ChaosHarness"]

_PATH = "/chaos"


@dataclass
class ChaosPoint:
    """One intensity step of a chaos sweep."""

    rate_scale: float
    sim_seconds: float
    slowdown: float
    verified: bool
    fault_stats: Dict[str, float] = field(default_factory=dict)


@dataclass
class ChaosReport:
    """A full sweep: baseline plus one point per intensity."""

    scenario: str
    seed: int
    nprocs: int
    total_bytes: int
    baseline_seconds: float
    points: List[ChaosPoint] = field(default_factory=list)

    @property
    def all_verified(self) -> bool:
        return all(p.verified for p in self.points)

    def format(self) -> str:
        lines = [
            f"chaos sweep: scenario={self.scenario!r} seed={self.seed} "
            f"nprocs={self.nprocs} bytes={self.total_bytes}",
            f"  baseline (fault-free): {self.baseline_seconds * 1e3:9.3f} ms",
            f"  {'scale':>6} {'sim ms':>10} {'slowdown':>9} {'ok':>3}  faults",
        ]
        for p in self.points:
            fired = ", ".join(
                f"{k}={v:g}" for k, v in p.fault_stats.items() if v
            ) or "-"
            lines.append(
                f"  {p.rate_scale:6.2f} {p.sim_seconds * 1e3:10.3f} "
                f"{p.slowdown:8.2f}x {'ok' if p.verified else 'BAD':>3}  {fired}"
            )
        return "\n".join(lines)


class ChaosHarness:
    """Sweep a fault scenario's intensity over a fixed collective write.

    ``scenario`` is a ``name[:seed]`` spec or an explicit
    :class:`FaultPlan`.  The workload is ``count`` interleaved
    ``region``-byte tiles per rank, written with one ``write_all``."""

    def __init__(
        self,
        scenario: str | FaultPlan,
        *,
        nprocs: int = 4,
        region: int = 64,
        count: int = 16,
        hints: Optional[Hints] = None,
        cost: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        if isinstance(scenario, FaultPlan):
            self.plan = scenario
            self.scenario_name = "<custom>"
        else:
            self.plan = load_scenario(scenario)
            self.scenario_name = scenario.partition(":")[0]
        self.nprocs = nprocs
        self.region = region
        self.count = count
        # Default geometry: two aggregators, a collective buffer small
        # enough for several rounds per call — phase-boundary scenarios
        # (agg-crash) need boundaries to exist.
        self.hints = (
            hints if hints is not None else Hints(cb_nodes=2, cb_buffer_size=512)
        )
        self.cost = cost
        self.total_bytes = nprocs * region * count

    # -- workload -----------------------------------------------------------
    def _rank_buffer(self, rank: int) -> np.ndarray:
        n = self.region * self.count
        return ((np.arange(n, dtype=np.int64) * (rank + 1) + rank) % 251).astype(
            np.uint8
        )

    def _oracle(self) -> np.ndarray:
        """The expected file image, built without the simulator."""
        out = np.zeros(self.total_bytes, dtype=np.uint8)
        period = self.region * self.nprocs
        tile = resized(contiguous(self.region, BYTE), 0, period).flatten()
        for rank in range(self.nprocs):
            total = self.region * self.count
            batch = FlatCursor(tile, rank * self.region, total).all_segments()
            scatter_segments(out, batch, self._rank_buffer(rank))
        return out

    def run_once(self, plan: Optional[FaultPlan]) -> tuple[float, bool, FaultStats]:
        """One full run (open, write_all, close) under ``plan``.

        Returns (virtual completion seconds, contents verified, fault
        stats).  ``plan=None`` runs fault-free."""
        fs = SimFileSystem(self.cost)
        region, nprocs = self.region, self.nprocs
        hints = self.hints

        def main(ctx):
            comm = Communicator(ctx, self.cost)
            f = CollectiveFile(ctx, comm, fs, _PATH, hints=hints, cost=self.cost)
            tile = resized(contiguous(region, BYTE), 0, region * nprocs)
            f.set_view(disp=comm.rank * region, filetype=tile)
            f.write_all(self._rank_buffer(comm.rank))
            f.close()
            return ctx.now

        sim = Simulator(nprocs)
        injector = plan.install(sim) if plan is not None else None
        times = sim.run(main)
        seconds = max(times)
        got = fs.raw_bytes(_PATH, 0, self.total_bytes)
        verified = bool(np.array_equal(got, self._oracle()))
        stats = injector.stats if injector is not None else FaultStats()
        return seconds, verified, stats

    def sweep(
        self, rate_scales: Sequence[float] = (0.25, 0.5, 1.0, 2.0)
    ) -> ChaosReport:
        """Baseline plus one verified run per intensity."""
        baseline, ok, _ = self.run_once(None)
        report = ChaosReport(
            scenario=self.scenario_name,
            seed=self.plan.seed,
            nprocs=self.nprocs,
            total_bytes=self.total_bytes,
            baseline_seconds=baseline,
        )
        if not ok:
            raise AssertionError("fault-free chaos baseline wrote corrupt data")
        for scale in rate_scales:
            seconds, verified, stats = self.run_once(self.plan.scaled(scale))
            report.points.append(
                ChaosPoint(
                    rate_scale=float(scale),
                    sim_seconds=seconds,
                    slowdown=seconds / baseline if baseline > 0 else float("inf"),
                    verified=verified,
                    fault_stats=stats.snapshot(),
                )
            )
        return report
