"""Generic timed collective-I/O runs.

Each run builds a fresh simulated cluster (file system + ranks),
executes a workload through :class:`~repro.core.CollectiveFile`, and
reports **simulated** bandwidth: aggregate data bytes divided by the
virtual time from the post-open barrier to the slowest rank's close.
Wall-clock time is irrelevant to the reported numbers (pytest-benchmark
separately times the simulator itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.config import CostModel, DEFAULT_COST_MODEL
from repro.errors import CollectiveIOError
from repro.fs import SimFileSystem
from repro.hpio.patterns import HPIOPattern
from repro.hpio.timeseries import TimeSeriesPattern
from repro.hpio.verify import fill_pattern, verify_write
from repro.mpi import Hints
from repro.obs.hooks import PhaseAccumulator
from repro.obs.session import Session

__all__ = ["BenchResult", "run_collective", "run_hpio_write", "run_timeseries"]

_PATH = "/bench"


@dataclass
class BenchResult:
    """Outcome of one timed run."""

    label: str
    nprocs: int
    total_bytes: int
    sim_seconds: float
    params: Dict[str, object] = field(default_factory=dict)
    counters: Dict[str, object] = field(default_factory=dict)
    verified: Optional[bool] = None

    @property
    def bandwidth_mbs(self) -> float:
        if self.sim_seconds <= 0:
            return float("inf")
        return self.total_bytes / (1024.0 * 1024.0) / self.sim_seconds

    def __str__(self) -> str:
        v = "" if self.verified is None else (" OK" if self.verified else " **BAD DATA**")
        return (
            f"{self.label}: {self.bandwidth_mbs:8.2f} MB/s "
            f"({self.total_bytes / 1e6:.2f} MB in {self.sim_seconds * 1e3:.2f} ms){v}"
        )


def run_collective(
    nprocs: int,
    body: Callable,
    *,
    hints: Hints,
    cost: CostModel = DEFAULT_COST_MODEL,
    lock_granularity: Optional[int] = None,
    label: str = "run",
    params: Optional[Dict[str, object]] = None,
    trace: bool = False,
) -> tuple[BenchResult, SimFileSystem]:
    """Run ``body(ctx, comm, f) -> bytes_written`` on every rank.

    Runs through a :class:`~repro.obs.session.Session`, so every
    counter below is read from the session's metrics registry under its
    stable dotted name.  Timing covers everything between the post-open
    barrier and the completion of the collective close (so deferred
    cache flushes are charged to the run that deferred them).  With
    ``trace=True`` the result's counters include ``time_by_state`` —
    the MPE-style decomposition of where simulated time went
    (``tp:route`` / ``tp:exchange`` / ``tp:io``), metered live by a
    phase-boundary hook (no event log is stored), which is how the
    paper attributed the new implementation's overheads."""
    session = Session(
        _PATH,
        nprocs=nprocs,
        hints=hints,
        cost=cost,
        lock_granularity=lock_granularity,
    )
    phases = session.tracer.add_hook(PhaseAccumulator()) if trace else None
    written = session.run(body)
    total = sum(written)
    reg = session.registry
    counters: Dict[str, object] = {
        "fs": session.fs.stats(_PATH).snapshot(),
        "rounds": reg.value("coll.rounds", 0),
        "client_pairs_total": reg.total("coll.client.pairs"),
        "client_tiles_skipped_total": reg.total("coll.client.tiles_skipped"),
        "agg_pairs_total": reg.total("coll.agg.pairs"),
        "meta_bytes_total": reg.total("coll.meta.bytes"),
        "bytes_exchanged_total": reg.total("exchange.bytes"),
    }
    if phases is not None:
        counters["time_by_state"] = phases.time_by_state()
    from repro.mpi.topology import TOPOLOGY_KEY

    topo_stats = session.sim.shared.get(TOPOLOGY_KEY)
    if topo_stats is not None:
        counters["topology"] = topo_stats.snapshot()
    result = BenchResult(
        label=label,
        nprocs=nprocs,
        total_bytes=total,
        sim_seconds=session.makespan,
        params=dict(params or {}),
        counters=counters,
    )
    return result, session.fs


def run_hpio_write(
    pattern: HPIOPattern,
    *,
    impl: str,
    representation: str = "succinct",
    hints: Optional[Hints] = None,
    cost: CostModel = DEFAULT_COST_MODEL,
    label: Optional[str] = None,
    verify: bool = True,
    trace: bool = False,
) -> BenchResult:
    """One HPIO collective write across all ranks (a Figure 4/5 cell)."""
    base = hints if hints is not None else Hints()
    base = base.replace(coll_impl=impl)
    if impl == "old" and representation != "succinct":
        # The old code flattens everything anyway; representation is moot.
        representation = "succinct"

    def body(ctx, comm, f):
        rank = comm.rank
        f.set_view(
            disp=pattern.file_disp(rank),
            filetype=pattern.filetype(rank, representation),
        )
        buf = fill_pattern(pattern, rank)
        memtype = pattern.memtype()
        if memtype is None:
            f.write_all(buf)
        else:
            f.write_all(buf, memtype=memtype, count=1)
        return pattern.bytes_per_client

    result, fs = run_collective(
        pattern.nprocs,
        body,
        hints=base,
        cost=cost,
        trace=trace,
        label=label or f"{impl}+{representation} {pattern.describe()}",
        params={
            "impl": impl,
            "representation": representation,
            "region_size": pattern.region_size,
            "region_count": pattern.region_count,
            "cb_nodes": base["cb_nodes"],
            "io_method": base["io_method"],
        },
    )
    if verify:
        result.verified = verify_write(fs, _PATH, pattern)
        if not result.verified:
            raise CollectiveIOError(f"benchmark wrote corrupt data: {result.label}")
    return result


def run_hpio_read(
    pattern: HPIOPattern,
    *,
    impl: str,
    representation: str = "succinct",
    hints: Optional[Hints] = None,
    cost: CostModel = DEFAULT_COST_MODEL,
    label: Optional[str] = None,
) -> BenchResult:
    """One HPIO collective *read* across all ranks.

    The file is pre-populated with the pattern's oracle image; every
    rank's read-back is verified against a direct gather."""
    from repro.datatypes.packing import gather_segments
    from repro.datatypes.segments import FlatCursor
    from repro.hpio.verify import expected_file_bytes

    base = hints if hints is not None else Hints()
    base = base.replace(coll_impl=impl)
    if impl == "old" and representation != "succinct":
        representation = "succinct"
    image = expected_file_bytes(pattern)

    def body(ctx, comm, f):
        rank = comm.rank
        f.set_view(
            disp=pattern.file_disp(rank),
            filetype=pattern.filetype(rank, representation),
        )
        out = np.zeros(pattern.bytes_per_client, dtype=np.uint8)
        f.read_all(out)
        flat = pattern.filetype(rank, "succinct").flatten()
        batch = FlatCursor(flat, pattern.file_disp(rank), out.size).all_segments()
        expect = gather_segments(image, batch)
        if not np.array_equal(out, expect):
            raise CollectiveIOError(f"rank {rank} read corrupt data")
        return out.size

    # The session owns the file system, so install the oracle image
    # before the ranks start.
    session = Session(_PATH, nprocs=pattern.nprocs, hints=base, cost=cost)
    session.fs.raw_write(_PATH, 0, image)
    read = session.run(body)
    result = BenchResult(
        label=label or f"read {impl}+{representation} {pattern.describe()}",
        nprocs=pattern.nprocs,
        total_bytes=sum(read),
        sim_seconds=session.makespan,
        params={
            "impl": impl,
            "representation": representation,
            "region_size": pattern.region_size,
            "cb_nodes": base["cb_nodes"],
            "io_method": base["io_method"],
        },
        counters={"fs": session.fs.stats(_PATH).snapshot()},
        verified=True,
    )
    return result


def run_timeseries(
    ts: TimeSeriesPattern,
    *,
    hints: Hints,
    cost: CostModel = DEFAULT_COST_MODEL,
    lock_granularity: Optional[int] = None,
    label: str = "timeseries",
    verify: bool = True,
) -> BenchResult:
    """The Figure 7 run: one collective write per time step, then close."""

    def body(ctx, comm, f):
        rank = comm.rank
        written = 0
        for step in range(ts.timesteps):
            f.set_view(disp=0, filetype=ts.filetype(rank, step))
            buf = ts.step_buffer(rank, step)
            f.write_all(buf)
            written += buf.size
        return written

    result, fs = run_collective(
        ts.nprocs,
        body,
        hints=hints,
        cost=cost,
        lock_granularity=lock_granularity,
        label=label,
        params={
            "nprocs": ts.nprocs,
            "pfr": hints["persistent_file_realms"],
            "alignment": hints["realm_alignment"],
            "cb_nodes": hints["cb_nodes"],
        },
    )
    if verify:
        result.verified = _verify_timeseries(fs, ts)
        if not result.verified:
            raise CollectiveIOError(f"benchmark wrote corrupt data: {label}")
    return result


def _verify_timeseries(fs: SimFileSystem, ts: TimeSeriesPattern) -> bool:
    """Rebuild the expected file image step by step and compare."""
    from repro.datatypes.segments import FlatCursor
    from repro.datatypes.packing import scatter_segments

    expect = np.zeros(ts.file_bytes, dtype=np.uint8)
    for step in range(ts.timesteps):
        for rank in range(ts.nprocs):
            flat = ts.filetype(rank, step).flatten()
            total = ts.bytes_per_rank_per_step(rank) * ts.points
            if total == 0:
                continue
            batch = FlatCursor(flat, 0, total).all_segments()
            scatter_segments(expect, batch, ts.step_buffer(rank, step))
    got = fs.raw_bytes(_PATH, 0, ts.file_bytes)
    return bool(np.array_equal(got, expect))
