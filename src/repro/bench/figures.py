"""Experiment definitions for every evaluation figure (§6).

Each ``figN_experiment`` returns the list of :class:`BenchResult` cells
and can be rendered with :func:`repro.bench.reporting.format_series`.
Three scales are available (``REPRO_BENCH_SCALE`` or the ``scale=``
argument):

* ``quick``   — a handful of cells, seconds; CI smoke.
* ``standard``— the default: every axis of the paper's figures with a
  reduced grid and scaled-down data volumes (the simulator moves real
  bytes, so paper-size runs take long wall-clock times).
* ``full``    — the paper's full grid (minutes of wall time).

Scaling notes (also in EXPERIMENTS.md): region *counts* and time-step
counts are reduced relative to the paper; region sizes, spacings,
extents, stripe/page geometry, and aggregator ratios are the paper's.
The cost model is calibrated so absolute MB/s lands in the paper's
range; the claims being reproduced are orderings and crossovers.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.bench.harness import BenchResult, run_hpio_write, run_timeseries
from repro.config import CostModel, DEFAULT_COST_MODEL
from repro.errors import ReproError
from repro.hpio.patterns import HPIOPattern
from repro.hpio.timeseries import TimeSeriesPattern
from repro.mpi import Hints

__all__ = [
    "bench_scale",
    "fig4_experiment",
    "fig5_experiment",
    "fig7_experiment",
    "ablation_heap",
    "ablation_exchange",
    "ablation_cb_size",
    "ablation_balanced_realms",
]

_SCALES = ("quick", "standard", "full")


def bench_scale(default: str = "standard") -> str:
    """Resolve the benchmark scale from REPRO_BENCH_SCALE."""
    scale = os.environ.get("REPRO_BENCH_SCALE", default).strip().lower()
    if scale not in _SCALES:
        raise ReproError(f"REPRO_BENCH_SCALE must be one of {_SCALES}, got {scale!r}")
    return scale


# ---------------------------------------------------------------------------
# Figure 4 — HPIO, 64 procs, noncontig memory & file; new+struct vs
# new+vect vs old+vect across aggregator counts and region sizes.
# ---------------------------------------------------------------------------

_FIG4_GRID = {
    "quick": dict(nprocs=16, counts=128, regions=[8, 512], aggs=[8]),
    "standard": dict(nprocs=64, counts=512, regions=[8, 64, 512, 4096], aggs=[8, 32]),
    "full": dict(
        nprocs=64,
        counts=1024,
        regions=[8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096],
        aggs=[8, 16, 24, 32],
    ),
}

_FIG4_METHODS = [
    ("new+struct", "new", "succinct"),
    ("new+vect", "new", "enumerated"),
    ("old+vect", "old", "succinct"),
]


def fig4_experiment(
    scale: Optional[str] = None, cost: CostModel = DEFAULT_COST_MODEL
) -> List[BenchResult]:
    """Reproduce Figure 4 (one BenchResult per plotted point)."""
    grid = _FIG4_GRID[scale or bench_scale()]
    results: List[BenchResult] = []
    for aggs in grid["aggs"]:
        for region in grid["regions"]:
            pattern = HPIOPattern(
                nprocs=grid["nprocs"],
                region_size=region,
                region_count=grid["counts"],
                region_spacing=128,
                mem_contig=False,
                file_contig=False,
            )
            for label, impl, rep in _FIG4_METHODS:
                r = run_hpio_write(
                    pattern,
                    impl=impl,
                    representation=rep,
                    hints=Hints(cb_nodes=aggs),
                    cost=cost,
                    label=f"fig4 {label} aggs={aggs} region={region}",
                )
                r.params.update({"method": label, "aggs": aggs, "region": region})
                results.append(r)
    return results


# ---------------------------------------------------------------------------
# Figure 5 — conditional data sieving: datasieve vs naive per flush,
# across filetype extents and useful-data fractions.
# ---------------------------------------------------------------------------

_FIG5_GRID = {
    "quick": dict(nprocs=8, aggs=4, file_mb=16, extents=[1024, 65536], fracs=[0.19, 0.97]),
    "standard": dict(
        nprocs=16,
        aggs=8,
        file_mb=64,
        extents=[1024, 8192, 16384, 65536],
        fracs=[0.03, 0.19, 0.50, 0.81, 0.97, 1.0],
    ),
    "full": dict(
        nprocs=16,
        aggs=8,
        file_mb=256,
        extents=[1024, 8192, 16384, 65536],
        fracs=[0.03, 0.19, 0.34, 0.50, 0.66, 0.81, 0.97, 1.0],
    ),
}


def fig5_experiment(
    scale: Optional[str] = None, cost: CostModel = DEFAULT_COST_MODEL
) -> List[BenchResult]:
    """Reproduce Figure 5: hold the filetype extent fixed per panel,
    sweep the useful-data fraction, compare the two flush methods."""
    grid = _FIG5_GRID[scale or bench_scale()]
    nprocs = grid["nprocs"]
    file_bytes = grid["file_mb"] << 20
    results: List[BenchResult] = []
    for extent in grid["extents"]:
        slots = file_bytes // extent
        count = max(slots // nprocs, 1)
        for frac in grid["fracs"]:
            if frac >= 1.0:
                region = extent  # the contiguous 100% point
            else:
                region = max((int(extent * frac) // 32) * 32, 32)
            pattern = HPIOPattern(
                nprocs=nprocs,
                region_size=region,
                region_count=count,
                region_spacing=extent - region,
                mem_contig=True,
                file_contig=False,
            )
            for method in ("datasieve", "naive"):
                r = run_hpio_write(
                    pattern,
                    impl="new",
                    representation="succinct",
                    hints=Hints(cb_nodes=grid["aggs"], io_method=method),
                    cost=cost,
                    label=f"fig5 {method} extent={extent} region={region}",
                )
                r.params.update(
                    {
                        "method": method,
                        "extent": extent,
                        "region": region,
                        "frac": round(region / extent, 3),
                    }
                )
                results.append(r)
    return results


# ---------------------------------------------------------------------------
# Figure 7 — PFR x file-realm alignment over client counts, incoherent
# write-back caches, time-series workload, half the clients aggregate.
# ---------------------------------------------------------------------------

_FIG7_GRID = {
    "quick": dict(clients=[8, 16], points=512, timesteps=4),
    "standard": dict(clients=[16, 32, 48, 64], points=2048, timesteps=8),
    "full": dict(clients=[16, 32, 48, 64], points=2048, timesteps=32),
}

_FIG7_CONFIGS = [
    ("pfr/fr-align", True, True),
    ("pfr/no-fr-align", True, False),
    ("no-pfr/fr-align", False, True),
    ("no-pfr/no-fr-align", False, False),
]


def fig7_experiment(
    scale: Optional[str] = None, cost: CostModel = DEFAULT_COST_MODEL
) -> List[BenchResult]:
    """Reproduce Figure 7 (paper element/point geometry; step count is
    scale-reduced)."""
    grid = _FIG7_GRID[scale or bench_scale()]
    results: List[BenchResult] = []
    for clients in grid["clients"]:
        ts = TimeSeriesPattern(
            nprocs=clients,
            element_size=32,
            elems_per_point=100,
            points=grid["points"],
            timesteps=grid["timesteps"],
        )
        for label, pfr, align in _FIG7_CONFIGS:
            hints = Hints(
                cb_nodes=max(clients // 2, 1),
                cache_mode="incoherent",
                persistent_file_realms=pfr,
                realm_alignment=cost.stripe_size if align else 0,
                cache_pages=4096,
                io_method="datasieve",
            )
            r = run_timeseries(
                ts,
                hints=hints,
                cost=cost,
                lock_granularity=cost.stripe_size,
                label=f"fig7 {label} clients={clients}",
                verify=False,  # verified separately in the test suite
            )
            r.params.update({"config": label, "clients": clients})
            results.append(r)
    return results


# ---------------------------------------------------------------------------
# Ablations — design choices DESIGN.md calls out.
# ---------------------------------------------------------------------------

def _ablation_pattern(nprocs: int = 16) -> HPIOPattern:
    return HPIOPattern(
        nprocs=nprocs, region_size=64, region_count=512, region_spacing=128
    )


def ablation_heap(cost: CostModel = DEFAULT_COST_MODEL) -> List[BenchResult]:
    """Binary-heap progress tracking vs per-round rescans (§5.3)."""
    # A small collective buffer forces many rounds; without the heap's
    # per-aggregator progress tracking the client rescans its access
    # from the start every round.
    pattern = HPIOPattern(
        nprocs=16, region_size=64, region_count=2048, region_spacing=128
    )
    out = []
    for use_heap in (True, False):
        r = run_hpio_write(
            pattern,
            impl="new",
            representation="enumerated",  # no tile skipping to hide rescans
            hints=Hints(cb_nodes=8, use_heap=use_heap, cb_buffer_size=64 * 1024),
            cost=cost,
            label=f"heap={use_heap}",
        )
        r.params.update({"use_heap": use_heap})
        out.append(r)
    return out


def ablation_exchange(cost: CostModel = DEFAULT_COST_MODEL) -> List[BenchResult]:
    """MPI_Alltoallw vs nonblocking vs two_layer data exchange (§5.4).

    Run on two networks: a commodity one (collective messages cost the
    same as point-to-point) and a BG/L-style one whose interconnect is
    specialized for collectives (``net_collective_factor`` 0.25).  The
    paper's argument is exactly that the alltoallw path pays off on the
    latter.  The two_layer rows run on the same networks but with an
    8-ranks-per-node topology armed, which is where intra-node
    aggregation has something to aggregate."""
    pattern = _ablation_pattern()
    out = []
    for net_label, factor in (("commodity", 1.0), ("collective-net", 0.25)):
        net_cost = cost.replace(net_collective_factor=factor)
        for mode in ("alltoallw", "nonblocking", "two_layer"):
            run_cost = (
                net_cost.replace(procs_per_node=8)
                if mode == "two_layer"
                else net_cost
            )
            r = run_hpio_write(
                pattern,
                impl="new",
                representation="succinct",
                hints=Hints(cb_nodes=8, exchange=mode),
                cost=run_cost,
                label=f"exchange={mode} net={net_label}",
            )
            r.params.update({"exchange": mode, "network": net_label})
            out.append(r)
    return out


def ablation_cb_size(cost: CostModel = DEFAULT_COST_MODEL) -> List[BenchResult]:
    """Collective-buffer-size sweep (ROMIO's most-tuned knob).

    Small buffers multiply the round count (per-round exchange and
    flush overheads dominate); past the point where one round covers an
    aggregator's realm, growing the buffer changes nothing.  The
    "flexible tuning" the paper's §4 promises is exactly making knobs
    like this cheap to explore."""
    pattern = HPIOPattern(
        nprocs=16, region_size=256, region_count=512, region_spacing=128
    )
    out = []
    for cb in (16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20):
        r = run_hpio_write(
            pattern,
            impl="new",
            representation="succinct",
            hints=Hints(cb_nodes=8, cb_buffer_size=cb),
            cost=cost,
            label=f"cb={cb >> 10}KB",
        )
        r.params.update({"cb_kb": cb >> 10, "rounds": r.counters["rounds"]})
        out.append(r)
    return out


def ablation_balanced_realms(cost: CostModel = DEFAULT_COST_MODEL) -> List[BenchResult]:
    """Even vs load-balanced realms on a skewed access (§5.2/§7).

    Half the ranks write a dense 16 MB block at the front of the file,
    half write a single tiny region 1 GB away: the aggregate access
    region spans the whole gigabyte, so the even partition hands all the
    dense data to one aggregator while three sit idle."""
    nprocs = 8
    region = 64 << 10
    count = 64
    far = 1 << 30
    out = []
    for strategy in ("even", "balanced"):
        hints = Hints(cb_nodes=4, realm_strategy=strategy, cache_mode="off")

        def body(ctx, comm, f):
            import numpy as np
            from repro.datatypes import BYTE, contiguous, resized

            rank = comm.rank
            if rank < nprocs // 2:
                # Dense interleaved block at the front.
                f.set_view(
                    disp=rank * region,
                    filetype=resized(contiguous(region, BYTE), 0, region * (nprocs // 2)),
                )
                buf = np.full(region * count, rank + 1, dtype=np.uint8)
            else:
                # One small region far away (sparse cluster).
                f.set_view(disp=far + rank * 4096, filetype=contiguous(4096, BYTE))
                buf = np.full(4096, rank + 1, dtype=np.uint8)
            f.write_all(buf)
            return buf.size

        from repro.bench.harness import run_collective

        r, _ = run_collective(
            nprocs,
            body,
            hints=hints,
            cost=cost,
            label=f"realms={strategy}",
            params={"strategy": strategy},
        )
        out.append(r)
    return out
