"""Plain-text rendering of benchmark series (the paper's plots as tables)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.harness import BenchResult

__all__ = ["format_series", "format_table", "series_from_results"]


def series_from_results(
    results: Sequence[BenchResult], x_key: str, series_key: str
) -> Dict[object, Dict[object, float]]:
    """Pivot results into {series_label: {x_value: bandwidth}}."""
    out: Dict[object, Dict[object, float]] = {}
    for r in results:
        series = r.params.get(series_key, r.label)
        x = r.params.get(x_key)
        out.setdefault(series, {})[x] = r.bandwidth_mbs
    return out


def format_series(
    title: str,
    series: Dict[object, Dict[object, float]],
    *,
    x_label: str = "x",
    unit: str = "MB/s",
) -> str:
    """Render {series: {x: y}} as an aligned table (x down, series across)."""
    xs: List[object] = sorted({x for ys in series.values() for x in ys})
    names = list(series)
    widths = [max(10, len(str(n)) + 2) for n in names]
    lines = [title, "-" * len(title)]
    header = f"{x_label:>12} " + " ".join(
        f"{str(n):>{w}}" for n, w in zip(names, widths)
    )
    lines.append(header + f"   [{unit}]")
    for x in xs:
        row = f"{str(x):>12} "
        for n, w in zip(names, widths):
            y = series[n].get(x)
            row += f"{y:>{w}.2f} " if y is not None else " " * (w + 1)
        lines.append(row.rstrip())
    return "\n".join(lines)


def format_table(title: str, rows: Sequence[Dict[str, object]]) -> str:
    """Render a list of {column: value} dicts as an aligned table."""
    if not rows:
        return f"{title}\n(no rows)"
    cols = list(rows[0])
    widths = {
        c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in rows)) for c in cols
    }
    lines = [title, "-" * len(title)]
    lines.append("  ".join(f"{c:>{widths[c]}}" for c in cols))
    for r in rows:
        lines.append("  ".join(f"{_fmt(r.get(c)):>{widths[c]}}" for c in cols))
    return "\n".join(lines)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)
