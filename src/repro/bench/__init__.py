"""Benchmark harness reproducing the paper's evaluation (§6).

* :mod:`~repro.bench.harness` — generic timed collective-I/O runs on a
  fresh simulated cluster, returning simulated bandwidth and counters;
* :mod:`~repro.bench.figures` — one experiment definition per paper
  figure (4, 5, 7) plus ablations;
* :mod:`~repro.bench.reporting` — plain-text series/table rendering;
* :mod:`~repro.bench.chaos` — fault-intensity sweeps measuring
  completion-time degradation with byte-level verification.
"""

from repro.bench.chaos import ChaosHarness, ChaosPoint, ChaosReport
from repro.bench.harness import BenchResult, run_hpio_write, run_timeseries
from repro.bench.reporting import format_series, format_table

__all__ = [
    "BenchResult",
    "ChaosHarness",
    "ChaosPoint",
    "ChaosReport",
    "run_hpio_write",
    "run_timeseries",
    "format_series",
    "format_table",
]
