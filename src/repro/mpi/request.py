"""Nonblocking-communication request objects."""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.errors import MPIError

__all__ = ["Request", "waitall"]


class Request:
    """Handle for a pending nonblocking operation.

    ``wait()`` blocks (in virtual time) until the operation completes
    and returns its value (the received object for irecv, ``None`` for
    isend).  ``test()`` polls without blocking.
    """

    __slots__ = ("_wait_fn", "_test_fn", "_done", "_value")

    def __init__(
        self,
        wait_fn: Optional[Callable[[], Any]] = None,
        test_fn: Optional[Callable[[], tuple[bool, Any]]] = None,
        value: Any = None,
        done: bool = False,
    ) -> None:
        self._wait_fn = wait_fn
        self._test_fn = test_fn
        self._done = done
        self._value = value

    @classmethod
    def completed(cls, value: Any = None) -> "Request":
        """A request that is already complete (e.g. a buffered isend)."""
        return cls(value=value, done=True)

    def wait(self) -> Any:
        """Block until complete; idempotent."""
        if not self._done:
            if self._wait_fn is None:
                raise MPIError("request has no completion function")
            self._value = self._wait_fn()
            self._done = True
            self._wait_fn = None
            self._test_fn = None
        return self._value

    def test(self) -> tuple[bool, Any]:
        """Nonblocking completion check: (done, value-or-None)."""
        if self._done:
            return True, self._value
        if self._test_fn is None:
            return False, None
        done, value = self._test_fn()
        if done:
            self._value = value
            self._done = True
            self._wait_fn = None
            self._test_fn = None
        return done, self._value if done else None

    @property
    def done(self) -> bool:
        return self._done


def waitall(requests: Sequence[Request]) -> list:
    """Wait for every request; returns their values in order."""
    return [r.wait() for r in requests]
