"""Network cost model and payload sizing.

The model is LogP-flavoured: the sender pays a fixed overhead, the
message spends ``bytes * net_byte_time`` in transit, and the receiver
pays a fixed overhead on completion.  All parameters come from
:class:`repro.config.CostModel` so experiments can vary the network
without touching communication code.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.config import CostModel, DEFAULT_COST_MODEL

__all__ = ["payload_nbytes", "Network"]


def payload_nbytes(obj: object) -> int:
    """Deterministic wire size of a message payload in bytes.

    numpy arrays and byte strings are exact; scalars are 8; containers
    sum their elements plus a small per-element header; anything else
    falls back to its pickle length.

    Containers are sized independently of iteration order: dict items
    and set elements are visited in sorted-key order, so two logically
    equal payloads built in different insertion orders (or under
    different ``PYTHONHASHSEED``) always price identically — a payload
    whose cost depended on hash order would silently break run-to-run
    determinism of every virtual timestamp downstream of the message.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, (tuple, list)):
        return 8 + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: repr(kv[0]))
        return 8 + sum(payload_nbytes(k) + payload_nbytes(v) for k, v in items)
    if isinstance(obj, (set, frozenset)):
        return 8 + sum(payload_nbytes(x) for x in sorted(obj, key=repr))
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


class Network:
    """Charges virtual time for message events.

    Stateless apart from the cost model and an optional fault injector
    (delayed/dropped-message events); per-OST-style queuing is not
    modelled for the network (the paper's interconnect was far from
    saturated — the file system was the bottleneck)."""

    __slots__ = ("cost", "faults")

    def __init__(self, cost: CostModel = DEFAULT_COST_MODEL) -> None:
        self.cost = cost
        #: Installed :class:`repro.faults.FaultInjector` (or ``None``);
        #: wired by the :class:`~repro.mpi.comm.Communicator` from the
        #: simulator's shared dict.
        self.faults = None

    def send_overhead(self, intra: bool = False) -> float:
        """Sender-side fixed cost of a blocking send.

        ``intra`` selects the intra-node tier (both peers share a node
        under an armed topology): shared-memory transport overhead
        instead of the NIC/TCP path."""
        return self.cost.net_intra_latency if intra else self.cost.net_latency

    def post_overhead(self, intra: bool = False) -> float:
        """Sender-side fixed cost of posting a nonblocking operation."""
        if intra:
            # Posting through shared memory is the transport overhead
            # itself — there is no cheaper deferred path to set up.
            return self.cost.net_intra_latency
        return self.cost.net_post_overhead

    def transit_time(self, nbytes: int, intra: bool = False) -> float:
        """Fault-free time the payload spends on the wire."""
        rate = self.cost.net_intra_byte_time if intra else self.cost.net_byte_time
        return nbytes * rate

    def delivery_delay(
        self,
        nbytes: int,
        src: int,
        dst: int,
        now: float,
        factor: float = 1.0,
        intra: bool = False,
    ) -> float:
        """Transit time (scaled by the collective-network ``factor``)
        plus any injected delay/retransmission penalty for one message
        sent at virtual time ``now``."""
        transit = self.transit_time(nbytes, intra) * factor
        if self.faults is not None:
            transit += self.faults.net_penalty(src, dst, now, transit)
        return transit

    def recv_overhead(self, intra: bool = False) -> float:
        """Receiver-side fixed cost of completing a receive."""
        return self.cost.net_intra_latency if intra else self.cost.net_latency
