"""Network cost model and payload sizing.

The model is LogP-flavoured: the sender pays a fixed overhead, the
message spends ``bytes * net_byte_time`` in transit, and the receiver
pays a fixed overhead on completion.  All parameters come from
:class:`repro.config.CostModel` so experiments can vary the network
without touching communication code.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.config import CostModel, DEFAULT_COST_MODEL

__all__ = ["payload_nbytes", "Network"]


def payload_nbytes(obj: object) -> int:
    """Deterministic wire size of a message payload in bytes.

    numpy arrays and byte strings are exact; scalars are 8; containers
    sum their elements plus a small per-element header; anything else
    falls back to its pickle length.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, (tuple, list)):
        return 8 + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 8 + sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


class Network:
    """Charges virtual time for message events.

    Stateless apart from the cost model; per-OST-style queuing is not
    modelled for the network (the paper's interconnect was far from
    saturated — the file system was the bottleneck)."""

    __slots__ = ("cost",)

    def __init__(self, cost: CostModel = DEFAULT_COST_MODEL) -> None:
        self.cost = cost

    def send_overhead(self) -> float:
        """Sender-side fixed cost of a blocking send."""
        return self.cost.net_latency

    def post_overhead(self) -> float:
        """Sender-side fixed cost of posting a nonblocking operation."""
        return self.cost.net_post_overhead

    def transit_time(self, nbytes: int) -> float:
        """Time the payload spends on the wire."""
        return nbytes * self.cost.net_byte_time

    def recv_overhead(self) -> float:
        """Receiver-side fixed cost of completing a receive."""
        return self.cost.net_latency
