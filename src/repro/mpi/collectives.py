"""Collective operations, implemented as distributed algorithms.

All collectives are built from the point-to-point layer, so their
virtual-time cost emerges from the message structure:

* ``barrier`` — dissemination, ceil(log2 P) rounds;
* ``bcast`` — binomial tree;
* ``reduce``/``allreduce`` — binomial reduction (+ broadcast);
* ``gather``/``gatherv`` — linear into the root (root cost scales with
  P, as a real implementation's does for variable-size payloads);
* ``allgather`` — ring, P-1 steps;
* ``scatter`` — linear from the root;
* ``alltoall`` — pairwise exchange, P-1 rounds of sendrecv;
* ``alltoallw`` — pairwise exchange of non-contiguous regions gathered
  and scattered directly from/to the supplied buffers (Section 5.4's
  zero-extra-copy data exchange; the gather/scatter byte-touch cost is
  charged, but no intermediate pack buffer copy is).

Internal tags live in a reserved space (>= 2**20) so user traffic can
never cross-match collective traffic.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.errors import MPIError
from repro.datatypes.packing import gather_segments, scatter_segments
from repro.datatypes.segments import SegmentBatch

__all__ = ["CollectiveMixin"]

_TAG_BARRIER = 1 << 20
_TAG_BCAST = (1 << 20) + 1
_TAG_REDUCE = (1 << 20) + 2
_TAG_GATHER = (1 << 20) + 3
_TAG_ALLGATHER = (1 << 20) + 4
_TAG_SCATTER = (1 << 20) + 5
_TAG_ALLTOALL = (1 << 20) + 6
_TAG_ALLTOALLW = (1 << 20) + 7


class CollectiveMixin:
    """Collective algorithms; mixed into ``Communicator``.

    Relies on the host class providing ``rank``, ``size``, ``ctx``,
    ``cost``, ``send``, ``recv``, ``isend``, ``sendrecv``.
    """

    # These attributes/methods come from Communicator.
    rank: int
    size: int

    # -- barrier -----------------------------------------------------------
    def barrier(self) -> None:
        """Dissemination barrier: log2(P) rounds of token exchange."""
        size, rank = self.size, self.rank
        mask = 1
        while mask < size:
            dst = (rank + mask) % size
            src = (rank - mask) % size
            self.sendrecv(None, dst, src, _TAG_BARRIER, _TAG_BARRIER)
            mask <<= 1

    # -- broadcast -----------------------------------------------------------
    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """Binomial-tree broadcast; returns the object on every rank."""
        self._check_root(root)
        size, rank = self.size, self.rank
        vrank = (rank - root) % size
        mask = 1
        while mask < size:
            if vrank & mask:
                src = ((vrank - mask) + root) % size
                obj = self.recv(src, _TAG_BCAST)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if vrank + mask < size:
                dst = ((vrank + mask) + root) % size
                self.send(obj, dst, _TAG_BCAST)
            mask >>= 1
        return obj

    # -- reductions ------------------------------------------------------------
    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
        root: int = 0,
    ) -> Any:
        """Binomial-tree reduction; result valid only at ``root``.

        ``op`` must be associative and commutative (the tree reorders
        operands)."""
        self._check_root(root)
        size, rank = self.size, self.rank
        vrank = (rank - root) % size
        mask = 1
        while mask < size:
            if vrank & mask:
                dst = ((vrank & ~mask) + root) % size
                self.send(value, dst, _TAG_REDUCE)
                return None
            partner_v = vrank | mask
            if partner_v < size:
                other = self.recv(((partner_v) + root) % size, _TAG_REDUCE)
                value = op(value, other)
            mask <<= 1
        return value

    def allreduce(
        self, value: Any, op: Callable[[Any, Any], Any] = lambda a, b: a + b
    ) -> Any:
        """Reduce to rank 0, then broadcast the result."""
        return self.bcast(self.reduce(value, op, root=0), root=0)

    # -- gathers ----------------------------------------------------------------
    def gather(self, obj: Any, root: int = 0) -> Optional[list]:
        """Linear gather; returns the rank-ordered list at root."""
        self._check_root(root)
        if self.rank != root:
            self.send(obj, root, _TAG_GATHER)
            return None
        out: list = [None] * self.size
        out[root] = obj
        for src in range(self.size):
            if src != root:
                out[src] = self.recv(src, _TAG_GATHER)
        return out

    def allgather(self, obj: Any) -> list:
        """Ring allgather: P-1 steps, each passing one block along."""
        size, rank = self.size, self.rank
        out: list = [None] * size
        out[rank] = obj
        if size == 1:
            return out
        send_to = (rank + 1) % size
        recv_from = (rank - 1) % size
        cur = rank
        for _ in range(size - 1):
            req = self.isend(out[cur], send_to, _TAG_ALLGATHER)
            prev = (cur - 1) % size
            out[prev] = self.recv(recv_from, _TAG_ALLGATHER)
            req.wait()
            cur = prev
        return out

    # -- scatters ---------------------------------------------------------------
    def scatter(self, objs: Optional[Sequence[Any]] = None, root: int = 0) -> Any:
        """Linear scatter from root; returns this rank's element."""
        self._check_root(root)
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise MPIError(
                    f"scatter root needs a sequence of {self.size} elements"
                )
            for dst in range(self.size):
                if dst != root:
                    self.send(objs[dst], dst, _TAG_SCATTER)
            return objs[root]
        return self.recv(root, _TAG_SCATTER)

    # -- all-to-all ----------------------------------------------------------------
    def alltoall(self, objs: Sequence[Any]) -> list:
        """Pairwise-exchange all-to-all of arbitrary per-peer objects.

        ``objs[i]`` goes to rank ``i``; returns the list received.  Use
        ``None`` entries for peers with nothing to say (still
        exchanged, so the rounds stay matched)."""
        size, rank = self.size, self.rank
        if len(objs) != size:
            raise MPIError(f"alltoall needs {size} entries, got {len(objs)}")
        out: list = [None] * size
        out[rank] = objs[rank]
        for step in range(1, size):
            dst = (rank + step) % size
            src = (rank - step) % size
            out[src] = self.sendrecv(objs[dst], dst, src, _TAG_ALLTOALL, _TAG_ALLTOALL)
        return out

    alltoallv = alltoall  # same generic payload mechanism

    def alltoallw(
        self,
        sendbuf: Optional[np.ndarray],
        send_batches: Sequence[Optional[SegmentBatch]],
        recvbuf: Optional[np.ndarray],
        recv_batches: Sequence[Optional[SegmentBatch]],
        skip: frozenset = frozenset(),
    ) -> None:
        """Exchange non-contiguous regions directly between buffers.

        For each peer ``i``, the bytes of ``send_batches[i]`` (addresses
        into ``sendbuf``) are delivered into the addresses of
        ``recv_batches[i]`` (into ``recvbuf``).  Byte counts must agree
        pairwise.  This models MPI_Alltoallw driven by derived
        datatypes: the datatype engine touches each byte
        (``cpu_per_byte_touch``) but no intermediate pack buffer exists,
        so no ``cpu_per_byte_copy`` is charged — the Section 5.4
        optimization.

        ``skip`` names ranks excluded from the exchange (liveness:
        suspects being completed *around*).  Every participating rank
        must pass the same set — a skipped peer gets no send and is
        expected to send nothing, keeping the pairwise rounds matched;
        a rank that is itself in ``skip`` does nothing at all.
        """
        size, rank = self.size, self.rank
        if len(send_batches) != size or len(recv_batches) != size:
            raise MPIError("alltoallw needs one batch (or None) per peer")
        if rank in skip:
            return
        touch = self.cost.cpu_per_byte_touch  # type: ignore[attr-defined]
        ctx = self.ctx  # type: ignore[attr-defined]

        def pull(batch: Optional[SegmentBatch]) -> Optional[np.ndarray]:
            if batch is None or batch.empty:
                return None
            if sendbuf is None:
                raise MPIError("alltoallw: non-empty send batch but no send buffer")
            ctx.charge(batch.total_bytes * touch)
            return gather_segments(sendbuf, batch)

        def push(batch: Optional[SegmentBatch], data: Optional[np.ndarray]) -> None:
            nbytes = 0 if data is None else int(data.size)
            expect = 0 if batch is None or batch.empty else batch.total_bytes
            if nbytes != expect:
                raise MPIError(
                    f"alltoallw: peer sent {nbytes} bytes, local batch expects {expect}"
                )
            if expect == 0:
                return
            if recvbuf is None:
                raise MPIError("alltoallw: non-empty recv batch but no recv buffer")
            ctx.charge(expect * touch)
            assert batch is not None and data is not None
            scatter_segments(recvbuf, batch, data)

        # Self-exchange first, then pairwise rounds.
        push(recv_batches[rank], pull(send_batches[rank]))
        for step in range(1, size):
            dst = (rank + step) % size
            src = (rank - step) % size
            if skip:
                # Keep legs matched without ever touching a skipped
                # peer: a skipped dst receives nothing from us, a
                # skipped src sends nothing to us.
                if dst not in skip:
                    self.isend(pull(send_batches[dst]), dst, _TAG_ALLTOALLW)
                if src not in skip:
                    push(recv_batches[src], self.recv(src, _TAG_ALLTOALLW))
                continue
            received = self.sendrecv(
                pull(send_batches[dst]), dst, src, _TAG_ALLTOALLW, _TAG_ALLTOALLW
            )
            push(recv_batches[src], received)

    # -- helpers --------------------------------------------------------------
    def _check_root(self, root: int) -> None:
        if not (0 <= root < self.size):
            raise MPIError(f"root {root} out of range for size {self.size}")

    # Provided by Communicator; declared for type checkers.
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:  # pragma: no cover
        raise NotImplementedError

    def recv(self, source: int = -1, tag: int = -1) -> Any:  # pragma: no cover
        raise NotImplementedError

    def isend(self, obj: Any, dest: int, tag: int = 0):  # pragma: no cover
        raise NotImplementedError

    def sendrecv(self, sendobj, dest, source, sendtag=0, recvtag=-1):  # pragma: no cover
        raise NotImplementedError
