"""Node topology: which ranks share a node, and two-tier traffic stats.

The simulated cluster is flat by default (``CostModel.procs_per_node ==
1``: every rank is its own node).  Arming ``procs_per_node > 1`` groups
*world* ranks into nodes — node of world rank ``r`` is
``r // procs_per_node`` — which gives the network two tiers: messages
between ranks sharing a node use the cheap intra-node parameters
(``net_intra_latency``/``net_intra_byte_time``), everything else pays
the flat inter-node cost.  The two-layer exchange
(:mod:`repro.core.exchange`) uses the same grouping to elect per-node
leaders.

:class:`TopologyStats` is interned once per simulation in the engine's
shared dictionary (under :data:`TOPOLOGY_KEY`) and accumulates wire
traffic split by tier.  Byte counts include
``CostModel.net_envelope_bytes`` per message, so an exchange that sends
*fewer inter-node messages* for the same payload is visibly cheaper in
the counters — the intra-node aggregation win the counters exist to
measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, metrics_registry

__all__ = [
    "TOPOLOGY_KEY",
    "NodeTopology",
    "TopologyStats",
    "topology_stats",
    "resolve_topology",
]

#: Key of the shared per-simulation :class:`TopologyStats` instance.
TOPOLOGY_KEY = "net-topology-stats"


@dataclass(frozen=True)
class NodeTopology:
    """Immutable rank→node mapping (pure function of ``procs_per_node``).

    All grouping is in terms of *world* ranks, so every communicator —
    the world, a per-node subcommunicator, a split — agrees on who
    shares a node with whom.
    """

    procs_per_node: int

    def node_of(self, world_rank: int) -> int:
        return world_rank // self.procs_per_node

    def same_node(self, world_a: int, world_b: int) -> bool:
        return self.node_of(world_a) == self.node_of(world_b)

    def groups(self, members: tuple) -> Dict[int, List[int]]:
        """Communicator ranks grouped by node id, each group ascending.

        ``members[i]`` is the world rank of communicator rank ``i`` (the
        :class:`~repro.mpi.comm.Communicator` convention); the returned
        dict maps node id → ascending communicator ranks, so
        ``groups[nid][0]`` is the deterministic node leader (lowest
        communicator rank on the node).
        """
        out: Dict[int, List[int]] = {}
        for comm_rank, world_rank in enumerate(members):
            out.setdefault(self.node_of(world_rank), []).append(comm_rank)
        return out


class TopologyStats:
    """Simulator-wide wire-traffic counters split by network tier.

    Message byte counts are ``payload + net_envelope_bytes`` — the wire
    cost of a message includes its envelope, which is what makes "send
    fewer, larger messages across nodes" measurable even when the
    payload volume is conserved.

    Each legacy attribute is a property over a registry counter under
    the dotted names in :data:`TopologyStats.METRICS` (simulation-global
    key).  :meth:`note_message` additionally bumps the ``net.msgs`` /
    ``net.bytes`` totals, so the registry upholds the conservation
    invariant ``net.intra.bytes + net.inter.bytes == net.bytes``.
    """

    #: legacy attribute -> registry metric name.
    METRICS: Dict[str, str] = {
        "inter_node_msgs": "net.inter.msgs",
        "inter_node_bytes": "net.inter.bytes",
        "intra_node_msgs": "net.intra.msgs",
        "intra_node_bytes": "net.intra.bytes",
        # offset/length runs entering / leaving leader-side coalescing.
        "coalesce_runs_in": "exchange.coalesce.runs_in",
        "coalesce_runs_out": "exchange.coalesce.runs_out",
        # two_layer rounds executed, and rounds that fell back to the
        # flat alltoallw because suspects were being skipped.
        "two_layer_rounds": "exchange.two_layer.rounds",
        "flat_fallbacks": "exchange.flat_fallbacks",
    }

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._instruments = {
            attr: self.registry.counter(name) for attr, name in self.METRICS.items()
        }
        self._total_msgs = self.registry.counter("net.msgs")
        self._total_bytes = self.registry.counter("net.bytes")

    def note_message(self, nbytes: int, envelope: int, intra: bool) -> None:
        wire = nbytes + envelope
        tier = "intra" if intra else "inter"
        self._instruments[f"{tier}_node_msgs"].value += 1
        self._instruments[f"{tier}_node_bytes"].value += wire
        self._total_msgs.value += 1
        self._total_bytes.value += wire

    def snapshot(self) -> Dict[str, int]:
        return {attr: inst.value for attr, inst in self._instruments.items()}


def _counter_property(attr: str) -> property:
    def getter(self):
        return self._instruments[attr].value

    def setter(self, v):
        self._instruments[attr].value = v

    return property(getter, setter)


for _attr in TopologyStats.METRICS:
    setattr(TopologyStats, _attr, _counter_property(_attr))
del _attr


def topology_stats(shared: dict) -> TopologyStats:
    """The simulation's shared stats instance (interned on first use).

    The instance reports through the same simulation's shared metrics
    registry (:func:`~repro.obs.metrics.metrics_registry`)."""
    stats = shared.get(TOPOLOGY_KEY)
    if stats is None:
        stats = shared.setdefault(TOPOLOGY_KEY, TopologyStats(metrics_registry(shared)))
    return stats


def resolve_topology(hints, cost) -> Optional[NodeTopology]:
    """Effective node topology for one collective file.

    The ``procs_per_node`` hint (when positive) overrides the cost
    model's value, so tests and experiments can vary the *grouping*
    without re-pricing the network; ``0`` inherits
    ``CostModel.procs_per_node``.  Returns ``None`` when the effective
    value is 1 — flat cluster, no topology machinery.
    """
    ppn = int(hints["procs_per_node"]) if hints is not None else 0
    if ppn <= 0:
        ppn = cost.procs_per_node
    if ppn <= 1:
        return None
    return NodeTopology(ppn)
