"""MPI_Info-style hints controlling the collective I/O machinery.

The paper's flexibility story is largely *hints*: which two-phase
implementation, how many aggregators, how big the collective buffer,
which realm strategy, which independent-I/O method per flush, whether
realms align or persist.  :class:`Hints` validates keys and values
eagerly so typos fail loudly at file-open time rather than silently
changing the experiment.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional

from repro.config import DEFAULT_FAULT_CONFIG
from repro.errors import HintError

__all__ = ["Hints"]


def _positive_int(value: Any) -> int:
    n = int(value)
    if n <= 0:
        raise ValueError("must be positive")
    return n


def _non_negative_int(value: Any) -> int:
    n = int(value)
    if n < 0:
        raise ValueError("must be non-negative")
    return n


def _boolean(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    text = str(value).strip().lower()
    if text in ("true", "yes", "enable", "1", "on"):
        return True
    if text in ("false", "no", "disable", "0", "off"):
        return False
    raise ValueError(f"not a boolean: {value!r}")


def _non_negative_float(value: Any) -> float:
    x = float(value)
    if x < 0:
        raise ValueError("must be non-negative")
    return x


def _choice(*options: str):
    def parse(value: Any) -> str:
        text = str(value).strip().lower()
        if text not in options:
            raise ValueError(f"must be one of {options}")
        return text

    return parse


#: key -> (parser, default) for every recognized hint.
_SPEC: Dict[str, tuple] = {
    # Which two-phase implementation to run.
    "coll_impl": (_choice("new", "old"), "new"),
    # Two-phase geometry.
    "cb_buffer_size": (_positive_int, 4 * 1024 * 1024),
    "cb_nodes": (_non_negative_int, 0),  # 0 = every process aggregates
    "cb_layout": (_choice("spread", "packed"), "spread"),
    # File realm strategy (new implementation only).
    "realm_strategy": (_choice("even", "aligned", "balanced"), "even"),
    "realm_alignment": (_non_negative_int, 0),  # bytes; 0 = unaligned
    "persistent_file_realms": (_boolean, False),
    # Persistent collective plans (docs/plan_cache.md): cache the full
    # per-round schedule across identical calls and replay it with zero
    # datatype processing.  Off = bit-identical to the uncached path.
    "plan_cache": (_boolean, False),
    # Round-level pipelining (docs/async_io.md): number of collective
    # buffers per aggregator, so the flush of round k overlaps the
    # exchange of round k+1 as engine coroutines.  0 (default) =
    # serialized rounds, bit-identical to the unpipelined path; 1 =
    # pipelined with a single in-flight flush; >=2 = deeper overlap
    # with back-pressure when the pool is exhausted.
    "pipeline_depth": (_non_negative_int, 0),
    # Independent-I/O method used to flush the collective buffer.
    "io_method": (_choice("datasieve", "naive", "listio", "conditional"), "datasieve"),
    "ds_buffer_size": (_positive_int, 512 * 1024),
    # Conditional data sieving: use naive I/O above this filetype extent.
    "ds_threshold_extent": (_positive_int, 16 * 1024),
    # Data exchange backend (Section 5.4; two_layer adds the intra-node
    # request aggregation of Kang et al., PAPERS.md).
    "exchange": (_choice("alltoallw", "nonblocking", "two_layer"), "alltoallw"),
    # Node-topology-aware exchange: True forces the two_layer backend
    # regardless of the ``exchange`` hint.  ``procs_per_node`` overrides
    # the cost model's node grouping for leader election and placement
    # (0 = inherit CostModel.procs_per_node); it does not re-price the
    # network, which stays a cost-model property.
    "node_aggregation": (_boolean, False),
    "procs_per_node": (_non_negative_int, 0),
    # Client-side request processing.
    "use_heap": (_boolean, True),
    # Client cache behaviour (coherent | incoherent | writethrough | off).
    "cache_mode": (_choice("coherent", "incoherent", "writethrough", "off"), "coherent"),
    # Client cache capacity in pages (dirty overflow flushes early).
    "cache_pages": (_positive_int, 16384),
    # Resilience (see config.FaultConfig and docs/faults.md): retries
    # per independent-I/O operation after a transient fault, the first
    # backoff in virtual seconds, and whether a dead aggregator's realm
    # is failed over to survivors (off = raise AggregatorLost).
    "io_retries": (_non_negative_int, DEFAULT_FAULT_CONFIG.io_retries),
    "io_retry_backoff": (_non_negative_float, DEFAULT_FAULT_CONFIG.retry_backoff),
    # Ceiling on one exponential-backoff sleep (virtual seconds).
    "retry_backoff_max": (_non_negative_float, DEFAULT_FAULT_CONFIG.retry_backoff_max),
    # Full-jitter backoff: seeded uniform sleep in [0, cap] instead of
    # the deterministic cap, desynchronizing cross-rank retry waves.
    "retry_jitter": (_boolean, DEFAULT_FAULT_CONFIG.retry_jitter),
    # Cross-operation retry budget per client (0 = unlimited): retries
    # past it raise RetryBudgetExhausted — storm control under OST
    # outages (docs/storage_faults.md).
    "io_retry_budget": (_non_negative_int, DEFAULT_FAULT_CONFIG.retry_budget),
    "failover": (_boolean, DEFAULT_FAULT_CONFIG.failover),
    # End-to-end integrity (docs/integrity.md).  Off by default: the
    # fault-free fast path pays nothing for the machinery.
    "integrity_pages": (_boolean, False),     # CRC32 sidecar per store page
    "integrity_network": (_boolean, False),   # frame checksums + re-request
    "journal_writes": (_boolean, False),      # crash-consistent collective writes
    # Liveness (docs/faults.md).  ``coll_deadline`` arms a per-collective
    # virtual-time budget (0 = none): blocking receives past it raise
    # DeadlineExceeded instead of hanging.  ``liveness`` additionally
    # arms suspect-driven failover (stalled aggregators merged away
    # mid-call, stalled clients served by survivors) and lock leases.
    "coll_deadline": (_non_negative_float, 0.0),
    "liveness": (_boolean, False),
    # Fail-stop crash tolerance (docs/crash_recovery.md): the minimum
    # number of *live* participants a collective may continue with
    # after the epoch agreement converges on a dead set.  Survivors
    # below quorum raise a typed CollectiveAborted instead of
    # completing an unrepresentative call.  1 (default) = any survivor
    # may finish alone.
    "crash_quorum": (_positive_int, 1),
    # Storage-side replication (docs/storage_faults.md): place each
    # stripe's pages on this many distinct OSTs.  Writes commit on a
    # write-quorum (r//2 + 1 live replicas); reads fail over to any
    # surviving fresh replica.  1 (default) = no replication, the
    # seed's exact data path.
    "replication_factor": (_positive_int, 1),
    # Multi-tenant QoS weight (docs/multi_tenant.md): under the shared
    # file system's ``wfq`` OST scheduler, a tenant with priority 2
    # absorbs half the cross-tenant interference of a priority-1 one.
    # Ignored by the ``fifo`` and (unweighted) ``fair`` policies.
    "tenant_priority": (_positive_int, 1),
}


class Hints(Mapping[str, Any]):
    """Validated, immutable-after-construction hint set.

    Unknown keys and malformed values raise :class:`HintError`
    immediately.  Missing keys resolve to documented defaults.
    """

    def __init__(self, values: Optional[Mapping[str, Any]] = None, **kwargs: Any) -> None:
        merged: Dict[str, Any] = {}
        if values is not None:
            merged.update(values)
        merged.update(kwargs)
        self._values: Dict[str, Any] = {}
        for key, raw in merged.items():
            if key not in _SPEC:
                raise HintError(
                    f"unknown hint {key!r}; known hints: {sorted(_SPEC)}"
                )
            parser, _ = _SPEC[key]
            try:
                self._values[key] = parser(raw)
            except (TypeError, ValueError) as exc:
                raise HintError(f"bad value for hint {key!r}: {exc}") from exc

    # -- Mapping interface --------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        if key in self._values:
            return self._values[key]
        if key in _SPEC:
            return _SPEC[key][1]
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return iter(_SPEC)

    def __len__(self) -> int:
        return len(_SPEC)

    def replace(self, **kwargs: Any) -> "Hints":
        """A new Hints with the given keys overridden."""
        merged = dict(self._values)
        merged.update(kwargs)
        return Hints(merged)

    def explicit(self) -> Dict[str, Any]:
        """Only the hints that were explicitly set."""
        return dict(self._values)

    @staticmethod
    def known_keys() -> list[str]:
        return sorted(_SPEC)

    @staticmethod
    def default(key: str) -> Any:
        return _SPEC[key][1]

    def __repr__(self) -> str:
        return f"Hints({self._values!r})"
