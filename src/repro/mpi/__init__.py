"""Simulated MPI subset.

An MPI-shaped message-passing layer running on the deterministic
virtual-time engine.  Point-to-point operations follow a LogP-style
cost model (sender overhead, per-byte transit, receiver overhead);
collectives are implemented as genuine distributed algorithms on top of
point-to-point (binomial broadcast/reduce, dissemination barrier, ring
allgather, pairwise-exchange alltoall), so their cost scaling emerges
from the algorithms rather than from closed-form formulas.

Entry point: create a :class:`~repro.mpi.comm.Communicator` inside a
rank's main function::

    def main(ctx):
        comm = Communicator(ctx)
        comm.barrier()
"""

from repro.mpi.agreement import AliveGroup, agree_dead_set
from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpi.hints import Hints
from repro.mpi.network import Network, payload_nbytes
from repro.mpi.request import Request

__all__ = [
    "Communicator",
    "ANY_SOURCE",
    "ANY_TAG",
    "Request",
    "Hints",
    "Network",
    "payload_nbytes",
    "AliveGroup",
    "agree_dead_set",
]
