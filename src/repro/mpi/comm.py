"""Communicators and point-to-point messaging.

Message-matching semantics follow MPI: envelopes are (source, tag,
communicator); matching is FIFO per envelope (enforced globally with a
sequence number, which is deterministic under the engine's virtual-time
scheduling).  ``ANY_SOURCE``/``ANY_TAG`` wildcards select the earliest
matching message.

Sends are buffered (they complete locally): the payload is copied on
enqueue, so sender reuse of a numpy buffer cannot corrupt data in
flight — the same guarantee a real MPI eager/rendezvous protocol gives.
"""

from __future__ import annotations

import copy as _copy
from typing import Any, Optional

import numpy as np

from repro.config import CostModel, DEFAULT_COST_MODEL
from repro.errors import DeadlineExceeded, MPIError, TransientNetworkError
from repro.faults.plan import FAULTS_KEY
from repro.liveness import LIVENESS_KEY
from repro.integrity import (
    INTEGRITY_KEY,
    IntegrityConfig,
    corruptible,
    flip_payload_bit,
    payload_crc,
)
from repro.io.retry import RetryPolicy
from repro.mpi.collectives import CollectiveMixin
from repro.mpi.network import Network, payload_nbytes
from repro.mpi.request import Request
from repro.mpi.topology import NodeTopology, topology_stats
from repro.sim.engine import BLOCK_TIMEOUT, RankContext

__all__ = ["ANY_SOURCE", "ANY_TAG", "Communicator"]

ANY_SOURCE = -1
ANY_TAG = -1

_SHARED_KEY = "mpi-state"

#: Tags at or above this value belong to collective algorithms; their
#: per-message overheads are scaled by ``CostModel.net_collective_factor``
#: (the §5.4 "specialized collective network" knob).
COLLECTIVE_TAG_BASE = 1 << 20


class _Message:
    __slots__ = ("src", "dst", "tag", "payload", "t_avail", "seq", "crc", "pristine")

    def __init__(
        self,
        src: int,
        dst: int,
        tag: int,
        payload: Any,
        t_avail: float,
        seq: int,
        crc: Optional[int] = None,
        pristine: Any = None,
    ):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.payload = payload
        self.t_avail = t_avail
        self.seq = seq
        #: Frame checksum computed at send time (``integrity_network``
        #: armed and the payload is a data frame), else ``None``.
        self.crc = crc
        #: The uncorrupted payload copy when a bit flip was injected in
        #: flight — the sender's send buffer, which a re-request
        #: retransmits from.  ``None`` for clean messages.
        self.pristine = pristine


class _CommState:
    """Shared (simulator-wide) state of one communicator."""

    __slots__ = ("queues", "next_seq")

    def __init__(self, size: int) -> None:
        self.queues: list[list[_Message]] = [[] for _ in range(size)]
        self.next_seq = 0


def _copy_payload(obj: Any) -> Any:
    """Snapshot a payload so in-flight data is immune to sender reuse."""
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    if isinstance(obj, np.ndarray):
        return obj.copy()
    return _copy.deepcopy(obj)


class Communicator(CollectiveMixin):
    """An MPI-style communicator bound to one rank's context.

    Every rank constructs its own ``Communicator(ctx)`` for the world;
    shared matching state is interned in the simulator's ``shared``
    dictionary keyed by the communicator id, so all ranks' instances
    address the same queues.
    """

    def __init__(
        self,
        ctx: RankContext,
        cost: CostModel = DEFAULT_COST_MODEL,
        *,
        _comm_id: str = "world",
        _rank: Optional[int] = None,
        _members: Optional[tuple[int, ...]] = None,
    ) -> None:
        self.ctx = ctx
        self.cost = cost
        self.net = Network(cost)
        # Fault injection (delayed/dropped messages), when a plan is
        # installed on this simulator.
        self.net.faults = ctx.shared.get(FAULTS_KEY)
        self.comm_id = _comm_id
        #: World ranks of the members, indexed by communicator rank.
        self.members = _members if _members is not None else tuple(range(ctx.nprocs))
        self.rank = _rank if _rank is not None else ctx.rank
        self.size = len(self.members)
        registry = ctx.shared.setdefault(_SHARED_KEY, {})
        if _comm_id not in registry:
            registry[_comm_id] = _CommState(self.size)
        self._state: _CommState = registry[_comm_id]
        if len(self._state.queues) != self.size:
            raise MPIError(
                f"communicator {_comm_id!r} size mismatch across ranks"
            )
        # Collective split/dup sequence number.  Per-rank, not shared:
        # split is collective, so every member makes the same sequence of
        # calls and derives the same child communicator id.
        self._split_count = 0
        # Two-tier topology (CostModel.procs_per_node > 1): node id per
        # communicator rank, plus the shared traffic counters.  Flat
        # clusters keep all three None — the send/recv fast path tests
        # one attribute and pays nothing else.
        self.topology: Optional[NodeTopology] = None
        self._node_of: Optional[tuple[int, ...]] = None
        self._topo_stats = None
        if cost.procs_per_node > 1:
            self.topology = NodeTopology(cost.procs_per_node)
            self._node_of = tuple(self.topology.node_of(w) for w in self.members)
            self._topo_stats = topology_stats(ctx.shared)
        #: Cached per-node subcommunicators keyed by procs_per_node.
        self._node_comms: dict[int, "Communicator"] = {}

    # -- point-to-point ----------------------------------------------------
    def _check_peer(self, peer: int, what: str) -> None:
        if not (0 <= peer < self.size):
            raise MPIError(f"{what} rank {peer} out of range for size {self.size}")

    def _enqueue(self, dest: int, tag: int, obj: Any, t_avail: float) -> None:
        state = self._state
        payload = _copy_payload(obj)
        crc = None
        pristine = None
        if corruptible(payload):
            # Data frame (raw bytes on the wire).  Control messages are
            # tuples/scalars and are out of the corruption model — the
            # protection boundary and the threat model coincide.
            cfg = self.ctx.shared.get(INTEGRITY_KEY)
            if cfg is not None and cfg.network:
                crc = payload_crc(payload)
                self.ctx.charge(payload_nbytes(payload) * self.cost.crc_byte_time)
            faults = self.net.faults
            if faults is not None:
                draw = faults.corrupt_net(self.rank, dest, self.ctx.now)
                if draw is not None:
                    pristine = payload  # the sender's intact buffer
                    payload = flip_payload_bit(payload, draw)
        msg = _Message(
            self.rank, dest, tag, payload, t_avail, state.next_seq, crc, pristine
        )
        state.next_seq += 1
        state.queues[dest].append(msg)

    def _overhead_factor(self, tag: int) -> float:
        return self.cost.net_collective_factor if tag >= COLLECTIVE_TAG_BASE else 1.0

    def _intra(self, peer: int) -> bool:
        """True when ``peer`` shares a node with me (topology armed)."""
        node_of = self._node_of
        return node_of is not None and node_of[peer] == node_of[self.rank]

    def _note_traffic(self, nbytes: int, intra: bool) -> None:
        if self._topo_stats is not None:
            self._topo_stats.note_message(
                nbytes, self.cost.net_envelope_bytes, intra
            )

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking (buffered) send: completes after the sender overhead."""
        self._check_peer(dest, "destination")
        nbytes = payload_nbytes(obj)
        factor = self._overhead_factor(tag)
        intra = self._intra(dest)
        self.ctx.charge(self.net.send_overhead(intra) * factor)
        delay = self.net.delivery_delay(
            nbytes, self.rank, dest, self.ctx.now, factor, intra
        )
        self._note_traffic(nbytes, intra)
        self._enqueue(dest, tag, obj, self.ctx.now + delay)
        self.ctx.yield_now()

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send; buffered, so the request is already complete."""
        self._check_peer(dest, "destination")
        nbytes = payload_nbytes(obj)
        factor = self._overhead_factor(tag)
        intra = self._intra(dest)
        self.ctx.charge(self.net.post_overhead(intra) * factor)
        delay = self.net.delivery_delay(
            nbytes, self.rank, dest, self.ctx.now, factor, intra
        )
        self._note_traffic(nbytes, intra)
        self._enqueue(dest, tag, obj, self.ctx.now + delay)
        return Request.completed()

    def _match(self, source: int, tag: int) -> Optional[_Message]:
        """Earliest (by seq) queued message matching the envelope."""
        best: Optional[_Message] = None
        for msg in self._state.queues[self.rank]:
            if source != ANY_SOURCE and msg.src != source:
                continue
            if tag != ANY_TAG and msg.tag != tag:
                continue
            if best is None or msg.seq < best.seq:
                best = msg
        return best

    def _complete_recv(self, msg: _Message) -> Any:
        self._state.queues[self.rank].remove(msg)
        self.ctx.charge_to(msg.t_avail)
        factor = self._overhead_factor(msg.tag)
        self.ctx.charge(self.net.recv_overhead(self._intra(msg.src)) * factor)
        if msg.crc is None:
            # Unprotected: a corrupted frame is delivered as-is — the
            # silent wrong answer the integrity_network hint exists to
            # prevent.
            return msg.payload
        nbytes = payload_nbytes(msg.payload)
        self.ctx.charge(nbytes * self.cost.crc_byte_time)
        if payload_crc(msg.payload) == msg.crc:
            return msg.payload
        return self._redeliver(msg, factor, nbytes)

    def _redeliver(self, msg: _Message, factor: float, nbytes: int) -> Any:
        """Bounded re-request of a frame whose checksum failed.

        Corruption on the wire is transient — the sender's buffered
        copy is intact — so the receiver NACKs and the sender
        retransmits, under the same retry/backoff machinery the I/O
        stack uses (each re-request can itself be corrupted and is
        redrawn from the fault plan).  Exhaustion surfaces as
        :class:`~repro.errors.RetryExhausted` from site ``net-frame``."""
        faults = self.net.faults
        if faults is not None:
            faults.note_net_corruption_detected()
        good = msg.pristine if msg.pristine is not None else msg.payload

        def attempt() -> Any:
            # One NACK to the sender plus a fresh transit of the frame;
            # advance (not charge) so the wait is scheduler-visible.
            intra = self._intra(msg.src)
            self.ctx.advance(
                self.net.send_overhead(intra) * factor
                + self.net.delivery_delay(
                    nbytes, msg.src, self.rank, self.ctx.now, factor, intra
                )
            )
            payload = good
            if faults is not None:
                draw = faults.corrupt_net(msg.src, self.rank, self.ctx.now)
                if draw is not None:
                    payload = flip_payload_bit(good, draw)
            self.ctx.charge(nbytes * self.cost.crc_byte_time)
            if payload_crc(payload) != msg.crc:
                if faults is not None:
                    faults.note_net_corruption_detected()
                raise TransientNetworkError("net-frame", self.rank)
            if faults is not None:
                faults.note_net_redelivery()
            return payload

        cfg = self.ctx.shared.get(INTEGRITY_KEY) or IntegrityConfig(network=True)
        policy = RetryPolicy(
            retries=cfg.net_retries,
            backoff=cfg.net_backoff,
            backoff_max=cfg.net_backoff_max,
        )
        return policy.run(self.ctx, attempt)

    def _blocking_recv(self, source: int, tag: int, site: str) -> Any:
        """The shared blocking path of recv/irecv-wait.

        With an armed per-collective deadline (the ``coll_deadline``
        hint, installed as :data:`~repro.liveness.LIVENESS_KEY` state),
        the wait is timed: if no matching message can arrive within the
        budget, a typed :class:`~repro.errors.DeadlineExceeded` is
        raised instead of blocking forever on a stalled peer.  A
        message *queued* but only available past the deadline counts as
        missed too (it is the same hang, just scheduled).  Unarmed, the
        path is byte-identical to the untimed block."""
        reason = f"{site}(src={source}, tag={tag}, comm={self.comm_id})"
        liv = self.ctx.shared.get(LIVENESS_KEY)
        deadline = liv.deadline_for(self.ctx.rank) if liv is not None else None
        if deadline is None:
            msg = self.ctx.block(lambda: self._match(source, tag), reason=reason)
            return self._complete_recv(msg)
        msg = self.ctx.block(
            lambda: self._match(source, tag), reason=reason, timeout_at=deadline
        )
        if msg is BLOCK_TIMEOUT or msg.t_avail > deadline:
            self.ctx.charge_to(deadline)
            faults = self.ctx.shared.get(FAULTS_KEY)
            if faults is not None:
                faults.note_deadline_exceeded()
            raise DeadlineExceeded(
                f"{site}(src={source}, tag={tag})",
                self.ctx.rank,
                liv.phase_of(self.ctx.rank),
                liv.config.deadline,
            )
        return self._complete_recv(msg)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload."""
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        return self._blocking_recv(source, tag, "recv")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; ``wait()`` yields the payload."""
        if source != ANY_SOURCE:
            self._check_peer(source, "source")

        def wait_fn() -> Any:
            return self._blocking_recv(source, tag, "irecv")

        def test_fn() -> tuple[bool, Any]:
            msg = self._match(source, tag)
            if msg is None:
                return False, None
            return True, self._complete_recv(msg)

        return Request(wait_fn=wait_fn, test_fn=test_fn)

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        source: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Any:
        """Combined send+receive (deadlock-free with buffered sends)."""
        req = self.isend(sendobj, dest, sendtag)
        value = self.recv(source, recvtag)
        req.wait()
        return value

    # -- communicator management ---------------------------------------------
    def dup(self) -> "Communicator":
        """A congruent communicator with an isolated message space."""
        return self.split(color=0, key=self.rank, _label="dup")

    def split(self, color: int, key: Optional[int] = None, _label: str = "split") -> Optional["Communicator"]:
        """Collective split (MPI_Comm_split semantics).

        Returns the new communicator, or ``None`` for ``color < 0``
        (MPI_UNDEFINED).  New ranks order members by (key, old rank).
        """
        if key is None:
            key = self.rank
        # Every member learns everyone's (color, key); allgather keeps
        # this collective and deterministic.
        entries = self.allgather((color, key))
        sub_index = self._split_count
        self._split_count += 1
        if color < 0:
            return None
        group = sorted(
            (k, r) for r, (c, k) in enumerate(entries) if c == color
        )
        ranks = tuple(r for _, r in group)
        my_new_rank = ranks.index(self.rank)
        members = tuple(self.members[r] for r in ranks)
        comm_id = f"{self.comm_id}/{_label}{sub_index}:c{color}"
        return Communicator(
            self.ctx,
            self.cost,
            _comm_id=comm_id,
            _rank=my_new_rank,
            _members=members,
        )

    def node_subcomm(self, topology: Optional[NodeTopology] = None) -> "Communicator":
        """The per-node subcommunicator carving this communicator by node.

        Collective (built on :meth:`split`) and cached per
        ``procs_per_node``: the first two-layer exchange carves the
        node groups, later calls reuse them.  Node rank 0 — the lowest
        communicator rank on the node — is the deterministic node
        leader.  Falls back to the communicator's own topology when
        none is given; a flat cluster (no topology anywhere) degrades
        to one node per rank.
        """
        topo = topology if topology is not None else self.topology
        ppn = topo.procs_per_node if topo is not None else 1
        cached = self._node_comms.get(ppn)
        if cached is not None:
            return cached
        color = topo.node_of(self.members[self.rank]) if topo is not None else self.rank
        sub = self.split(color, _label="node")
        assert sub is not None  # color is never negative here
        self._node_comms[ppn] = sub
        return sub

    def __repr__(self) -> str:
        return f"<Communicator {self.comm_id!r} rank={self.rank}/{self.size}>"
