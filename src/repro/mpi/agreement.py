"""Survivor agreement and communicator shrink after fail-stop crashes.

When a ``rank_crash`` fault kills a rank mid-collective, the survivors
must (a) converge on *who is dead* and (b) obtain a communicator that
excludes the corpses — every collective in :mod:`repro.mpi.collectives`
is built point-to-point over the full membership, so a single dead
member deadlocks a barrier forever.

Both steps are communication-*light* by design.  Crash detection itself
is a pure function of the fault plan (each survivor evaluates
``injector.crashed_ranks(call, boundary)`` identically — the same
philosophy as suspect detection in PR 3), so the proposals entering the
agreement round are already equal.  The epoch-agreement exchange then
*confirms* the convergence over real messages: every survivor
allgathers its proposed dead set over the shrunk communicator and takes
the union.  With equal inputs the union is a fixed point after one
round; an actual failure detector plugged in later would simply need
more rounds of the same exchange.

The shrink itself cannot use ``Communicator.split`` — split is
collective over the *full* membership and would hang on the dead.
Instead each survivor constructs the sub-communicator directly from the
agreed dead set: the communicator id embeds the epoch and the sorted
dead ranks, so every survivor interns the same shared
:class:`~repro.mpi.comm._CommState` without exchanging a byte.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, List, Optional, Tuple

from repro.errors import MPIError

__all__ = ["AliveGroup", "agree_dead_set"]


class AliveGroup:
    """The survivors of one communicator after an agreed set of deaths.

    Wraps the original communicator plus a communication-free shrunk
    sub-communicator containing only the live members.  Collectives run
    on the shrunk comm; ``allgather`` results are re-indexed to the
    *original* communicator's ranks (``None`` at dead slots) so callers
    keep addressing ranks in the coordinate system the collective
    started in.
    """

    __slots__ = ("world", "sub", "dead", "alive", "epoch")

    def __init__(self, comm, dead: FrozenSet[int], epoch: int) -> None:
        dead = frozenset(dead)
        if comm.rank in dead:
            raise MPIError(
                f"rank {comm.rank} cannot form an alive-group it is dead in"
            )
        unknown = [r for r in dead if not (0 <= r < comm.size)]
        if unknown:
            raise MPIError(f"dead ranks {sorted(unknown)} out of range")
        self.world = comm
        self.dead = dead
        self.epoch = epoch
        self.alive: Tuple[int, ...] = tuple(
            r for r in range(comm.size) if r not in dead
        )
        if not dead:
            # Nobody died: the group IS the original communicator.
            self.sub = comm
            return
        tag = "-".join(str(r) for r in sorted(dead))
        comm_id = f"{comm.comm_id}/alive:e{epoch}:d{tag}"
        self.sub = type(comm)(
            comm.ctx,
            comm.cost,
            _comm_id=comm_id,
            _rank=self.alive.index(comm.rank),
            _members=tuple(comm.members[r] for r in self.alive),
        )

    # -- membership ---------------------------------------------------------
    @property
    def size(self) -> int:
        """Live member count."""
        return len(self.alive)

    def contains(self, rank: int) -> bool:
        """Is original-communicator ``rank`` alive in this group?"""
        return rank not in self.dead and 0 <= rank < self.world.size

    def first_alive(self, candidates=None) -> Optional[int]:
        """Lowest live rank of ``candidates`` (default: all members),
        in original-communicator numbering — the deterministic choice
        of 'one designated survivor' for once-per-group actions."""
        pool = self.alive if candidates is None else [
            r for r in candidates if r not in self.dead
        ]
        return min(pool) if pool else None

    # -- collectives over the survivors --------------------------------------
    def barrier(self) -> None:
        self.sub.barrier()

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        if op is None:
            return self.sub.allreduce(value)
        return self.sub.allreduce(value, op=op)

    def allgather(self, value: Any) -> List[Any]:
        """Allgather over survivors, re-indexed to original ranks.

        Returns a ``world.size``-long list with each live rank's value
        at its *original* index and ``None`` at every dead slot."""
        packed = self.sub.allgather(value)
        out: List[Any] = [None] * self.world.size
        for sub_rank, orig in enumerate(self.alive):
            out[orig] = packed[sub_rank]
        return out

    def alltoall(self, values: List[Any]) -> List[Any]:
        """Alltoall over survivors in original-rank coordinates.

        ``values`` is a ``world.size``-long list (entries addressed to
        dead ranks are silently discarded); the result is re-indexed the
        same way, ``None`` at every dead slot."""
        if len(values) != self.world.size:
            raise MPIError(
                f"alltoall wants {self.world.size} entries, got {len(values)}"
            )
        packed = self.sub.alltoall([values[r] for r in self.alive])
        out: List[Any] = [None] * self.world.size
        for sub_rank, orig in enumerate(self.alive):
            out[orig] = packed[sub_rank]
        return out

    def bcast(self, value: Any, root: int) -> Any:
        """Broadcast from original-communicator rank ``root`` (alive)."""
        if root in self.dead:
            raise MPIError(f"bcast root {root} is dead in this group")
        return self.sub.bcast(value, root=self.alive.index(root))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AliveGroup epoch={self.epoch} alive={len(self.alive)}"
            f"/{self.world.size} dead={sorted(self.dead)}>"
        )


def agree_dead_set(comm, proposal: FrozenSet[int], epoch: int) -> AliveGroup:
    """One epoch-agreement round: converge the survivors on a dead set.

    ``proposal`` is this rank's view of who is dead (from the pure
    plan-evaluation detector, so all survivors propose the same set).
    The round allgathers every survivor's proposal over the shrunk
    communicator and unions them; the union must equal the proposal —
    detection is deterministic, so a wider union means the proposals
    disagreed, which is a protocol bug worth failing loudly on.

    Returns the :class:`AliveGroup` for the agreed set.  The caller
    stamps ``faults.crash.agreements`` (gated on one survivor) so the
    metric counts protocol rounds, not participants.
    """
    group = AliveGroup(comm, frozenset(proposal), epoch)
    if not proposal:
        return group
    views = group.allgather(tuple(sorted(proposal)))
    agreed = frozenset().union(
        *(frozenset(v) for v in views if v is not None)
    )
    if agreed != frozenset(proposal):
        raise MPIError(
            f"epoch {epoch} agreement diverged: proposed {sorted(proposal)}, "
            f"union {sorted(agreed)}"
        )
    return group
