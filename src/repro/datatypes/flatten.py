"""Canonical flattened datatype representation.

A :class:`FlatType` is the "flattened datatype" of the paper's Section
5.3: the offset/length pairs of *one instance* of the type, kept in
**data order** (the order in which the type's bytes are produced or
consumed), with adjacent-in-data-order segments that are also adjacent
in offset coalesced into one pair.  Data order matters because the
file view maps the k-th byte of the access to the k-th data byte of the
tiled filetype; offset order alone would lose that correspondence for
types whose typemap is not monotonic.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import DatatypeError

__all__ = ["FlatType", "coalesce"]


def coalesce(
    offsets: np.ndarray, lengths: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge data-order-adjacent segments that are contiguous in offset.

    Zero-length segments are dropped.  Inputs are 1-D integer arrays in
    data order; outputs preserve data order.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if offsets.shape != lengths.shape or offsets.ndim != 1:
        raise DatatypeError("offsets and lengths must be 1-D arrays of equal size")
    keep = lengths > 0
    if not keep.all():
        offsets, lengths = offsets[keep], lengths[keep]
    if offsets.size <= 1:
        return offsets.copy(), lengths.copy()
    # Segment i starts a new run unless it begins exactly where i-1 ends.
    ends = offsets + lengths
    new_run = np.empty(offsets.size, dtype=bool)
    new_run[0] = True
    np.not_equal(offsets[1:], ends[:-1], out=new_run[1:])
    run_ids = np.cumsum(new_run) - 1
    out_offsets = offsets[new_run]
    out_lengths = np.zeros(out_offsets.size, dtype=np.int64)
    np.add.at(out_lengths, run_ids, lengths)
    return out_offsets, out_lengths


class FlatType:
    """Flattened representation of one datatype instance.

    Attributes
    ----------
    offsets, lengths:
        int64 arrays, one entry per contiguous segment, in data order.
        Offsets are byte displacements from the type's origin.
    extent:
        Tiling stride in bytes: instance ``t`` of the type is placed at
        ``origin + t * extent``.
    size:
        Total data bytes per instance (``lengths.sum()``).
    data_prefix:
        Exclusive prefix sum of ``lengths`` with a trailing total, so
        segment ``k`` covers data bytes ``[data_prefix[k],
        data_prefix[k+1])`` of the instance.
    """

    __slots__ = ("offsets", "lengths", "extent", "size", "data_prefix", "span_lo", "span_hi")

    def __init__(
        self,
        offsets: Iterable[int] | np.ndarray,
        lengths: Iterable[int] | np.ndarray,
        extent: int,
    ) -> None:
        offs = np.ascontiguousarray(np.asarray(offsets, dtype=np.int64))
        lens = np.ascontiguousarray(np.asarray(lengths, dtype=np.int64))
        if offs.shape != lens.shape or offs.ndim != 1:
            raise DatatypeError("offsets/lengths must be 1-D and the same size")
        if (lens < 0).any():
            raise DatatypeError("segment lengths must be non-negative")
        if extent < 0:
            raise DatatypeError(f"extent must be non-negative, got {extent}")
        offs, lens = coalesce(offs, lens)
        self.offsets = offs
        self.lengths = lens
        self.extent = int(extent)
        self.size = int(lens.sum())
        prefix = np.zeros(offs.size + 1, dtype=np.int64)
        np.cumsum(lens, out=prefix[1:])
        self.data_prefix = prefix
        if offs.size:
            self.span_lo = int(offs.min())
            self.span_hi = int((offs + lens).max())
        else:
            self.span_lo = 0
            self.span_hi = 0

    # -- properties ------------------------------------------------------
    @property
    def num_segments(self) -> int:
        """Number of offset/length pairs ("D" in the paper's notation)."""
        return int(self.offsets.size)

    @property
    def is_contiguous(self) -> bool:
        """True when one instance is a single segment starting at 0 that
        exactly fills the extent — the fast-path test."""
        return (
            self.num_segments == 1
            and int(self.offsets[0]) == 0
            and int(self.lengths[0]) == self.size
            and self.extent == self.size
        )

    @property
    def is_monotonic(self) -> bool:
        """True when offsets never decrease in data order and the tiled
        pattern never overlaps — required of file views."""
        if self.num_segments <= 0:
            return True
        ends = self.offsets + self.lengths
        if self.num_segments > 1 and not (self.offsets[1:] >= ends[:-1]).all():
            return False
        # Tiling must not fold segments of consecutive instances together.
        return self.span_hi - self.span_lo <= self.extent or self.num_segments == 0

    # -- tiled geometry ----------------------------------------------------
    def tile_count(self, total_bytes: int) -> int:
        """Number of instances (last possibly partial) needed to carry
        ``total_bytes`` of data."""
        if total_bytes < 0:
            raise DatatypeError("total_bytes must be non-negative")
        if total_bytes == 0:
            return 0
        if self.size == 0:
            raise DatatypeError("zero-size datatype cannot carry data")
        return -(-total_bytes // self.size)

    def replicate(self, count: int) -> "FlatType":
        """Expand ``count`` tiles into one explicit instance.

        This produces the "explicitly enumerated" representation used by
        Figure 4's ``new+vect`` runs: the same access pattern, but with
        ``count * D`` pairs in a single tile so the whole-tile skipping
        optimization has nothing to skip.
        """
        if count < 0:
            raise DatatypeError("count must be non-negative")
        if count == 0:
            return FlatType([], [], 0)
        shifts = (np.arange(count, dtype=np.int64) * self.extent)[:, None]
        offs = (self.offsets[None, :] + shifts).ravel()
        lens = np.broadcast_to(self.lengths, (count, self.lengths.size)).ravel()
        return FlatType(offs, lens, self.extent * count)

    # -- comparisons / debugging -------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FlatType)
            and self.extent == other.extent
            and np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.lengths, other.lengths)
        )

    def __hash__(self) -> int:
        return hash((self.extent, self.offsets.tobytes(), self.lengths.tobytes()))

    def __repr__(self) -> str:
        head = ", ".join(
            f"({int(o)},{int(l)})"
            for o, l in zip(self.offsets[:4], self.lengths[:4])
        )
        more = "..." if self.num_segments > 4 else ""
        return (
            f"FlatType(D={self.num_segments}, size={self.size}, "
            f"extent={self.extent}, segs=[{head}{more}])"
        )


def flat_from_pairs(pairs: Sequence[Tuple[int, int]], extent: int) -> FlatType:
    """Build a FlatType from (offset, length) tuples (test convenience)."""
    if pairs:
        offs, lens = zip(*pairs)
    else:
        offs, lens = (), ()
    return FlatType(np.array(offs, dtype=np.int64), np.array(lens, dtype=np.int64), extent)
