"""Tiled range intersection over flattened datatypes.

This module is the computational heart of the reproduction.  The new
collective I/O implementation ships *flattened filetypes* (D pairs) and
both clients and aggregators repeatedly intersect the tiled pattern with
byte ranges (an aggregator's file realm clipped to the current
collective-buffer chunk).  :class:`FlatCursor` performs those
intersections vectorized with numpy while counting what the paper's C
implementation would have paid for them:

* ``pairs_evaluated`` — offset/length pairs examined.  A single-tile
  ("explicitly enumerated") type is scanned linearly from the cursor's
  last position, so walking the whole pattern once per aggregator costs
  O(M·A) pair evaluations, exactly the regression Figure 4 shows for
  ``new+vect``.
* ``tiles_skipped`` — whole filetype instances stepped over without
  looking inside, the succinct-datatype optimization that makes
  ``new+struct`` cheap ("an internal optimization allows processes to
  skip full datatypes").

The counters are consumed by the cost model; the *results* (segment
arrays) are exact and independent of the counting mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatatypeError
from repro.datatypes.flatten import FlatType

__all__ = ["SegmentBatch", "FlatCursor", "data_to_file_segments"]

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass
class SegmentBatch:
    """Result of one intersection: parallel arrays plus cost counters.

    ``file_offsets[k]``/``lengths[k]`` is a contiguous byte range in the
    file; ``data_offsets[k]`` is its position in the access's data
    stream (the concatenation of the datatype's bytes in data order).
    """

    file_offsets: np.ndarray
    lengths: np.ndarray
    data_offsets: np.ndarray
    pairs_evaluated: int = 0
    tiles_skipped: int = 0

    @property
    def total_bytes(self) -> int:
        return int(self.lengths.sum())

    @property
    def num_segments(self) -> int:
        return int(self.lengths.size)

    @property
    def empty(self) -> bool:
        return self.lengths.size == 0

    @staticmethod
    def empty_batch(pairs_evaluated: int = 0, tiles_skipped: int = 0) -> "SegmentBatch":
        return SegmentBatch(_EMPTY, _EMPTY, _EMPTY, pairs_evaluated, tiles_skipped)

    def coalesce(self) -> "SegmentBatch":
        """Merge runs adjacent in both file and data space.

        Segments are first ordered by ``data_offsets`` — the order
        :func:`~repro.datatypes.packing.gather_segments` packs them in —
        then consecutive segments that continue each other in *both*
        address spaces collapse into one run.  The packed byte stream of
        the result is identical to the original's (same bytes, same
        order), so a coalesced batch can replace the original on either
        side of an exchange; only the per-segment bookkeeping shrinks.
        Cost counters carry over unchanged.
        """
        n = self.lengths.size
        if n <= 1:
            return self
        order = np.argsort(self.data_offsets, kind="stable")
        fo = self.file_offsets[order]
        ln = self.lengths[order]
        do = self.data_offsets[order]
        contiguous = (do[1:] == do[:-1] + ln[:-1]) & (fo[1:] == fo[:-1] + ln[:-1])
        new_run = np.empty(n, dtype=bool)
        new_run[0] = True
        np.logical_not(contiguous, out=new_run[1:])
        ids = np.cumsum(new_run) - 1
        out_ln = np.zeros(int(ids[-1]) + 1, dtype=ln.dtype)
        np.add.at(out_ln, ids, ln)
        return SegmentBatch(
            fo[new_run].copy(),
            out_ln,
            do[new_run].copy(),
            self.pairs_evaluated,
            self.tiles_skipped,
        )


def _clip(
    file_start: np.ndarray,
    length: np.ndarray,
    data_off: np.ndarray,
    lo: int,
    hi: int,
    total_bytes: int,
    data_lo: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Clip candidate segments to the file range [lo, hi) and to the
    data stream [data_lo, total_bytes); drop empties."""
    front = lo - file_start
    np.maximum(front, 0, out=front)
    if data_lo:
        # The data window may clip further than the file window.
        np.maximum(front, data_lo - data_off, out=front)
    file_start = file_start + front
    data_off = data_off + front
    length = length - front
    over = (file_start + length) - hi
    np.maximum(over, 0, out=over)
    length = length - over
    avail = total_bytes - data_off
    np.minimum(length, avail, out=length)
    keep = length > 0
    if keep.all():
        return file_start, length, data_off
    return file_start[keep], length[keep], data_off[keep]


class FlatCursor:
    """Stateful intersector over a tiled flattened filetype.

    Parameters
    ----------
    flat:
        The flattened filetype (must be monotonic — a file-view
        requirement the paper's implementation shares).
    disp:
        Byte displacement of tile 0 in the file (the view's ``disp``).
    total_bytes:
        One past the last data byte of the access; the tiling is
        truncated there (the last tile may be partial).
    data_lo:
        First data byte of the access (default 0).  A non-zero value
        models an access starting at an individual-file-pointer /
        explicit-offset position: only data bytes in
        [data_lo, total_bytes) are emitted.

    Queries are expected to be non-decreasing in file offset per cursor
    (each aggregator/client pairing advances monotonically through the
    collective's rounds), matching the linear-scan cost semantics.
    """

    __slots__ = (
        "flat",
        "disp",
        "total_bytes",
        "data_lo",
        "tiles",
        "_ends",
        "_cur_tile",
        "_cur_idx",
        "multi_tile",
    )

    def __init__(
        self, flat: FlatType, disp: int, total_bytes: int, data_lo: int = 0
    ) -> None:
        if disp < 0:
            raise DatatypeError(f"view displacement must be non-negative, got {disp}")
        if not flat.is_monotonic:
            raise DatatypeError("file views require monotonic non-overlapping filetypes")
        if data_lo < 0 or data_lo > total_bytes:
            raise DatatypeError(
                f"data window [{data_lo}, {total_bytes}) is invalid"
            )
        self.flat = flat
        self.disp = int(disp)
        self.total_bytes = int(total_bytes)
        self.data_lo = int(data_lo)
        self.tiles = flat.tile_count(total_bytes)
        if self.tiles > 1 and flat.extent <= 0:
            raise DatatypeError("multi-tile access requires a positive extent")
        self._ends = flat.offsets + flat.lengths
        self.multi_tile = self.tiles > 1
        self._cur_tile = 0
        self._cur_idx = 0
        self.reset()

    def _file_pos_of_data(self, data: int) -> int:
        """File offset of data byte ``data`` (data < total_bytes)."""
        size = self.flat.size
        tile, rem = divmod(data, size)
        dp = self.flat.data_prefix
        k = int(np.searchsorted(dp, rem, side="right")) - 1
        base = self.disp + tile * self.flat.extent
        return base + int(self.flat.offsets[k]) + (rem - int(dp[k]))

    # -- geometry ---------------------------------------------------------
    @property
    def first_byte(self) -> int:
        """Smallest file offset touched (valid when non-empty)."""
        if self.data_lo == 0:
            return self.disp + self.flat.span_lo
        if self.data_lo >= self.total_bytes:
            return self.disp + self.flat.span_lo
        return self._file_pos_of_data(self.data_lo)

    @property
    def last_byte(self) -> int:
        """One past the largest file offset touched."""
        if self.tiles == 0:
            return self.first_byte
        last_tile = self.tiles - 1
        base = self.disp + last_tile * self.flat.extent
        rem = self.total_bytes - last_tile * self.flat.size
        if rem >= self.flat.size:
            return base + self.flat.span_hi
        # Partial last tile: find the end of the last byte carried.
        dp = self.flat.data_prefix
        k = int(np.searchsorted(dp, rem, side="left"))
        if k > 0 and dp[k] != rem:
            k -= 1
            extra = rem - int(dp[k])
            return base + int(self.flat.offsets[k]) + extra
        if k == 0:
            return base + int(self.flat.offsets[0])
        return base + int(self.flat.offsets[k - 1] + self.flat.lengths[k - 1])

    def reset(self) -> None:
        """Rewind the scan position (new collective call, same view).

        The scan starts at the data window's first tile/pair, so
        tiles before ``data_lo`` are never counted as skipped."""
        if self.flat.size > 0:
            self._cur_tile = self.data_lo // self.flat.size
        else:
            self._cur_tile = 0
        self._cur_idx = 0

    # -- the core query ------------------------------------------------------
    def intersect(self, lo: int, hi: int) -> SegmentBatch:
        """Segments of the tiled access inside file range [lo, hi)."""
        flat = self.flat
        if (
            hi <= lo
            or self.tiles == 0
            or flat.num_segments == 0
            or self.data_lo >= self.total_bytes
        ):
            return SegmentBatch.empty_batch()
        if self.multi_tile:
            return self._intersect_tiled(lo, hi)
        return self._intersect_single(lo, hi)

    def all_segments(self) -> SegmentBatch:
        """The entire access flattened out — what the *old* implementation
        materializes up front (M pairs)."""
        if self.tiles == 0 or self.flat.num_segments == 0:
            return SegmentBatch.empty_batch()
        return self.intersect(self.first_byte, self.last_byte)

    # -- single-tile: linear scan ----------------------------------------------
    def _intersect_single(self, lo: int, hi: int) -> SegmentBatch:
        flat = self.flat
        rel_lo = lo - self.disp
        rel_hi = hi - self.disp
        idx_lo = int(np.searchsorted(self._ends, rel_lo, side="right"))
        idx_hi = int(np.searchsorted(flat.offsets, rel_hi, side="left"))
        evaluated = max(0, idx_hi - self._cur_idx)
        self._cur_idx = max(self._cur_idx, idx_hi)
        if idx_lo >= idx_hi:
            return SegmentBatch.empty_batch(pairs_evaluated=evaluated)
        sel = slice(idx_lo, idx_hi)
        file_start = self.disp + flat.offsets[sel].copy()
        length = flat.lengths[sel].copy()
        data_off = flat.data_prefix[idx_lo:idx_hi].copy()
        fs, ln, do = _clip(
            file_start, length, data_off, lo, hi, self.total_bytes, self.data_lo
        )
        return SegmentBatch(fs, ln, do, pairs_evaluated=evaluated)

    # -- multi-tile: whole-tile skipping -----------------------------------------
    def _intersect_tiled(self, lo: int, hi: int) -> SegmentBatch:
        flat = self.flat
        ext = flat.extent
        D = flat.num_segments
        span_lo, span_hi = flat.span_lo, flat.span_hi
        # Tile t intersects [lo, hi) iff
        #   disp + t*ext + span_lo < hi  and  disp + t*ext + span_hi > lo.
        t_first = (lo - self.disp - span_hi) // ext + 1  # smallest t with end > lo
        t_last = -((-(hi - self.disp - span_lo)) // ext) - 1  # ceil(x) - 1: t < x
        t_first = max(int(t_first), 0)
        t_last = min(int(t_last), self.tiles - 1)
        # _cur_tile is the next tile the scan has not yet examined; tiles
        # strictly before t_first are stepped over without being opened.
        skipped = max(0, t_first - self._cur_tile)
        if t_first > t_last:
            self._cur_tile = max(self._cur_tile, t_first)
            return SegmentBatch.empty_batch(tiles_skipped=skipped)
        evaluated = (t_last - t_first + 1) * D
        self._cur_tile = max(self._cur_tile, t_last + 1)

        size = flat.size
        dp = flat.data_prefix[:-1]
        parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

        def tile_part(t: int, k0: int, k1: int) -> None:
            if k0 >= k1:
                return
            base = self.disp + t * ext
            sel = slice(k0, k1)
            parts.append(
                (
                    base + flat.offsets[sel],
                    flat.lengths[sel].copy(),
                    t * size + dp[sel],
                )
            )

        if t_first == t_last:
            base = self.disp + t_first * ext
            k0 = int(np.searchsorted(self._ends, lo - base, side="right"))
            k1 = int(np.searchsorted(flat.offsets, hi - base, side="left"))
            tile_part(t_first, k0, k1)
        else:
            base0 = self.disp + t_first * ext
            k0 = int(np.searchsorted(self._ends, lo - base0, side="right"))
            tile_part(t_first, k0, D)
            if t_last - t_first > 1:
                interior = np.arange(t_first + 1, t_last, dtype=np.int64)
                fs = (self.disp + interior[:, None] * ext + flat.offsets[None, :]).ravel()
                ln = np.broadcast_to(flat.lengths, (interior.size, D)).ravel().copy()
                do = (interior[:, None] * size + dp[None, :]).ravel()
                parts.append((fs, ln, do))
            base_last = self.disp + t_last * ext
            k1 = int(np.searchsorted(flat.offsets, hi - base_last, side="left"))
            tile_part(t_last, 0, k1)

        if not parts:
            return SegmentBatch.empty_batch(evaluated, skipped)
        file_start = np.concatenate([p[0] for p in parts])
        length = np.concatenate([p[1] for p in parts])
        data_off = np.concatenate([p[2] for p in parts])
        fs, ln, do = _clip(
            file_start, length, data_off, lo, hi, self.total_bytes, self.data_lo
        )
        return SegmentBatch(fs, ln, do, pairs_evaluated=evaluated, tiles_skipped=skipped)


def data_to_file_segments(
    flat: FlatType, disp: int, data_lo: int, data_hi: int, *, total_bytes: int | None = None
) -> SegmentBatch:
    """Map a data-stream interval [data_lo, data_hi) to file segments.

    Used on the memory side (where "file offsets" are buffer addresses)
    and to slice an access stream into collective-buffer rounds.  The
    pattern need not be monotonic — the data prefix always is.
    """
    if data_lo < 0 or data_hi < data_lo:
        raise DatatypeError(f"invalid data range [{data_lo}, {data_hi})")
    if total_bytes is not None:
        data_hi = min(data_hi, total_bytes)
    if data_hi <= data_lo or flat.size == 0 or flat.num_segments == 0:
        return SegmentBatch.empty_batch()
    size = flat.size
    ext = flat.extent
    dp = flat.data_prefix
    t0 = data_lo // size
    t1 = (data_hi - 1) // size
    parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    def tile_part(t: int, local_lo: int, local_hi: int) -> None:
        if local_hi <= local_lo:
            return
        k0 = int(np.searchsorted(dp, local_lo, side="right")) - 1
        k0 = max(k0, 0)
        k1 = int(np.searchsorted(dp, local_hi, side="left"))
        sel = slice(k0, k1)
        base = disp + t * ext
        fs = base + flat.offsets[sel].copy()
        ln = flat.lengths[sel].copy()
        do = t * size + dp[sel].copy()
        # Clip the first/last segments to the local data window.
        front = (t * size + local_lo) - do
        np.maximum(front, 0, out=front)
        fs += front
        ln -= front
        do += front
        over = (do + ln) - (t * size + local_hi)
        np.maximum(over, 0, out=over)
        ln -= over
        keep = ln > 0
        if not keep.all():
            fs, ln, do = fs[keep], ln[keep], do[keep]
        parts.append((fs, ln, do))

    if t0 == t1:
        tile_part(t0, data_lo - t0 * size, data_hi - t0 * size)
    else:
        tile_part(t0, data_lo - t0 * size, size)
        if t1 - t0 > 1:
            interior = np.arange(t0 + 1, t1, dtype=np.int64)
            D = flat.num_segments
            fs = (disp + interior[:, None] * ext + flat.offsets[None, :]).ravel()
            ln = np.broadcast_to(flat.lengths, (interior.size, D)).ravel().copy()
            do = (interior[:, None] * size + dp[:-1][None, :]).ravel()
            parts.append((fs, ln, do))
        tile_part(t1, 0, data_hi - t1 * size)

    file_start = np.concatenate([p[0] for p in parts])
    length = np.concatenate([p[1] for p in parts])
    data_off = np.concatenate([p[2] for p in parts])
    return SegmentBatch(file_start, length, data_off)
