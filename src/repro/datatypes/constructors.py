"""Derived-datatype constructors (the MPI_Type_* family).

All constructors return immutable :class:`~repro.datatypes.base.Datatype`
objects.  Displacement conventions follow MPI: ``vector``/``indexed``
count displacements in units of the base type's *extent*;
``hvector``/``hindexed``/``struct`` count them in bytes.

Deviation from MPI noted for reviewers: negative displacements (lb < 0)
are rejected, and the extent of indexed/struct types is taken as the
upper bound of the typemap (lb pinned at 0).  File views require
non-negative monotonic typemaps anyway, so nothing in the paper's
experiments is lost.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DatatypeError
from repro.datatypes.base import Datatype
from repro.datatypes.flatten import FlatType

__all__ = [
    "contiguous",
    "vector",
    "hvector",
    "indexed",
    "hindexed",
    "indexed_block",
    "struct",
    "subarray",
    "resized",
]


def _as_int_array(values: Sequence[int], what: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise DatatypeError(f"{what} must be a 1-D sequence")
    return arr


def _place_blocks(
    child: FlatType, displs: np.ndarray, blocklens: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Lay out ``blocklens[i]`` consecutive child instances starting at
    byte ``displs[i]``; blocks appear in data order.  Returns raw
    (offsets, lengths) arrays (coalescing happens in FlatType)."""
    if displs.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if (blocklens < 0).any():
        raise DatatypeError("block lengths must be non-negative")
    if np.unique(blocklens).size == 1:
        # Fast fully-vectorized path for the common constant-block case.
        b = int(blocklens[0])
        if b == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        inst_base = (
            displs[:, None] + np.arange(b, dtype=np.int64)[None, :] * child.extent
        ).ravel()
        offs = (inst_base[:, None] + child.offsets[None, :]).ravel()
        lens = np.broadcast_to(
            child.lengths, (inst_base.size, child.lengths.size)
        ).ravel()
        return offs, lens
    parts_off = []
    parts_len = []
    for d, b in zip(displs.tolist(), blocklens.tolist()):
        if b == 0:
            continue
        inst_base = d + np.arange(b, dtype=np.int64) * child.extent
        parts_off.append((inst_base[:, None] + child.offsets[None, :]).ravel())
        parts_len.append(np.broadcast_to(child.lengths, (b, child.lengths.size)).ravel())
    if not parts_off:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(parts_off), np.concatenate(parts_len)


class _DerivedType(Datatype):
    """A derived type defined by a block placement over a child type."""

    __slots__ = ("_child_flat", "_displs", "_blocklens", "_extent_override")

    def __init__(
        self,
        name: str,
        child: Datatype,
        displs: np.ndarray,
        blocklens: np.ndarray,
        extent_override: int | None = None,
    ) -> None:
        super().__init__(name=name)
        if (displs < 0).any():
            raise DatatypeError(
                f"{name}: negative displacements are not supported (lb must be 0)"
            )
        self._child_flat = child.flatten()
        self._displs = displs
        self._blocklens = blocklens
        self._extent_override = extent_override

    def _build_flat(self) -> FlatType:
        offs, lens = _place_blocks(self._child_flat, self._displs, self._blocklens)
        if self._extent_override is not None:
            extent = self._extent_override
        elif offs.size:
            # ub of the typemap (lb pinned at 0 by the displacement check,
            # but the placement may still start past 0).
            child_span = self._child_flat
            block_ends = (
                self._displs
                + np.maximum(self._blocklens - 1, 0) * child_span.extent
                + child_span.span_hi
            )
            extent = int(block_ends[self._blocklens > 0].max()) if (self._blocklens > 0).any() else 0
        else:
            extent = 0
        return FlatType(offs, lens, extent)


def contiguous(count: int, base: Datatype) -> Datatype:
    """``count`` consecutive instances of ``base``."""
    if count < 0:
        raise DatatypeError(f"contiguous: count must be non-negative, got {count}")
    displs = np.array([0], dtype=np.int64)
    blocklens = np.array([count], dtype=np.int64)
    return _DerivedType(
        "contiguous", base, displs, blocklens, extent_override=count * base.extent
    )


def vector(count: int, blocklength: int, stride: int, base: Datatype) -> Datatype:
    """``count`` blocks of ``blocklength`` instances, block starts
    ``stride`` base-extents apart (MPI_Type_vector)."""
    return hvector(count, blocklength, stride * base.extent, base)


def hvector(count: int, blocklength: int, stride_bytes: int, base: Datatype) -> Datatype:
    """Like :func:`vector` with the stride in bytes (MPI_Type_create_hvector)."""
    if count < 0 or blocklength < 0:
        raise DatatypeError("hvector: count and blocklength must be non-negative")
    if count > 1 and stride_bytes < 0:
        raise DatatypeError("hvector: negative strides are not supported")
    displs = np.arange(count, dtype=np.int64) * stride_bytes
    blocklens = np.full(count, blocklength, dtype=np.int64)
    return _DerivedType("hvector", base, displs, blocklens)


def indexed(blocklengths: Sequence[int], displacements: Sequence[int], base: Datatype) -> Datatype:
    """Blocks of varying length at displacements counted in base extents
    (MPI_Type_indexed)."""
    displs = _as_int_array(displacements, "displacements") * base.extent
    blocklens = _as_int_array(blocklengths, "blocklengths")
    if displs.size != blocklens.size:
        raise DatatypeError("indexed: blocklengths and displacements differ in size")
    return _DerivedType("indexed", base, displs, blocklens)


def hindexed(blocklengths: Sequence[int], displacements_bytes: Sequence[int], base: Datatype) -> Datatype:
    """Like :func:`indexed` with byte displacements (MPI_Type_create_hindexed)."""
    displs = _as_int_array(displacements_bytes, "displacements")
    blocklens = _as_int_array(blocklengths, "blocklengths")
    if displs.size != blocklens.size:
        raise DatatypeError("hindexed: blocklengths and displacements differ in size")
    return _DerivedType("hindexed", base, displs, blocklens)


def indexed_block(blocklength: int, displacements: Sequence[int], base: Datatype) -> Datatype:
    """Constant-length blocks at extent-counted displacements
    (MPI_Type_create_indexed_block)."""
    displs = _as_int_array(displacements, "displacements") * base.extent
    blocklens = np.full(displs.size, blocklength, dtype=np.int64)
    return _DerivedType("indexed_block", base, displs, blocklens)


class _StructType(Datatype):
    __slots__ = ("_parts",)

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements_bytes: Sequence[int],
        types: Sequence[Datatype],
    ) -> None:
        super().__init__(name="struct")
        if not (len(blocklengths) == len(displacements_bytes) == len(types)):
            raise DatatypeError("struct: argument lists differ in size")
        parts = []
        for b, d, t in zip(blocklengths, displacements_bytes, types):
            if b < 0:
                raise DatatypeError("struct: block lengths must be non-negative")
            if d < 0:
                raise DatatypeError("struct: negative displacements are not supported")
            parts.append((int(b), int(d), t.flatten()))
        self._parts = parts

    def _build_flat(self) -> FlatType:
        parts_off = []
        parts_len = []
        extent = 0
        for b, d, child in self._parts:
            if b == 0 or child.num_segments == 0:
                continue
            inst_base = d + np.arange(b, dtype=np.int64) * child.extent
            parts_off.append((inst_base[:, None] + child.offsets[None, :]).ravel())
            parts_len.append(np.broadcast_to(child.lengths, (b, child.lengths.size)).ravel())
            extent = max(extent, d + (b - 1) * child.extent + child.span_hi)
        if not parts_off:
            return FlatType([], [], 0)
        return FlatType(np.concatenate(parts_off), np.concatenate(parts_len), extent)


def struct(
    blocklengths: Sequence[int],
    displacements_bytes: Sequence[int],
    types: Sequence[Datatype],
) -> Datatype:
    """Heterogeneous blocks at byte displacements (MPI_Type_create_struct)."""
    return _StructType(blocklengths, displacements_bytes, types)


class _SubarrayType(Datatype):
    __slots__ = ("_sizes", "_subsizes", "_starts", "_base_flat")

    def __init__(
        self,
        sizes: Sequence[int],
        subsizes: Sequence[int],
        starts: Sequence[int],
        base: Datatype,
    ) -> None:
        super().__init__(name="subarray")
        if not (len(sizes) == len(subsizes) == len(starts)) or not sizes:
            raise DatatypeError("subarray: sizes/subsizes/starts must match and be non-empty")
        for n, s, o in zip(sizes, subsizes, starts):
            if n <= 0 or s < 0 or o < 0 or o + s > n:
                raise DatatypeError(
                    f"subarray: invalid dimension (size={n}, subsize={s}, start={o})"
                )
        self._sizes = [int(v) for v in sizes]
        self._subsizes = [int(v) for v in subsizes]
        self._starts = [int(v) for v in starts]
        self._base_flat = base.flatten()

    def _build_flat(self) -> FlatType:
        # C (row-major) order: the last dimension is contiguous in base
        # extents.  Build from the innermost dimension outward.
        base = self._base_flat
        ext = base.extent
        # Innermost: a run of subsizes[-1] base instances at starts[-1].
        inst_base = (self._starts[-1] + np.arange(self._subsizes[-1], dtype=np.int64)) * ext
        offs = (inst_base[:, None] + base.offsets[None, :]).ravel()
        lens = np.broadcast_to(base.lengths, (inst_base.size, base.lengths.size)).ravel()
        row_extent = self._sizes[-1] * ext
        for dim in range(len(self._sizes) - 2, -1, -1):
            row_base = (self._starts[dim] + np.arange(self._subsizes[dim], dtype=np.int64)) * row_extent
            offs = (row_base[:, None] + offs[None, :]).ravel()
            lens = np.broadcast_to(lens, (row_base.size, lens.size)).ravel()
            row_extent *= self._sizes[dim]
        return FlatType(offs, lens, row_extent)


def subarray(
    sizes: Sequence[int],
    subsizes: Sequence[int],
    starts: Sequence[int],
    base: Datatype,
) -> Datatype:
    """An n-dimensional C-order subarray (MPI_Type_create_subarray).

    The extent is the full array's span, so tiling a file view with this
    type walks successive full arrays — the standard idiom for writing a
    distributed block of a global array per time step."""
    return _SubarrayType(sizes, subsizes, starts, base)


class _ResizedType(Datatype):
    __slots__ = ("_inner", "_new_extent")

    def __init__(self, base: Datatype, lb: int, extent: int) -> None:
        super().__init__(name="resized")
        if lb != 0:
            raise DatatypeError("resized: only lb == 0 is supported")
        if extent < 0:
            raise DatatypeError(f"resized: extent must be non-negative, got {extent}")
        self._inner = base.flatten()
        self._new_extent = int(extent)

    def _build_flat(self) -> FlatType:
        return FlatType(self._inner.offsets, self._inner.lengths, self._new_extent)


def resized(base: Datatype, lb: int, extent: int) -> Datatype:
    """Override a type's extent (MPI_Type_create_resized with lb == 0).

    This is how the paper's "succinct struct" HPIO filetype is built:
    ``resized(contiguous(region, BYTE), 0, region + spacing)`` describes
    the whole strided pattern with a single offset/length pair per tile.
    """
    return _ResizedType(base, lb, extent)
