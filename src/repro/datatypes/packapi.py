"""MPI_Pack / MPI_Unpack analogues.

A thin public wrapper over the packing machinery: serialize ``count``
instances of a datatype laid out in a buffer into a contiguous byte
stream, and back.  Useful to applications (and to tests) independent of
file I/O — and it documents the data-order semantics every other layer
assumes.
"""

from __future__ import annotations

import numpy as np

from repro.datatypes.base import Datatype
from repro.datatypes.packing import gather_bytes, scatter_bytes
from repro.errors import DatatypeError

__all__ = ["pack", "unpack", "pack_size"]


def pack_size(datatype: Datatype, count: int = 1) -> int:
    """Bytes needed to pack ``count`` instances (MPI_Pack_size)."""
    if count < 0:
        raise DatatypeError(f"count must be non-negative, got {count}")
    return datatype.size * count


def _check_span(buf: np.ndarray, datatype: Datatype, count: int) -> None:
    flat = datatype.flatten()
    if count > 0 and flat.size > 0:
        needed = (count - 1) * flat.extent + flat.span_hi
        if needed > buf.size:
            raise DatatypeError(
                f"buffer of {buf.size} bytes too small for {count} x "
                f"{datatype.name} (needs {needed})"
            )


def pack(buf: np.ndarray, datatype: Datatype, count: int = 1) -> np.ndarray:
    """Gather ``count`` instances from ``buf`` into contiguous bytes."""
    buf = np.asarray(buf)
    if buf.dtype != np.uint8 or buf.ndim != 1:
        raise DatatypeError("pack expects a 1-D uint8 buffer")
    if count < 0:
        raise DatatypeError(f"count must be non-negative, got {count}")
    _check_span(buf, datatype, count)
    flat = datatype.flatten()
    # gather_bytes tiles the flattened type as far as the data range
    # requires, so `count` instances are simply count * size bytes.
    return gather_bytes(buf, flat, 0, flat.size * count)


def unpack(data: np.ndarray, buf: np.ndarray, datatype: Datatype, count: int = 1) -> None:
    """Scatter contiguous ``data`` into ``buf`` as ``count`` instances."""
    buf = np.asarray(buf)
    data = np.asarray(data)
    if buf.dtype != np.uint8 or buf.ndim != 1:
        raise DatatypeError("unpack expects a 1-D uint8 buffer")
    if data.dtype != np.uint8 or data.ndim != 1:
        raise DatatypeError("unpack expects 1-D uint8 packed data")
    if count < 0:
        raise DatatypeError(f"count must be non-negative, got {count}")
    expected = pack_size(datatype, count)
    if data.size != expected:
        raise DatatypeError(
            f"packed data has {data.size} bytes; {count} x {datatype.name} "
            f"needs {expected}"
        )
    _check_span(buf, datatype, count)
    flat = datatype.flatten()
    scatter_bytes(buf, flat, 0, flat.size * count, data)
