"""Datatype class hierarchy and primitive types.

A :class:`Datatype` is an immutable description of a byte layout.  Its
canonical form is the :class:`~repro.datatypes.flatten.FlatType`
returned by :meth:`Datatype.flatten`, computed once and cached.  The
constructor functions in :mod:`repro.datatypes.constructors` build the
derived types; this module holds the base class and the primitives.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DatatypeError
from repro.datatypes.flatten import FlatType

__all__ = [
    "Datatype",
    "PrimitiveType",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "INT64",
    "FLOAT",
    "DOUBLE",
]


class Datatype:
    """Immutable MPI-style datatype.

    Subclasses implement :meth:`_build_flat` once; ``size``, ``extent``
    and the flattened representation are derived from it.  Equality is
    structural (same flattened layout and extent).
    """

    __slots__ = ("_flat", "_committed", "_name")

    def __init__(self, name: str = "derived") -> None:
        self._flat: Optional[FlatType] = None
        self._committed = False
        self._name = name

    # -- to be provided by subclasses --------------------------------------
    def _build_flat(self) -> FlatType:
        raise NotImplementedError

    # -- canonical form ------------------------------------------------------
    def flatten(self) -> FlatType:
        """Return (and cache) the canonical flattened representation."""
        if self._flat is None:
            self._flat = self._build_flat()
        return self._flat

    # -- MPI-like surface ------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of data bytes in one instance."""
        return self.flatten().size

    @property
    def extent(self) -> int:
        """Tiling stride in bytes."""
        return self.flatten().extent

    @property
    def num_segments(self) -> int:
        """Flattened offset/length pair count (the paper's ``D``)."""
        return self.flatten().num_segments

    @property
    def name(self) -> str:
        return self._name

    def commit(self) -> "Datatype":
        """MPI_Type_commit analogue: precompute the flattened form."""
        self.flatten()
        self._committed = True
        return self

    @property
    def committed(self) -> bool:
        return self._committed

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Datatype):
            return NotImplemented
        return self.flatten() == other.flatten()

    def __hash__(self) -> int:
        return hash(self.flatten())

    def __repr__(self) -> str:
        return f"<{self._name} size={self.size} extent={self.extent} D={self.num_segments}>"


class PrimitiveType(Datatype):
    """A named fixed-width primitive (BYTE, INT, DOUBLE, ...)."""

    __slots__ = ("_width",)

    def __init__(self, name: str, width: int) -> None:
        super().__init__(name=name)
        if width <= 0:
            raise DatatypeError(f"primitive width must be positive, got {width}")
        self._width = width

    @property
    def width(self) -> int:
        return self._width

    def _build_flat(self) -> FlatType:
        return FlatType(
            np.array([0], dtype=np.int64),
            np.array([self._width], dtype=np.int64),
            self._width,
        )


class RawFlatType(Datatype):
    """A datatype wrapping an explicit :class:`FlatType`.

    Used when reconstructing types from the wire, and to build the
    "explicitly enumerated" variants in the benchmarks.
    """

    __slots__ = ()

    def __init__(self, flat: FlatType, name: str = "raw") -> None:
        super().__init__(name=name)
        self._flat = flat

    def _build_flat(self) -> FlatType:  # pragma: no cover - _flat preset
        assert self._flat is not None
        return self._flat


BYTE = PrimitiveType("BYTE", 1)
CHAR = PrimitiveType("CHAR", 1)
SHORT = PrimitiveType("SHORT", 2)
INT = PrimitiveType("INT", 4)
INT64 = PrimitiveType("INT64", 8)
FLOAT = PrimitiveType("FLOAT", 4)
DOUBLE = PrimitiveType("DOUBLE", 8)
