"""MPI derived datatypes, flattening, cursors, and packing.

This package is a from-scratch implementation of the MPI datatype
machinery the paper's collective I/O relies on:

* :mod:`~repro.datatypes.base` — the :class:`Datatype` hierarchy and
  primitive types (BYTE, INT, DOUBLE, ...);
* :mod:`~repro.datatypes.constructors` — ``contiguous``, ``vector``,
  ``hvector``, ``indexed``, ``hindexed``, ``indexed_block``, ``struct``,
  ``subarray``, ``resized``;
* :mod:`~repro.datatypes.flatten` — :class:`FlatType`, the canonical
  flattened (offset/length in data order, coalesced) representation;
* :mod:`~repro.datatypes.segments` — :class:`FlatCursor`, the tiled
  range-intersection cursor with the paper's whole-tile skipping
  optimization and per-pair cost counters;
* :mod:`~repro.datatypes.packing` — gather/scatter between user buffers
  and the data-order byte stream;
* :mod:`~repro.datatypes.serialize` — wire encoding of flattened
  datatypes (what the new implementation ships to aggregators).
"""

from repro.datatypes.base import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    INT64,
    SHORT,
    Datatype,
    PrimitiveType,
)
from repro.datatypes.darray import (
    DISTRIBUTE_BLOCK,
    DISTRIBUTE_CYCLIC,
    DISTRIBUTE_NONE,
    darray,
)
from repro.datatypes.constructors import (
    contiguous,
    hindexed,
    hvector,
    indexed,
    indexed_block,
    resized,
    struct,
    subarray,
    vector,
)
from repro.datatypes.flatten import FlatType
from repro.datatypes.packapi import pack, pack_size, unpack
from repro.datatypes.packing import gather_bytes, scatter_bytes
from repro.datatypes.segments import FlatCursor, SegmentBatch
from repro.datatypes.serialize import decode_flat, encode_flat, wire_size

__all__ = [
    "Datatype",
    "PrimitiveType",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "INT64",
    "FLOAT",
    "DOUBLE",
    "contiguous",
    "vector",
    "hvector",
    "indexed",
    "hindexed",
    "indexed_block",
    "struct",
    "subarray",
    "resized",
    "darray",
    "DISTRIBUTE_NONE",
    "DISTRIBUTE_BLOCK",
    "DISTRIBUTE_CYCLIC",
    "FlatType",
    "FlatCursor",
    "SegmentBatch",
    "pack",
    "unpack",
    "pack_size",
    "gather_bytes",
    "scatter_bytes",
    "encode_flat",
    "decode_flat",
    "wire_size",
]
