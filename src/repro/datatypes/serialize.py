"""Wire encoding of flattened datatypes.

Section 5.3's central trade: the new implementation sends each
aggregator the client's *flattened filetype* (D offset/length pairs plus
a small header) instead of the pre-intersected per-aggregator request
lists (m_i pairs, summing to M).  These helpers produce the byte-exact
payloads so the network cost model charges real message sizes, and
reconstruct the type on the receiving side.
"""

from __future__ import annotations

import struct as _struct

import numpy as np

from repro.errors import DatatypeError
from repro.datatypes.flatten import FlatType

__all__ = ["encode_flat", "decode_flat", "wire_size", "PAIR_BYTES", "HEADER_BYTES"]

#: Bytes per offset/length pair on the wire (two int64s).
PAIR_BYTES = 16
#: Fixed header: magic, extent, segment count (int64 each).
HEADER_BYTES = 24

_MAGIC = 0x464C4154  # "FLAT"


def wire_size(flat: FlatType) -> int:
    """Encoded size in bytes (what the network is charged)."""
    return HEADER_BYTES + PAIR_BYTES * flat.num_segments


def encode_flat(flat: FlatType) -> bytes:
    """Serialize a flattened datatype to bytes."""
    header = _struct.pack("<qqq", _MAGIC, flat.extent, flat.num_segments)
    body = np.stack([flat.offsets, flat.lengths], axis=1).astype("<i8").tobytes()
    return header + body


def decode_flat(payload: bytes) -> FlatType:
    """Reconstruct a flattened datatype from :func:`encode_flat` output."""
    if len(payload) < HEADER_BYTES:
        raise DatatypeError("flattened-datatype payload too short")
    magic, extent, count = _struct.unpack_from("<qqq", payload, 0)
    if magic != _MAGIC:
        raise DatatypeError("flattened-datatype payload has a bad magic number")
    expected = HEADER_BYTES + PAIR_BYTES * count
    if len(payload) != expected:
        raise DatatypeError(
            f"flattened-datatype payload has {len(payload)} bytes, expected {expected}"
        )
    body = np.frombuffer(payload, dtype="<i8", offset=HEADER_BYTES).reshape(count, 2)
    return FlatType(body[:, 0].astype(np.int64), body[:, 1].astype(np.int64), int(extent))
