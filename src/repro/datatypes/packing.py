"""Gather/scatter between user buffers and the data-order byte stream.

The two-phase exchange moves *data-order* byte ranges between clients
and aggregators; this module converts between those ranges and the
(possibly non-contiguous) layout described by a memory datatype over a
numpy ``uint8`` buffer.

Two execution strategies, picked per call:

* many tiny segments — build a flat index array (prefix-sum trick) and
  use one fancy-indexing operation;
* few large segments — plain slice copies in a Python loop.

Both produce identical results; only wall-clock speed differs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatatypeError
from repro.datatypes.flatten import FlatType
from repro.datatypes.segments import SegmentBatch, data_to_file_segments

__all__ = ["expand_indices", "gather_bytes", "scatter_bytes", "gather_segments", "scatter_segments"]

#: Mean segment length below which fancy indexing beats a slice loop.
_FANCY_THRESHOLD = 512


def expand_indices(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Expand (start, length) runs into one flat index array.

    ``expand_indices([3, 10], [2, 3]) == [3, 4, 10, 11, 12]``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    keep = lengths > 0
    if not keep.all():
        starts, lengths = starts[keep], lengths[keep]
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    total = int(lengths.sum())
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if starts.size > 1:
        boundaries = np.cumsum(lengths)[:-1]
        out[boundaries] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    return np.cumsum(out)


def _check_buf(buf: np.ndarray) -> np.ndarray:
    arr = np.asarray(buf)
    if arr.dtype != np.uint8 or arr.ndim != 1:
        raise DatatypeError("buffers must be 1-D numpy uint8 arrays")
    return arr


def gather_segments(buf: np.ndarray, batch: SegmentBatch) -> np.ndarray:
    """Collect the bytes of ``batch``'s address ranges from ``buf`` into
    a contiguous array ordered by the batch's data offsets."""
    buf = _check_buf(buf)
    n = batch.num_segments
    if n == 0:
        return np.empty(0, dtype=np.uint8)
    order = np.argsort(batch.data_offsets, kind="stable")
    starts = batch.file_offsets[order]
    lens = batch.lengths[order]
    total = int(lens.sum())
    if total and total // n < _FANCY_THRESHOLD:
        return buf[expand_indices(starts, lens)]
    out = np.empty(total, dtype=np.uint8)
    pos = 0
    for s, ln in zip(starts.tolist(), lens.tolist()):
        out[pos : pos + ln] = buf[s : s + ln]
        pos += ln
    return out


def scatter_segments(buf: np.ndarray, batch: SegmentBatch, data: np.ndarray) -> None:
    """Inverse of :func:`gather_segments`: spread ``data`` (contiguous,
    in data order) into ``buf`` at the batch's address ranges."""
    buf = _check_buf(buf)
    data = _check_buf(data)
    n = batch.num_segments
    if n == 0:
        if data.size:
            raise DatatypeError("scatter_segments: data supplied for an empty batch")
        return
    order = np.argsort(batch.data_offsets, kind="stable")
    starts = batch.file_offsets[order]
    lens = batch.lengths[order]
    total = int(lens.sum())
    if data.size != total:
        raise DatatypeError(
            f"scatter_segments: data has {data.size} bytes, batch needs {total}"
        )
    if total and total // n < _FANCY_THRESHOLD:
        buf[expand_indices(starts, lens)] = data
        return
    pos = 0
    for s, ln in zip(starts.tolist(), lens.tolist()):
        buf[s : s + ln] = data[pos : pos + ln]
        pos += ln


def gather_bytes(
    buf: np.ndarray, memflat: FlatType, data_lo: int, data_hi: int
) -> np.ndarray:
    """Gather data bytes [data_lo, data_hi) of the access described by
    ``memflat`` (tiled over ``buf`` from address 0)."""
    batch = data_to_file_segments(memflat, 0, data_lo, data_hi)
    return gather_segments(buf, batch)


def scatter_bytes(
    buf: np.ndarray, memflat: FlatType, data_lo: int, data_hi: int, data: np.ndarray
) -> None:
    """Scatter contiguous ``data`` into the access's bytes [data_lo, data_hi)."""
    batch = data_to_file_segments(memflat, 0, data_lo, data_hi)
    scatter_segments(buf, batch, data)
