"""Distributed-array datatypes (MPI_Type_create_darray).

Builds the filetype describing one process's share of an n-dimensional
C-order global array distributed block / cyclic(k) / none per
dimension over a process grid — the datatype HPF-style scientific
applications hand to ``set_view`` so every rank addresses exactly its
elements of a shared checkpoint.

Supported distributions per dimension:

* ``DISTRIBUTE_NONE``      — dimension not distributed;
* ``DISTRIBUTE_BLOCK``     — contiguous blocks of ``ceil(n/p)``;
* ``DISTRIBUTE_CYCLIC``    — round-robin with a block size (darg).

The result is an ordinary :class:`~repro.datatypes.base.Datatype`
(flattened eagerly), so all cursor/packing machinery applies.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.datatypes.base import Datatype
from repro.datatypes.flatten import FlatType
from repro.errors import DatatypeError

__all__ = [
    "DISTRIBUTE_NONE",
    "DISTRIBUTE_BLOCK",
    "DISTRIBUTE_CYCLIC",
    "darray",
]

DISTRIBUTE_NONE = "none"
DISTRIBUTE_BLOCK = "block"
DISTRIBUTE_CYCLIC = "cyclic"

_DISTS = (DISTRIBUTE_NONE, DISTRIBUTE_BLOCK, DISTRIBUTE_CYCLIC)


def _dim_indices(n: int, dist: str, darg: int, p: int, coord: int) -> np.ndarray:
    """Global indices along one dimension owned by process ``coord``."""
    if dist == DISTRIBUTE_NONE:
        if p != 1:
            raise DatatypeError("DISTRIBUTE_NONE requires grid size 1 in that dimension")
        return np.arange(n, dtype=np.int64)
    if dist == DISTRIBUTE_BLOCK:
        block = darg if darg > 0 else -(-n // p)
        if block * p < n:
            raise DatatypeError(
                f"block size {block} too small for extent {n} over {p} processes"
            )
        lo = coord * block
        hi = min(lo + block, n)
        return np.arange(lo, max(hi, lo), dtype=np.int64)
    if dist == DISTRIBUTE_CYCLIC:
        block = darg if darg > 0 else 1
        idx = []
        start = coord * block
        stride = p * block
        for base in range(start, n, stride):
            idx.append(np.arange(base, min(base + block, n), dtype=np.int64))
        if not idx:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(idx)
    raise DatatypeError(f"unknown distribution {dist!r}; options {_DISTS}")


class _DarrayType(Datatype):
    __slots__ = ("_gsizes", "_indices", "_elem")

    def __init__(
        self,
        gsizes: Sequence[int],
        indices: List[np.ndarray],
        elem: FlatType,
    ) -> None:
        super().__init__(name="darray")
        self._gsizes = [int(g) for g in gsizes]
        self._indices = indices
        self._elem = elem

    def _build_flat(self) -> FlatType:
        # Element offsets = sum over dims of idx_d * stride_d (C order).
        strides = [1] * len(self._gsizes)
        for d in range(len(self._gsizes) - 2, -1, -1):
            strides[d] = strides[d + 1] * self._gsizes[d + 1]
        offsets = np.zeros(1, dtype=np.int64)
        for idx, stride in zip(self._indices, strides):
            offsets = (offsets[:, None] + (idx * stride)[None, :]).ravel()
        ext = self._elem.extent
        byte_offsets = offsets * ext
        if self._elem.num_segments == 1 and self._elem.is_contiguous:
            lens = np.full(byte_offsets.size, self._elem.size, dtype=np.int64)
            offs = byte_offsets
        else:
            offs = (byte_offsets[:, None] + self._elem.offsets[None, :]).ravel()
            lens = np.broadcast_to(
                self._elem.lengths, (byte_offsets.size, self._elem.lengths.size)
            ).ravel()
        total = int(np.prod(self._gsizes)) * ext
        return FlatType(offs, lens, total)


def darray(
    gsizes: Sequence[int],
    distribs: Sequence[str],
    dargs: Sequence[int],
    psizes: Sequence[int],
    rank: int,
    base: Datatype,
) -> Datatype:
    """One process's filetype for a distributed global array.

    Parameters mirror MPI_Type_create_darray (C order): global extents,
    per-dimension distribution kind, distribution argument (block size;
    0 means the default), process-grid extents, and this process's rank
    in C-order grid numbering.  The type's extent is the whole global
    array, so tiling the view walks successive array snapshots.
    """
    nd = len(gsizes)
    if not (len(distribs) == len(dargs) == len(psizes) == nd) or nd == 0:
        raise DatatypeError("darray: argument lists must be non-empty and equal length")
    for g in gsizes:
        if g <= 0:
            raise DatatypeError("darray: global sizes must be positive")
    grid = [int(p) for p in psizes]
    for p in grid:
        if p <= 0:
            raise DatatypeError("darray: process grid sizes must be positive")
    size = int(np.prod(grid))
    if not 0 <= rank < size:
        raise DatatypeError(f"darray: rank {rank} outside grid of {size}")
    # C-order rank -> grid coordinates.
    coords = []
    rem = rank
    for p in reversed(grid):
        coords.append(rem % p)
        rem //= p
    coords.reverse()
    indices = [
        _dim_indices(int(n), dist, int(darg), p, c)
        for n, dist, darg, p, c in zip(gsizes, distribs, dargs, grid, coords)
    ]
    return _DarrayType(gsizes, indices, base.flatten())
