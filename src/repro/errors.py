"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Base class for discrete-event engine failures."""


class SimDeadlock(SimulationError):
    """All live ranks are blocked and no event can wake any of them.

    Carries a human-readable dump of each rank's state to make collective
    mismatches (e.g. one rank missing a barrier) easy to diagnose.
    """


class RankFailed(SimulationError):
    """A rank's main function raised; the original traceback is chained."""

    def __init__(self, rank: int, message: str = "") -> None:
        super().__init__(f"rank {rank} failed{': ' + message if message else ''}")
        self.rank = rank


class MPIError(ReproError):
    """Invalid use of the simulated MPI interface."""


class DatatypeError(ReproError):
    """Invalid datatype construction or use (negative lengths, overlap
    where forbidden, count mismatch, uncommitted use, ...)."""


class FileSystemError(ReproError):
    """Simulated file system failure (unknown file, bad mode, ...)."""


class TransientIOError(FileSystemError):
    """An injected, retryable I/O failure (the fault model's bread and
    butter: a server call that would have succeeded if reissued).

    ``site`` names the injection point (e.g. ``"server_write"``) and
    ``client`` the failing client id, so retry exhaustion can report
    exactly where the fault fired."""

    def __init__(self, site: str, client: int, path: str = "") -> None:
        super().__init__(
            f"transient I/O error at {site} (client {client}"
            + (f", file {path!r}" if path else "")
            + ")"
        )
        self.site = site
        self.client = client
        self.path = path


class TransientNetworkError(TransientIOError):
    """A detected in-flight frame corruption that a retransmission can
    fix.  Subclasses :class:`TransientIOError` so the existing
    :class:`~repro.io.retry.RetryPolicy` drives the bounded re-request
    without new machinery."""

    def __init__(self, site: str, rank: int) -> None:
        super().__init__(site, rank)


class IntegrityError(FileSystemError):
    """Stored data failed its checksum: silent corruption detected.

    Unlike :class:`TransientIOError`, re-reading cannot help — the
    authoritative copy itself is damaged — so retry policies do NOT
    catch this.  ``page_index`` is the corrupt page in its store and
    ``site`` names the verification point (``"page-read"``,
    ``"journal-commit"``, ``"fsck"``, ...)."""

    def __init__(self, site: str, page_index: int, path: str = "") -> None:
        super().__init__(
            f"checksum mismatch on page {page_index} at {site}"
            + (f" (file {path!r})" if path else "")
        )
        self.site = site
        self.page_index = page_index
        self.path = path


class RetryExhausted(FileSystemError):
    """A retry policy gave up on a transient fault.

    Chains the final :class:`TransientIOError` and carries its
    injection ``site`` plus the number of ``attempts`` made."""

    def __init__(self, site: str, attempts: int) -> None:
        super().__init__(
            f"I/O retries exhausted after {attempts} attempt(s); "
            f"last fault injected at {site}"
        )
        self.site = site
        self.attempts = attempts


class CollectiveIOError(ReproError):
    """Invalid use of the collective I/O layer (no view set, mismatched
    collective calls, unknown hint values, ...)."""


class AggregatorLost(CollectiveIOError):
    """An aggregator died during a collective call and could not be
    survived (failover disabled, or no aggregator left alive)."""

    def __init__(self, rank: int, reason: str = "") -> None:
        super().__init__(
            f"aggregator rank {rank} lost{': ' + reason if reason else ''}"
        )
        self.rank = rank


class HintError(CollectiveIOError):
    """An MPI-Info style hint has an unrecognized key or malformed value."""
