"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Base class for discrete-event engine failures."""


class SimDeadlock(SimulationError):
    """All live ranks are blocked and no event can wake any of them.

    Carries a human-readable dump of each rank's state to make collective
    mismatches (e.g. one rank missing a barrier) easy to diagnose.
    """


class RankFailed(SimulationError):
    """A rank's main function raised; the original traceback is chained."""

    def __init__(self, rank: int, message: str = "") -> None:
        super().__init__(f"rank {rank} failed{': ' + message if message else ''}")
        self.rank = rank


class MPIError(ReproError):
    """Invalid use of the simulated MPI interface."""


class DatatypeError(ReproError):
    """Invalid datatype construction or use (negative lengths, overlap
    where forbidden, count mismatch, uncommitted use, ...)."""


class FileSystemError(ReproError):
    """Simulated file system failure (unknown file, bad mode, ...)."""


class CollectiveIOError(ReproError):
    """Invalid use of the collective I/O layer (no view set, mismatched
    collective calls, unknown hint values, ...)."""


class HintError(CollectiveIOError):
    """An MPI-Info style hint has an unrecognized key or malformed value."""
