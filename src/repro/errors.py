"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Base class for discrete-event engine failures."""


class SimDeadlock(SimulationError):
    """All live ranks are blocked and no event can wake any of them.

    Carries a human-readable dump of each rank's state to make collective
    mismatches (e.g. one rank missing a barrier) easy to diagnose.
    """


class SimHang(SimulationError):
    """The engine gave up waiting for rank threads to terminate.

    Unlike :class:`SimDeadlock` (a *virtual-time* standstill the
    scheduler can prove), a hang is a *wall-clock* failure: some rank
    thread is stuck outside the engine's control (an infinite Python
    loop, a real `time.sleep`, a wedged syscall).  Carries a dump of
    each unfinished rank's state and its last trace event so the abort
    names the culprit instead of spinning silently.
    """


class RankFailed(SimulationError):
    """A rank's main function raised; the original traceback is chained."""

    def __init__(self, rank: int, message: str = "") -> None:
        super().__init__(f"rank {rank} failed{': ' + message if message else ''}")
        self.rank = rank


class RankCrashed(BaseException):
    """A rank process died fail-stop (the ``rank_crash`` fault).

    Derives from :class:`BaseException` — like the engine's internal
    abort signal — so no ``except Exception`` handler or retry policy
    between the crash site and the engine can swallow a death.  The
    engine catches it in the rank thread, marks the rank done, and
    keeps the remaining ranks running (unlike any other rank failure,
    which aborts the whole simulation).  ``site`` names where in the
    collective the process died (``"boundary"``, ``"exchange"``,
    ``"flush"``)."""

    def __init__(self, rank: int, site: str = "boundary") -> None:
        super().__init__(f"rank {rank} crashed (fail-stop at {site})")
        self.rank = rank
        self.site = site


class MPIError(ReproError):
    """Invalid use of the simulated MPI interface."""


class DatatypeError(ReproError):
    """Invalid datatype construction or use (negative lengths, overlap
    where forbidden, count mismatch, uncommitted use, ...)."""


class FileSystemError(ReproError):
    """Simulated file system failure (unknown file, bad mode, ...)."""


class TransientIOError(FileSystemError):
    """An injected, retryable I/O failure (the fault model's bread and
    butter: a server call that would have succeeded if reissued).

    ``site`` names the injection point (e.g. ``"server_write"``) and
    ``client`` the failing client id, so retry exhaustion can report
    exactly where the fault fired."""

    def __init__(self, site: str, client: int, path: str = "") -> None:
        super().__init__(
            f"transient I/O error at {site} (client {client}"
            + (f", file {path!r}" if path else "")
            + ")"
        )
        self.site = site
        self.client = client
        self.path = path


class TransientNetworkError(TransientIOError):
    """A detected in-flight frame corruption that a retransmission can
    fix.  Subclasses :class:`TransientIOError` so the existing
    :class:`~repro.io.retry.RetryPolicy` drives the bounded re-request
    without new machinery."""

    def __init__(self, site: str, rank: int) -> None:
        super().__init__(site, rank)


class OSTUnavailable(TransientIOError):
    """A server call needed an OST that is down (or fenced).

    Raised before any byte reaches the store, so a reissue is safe —
    the OST may recover inside the retry window, replication may
    restore a quorum, or the circuit breaker may shed the call faster
    next time.  ``reason`` is ``"down"`` (health says the OST is
    crashed/flapped out), ``"breaker-open"`` (the per-OST circuit
    breaker fast-failed the call without touching the sick OST), or
    ``"quorum"`` (a replicated write found fewer live replicas than
    its write-quorum)."""

    def __init__(
        self, site: str, client, path: str = "", *, ost: int = -1,
        reason: str = "down",
    ) -> None:
        super().__init__(site, client, path)
        self.ost = ost
        self.reason = reason
        self.args = (
            f"OST {ost} unavailable ({reason}) at {site} (client {client}"
            + (f", file {path!r}" if path else "")
            + ")",
        )


class OSTOverloaded(TransientIOError):
    """Typed backpressure: an OST's bounded queue refused the request.

    The admission check fires before any booking or store mutation, so
    the call is safe to reissue after backing off — which is the whole
    point: clients slow down instead of piling more service time onto
    a queue that is already ``queue_limit`` seconds deep."""

    def __init__(
        self, site: str, client, path: str = "", *, ost: int = -1,
        backlog: float = 0.0, limit: float = 0.0,
    ) -> None:
        super().__init__(site, client, path)
        self.ost = ost
        self.backlog = backlog
        self.limit = limit
        self.args = (
            f"OST {ost} overloaded at {site}: backlog {backlog:g}s exceeds "
            f"queue limit {limit:g}s (client {client}"
            + (f", file {path!r}" if path else "")
            + ")",
        )


class IntegrityError(FileSystemError):
    """Stored data failed its checksum: silent corruption detected.

    Unlike :class:`TransientIOError`, re-reading cannot help — the
    authoritative copy itself is damaged — so retry policies do NOT
    catch this.  ``page_index`` is the corrupt page in its store and
    ``site`` names the verification point (``"page-read"``,
    ``"journal-commit"``, ``"fsck"``, ...)."""

    def __init__(self, site: str, page_index: int, path: str = "") -> None:
        super().__init__(
            f"checksum mismatch on page {page_index} at {site}"
            + (f" (file {path!r})" if path else "")
        )
        self.site = site
        self.page_index = page_index
        self.path = path


class LockDeadlock(TransientIOError):
    """The extent-lock manager found a waits-for cycle and broke it.

    Raised at the waiter chosen as victim; the cycle is released and
    the acquisition is safe to reissue, so this subclasses
    :class:`TransientIOError` and rides the existing
    :class:`~repro.io.retry.RetryPolicy` backoff loop.  ``cycle`` is
    the tuple of client ids forming the loop, victim first."""

    def __init__(self, client: int, cycle: tuple, path: str = "") -> None:
        super().__init__("lock-deadlock", client, path)
        self.cycle = tuple(cycle)
        self.args = (
            f"lock deadlock broken at client {client}: waits-for cycle "
            + " -> ".join(str(c) for c in self.cycle)
            + (f" (file {path!r})" if path else ""),
        )


class RetryExhausted(FileSystemError):
    """A retry policy gave up on a transient fault.

    Chains the final :class:`TransientIOError` and carries its
    injection ``site`` plus the number of ``attempts`` made."""

    def __init__(self, site: str, attempts: int) -> None:
        super().__init__(
            f"I/O retries exhausted after {attempts} attempt(s); "
            f"last fault injected at {site}"
        )
        self.site = site
        self.attempts = attempts


class RetryBudgetExhausted(RetryExhausted):
    """A client's cross-operation retry *budget* ran dry.

    Unlike plain :class:`RetryExhausted` (one operation used up its
    per-operation attempts), this is the storm-control limit: the
    client as a whole has spent ``limit`` retries across all its
    operations and is cut off — further faults fail fast instead of
    adding retry load to an already-sick storage system."""

    def __init__(self, site: str, attempts: int, limit: int) -> None:
        super().__init__(site, attempts)
        self.limit = limit
        self.args = (
            f"client retry budget ({limit}) exhausted; last fault "
            f"injected at {site} (attempt {attempts})",
        )


class CollectiveIOError(ReproError):
    """Invalid use of the collective I/O layer (no view set, mismatched
    collective calls, unknown hint values, ...)."""


class WaitTimeout(CollectiveIOError):
    """A :meth:`repro.core.request.Request.wait` with a ``timeout``
    expired before the nonblocking collective completed.

    The operation itself keeps running — the request stays pending and
    a later ``wait()``/``test()`` can still complete it.  ``seconds``
    is the budget that ran out, ``op`` the operation's label."""

    def __init__(self, op: str, rank: int, seconds: float) -> None:
        super().__init__(
            f"wait on {op or 'request'} (rank {rank}) timed out "
            f"after {seconds:g}s; the operation is still in flight"
        )
        self.op = op
        self.rank = rank
        self.seconds = seconds


class AggregatorLost(CollectiveIOError):
    """An aggregator died during a collective call and could not be
    survived (failover disabled, or no aggregator left alive)."""

    def __init__(self, rank: int, reason: str = "") -> None:
        super().__init__(
            f"aggregator rank {rank} lost{': ' + reason if reason else ''}"
        )
        self.rank = rank


class CollectiveAborted(CollectiveIOError):
    """A collective call lost its quorum of live participants.

    Raised on every *survivor* when, after the epoch-agreement round
    converges on the dead set, fewer than ``crash_quorum`` participants
    remain alive — completing the call would no longer represent the
    communicator.  ``epoch`` is the phase boundary at which agreement
    ran, ``alive``/``dead`` the converged membership."""

    def __init__(
        self, epoch: int, alive: int, quorum: int, dead: tuple = ()
    ) -> None:
        super().__init__(
            f"collective aborted at epoch {epoch}: {alive} live rank(s) "
            f"below quorum {quorum}"
            + (f" (dead: {sorted(dead)})" if dead else "")
        )
        self.epoch = epoch
        self.alive = alive
        self.quorum = quorum
        self.dead = tuple(sorted(dead))


class HintError(CollectiveIOError):
    """An MPI-Info style hint has an unrecognized key or malformed value."""


class DeadlineExceeded(CollectiveIOError):
    """A collective call blew its ``coll_deadline`` budget.

    Raised on the rank whose blocking receive would have carried it
    past the deadline — the typed alternative to hanging on a stalled
    peer.  ``site`` names the blocking operation, ``phase`` the
    collective phase label active when the budget ran out."""

    def __init__(
        self, site: str, rank: int, phase: str = "", deadline: float = 0.0
    ) -> None:
        super().__init__(
            f"collective deadline exceeded at {site} (rank {rank}"
            + (f", phase {phase!r}" if phase else "")
            + (f", budget {deadline:g}s" if deadline else "")
            + ")"
        )
        self.site = site
        self.rank = rank
        self.phase = phase
        self.deadline = deadline
