"""I/O aggregator selection.

Which processes act as aggregators is "left up to the implementation,
which in turn may choose to defer to the user" — here the ``cb_nodes``
hint.  Aggregators are spread evenly across the rank space (the ROMIO
default when one process per node is chosen), which keeps them spread
across the machine's nodes in the common block rank-placement.
"""

from __future__ import annotations

from repro.errors import CollectiveIOError

__all__ = ["select_aggregators"]


def select_aggregators(size: int, cb_nodes: int, layout: str = "spread") -> list[int]:
    """Ranks acting as aggregators.

    ``cb_nodes == 0`` (the hint default) means every process
    aggregates; otherwise ``cb_nodes`` ranks are picked by ``layout``:

    * ``"spread"`` — evenly spaced across the rank space (ROMIO's
      default choice of one process per node under block placement);
    * ``"packed"`` — the first ``cb_nodes`` ranks (what a
      ``cb_config_list`` pinning aggregators to the first nodes does).
    """
    if size <= 0:
        raise CollectiveIOError(f"communicator size must be positive, got {size}")
    if cb_nodes < 0:
        raise CollectiveIOError(f"cb_nodes must be non-negative, got {cb_nodes}")
    if layout not in ("spread", "packed"):
        raise CollectiveIOError(f"unknown aggregator layout {layout!r}")
    naggs = size if cb_nodes == 0 else min(cb_nodes, size)
    if naggs == size:
        return list(range(size))
    if layout == "packed":
        return list(range(naggs))
    return sorted({(i * size) // naggs for i in range(naggs)})
