"""I/O aggregator selection.

Which processes act as aggregators is "left up to the implementation,
which in turn may choose to defer to the user" — here the ``cb_nodes``
hint.  Aggregators are spread evenly across the rank space (the ROMIO
default when one process per node is chosen), which keeps them spread
across the machine's nodes in the common block rank-placement.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CollectiveIOError
from repro.mpi.topology import NodeTopology

__all__ = ["select_aggregators"]


def select_aggregators(
    size: int,
    cb_nodes: int,
    layout: str = "spread",
    topology: Optional[NodeTopology] = None,
) -> list[int]:
    """Ranks acting as aggregators.

    ``cb_nodes == 0`` (the hint default) means every process
    aggregates; otherwise ``cb_nodes`` ranks are picked by ``layout``:

    * ``"spread"`` — evenly spaced across the rank space (ROMIO's
      default choice of one process per node under block placement);
    * ``"packed"`` — the first ``cb_nodes`` ranks (what a
      ``cb_config_list`` pinning aggregators to the first nodes does).

    With an armed node ``topology``, the spread layout becomes
    *leader-aware*: aggregators land on node leaders first (lowest rank
    per node, nodes evenly spaced), so the two-layer exchange's
    leader↔aggregator hop is free whenever an aggregator count up to
    the node count allows it.  Beyond one per node, additional
    aggregators fill nodes round-robin.  The packed layout is already
    node-packed under block placement and is left alone.
    """
    if size <= 0:
        raise CollectiveIOError(f"communicator size must be positive, got {size}")
    if cb_nodes < 0:
        raise CollectiveIOError(f"cb_nodes must be non-negative, got {cb_nodes}")
    if layout not in ("spread", "packed"):
        raise CollectiveIOError(f"unknown aggregator layout {layout!r}")
    naggs = size if cb_nodes == 0 else min(cb_nodes, size)
    if naggs == size:
        return list(range(size))
    if layout == "packed":
        return list(range(naggs))
    if topology is not None and topology.procs_per_node > 1:
        return _spread_on_leaders(size, naggs, topology)
    return sorted({(i * size) // naggs for i in range(naggs)})


def _spread_on_leaders(size: int, naggs: int, topology: NodeTopology) -> list[int]:
    """Leader-first spread: one aggregator per evenly spaced node, then
    fill nodes round-robin with their next-lowest ranks."""
    groups = topology.groups(tuple(range(size)))
    node_ids = sorted(groups)
    nnodes = len(node_ids)
    if naggs <= nnodes:
        chosen_nodes = sorted({(i * nnodes) // naggs for i in range(naggs)})
        picked = [groups[node_ids[n]][0] for n in chosen_nodes]
        # Spacing collisions can under-fill; take remaining leaders in order.
        if len(picked) < naggs:
            for nid in node_ids:
                leader = groups[nid][0]
                if leader not in picked:
                    picked.append(leader)
                if len(picked) == naggs:
                    break
        return sorted(picked)
    picked = [groups[nid][0] for nid in node_ids]
    depth = 1
    while len(picked) < naggs:
        progressed = False
        for nid in node_ids:
            members = groups[nid]
            if depth < len(members):
                picked.append(members[depth])
                progressed = True
                if len(picked) == naggs:
                    break
        if not progressed:
            break
        depth += 1
    return sorted(picked[:naggs])
