"""The paper's contribution: flexible two-phase collective I/O.

Public surface:

* :class:`~repro.core.file_view.FileView` — MPI_File_set_view analogue;
* :class:`~repro.core.file_handle.CollectiveFile` — open/set_view/
  write_all/read_all/sync/close, dispatching to either implementation;
* :mod:`~repro.core.realms` — datatype-described file realms and the
  assignment strategies (even / aligned / balanced / persistent);
* :mod:`~repro.core.two_phase_new` — the new flexible implementation
  (flattened-filetype exchange, per-aggregator cursors with tile
  skipping, pluggable flush method, alltoallw or nonblocking exchange);
* :mod:`~repro.core.two_phase_old` — the ROMIO-style baseline
  (flatten-everything offset/length exchange, integrated data sieving).
"""

from repro.core.aggregation import select_aggregators
from repro.core.file_handle import CollectiveFile, CollStats
from repro.core.file_view import FileView
from repro.core.realms import (
    AlignedPartition,
    BalancedPartition,
    EvenPartition,
    FileRealm,
    RealmStrategy,
    resolve_strategy,
)

__all__ = [
    "CollectiveFile",
    "CollStats",
    "FileView",
    "FileRealm",
    "RealmStrategy",
    "EvenPartition",
    "AlignedPartition",
    "BalancedPartition",
    "resolve_strategy",
    "select_aggregators",
]
