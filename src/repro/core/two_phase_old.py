"""The original ROMIO-style two-phase implementation (the baseline).

Structural differences from the new code, per the paper:

* the client flattens its **entire access** into M offset/length pairs
  up front, partitions them by realm, and ships each aggregator its
  m_i pairs — O(M) computation, memory, and network;
* realms are always the even partition of the aggregate access region
  (no datatypes, no alignment, no persistence, no load balancing);
* the exchange is always the post-everything-then-wait nonblocking
  pattern (no alltoallw, no overlap);
* data sieving is **integrated**: the collective buffer is the sieve
  buffer.  The aggregator pre-reads the window span when holes exist,
  receives client data straight into that buffer, and writes the span
  back — one less buffer copy than the layered design, but only one
  I/O method, fused into the collective path.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.aggregation import select_aggregators
from repro.core.env import CollEnv
from repro.core.exchange import exchange_data
from repro.core.plan import clip_to_range, compute_aar, mem_batch_for, merge_extents
from repro.core.realms import EvenPartition
from repro.datatypes.flatten import FlatType
from repro.datatypes.segments import SegmentBatch

__all__ = ["write_all_old", "read_all_old"]

_TAG_REQS = (1 << 19) + 2  # library p2p range: below COLLECTIVE_TAG_BASE


class _OldPlan:
    def __init__(
        self, env: CollEnv, memflat: FlatType, total_bytes: int, data_lo: int = 0
    ) -> None:
        self.env = env
        self.memflat = memflat
        self.total_bytes = total_bytes
        self.data_lo = data_lo
        ctx, comm, cost, hints = env.ctx, env.comm, env.cost, env.hints
        view = env.view

        # Flatten the whole access: M pairs, charged per pair.
        if total_bytes > 0:
            cursor = view.cursor(data_lo + total_bytes, data_lo)
            self.my_access = cursor.all_segments()
            ctx.charge(self.my_access.pairs_evaluated * cost.cpu_per_flat_pair)
            env.stats.client_pairs += self.my_access.pairs_evaluated
            lo, hi = int(self.my_access.file_offsets[0]), int(
                (self.my_access.file_offsets + self.my_access.lengths).max()
            )
        else:
            self.my_access = SegmentBatch.empty_batch()
            lo = hi = 0
        self.aar_lo, self.aar_hi = compute_aar(comm, lo, hi, total_bytes > 0)
        self.aggs = select_aggregators(
            comm.size, hints["cb_nodes"], hints["cb_layout"]
        )
        self.my_agg_index = self.aggs.index(comm.rank) if comm.rank in self.aggs else -1
        naggs = len(self.aggs)

        realms = EvenPartition().assign(self.aar_lo, self.aar_hi, naggs)
        self.bounds: List[tuple[int, int]] = []
        for realm in realms:
            dom = realm.domain(self.aar_lo, self.aar_hi)
            if dom.starts.size:
                self.bounds.append((int(dom.starts[0]), int(dom.ends[-1])))
            else:
                self.bounds.append((self.aar_hi, self.aar_hi))

        # Partition my M pairs by realm (one more O(M) pass) and ship
        # each aggregator its offset/length lists.
        self.my_parts: List[SegmentBatch] = []
        send_objs: List[Optional[object]] = [None] * comm.size
        for ai, a in enumerate(self.aggs):
            r_lo, r_hi = self.bounds[ai]
            part = clip_to_range(self.my_access, r_lo, r_hi)
            self.my_parts.append(part)
            if part.empty:
                continue
            wire = np.stack([part.file_offsets, part.lengths], axis=1)
            send_objs[a] = wire
            env.stats.meta_bytes += wire.nbytes if a != comm.rank else 0
        if total_bytes > 0:
            ctx.charge(self.my_access.num_segments * cost.cpu_per_flat_pair)
            env.stats.client_pairs += self.my_access.num_segments

        # The request exchange is an all-to-all of per-aggregator lists.
        received = comm.alltoall(send_objs)
        self.client_reqs: List[Optional[SegmentBatch]] = [None] * comm.size
        if self.my_agg_index >= 0:
            for c, wire in enumerate(received):
                if wire is None:
                    continue
                offs = wire[:, 0].astype(np.int64)
                lens = wire[:, 1].astype(np.int64)
                ctx.charge(offs.size * cost.cpu_per_flat_pair)
                env.stats.agg_pairs += int(offs.size)
                dp = np.zeros(offs.size, dtype=np.int64)
                np.cumsum(lens[:-1], out=dp[1:])
                self.client_reqs[c] = SegmentBatch(offs, lens, dp)

        # Clip each aggregator's iteration space to its received
        # requests' min/max offsets (ROMIO's st_loc/end_loc), shared via
        # allgather so clients slice windows identically.
        if self.my_agg_index >= 0:
            req_lo: Optional[int] = None
            req_hi: Optional[int] = None
            for reqs in self.client_reqs:
                if reqs is None or reqs.empty:
                    continue
                lo_ = int(reqs.file_offsets[0])
                hi_ = int((reqs.file_offsets + reqs.lengths).max())
                req_lo = lo_ if req_lo is None else min(req_lo, lo_)
                req_hi = hi_ if req_hi is None else max(req_hi, hi_)
            mine = (req_lo, req_hi) if req_lo is not None else None
        else:
            mine = None
        gathered = comm.allgather(mine)
        self.win_bounds: List[tuple[int, int]] = []
        for ai, a in enumerate(self.aggs):
            b = gathered[a]
            self.win_bounds.append((b[0], b[1]) if b is not None else (0, 0))

        cb = hints["cb_buffer_size"]
        self.cb = cb
        # Rounds cover each aggregator's requested *span* (not its data
        # volume) — the original code slices the region, holes and all.
        spans = [max(hi_ - lo_, 0) for lo_, hi_ in self.win_bounds]
        self.nrounds = max((-(-s // cb) for s in spans if s), default=0)

    def my_window(self, ai: int, r: int) -> tuple[int, int]:
        lo, hi = self.win_bounds[ai]
        w_lo = lo + r * self.cb
        w_hi = min(w_lo + self.cb, hi)
        return w_lo, max(w_hi, w_lo)


def _client_plan(plan: _OldPlan, r: int) -> List[Optional[SegmentBatch]]:
    """Memory batches this client contributes to each aggregator."""
    env = plan.env
    out: List[Optional[SegmentBatch]] = [None] * env.comm.size
    if plan.total_bytes == 0:
        return out
    for ai, a in enumerate(plan.aggs):
        w_lo, w_hi = plan.my_window(ai, r)
        if w_hi <= w_lo:
            continue
        part = clip_to_range(plan.my_parts[ai], w_lo, w_hi)
        if part.empty:
            continue
        out[a] = mem_batch_for(
            plan.memflat, part.data_offsets - plan.data_lo, part.lengths
        )
    return out


def _agg_layout(plan: _OldPlan, r: int):
    """(window span, per-client buffer batches, merged extents)."""
    env = plan.env
    comm = env.comm
    if plan.my_agg_index < 0:
        return None, [None] * comm.size, (None, None)
    w_lo, w_hi = plan.my_window(plan.my_agg_index, r)
    if w_hi <= w_lo:
        return None, [None] * comm.size, (None, None)
    per_client: List[Optional[SegmentBatch]] = [None] * comm.size
    ext_offs, ext_lens = [], []
    for c in range(comm.size):
        reqs = plan.client_reqs[c]
        if reqs is None:
            continue
        part = clip_to_range(reqs, w_lo, w_hi)
        if part.empty:
            continue
        bufpos = part.file_offsets - w_lo
        per_client[c] = SegmentBatch(bufpos, part.lengths, part.file_offsets)
        ext_offs.append(part.file_offsets)
        ext_lens.append(part.lengths)
    merged = merge_extents(ext_offs, ext_lens)
    return (w_lo, w_hi), per_client, merged


def write_all_old(
    env: CollEnv,
    buf: np.ndarray,
    memflat: FlatType,
    total_bytes: int,
    data_lo: int = 0,
) -> None:
    """Collective write, original implementation."""
    with env.ctx.trace("tp:plan"):
        plan = _OldPlan(env, memflat, total_bytes, data_lo)
    comm, cost = env.comm, env.cost
    env.stats.rounds += plan.nrounds
    for r in range(plan.nrounds):
        with env.ctx.trace("tp:route", round=r):
            send_plan = _client_plan(plan, r)
            span, recv_plan, (m_offs, m_lens) = _agg_layout(plan, r)
        cbuf = None
        span_lo = span_hi = 0
        with env.ctx.trace("tp:io", round=r):
            if span is not None and m_offs is not None and m_offs.size:
                span_lo = int(m_offs[0])
                span_hi = int((m_offs + m_lens).max())
                covered = int(m_lens.sum())
                cbuf = np.zeros(span[1] - span[0], dtype=np.uint8)
                if covered < span_hi - span_lo:
                    # Holes: pre-read so the span write-back preserves
                    # the gap bytes (integrated data sieving's RMW).
                    pre = env.adio.read_contig(span_lo, span_hi - span_lo)
                    cbuf[span_lo - span[0] : span_hi - span[0]] = pre
        with env.ctx.trace("tp:exchange", round=r):
            env.stats.bytes_exchanged += exchange_data(
                comm, cost, "nonblocking", buf, send_plan, cbuf, recv_plan
            )
        with env.ctx.trace("tp:io", round=r):
            if cbuf is not None:
                env.stats.note_flush("datasieve-integrated")
                env.adio.write_contig(
                    span_lo, cbuf[span_lo - span[0] : span_hi - span[0]]
                )
    env.stats.collective_writes += 1


def read_all_old(
    env: CollEnv,
    buf: np.ndarray,
    memflat: FlatType,
    total_bytes: int,
    data_lo: int = 0,
) -> None:
    """Collective read, original implementation (integrated read sieve:
    the aggregator reads its whole window span once, then distributes)."""
    with env.ctx.trace("tp:plan"):
        plan = _OldPlan(env, memflat, total_bytes, data_lo)
    comm, cost = env.comm, env.cost
    env.stats.rounds += plan.nrounds
    for r in range(plan.nrounds):
        with env.ctx.trace("tp:route", round=r):
            recv_plan = _client_plan(plan, r)
            span, send_plan, (m_offs, m_lens) = _agg_layout(plan, r)
        cbuf = None
        with env.ctx.trace("tp:io", round=r):
            if span is not None and m_offs is not None and m_offs.size:
                span_lo = int(m_offs[0])
                span_hi = int((m_offs + m_lens).max())
                cbuf = np.zeros(span[1] - span[0], dtype=np.uint8)
                env.stats.note_flush("datasieve-integrated")
                cbuf[span_lo - span[0] : span_hi - span[0]] = env.adio.read_contig(
                    span_lo, span_hi - span_lo
                )
        with env.ctx.trace("tp:exchange", round=r):
            env.stats.bytes_exchanged += exchange_data(
                comm, cost, "nonblocking", cbuf, send_plan, buf, recv_plan
            )
    env.stats.collective_reads += 1
