"""The original ROMIO-style two-phase implementation (the baseline).

Structural differences from the new code, per the paper:

* the client flattens its **entire access** into M offset/length pairs
  up front, partitions them by realm, and ships each aggregator its
  m_i pairs — O(M) computation, memory, and network;
* realms are always the even partition of the aggregate access region
  (no datatypes, no alignment, no persistence, no load balancing);
* the exchange is always the post-everything-then-wait nonblocking
  pattern (no alltoallw, no overlap);
* data sieving is **integrated**: the collective buffer is the sieve
  buffer.  The aggregator pre-reads the window span when holes exist,
  receives client data straight into that buffer, and writes the span
  back — one less buffer copy than the layered design, but only one
  I/O method, fused into the collective path.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.aggregation import select_aggregators
from repro.core.env import CollEnv
from repro.core.exchange import exchange_data
from repro.core.plan import (
    clip_to_range,
    compute_aar,
    mem_batch_for,
    merge_extents,
    subtract_intervals,
)
from repro.core.pipeline import maybe_pipeline, task_env
from repro.core.realms import EvenPartition
from repro.datatypes.flatten import FlatType
from repro.datatypes.segments import SegmentBatch
from repro.errors import CollectiveAborted, RankCrashed
from repro.faults.plan import FAULTS_KEY
from repro.liveness import install_crash_state
from repro.mpi.agreement import AliveGroup, agree_dead_set

__all__ = ["write_all_old", "read_all_old"]

_TAG_REQS = (1 << 19) + 2  # library p2p range: below COLLECTIVE_TAG_BASE


class _OldPlan:
    def __init__(
        self,
        env: CollEnv,
        memflat: FlatType,
        total_bytes: int,
        data_lo: int = 0,
        *,
        covered: Optional[List[tuple]] = None,
        resume_state: Optional[tuple] = None,
    ) -> None:
        self.env = env
        self.memflat = memflat
        self.total_bytes = total_bytes
        self.data_lo = data_lo
        ctx, comm, cost, hints = env.ctx, env.comm, env.cost, env.hints
        view = env.view

        # Fail-stop crash state (docs/crash_recovery.md), armed only
        # when the plan carries ``rank_crash`` events.  On a mid-call
        # re-plan (``resume_state``) the bookkeeping — call ordinal,
        # boundary counter, agreed dead set, survivor group — carries
        # over instead of being re-armed.
        if resume_state is None:
            self._injector = ctx.shared.get(FAULTS_KEY)
            self._call_index = (
                self._injector.begin_collective(comm.rank)
                if self._injector is not None
                else 0
            )
            self._boundary = 0
            self._crash = None
            self._known_dead: set[int] = set()
            self.group: Optional[AliveGroup] = None
            if self._injector is not None and self._injector.enabled("rank_crash"):
                self._crash = install_crash_state(ctx.shared)
                self._known_dead = set(self._crash.dead)
                self.group = AliveGroup(comm, frozenset(self._known_dead), -1)
                quorum = hints["crash_quorum"]
                if self.group.size < quorum:
                    raise CollectiveAborted(
                        -1, self.group.size, quorum, tuple(sorted(self._known_dead))
                    )
        else:
            (
                self._injector,
                self._call_index,
                self._boundary,
                self._crash,
                self._known_dead,
                self.group,
            ) = resume_state
        self._crash_pending: Optional[str] = None
        self._covered: List[tuple] = list(covered) if covered else []
        self.skip: frozenset = frozenset(self._known_dead)
        coll = self.group if self.group is not None else comm

        # Flatten the whole access: M pairs, charged per pair.  A
        # re-plan subtracts the already-written file intervals, so
        # survivors only re-partition the remainder.
        if total_bytes > 0:
            cursor = view.cursor(data_lo + total_bytes, data_lo)
            self.my_access = cursor.all_segments()
            ctx.charge(self.my_access.pairs_evaluated * cost.cpu_per_flat_pair)
            env.stats.client_pairs += self.my_access.pairs_evaluated
            if self._covered:
                self.my_access = subtract_intervals(self.my_access, self._covered)
        else:
            self.my_access = SegmentBatch.empty_batch()
        if self.my_access.empty:
            lo = hi = 0
        else:
            lo, hi = int(self.my_access.file_offsets[0]), int(
                (self.my_access.file_offsets + self.my_access.lengths).max()
            )
        self.aar_lo, self.aar_hi = compute_aar(
            coll, lo, hi, not self.my_access.empty
        )
        self.aggs = select_aggregators(
            comm.size, hints["cb_nodes"], hints["cb_layout"]
        )
        if self._known_dead:
            # Corpses never aggregate; if every chosen aggregator is
            # dead, re-aggregate over the survivors.
            alive_aggs = [a for a in self.aggs if a not in self._known_dead]
            if alive_aggs:
                self.aggs = alive_aggs
            else:
                live = [x for x in range(comm.size) if x not in self._known_dead]
                self.aggs = live[: max(1, len(self.aggs))]
        self.my_agg_index = self.aggs.index(comm.rank) if comm.rank in self.aggs else -1
        naggs = len(self.aggs)

        realms = EvenPartition().assign(self.aar_lo, self.aar_hi, naggs)
        self.bounds: List[tuple[int, int]] = []
        for realm in realms:
            dom = realm.domain(self.aar_lo, self.aar_hi)
            if dom.starts.size:
                self.bounds.append((int(dom.starts[0]), int(dom.ends[-1])))
            else:
                self.bounds.append((self.aar_hi, self.aar_hi))

        # Partition my M pairs by realm (one more O(M) pass) and ship
        # each aggregator its offset/length lists.
        self.my_parts: List[SegmentBatch] = []
        send_objs: List[Optional[object]] = [None] * comm.size
        for ai, a in enumerate(self.aggs):
            r_lo, r_hi = self.bounds[ai]
            part = clip_to_range(self.my_access, r_lo, r_hi)
            self.my_parts.append(part)
            if part.empty:
                continue
            wire = np.stack([part.file_offsets, part.lengths], axis=1)
            send_objs[a] = wire
            env.stats.meta_bytes += wire.nbytes if a != comm.rank else 0
        if total_bytes > 0:
            ctx.charge(self.my_access.num_segments * cost.cpu_per_flat_pair)
            env.stats.client_pairs += self.my_access.num_segments

        # The request exchange is an all-to-all of per-aggregator lists
        # (over the survivor group when crashes are armed: a corpse
        # would deadlock the full-membership alltoall, and its slots
        # come back None so its requests drop out of the aggregation).
        received = coll.alltoall(send_objs)
        self.client_reqs: List[Optional[SegmentBatch]] = [None] * comm.size
        if self.my_agg_index >= 0:
            for c, wire in enumerate(received):
                if wire is None:
                    continue
                offs = wire[:, 0].astype(np.int64)
                lens = wire[:, 1].astype(np.int64)
                ctx.charge(offs.size * cost.cpu_per_flat_pair)
                env.stats.agg_pairs += int(offs.size)
                dp = np.zeros(offs.size, dtype=np.int64)
                np.cumsum(lens[:-1], out=dp[1:])
                self.client_reqs[c] = SegmentBatch(offs, lens, dp)

        # Clip each aggregator's iteration space to its received
        # requests' min/max offsets (ROMIO's st_loc/end_loc), shared via
        # allgather so clients slice windows identically.
        if self.my_agg_index >= 0:
            req_lo: Optional[int] = None
            req_hi: Optional[int] = None
            for reqs in self.client_reqs:
                if reqs is None or reqs.empty:
                    continue
                lo_ = int(reqs.file_offsets[0])
                hi_ = int((reqs.file_offsets + reqs.lengths).max())
                req_lo = lo_ if req_lo is None else min(req_lo, lo_)
                req_hi = hi_ if req_hi is None else max(req_hi, hi_)
            mine = (req_lo, req_hi) if req_lo is not None else None
        else:
            mine = None
        gathered = coll.allgather(mine)
        self.win_bounds: List[tuple[int, int]] = []
        for ai, a in enumerate(self.aggs):
            b = gathered[a]
            self.win_bounds.append((b[0], b[1]) if b is not None else (0, 0))

        cb = hints["cb_buffer_size"]
        self.cb = cb
        # Rounds cover each aggregator's requested *span* (not its data
        # volume) — the original code slices the region, holes and all.
        spans = [max(hi_ - lo_, 0) for lo_, hi_ in self.win_bounds]
        self.nrounds = max((-(-s // cb) for s in spans if s), default=0)

    def my_window(self, ai: int, r: int) -> tuple[int, int]:
        lo, hi = self.win_bounds[ai]
        w_lo = lo + r * self.cb
        w_hi = min(w_lo + self.cb, hi)
        return w_lo, max(w_hi, w_lo)

    # -- fail-stop crash sites ------------------------------------------------
    @property
    def dying(self) -> bool:
        """True once this rank's fail-stop death is pending: it walks
        the round fully skipped until its designated site raises."""
        return self._crash_pending is not None

    def crash_point(self, site: str) -> None:
        """Raise the pending death at its site (``exchange``|``flush``)."""
        if self._crash_pending == site:
            raise RankCrashed(self.env.comm.rank, site)


def _check_boundary(plan: _OldPlan, r: int) -> Optional[_OldPlan]:
    """Fail-stop boundary check before round ``r`` of the old path.

    Detection mirrors the new implementation: a pure evaluation of the
    fault plan at ``(call, boundary)``, identical on every rank.  The
    *victim* records its death and dies at its site; *survivors* run
    one epoch agreement and then **re-plan**: the first ``r`` rounds of
    every realm are already written back (the old path writes its span
    each round), so survivors subtract that covered region from their
    access and re-partition the remainder among the surviving
    aggregators — the dead rank's requests drop out with it.

    Returns the replacement plan (the caller restarts its round counter
    at zero) or ``None`` to continue the current one."""
    inj = plan._injector
    if plan._crash is None:
        return None
    env = plan.env
    rank = env.comm.rank
    boundary = plan._boundary
    plan._boundary += 1
    crashed = inj.crashed_ranks(plan._call_index, boundary)
    newly = sorted(c for c in crashed if c not in plan._known_dead)
    if newly and rank in newly:
        event = inj.crash_event_for(rank, plan._call_index)
        site = event.site if event is not None else "boundary"
        if plan._crash.mark_dead(rank, plan._call_index, boundary):
            inj.note_crash()
        plan._known_dead.add(rank)
        plan.skip = frozenset(plan.skip | {rank})
        if site == "boundary":
            raise RankCrashed(rank, site)
        plan._crash_pending = site
        return None
    if plan._known_dead and rank == min(
        x for x in range(env.comm.size) if x not in plan._known_dead
    ):
        # Count plan events aimed entirely at corpses *before* folding
        # this boundary's fresh deaths in (docs/crash_recovery.md).
        sup = inj.suppressed_for(
            frozenset(plan._known_dead), plan._call_index, boundary
        )
        if sup:
            inj.note_suppressed(sup)
    if not newly:
        return None
    proposal = frozenset(plan._known_dead | set(newly))
    with env.ctx.trace("crash:agree", epoch=boundary):
        group = agree_dead_set(env.comm, proposal, boundary)
    for c in newly:
        if plan._crash.mark_dead(c, plan._call_index, boundary):
            inj.note_crash()
    plan._known_dead.update(newly)
    reporter = group.first_alive()
    if rank == reporter:
        inj.note_agreement()
    quorum = env.hints["crash_quorum"]
    if group.size < quorum:
        if rank == reporter:
            inj.note_aborted()
        raise CollectiveAborted(
            boundary, group.size, quorum, tuple(sorted(plan._known_dead))
        )
    covered: List[tuple] = list(plan._covered)
    for ai, a in enumerate(plan.aggs):
        lo, hi = plan.win_bounds[ai]
        done_hi = min(lo + r * plan.cb, hi)
        if done_hi > lo:
            covered.append((lo, done_hi))
        if a in newly and rank == reporter:
            inj.note_failover(a, max(hi - done_hi, 0))
    state = (
        inj,
        plan._call_index,
        plan._boundary,
        plan._crash,
        plan._known_dead,
        group,
    )
    with env.ctx.trace("tp:failover", round=r):
        return _OldPlan(
            env,
            plan.memflat,
            plan.total_bytes,
            plan.data_lo,
            covered=covered,
            resume_state=state,
        )


def _client_plan(plan: _OldPlan, r: int) -> List[Optional[SegmentBatch]]:
    """Memory batches this client contributes to each aggregator."""
    env = plan.env
    out: List[Optional[SegmentBatch]] = [None] * env.comm.size
    if plan.total_bytes == 0:
        return out
    for ai, a in enumerate(plan.aggs):
        w_lo, w_hi = plan.my_window(ai, r)
        if w_hi <= w_lo:
            continue
        part = clip_to_range(plan.my_parts[ai], w_lo, w_hi)
        if part.empty:
            continue
        out[a] = mem_batch_for(
            plan.memflat, part.data_offsets - plan.data_lo, part.lengths
        )
    return out


def _agg_layout(plan: _OldPlan, r: int):
    """(window span, per-client buffer batches, merged extents)."""
    env = plan.env
    comm = env.comm
    if plan.my_agg_index < 0:
        return None, [None] * comm.size, (None, None)
    w_lo, w_hi = plan.my_window(plan.my_agg_index, r)
    if w_hi <= w_lo:
        return None, [None] * comm.size, (None, None)
    per_client: List[Optional[SegmentBatch]] = [None] * comm.size
    ext_offs, ext_lens = [], []
    for c in range(comm.size):
        reqs = plan.client_reqs[c]
        if reqs is None:
            continue
        part = clip_to_range(reqs, w_lo, w_hi)
        if part.empty:
            continue
        bufpos = part.file_offsets - w_lo
        per_client[c] = SegmentBatch(bufpos, part.lengths, part.file_offsets)
        ext_offs.append(part.file_offsets)
        ext_lens.append(part.lengths)
    merged = merge_extents(ext_offs, ext_lens)
    return (w_lo, w_hi), per_client, merged


def _old_flush_task(env: CollEnv, span_lo: int, data: np.ndarray, r: int):
    """Coroutine body writing back round ``r``'s sieve-buffer span
    (the integrated data sieve's RMW write leg)."""

    def run(tctx) -> None:
        fenv = task_env(env, tctx)
        with tctx.trace("round:flush", round=r):
            fenv.stats.note_flush("datasieve-integrated")
            fenv.adio.write_contig(span_lo, data)

    return run


def _old_fill_task(env: CollEnv, span, m_offs, m_lens, r: int):
    """Coroutine body pre-reading round ``r``'s window span into a
    fresh sieve buffer (the read path's prefetch); returns it at join."""

    def run(tctx):
        fenv = task_env(env, tctx)
        with tctx.trace("round:fill", round=r):
            span_lo = int(m_offs[0])
            span_hi = int((m_offs + m_lens).max())
            cbuf = np.zeros(span[1] - span[0], dtype=np.uint8)
            fenv.stats.note_flush("datasieve-integrated")
            cbuf[span_lo - span[0] : span_hi - span[0]] = fenv.adio.read_contig(
                span_lo, span_hi - span_lo
            )
            return cbuf

    return run


def _replay_old(env: CollEnv, entry, buf: np.ndarray, *, write: bool) -> None:
    """Replay a cached old-implementation plan: the integrated-sieving
    data path with all flattening, wire alltoall, and window clipping
    elided (zero offset/length pairs evaluated).  Only runs for a
    collectively-agreed cache hit with no realm-mutating fault armed."""
    comm, cost = env.comm, env.cost
    # Keep data-path fault ordinals advancing across replayed calls.
    inj = env.ctx.shared.get(FAULTS_KEY)
    if inj is not None:
        inj.begin_collective(comm.rank)
    pipe = maybe_pipeline(env)
    try:
        if write or pipe is None:
            for r, rp in enumerate(entry.rounds):
                env.stats.rounds += 1
                span = rp.window
                m_offs, m_lens = rp.merged
                if write:
                    cbuf = None
                    span_lo = span_hi = 0
                    with env.ctx.trace("tp:io", round=r):
                        if span is not None and m_offs is not None and m_offs.size:
                            span_lo = int(m_offs[0])
                            span_hi = int((m_offs + m_lens).max())
                            covered = int(m_lens.sum())
                            cbuf = np.zeros(span[1] - span[0], dtype=np.uint8)
                            if covered < span_hi - span_lo:
                                pre = env.adio.read_contig(span_lo, span_hi - span_lo)
                                cbuf[span_lo - span[0] : span_hi - span[0]] = pre
                    with env.ctx.trace(
                        "round:exchange" if pipe is not None else "tp:exchange",
                        round=r,
                    ):
                        env.stats.bytes_exchanged += exchange_data(
                            comm, cost, "nonblocking", buf, rp.send, cbuf, rp.recv,
                            skip=frozenset(),
                        )
                    if pipe is not None:
                        if cbuf is not None:
                            pipe.submit(
                                _old_flush_task(
                                    env,
                                    span_lo,
                                    cbuf[span_lo - span[0] : span_hi - span[0]],
                                    r,
                                ),
                                round_no=r,
                                stage="round:flush",
                            )
                    else:
                        with env.ctx.trace("tp:io", round=r):
                            if cbuf is not None:
                                env.stats.note_flush("datasieve-integrated")
                                env.adio.write_contig(
                                    span_lo,
                                    cbuf[span_lo - span[0] : span_hi - span[0]],
                                )
                else:
                    cbuf = None
                    with env.ctx.trace("tp:io", round=r):
                        if span is not None and m_offs is not None and m_offs.size:
                            span_lo = int(m_offs[0])
                            span_hi = int((m_offs + m_lens).max())
                            cbuf = np.zeros(span[1] - span[0], dtype=np.uint8)
                            env.stats.note_flush("datasieve-integrated")
                            cbuf[span_lo - span[0] : span_hi - span[0]] = (
                                env.adio.read_contig(span_lo, span_hi - span_lo)
                            )
                    with env.ctx.trace("tp:exchange", round=r):
                        env.stats.bytes_exchanged += exchange_data(
                            comm, cost, "nonblocking", cbuf, rp.recv, buf, rp.send,
                            skip=frozenset(),
                        )
            if pipe is not None:
                pipe.drain()
        else:
            # Pipelined replay read: prefetch span reads ahead of the
            # exchange, mirroring read_all_old's pipelined loop.
            routed: List[tuple] = []
            next_r = 0

            def route_one(rr: int) -> None:
                rp = entry.rounds[rr]
                env.stats.rounds += 1
                m_offs, m_lens = rp.merged
                handle = None
                if rp.window is not None and m_offs is not None and m_offs.size:
                    handle = pipe.submit(
                        _old_fill_task(env, rp.window, m_offs, m_lens, rr),
                        round_no=rr,
                        stage="round:fill",
                    )
                routed.append((rr, rp, handle))

            def prefetch() -> None:
                nonlocal next_r
                while next_r < len(entry.rounds) and (
                    not routed
                    or (pipe.free_slots > 0 and len(routed) <= pipe.depth)
                ):
                    route_one(next_r)
                    next_r += 1

            prefetch()
            while routed:
                rr, rp, handle = routed.pop(0)
                cbuf = pipe.join(handle) if handle is not None else None
                prefetch()
                with env.ctx.trace("round:exchange", round=rr):
                    env.stats.bytes_exchanged += exchange_data(
                        comm, cost, "nonblocking", cbuf, rp.recv, buf, rp.send,
                        skip=frozenset(),
                    )
            pipe.drain()
    except BaseException:
        if pipe is not None:
            pipe.drain(suppress=True)
        raise
    if write:
        env.stats.collective_writes += 1
    else:
        env.stats.collective_reads += 1


def write_all_old(
    env: CollEnv,
    buf: np.ndarray,
    memflat: FlatType,
    total_bytes: int,
    data_lo: int = 0,
) -> None:
    """Collective write, original implementation."""
    cache = env.plancache
    if cache is not None:
        entry = cache.begin(env, memflat, total_bytes, data_lo, "old")
        if entry is not None:
            with env.ctx.trace("plan:replay", key=entry.key_id, impl="old"):
                _replay_old(env, entry, buf, write=True)
            return
    rec = cache.recording("old") if cache is not None else None
    with env.ctx.trace("tp:plan"):
        plan = _OldPlan(env, memflat, total_bytes, data_lo)
    comm, cost = env.comm, env.cost
    # Round pipelining (docs/async_io.md): the span write-back of round
    # r runs as a coroutine while round r+1 routes, pre-reads, and
    # exchanges.  Stands down (None) while realm-mutating faults are
    # armed, so the crash machinery only runs on the serialized path.
    pipe = maybe_pipeline(env)
    try:
        r = 0
        while r < plan.nrounds:
            replacement = _check_boundary(plan, r)
            if replacement is not None:
                if rec is not None:
                    rec.mark_dirty()
                plan = replacement
                r = 0
                continue
            env.stats.rounds += 1
            with env.ctx.trace("tp:route", round=r):
                send_plan = _client_plan(plan, r)
                span, recv_plan, (m_offs, m_lens) = _agg_layout(plan, r)
            if rec is not None:
                rec.add_round(send_plan, span, recv_plan, (m_offs, m_lens))
            cbuf = None
            span_lo = span_hi = 0
            with env.ctx.trace("tp:io", round=r):
                if span is not None and m_offs is not None and m_offs.size:
                    span_lo = int(m_offs[0])
                    span_hi = int((m_offs + m_lens).max())
                    covered = int(m_lens.sum())
                    cbuf = np.zeros(span[1] - span[0], dtype=np.uint8)
                    if covered < span_hi - span_lo:
                        # Holes: pre-read so the span write-back preserves
                        # the gap bytes (integrated data sieving's RMW).
                        pre = env.adio.read_contig(span_lo, span_hi - span_lo)
                        cbuf[span_lo - span[0] : span_hi - span[0]] = pre
            with env.ctx.trace(
                "round:exchange" if pipe is not None else "tp:exchange", round=r
            ):
                plan.crash_point("exchange")
                if not plan.dying:
                    env.stats.bytes_exchanged += exchange_data(
                        comm, cost, "nonblocking", buf, send_plan, cbuf, recv_plan,
                        skip=plan.skip,
                    )
            if pipe is not None:
                if cbuf is not None:
                    pipe.submit(
                        _old_flush_task(
                            env,
                            span_lo,
                            cbuf[span_lo - span[0] : span_hi - span[0]],
                            r,
                        ),
                        round_no=r,
                        stage="round:flush",
                    )
            else:
                with env.ctx.trace("tp:io", round=r):
                    plan.crash_point("flush")
                    if cbuf is not None:
                        env.stats.note_flush("datasieve-integrated")
                        env.adio.write_contig(
                            span_lo, cbuf[span_lo - span[0] : span_hi - span[0]]
                        )
                        if plan._crash is not None:
                            # Crash-armed runs make each round durable: a later
                            # death must not take already-written rounds down
                            # with the corpse's cache (the re-plan treats them
                            # as covered).
                            env.adio.retry.run(env.ctx, env.adio.local.sync)
            r += 1
        if pipe is not None:
            pipe.drain()
    except BaseException:
        if pipe is not None:
            pipe.drain(suppress=True)
        raise
    if rec is not None:
        with env.ctx.trace("plan:store", key=rec.key_id, impl="old"):
            cache.commit(rec, nrounds=plan.nrounds, aggs=plan.aggs)
    env.stats.collective_writes += 1


def read_all_old(
    env: CollEnv,
    buf: np.ndarray,
    memflat: FlatType,
    total_bytes: int,
    data_lo: int = 0,
) -> None:
    """Collective read, original implementation (integrated read sieve:
    the aggregator reads its whole window span once, then distributes)."""
    cache = env.plancache
    if cache is not None:
        entry = cache.begin(env, memflat, total_bytes, data_lo, "old")
        if entry is not None:
            with env.ctx.trace("plan:replay", key=entry.key_id, impl="old"):
                _replay_old(env, entry, buf, write=False)
            return
    rec = cache.recording("old") if cache is not None else None
    with env.ctx.trace("tp:plan"):
        plan = _OldPlan(env, memflat, total_bytes, data_lo)
    comm, cost = env.comm, env.cost
    pipe = maybe_pipeline(env)
    if pipe is None:
        r = 0
        while r < plan.nrounds:
            replacement = _check_boundary(plan, r)
            if replacement is not None:
                if rec is not None:
                    rec.mark_dirty()
                plan = replacement
                r = 0
                continue
            env.stats.rounds += 1
            with env.ctx.trace("tp:route", round=r):
                recv_plan = _client_plan(plan, r)
                span, send_plan, (m_offs, m_lens) = _agg_layout(plan, r)
            if rec is not None:
                # Write orientation (client batches as ``send``); the replay
                # re-swaps for reads, mirroring the cold driver.
                rec.add_round(recv_plan, span, send_plan, (m_offs, m_lens))
            cbuf = None
            with env.ctx.trace("tp:io", round=r):
                plan.crash_point("flush")
                if span is not None and m_offs is not None and m_offs.size:
                    span_lo = int(m_offs[0])
                    span_hi = int((m_offs + m_lens).max())
                    cbuf = np.zeros(span[1] - span[0], dtype=np.uint8)
                    env.stats.note_flush("datasieve-integrated")
                    cbuf[span_lo - span[0] : span_hi - span[0]] = env.adio.read_contig(
                        span_lo, span_hi - span_lo
                    )
            with env.ctx.trace("tp:exchange", round=r):
                plan.crash_point("exchange")
                if not plan.dying:
                    env.stats.bytes_exchanged += exchange_data(
                        comm, cost, "nonblocking", cbuf, send_plan, buf, recv_plan,
                        skip=plan.skip,
                    )
            r += 1
    else:
        # Pipelined read: the span pre-read of round r+1 prefetches as a
        # coroutine while round r's exchange distributes.  Never active
        # with the crash machinery (maybe_pipeline stands down).
        routed: List[tuple] = []
        next_r = 0

        def route_one(rr: int) -> None:
            env.stats.rounds += 1
            with env.ctx.trace("tp:route", round=rr):
                recv_plan = _client_plan(plan, rr)
                span, send_plan, (m_offs, m_lens) = _agg_layout(plan, rr)
            if rec is not None:
                rec.add_round(recv_plan, span, send_plan, (m_offs, m_lens))
            handle = None
            if span is not None and m_offs is not None and m_offs.size:
                handle = pipe.submit(
                    _old_fill_task(env, span, m_offs, m_lens, rr),
                    round_no=rr,
                    stage="round:fill",
                )
            routed.append((rr, send_plan, recv_plan, handle))

        def prefetch() -> None:
            nonlocal next_r
            while next_r < plan.nrounds and (
                not routed or (pipe.free_slots > 0 and len(routed) <= pipe.depth)
            ):
                route_one(next_r)
                next_r += 1

        try:
            prefetch()
            while routed:
                rr, send_plan, recv_plan, handle = routed.pop(0)
                cbuf = pipe.join(handle) if handle is not None else None
                prefetch()
                with env.ctx.trace("round:exchange", round=rr):
                    env.stats.bytes_exchanged += exchange_data(
                        comm, cost, "nonblocking", cbuf, send_plan, buf, recv_plan,
                        skip=plan.skip,
                    )
            pipe.drain()
        except BaseException:
            pipe.drain(suppress=True)
            raise
    if rec is not None:
        with env.ctx.trace("plan:store", key=rec.key_id, impl="old"):
            cache.commit(rec, nrounds=plan.nrounds, aggs=plan.aggs)
    env.stats.collective_reads += 1
