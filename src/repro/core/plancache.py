"""Persistent collective plans: cache the schedule, replay the call.

The paper's MPE analysis (§6) attributes the new implementation's CPU
overhead to repeated datatype processing: a time-step loop re-flattens
the same filetype, re-intersects the same access with the same realm
windows, and re-derives the same exchange schedule on every call.
:class:`PlanCache` pays that cost once.  The first call of a given
shape *builds* (and records) the full per-round schedule — client send
batches, aggregator windows, per-client receive batches, merged flush
extents — and every later call of the identical shape *replays* it:
zero offset/length pairs evaluated, no metadata exchange, no AAR
allreduce, no bounds allgather.  Only the data moves.

Correctness before speed (docs/plan_cache.md):

* **Keying.**  The cache key is the allgathered tuple of every rank's
  local access digest — view (disp, etype, flattened filetype), memory
  flat type, byte count, data offset, the full hint set, the resolved
  node topology, the communicator's membership, and the known fail-stop
  dead set.  A plan is a function of *everyone's* access, so a
  rank-local key would alias two different collectives that happen to
  look the same from one rank; the allgather makes the key global and
  — because it is a collective — makes the hit/miss decision identical
  on every rank by construction.  One small control collective per
  call buys the removal of the planning collectives on every hit.
* **Invalidation.**  ``set_view`` drops every entry (the MPI view
  epoch); hint, topology, membership (tenant), and dead-set changes
  change the key itself, so stale entries can never be looked up.
* **Bypass.**  Fault kinds that re-carve realms mid-call
  (``agg_crash``, ``rank_stall``, ``rank_crash``) make the executed
  schedule diverge from the planned one, and their events are keyed on
  call ordinals/boundaries the replay path does not evaluate.  While
  any of them is armed the cache stands down entirely: every call
  plans cold, nothing is stored, nothing is replayed — a stale replay
  is impossible rather than merely unlikely.  Data-path fault kinds
  (transient I/O, bit flips, OST outages, delays) do not affect the
  schedule and leave the cache active.

Counters (``coll.plan.hits`` / ``misses`` / ``invalidations`` /
``bypass``) report per rank into the session metrics registry, and the
engines wrap every replay and store in ``plan:replay`` / ``plan:store``
trace spans carrying the entry's key digest.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, List, Optional, Tuple

from repro.datatypes.flatten import FlatType
from repro.datatypes.segments import SegmentBatch
from repro.faults.plan import FAULTS_KEY
from repro.liveness import find_crash_state
from repro.mpi.topology import resolve_topology
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (env -> plancache)
    from repro.core.env import CollEnv

__all__ = ["PlanCache", "PlanEntry", "RoundPlan", "PlanRecorder", "PLAN_MUTATING_KINDS"]

#: Fault kinds whose events change the plan mid-call (realm re-carving,
#: suspect exclusion, fail-stop shrinkage).  Any of these being armed
#: stands the cache down for the whole run.
PLAN_MUTATING_KINDS = frozenset({"agg_crash", "rank_stall", "rank_crash"})


@dataclass
class RoundPlan:
    """One recorded round of the exchange schedule (this rank's view).

    ``send`` are the client-side memory batches (per peer), ``recv``
    the aggregator-side collective-buffer batches (per client); on the
    read path the replay swaps the two, exactly like the cold drivers.
    ``window`` is a :class:`~repro.core.realms.Window` for the new
    implementation or a ``(lo, hi)`` span tuple for the old one;
    ``merged`` is the ``(offsets, lengths)`` flush extent pair."""

    send: List[Optional[SegmentBatch]]
    window: object
    recv: List[Optional[SegmentBatch]]
    merged: Tuple


@dataclass
class PlanEntry:
    """A complete cached plan: everything a replay needs, nothing a
    replay computes."""

    impl: str
    key_id: str
    nrounds: int
    aggs: List[int]
    rounds: List[RoundPlan]
    ft_extent: int = 0
    topology: object = None
    realm_bytes: List[int] = field(default_factory=list)


@dataclass
class PlanRecorder:
    """Accumulates one cold call's rounds for :meth:`PlanCache.commit`.

    ``dirty`` marks a call whose executed schedule diverged from its
    plan (failover, suspects, mid-call re-carving); dirty recordings
    are discarded.  With the bypass rule in place a recorder should
    never *become* dirty — the flag is the belt to the bypass's
    braces."""

    key: Tuple
    key_id: str
    impl: str
    rounds: List[RoundPlan] = field(default_factory=list)
    dirty: bool = False

    def add_round(self, send, window, recv, merged) -> None:
        self.rounds.append(RoundPlan(list(send), window, list(recv), merged))

    def mark_dirty(self) -> None:
        self.dirty = True


def _digest_flat(h, tag: str, flat: FlatType) -> None:
    h.update(tag.encode())
    h.update(repr((int(flat.extent), int(flat.size))).encode())
    h.update(flat.offsets.tobytes())
    h.update(flat.lengths.tobytes())


class PlanCache:
    """Per-handle persistent plan store (one per rank per open file).

    The store itself is rank-local, but every mutation happens at a
    collective boundary in identical program order on every rank, and
    lookups are keyed by a collectively-agreed global digest — so the
    per-rank stores stay aligned and a split hit/miss decision (which
    would deadlock the skipped planning collectives) cannot happen."""

    #: Entries kept per handle (LRU).  Eviction order is identical on
    #: every rank because insertions happen in collective program order.
    capacity = 8

    def __init__(self, registry: Optional[MetricsRegistry] = None, rank: Hashable = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.rank = rank
        self._entries: "OrderedDict[Tuple, PlanEntry]" = OrderedDict()
        self._hits = self.registry.counter("coll.plan.hits", rank)
        self._misses = self.registry.counter("coll.plan.misses", rank)
        self._invalidations = self.registry.counter("coll.plan.invalidations", rank)
        self._bypasses = self.registry.counter("coll.plan.bypass", rank)
        self._size = self.registry.gauge("coll.plan.entries", rank)
        self._pending: Optional[Tuple] = None
        self._pending_id = ""

    # -- observability --------------------------------------------------------
    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def invalidations(self) -> int:
        return self._invalidations.value

    @property
    def bypasses(self) -> int:
        return self._bypasses.value

    def __len__(self) -> int:
        return len(self._entries)

    # -- keying ---------------------------------------------------------------
    @staticmethod
    def _bypassed(env: "CollEnv") -> bool:
        inj = env.ctx.shared.get(FAULTS_KEY)
        if inj is None:
            return False
        return any(inj.enabled(kind) for kind in PLAN_MUTATING_KINDS)

    @staticmethod
    def _local_signature(
        env: "CollEnv", memflat: FlatType, total_bytes: int, data_lo: int, impl: str
    ) -> str:
        """128-bit digest of everything rank-local that shapes the plan."""
        h = hashlib.blake2b(digest_size=16)
        view = env.view
        h.update(repr((impl, view.disp, view.etype.size)).encode())
        _digest_flat(h, "ft", view.flat)
        _digest_flat(h, "mem", memflat)
        h.update(repr((int(total_bytes), int(data_lo))).encode())
        # The full hint set: any hint change is a new key, which is the
        # conservative reading of "invalidate on hint changes".
        h.update(repr(tuple((k, env.hints[k]) for k in env.hints)).encode())
        topo = resolve_topology(env.hints, env.cost)
        h.update(repr(topo.procs_per_node if topo is not None else 0).encode())
        # Membership scopes the key per communicator — and therefore per
        # tenant: a tenant sub-communicator can never alias the key of
        # another tenant's identical-looking access.
        comm = env.comm
        h.update(repr((comm.rank, comm.size, tuple(comm.members))).encode())
        # Fail-stop epoch: any agreed death re-keys every later call.
        crash = find_crash_state(env.ctx.shared)
        dead = tuple(sorted(crash.dead)) if crash is not None else ()
        h.update(repr(dead).encode())
        return h.hexdigest()

    # -- the collective lookup -------------------------------------------------
    def begin(
        self,
        env: "CollEnv",
        memflat: FlatType,
        total_bytes: int,
        data_lo: int,
        impl: str,
    ) -> Optional[PlanEntry]:
        """Collective hit/miss agreement for one call.

        Every rank of the communicator must call this (the drivers do,
        at the top of every collective op).  Returns the entry to
        replay, or ``None`` — plan cold.  After a miss,
        :meth:`recording` hands out the recorder for :meth:`commit`."""
        self._pending = None
        self._pending_id = ""
        if self._bypassed(env):
            self._bypasses.inc()
            return None
        local = self._local_signature(env, memflat, total_bytes, data_lo, impl)
        # The one control collective of the cached path: the key is the
        # tuple of every rank's digest, identical everywhere, so every
        # rank reaches the same hit/miss verdict with no further talk.
        key = tuple(env.comm.allgather(local))
        key_id = hashlib.blake2b(
            "".join(key).encode(), digest_size=6
        ).hexdigest()
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self._hits.inc()
            return entry
        self._misses.inc()
        self._pending = key
        self._pending_id = key_id
        return None

    def recording(self, impl: str) -> Optional[PlanRecorder]:
        """Recorder for the cold call after a miss (None when bypassed)."""
        if self._pending is None:
            return None
        return PlanRecorder(key=self._pending, key_id=self._pending_id, impl=impl)

    def commit(
        self,
        rec: PlanRecorder,
        *,
        nrounds: int,
        aggs: List[int],
        ft_extent: int = 0,
        topology: object = None,
        realm_bytes: Optional[List[int]] = None,
    ) -> Optional[PlanEntry]:
        """Store a clean recording; dirty recordings are discarded."""
        if rec.dirty:
            return None
        entry = PlanEntry(
            impl=rec.impl,
            key_id=rec.key_id,
            nrounds=nrounds,
            aggs=list(aggs),
            rounds=rec.rounds,
            ft_extent=ft_extent,
            topology=topology,
            realm_bytes=list(realm_bytes or []),
        )
        self._entries[rec.key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        self._size.set(len(self._entries))
        return entry

    # -- invalidation ----------------------------------------------------------
    def invalidate(self, reason: str = "") -> int:
        """Drop every entry (``set_view`` and friends); returns the
        number dropped.  Counts one invalidation event regardless, so
        the counters prove the epoch bump even on an empty cache."""
        dropped = len(self._entries)
        self._entries.clear()
        self._invalidations.inc()
        self._size.set(0)
        return dropped
