"""File views (MPI_File_set_view analogue).

A view is (disp, etype, filetype): the filetype tiles forward from the
byte displacement and exposes its data bytes as the accessible stream.
The amount of I/O a collective call performs is determined by the
memory buffer/datatype, not the view (Figure 1's "conceptually repeats
forever").
"""

from __future__ import annotations

from repro.datatypes.base import BYTE, Datatype
from repro.datatypes.flatten import FlatType
from repro.datatypes.segments import FlatCursor
from repro.errors import CollectiveIOError

__all__ = ["FileView"]


class FileView:
    """Validated (disp, etype, filetype) triple."""

    __slots__ = ("disp", "etype", "filetype", "flat")

    def __init__(self, disp: int = 0, etype: Datatype = BYTE, filetype: Datatype | None = None):
        if disp < 0:
            raise CollectiveIOError(f"view displacement must be non-negative, got {disp}")
        if filetype is None:
            filetype = etype
        flat = filetype.flatten()
        if flat.size == 0:
            raise CollectiveIOError("filetype must contain at least one data byte")
        if etype.size <= 0:
            raise CollectiveIOError("etype must have positive size")
        if flat.size % etype.size != 0:
            raise CollectiveIOError(
                f"filetype size {flat.size} is not a multiple of etype size {etype.size}"
            )
        if not flat.is_monotonic:
            raise CollectiveIOError(
                "filetype must be monotonic and non-overlapping when tiled"
            )
        self.disp = int(disp)
        self.etype = etype
        self.filetype = filetype
        self.flat: FlatType = flat

    def cursor(self, total_bytes: int, data_lo: int = 0) -> FlatCursor:
        """A fresh scan cursor over data bytes [data_lo, total_bytes)."""
        return FlatCursor(self.flat, self.disp, total_bytes, data_lo)

    @property
    def is_contiguous(self) -> bool:
        return self.flat.is_contiguous

    def access_span(self, total_bytes: int, data_lo: int = 0) -> tuple[int, int]:
        """[first_byte, last_byte) touched by data [data_lo, total_bytes)."""
        if total_bytes <= data_lo:
            return (self.disp, self.disp)
        cur = self.cursor(total_bytes, data_lo)
        return (cur.first_byte, cur.last_byte)

    def __repr__(self) -> str:
        return (
            f"FileView(disp={self.disp}, etype={self.etype.name}, "
            f"filetype={self.filetype.name}, D={self.flat.num_segments})"
        )
