"""Persistent file realm state (§5.2 / §6.4).

PFRs fix the realm assignment for the *entire file* at the first
collective call and keep it until close.  Because file realms are
non-overlapping and every request for a byte funnels through its one
aggregator, every process's view of that byte stays coherent even over
an incoherent client-side cache — and I/O locality improves because
aggregators always touch the same regions.

The realms are block-cyclic, anchored at byte zero, tiling forever:
that is what "designate region assignments for the entire file, not
just the region being accessed" requires, and it is a one-liner with
datatype-described realms (the paper's point about the old code needing
heavy modification).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.realms import FileRealm, make_cyclic_realms
from repro.errors import CollectiveIOError

__all__ = ["PFRState"]


class PFRState:
    """Cross-call realm state attached to an open collective file."""

    __slots__ = ("_realms", "_naggs", "block")

    def __init__(self) -> None:
        self._realms: Optional[List[FileRealm]] = None
        self._naggs = 0
        self.block = 0

    @property
    def established(self) -> bool:
        return self._realms is not None

    def realms_for(
        self, aar_lo: int, aar_hi: int, naggs: int, alignment: int
    ) -> List[FileRealm]:
        """Return the persistent realms, creating them on first use.

        The block size comes from the first call's aggregate access
        region (span / naggs), rounded up to ``alignment`` when set —
        anchored at byte 0 regardless of where the access begins."""
        if self._realms is None:
            span = max(aar_hi - aar_lo, 1)
            block = -(-span // naggs)
            if alignment:
                # Round DOWN to the alignment grid (min one unit): the
                # period then never exceeds the span, so the cyclic
                # tiling wraps and every aggregator keeps a fair share.
                # Rounding up would starve trailing aggregators whenever
                # the span is close to naggs * alignment.
                block = max(block // alignment, 1) * alignment
            block = max(block, 1)
            self._realms = make_cyclic_realms(naggs, block, anchor=0)
            self._naggs = naggs
            self.block = block
            return self._realms
        if naggs != self._naggs:
            raise CollectiveIOError(
                f"persistent file realms were established with {self._naggs} "
                f"aggregators; cannot switch to {naggs} before the file is closed"
            )
        return self._realms
