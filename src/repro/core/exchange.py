"""Data-exchange phase backends (§5.4).

Two interchangeable implementations of "move these byte ranges between
every client's buffer and every aggregator's collective buffer":

* ``alltoallw`` — drives :meth:`Communicator.alltoallw`: non-contiguous
  regions move straight between the user/collective buffers with no
  intermediate pack buffer (the datatype engine's per-byte touch is the
  only CPU cost).  This is the path that benefits machines with
  collective-optimized networks (BG/L's dedicated collective network in
  the paper's discussion).
* ``nonblocking`` — isend/irecv per peer with explicit pack/unpack
  buffers; a fraction of the pack cost is hidden by overlapping
  communication with the address computation
  (``CostModel.net_overlap_factor`` is the fraction still charged).

Both move identical bytes; only the cost structure differs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.config import CostModel
from repro.datatypes.packing import gather_segments, scatter_segments
from repro.datatypes.segments import SegmentBatch
from repro.errors import CollectiveIOError
from repro.mpi.comm import Communicator
from repro.mpi.request import waitall

__all__ = ["exchange_data", "EXCHANGE_MODES"]

EXCHANGE_MODES = ("alltoallw", "nonblocking")

_TAG_DATA = (1 << 19) + 3  # library p2p range: below COLLECTIVE_TAG_BASE


def exchange_data(
    comm: Communicator,
    cost: CostModel,
    mode: str,
    sendbuf: Optional[np.ndarray],
    send_batches: Sequence[Optional[SegmentBatch]],
    recvbuf: Optional[np.ndarray],
    recv_batches: Sequence[Optional[SegmentBatch]],
    skip: frozenset = frozenset(),
) -> int:
    """Run one exchange round; returns bytes this rank sent.

    ``send_batches[p]`` addresses bytes of ``sendbuf`` destined for peer
    ``p``; ``recv_batches[p]`` addresses where peer ``p``'s bytes land
    in ``recvbuf``.  Batches must agree pairwise on byte counts (their
    data_offsets are order keys; both sides order by the client's
    monotonic file order).  Every rank must call this, every round.

    ``skip`` names suspect ranks excluded from the exchange (their
    batches must already be None/empty).  The alltoallw backend needs
    the set explicitly to keep its pairwise rounds matched; the
    nonblocking backend only posts non-empty batches, so empty batches
    exclude a suspect automatically."""
    if mode not in EXCHANGE_MODES:
        raise CollectiveIOError(f"unknown exchange mode {mode!r}; options {EXCHANGE_MODES}")
    sent = sum(b.total_bytes for b in send_batches if b is not None)
    if mode == "alltoallw":
        comm.alltoallw(sendbuf, list(send_batches), recvbuf, list(recv_batches), skip=skip)
        return sent
    _nonblocking(comm, cost, sendbuf, send_batches, recvbuf, recv_batches)
    return sent


def _nonblocking(
    comm: Communicator,
    cost: CostModel,
    sendbuf: Optional[np.ndarray],
    send_batches: Sequence[Optional[SegmentBatch]],
    recvbuf: Optional[np.ndarray],
    recv_batches: Sequence[Optional[SegmentBatch]],
) -> None:
    ctx = comm.ctx
    rank = comm.rank
    pack_rate = cost.cpu_per_byte_touch + cost.cpu_per_byte_copy * cost.net_overlap_factor

    def pack(batch: SegmentBatch) -> np.ndarray:
        if sendbuf is None:
            raise CollectiveIOError("nonblocking exchange: send batch without a buffer")
        ctx.charge(batch.total_bytes * pack_rate)
        return gather_segments(sendbuf, batch)

    def unpack(batch: SegmentBatch, data: np.ndarray) -> None:
        if data.size != batch.total_bytes:
            raise CollectiveIOError(
                f"nonblocking exchange: got {data.size} bytes, expected {batch.total_bytes}"
            )
        if recvbuf is None:
            raise CollectiveIOError("nonblocking exchange: recv batch without a buffer")
        ctx.charge(batch.total_bytes * pack_rate)
        scatter_segments(recvbuf, batch, data)

    # Local transfer needs no messages.
    my_send = send_batches[rank]
    my_recv = recv_batches[rank]
    if my_send is not None and not my_send.empty:
        if my_recv is None or my_recv.total_bytes != my_send.total_bytes:
            raise CollectiveIOError("self-exchange batches disagree")
        unpack(my_recv, pack(my_send))

    # Post everything, then wait — the old code's structure, kept here
    # because the nonblocking backend serves both implementations.
    recv_reqs = []
    for peer in range(comm.size):
        b = recv_batches[peer]
        if peer != rank and b is not None and not b.empty:
            recv_reqs.append((peer, b, comm.irecv(peer, _TAG_DATA)))
    send_reqs = []
    for peer in range(comm.size):
        b = send_batches[peer]
        if peer != rank and b is not None and not b.empty:
            send_reqs.append(comm.isend(pack(b), peer, _TAG_DATA))
    for peer, b, req in recv_reqs:
        unpack(b, req.wait())
    waitall(send_reqs)
