"""Data-exchange phase backends (§5.4).

Two interchangeable implementations of "move these byte ranges between
every client's buffer and every aggregator's collective buffer":

* ``alltoallw`` — drives :meth:`Communicator.alltoallw`: non-contiguous
  regions move straight between the user/collective buffers with no
  intermediate pack buffer (the datatype engine's per-byte touch is the
  only CPU cost).  This is the path that benefits machines with
  collective-optimized networks (BG/L's dedicated collective network in
  the paper's discussion).
* ``nonblocking`` — isend/irecv per peer with explicit pack/unpack
  buffers; a fraction of the pack cost is hidden by overlapping
  communication with the address computation
  (``CostModel.net_overlap_factor`` is the fraction still charged).
* ``two_layer`` — topology-aware intra-node aggregation (Kang et al.):
  each rank packs and coalesces its per-peer segments, the node's
  elected leader gathers them over the cheap intra-node tier, leaders
  exchange the combined frames pairwise over the inter-node tier, and
  the mirrored scatter delivers each frame to its destination rank.
  Same bytes in the same order as the flat modes — only *who carries
  them across nodes* changes, which is what cuts inter-node message
  count and envelope traffic.

All modes move identical bytes; only the cost structure differs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import CostModel
from repro.datatypes.packing import gather_segments, scatter_segments
from repro.datatypes.segments import SegmentBatch
from repro.errors import CollectiveIOError
from repro.mpi.comm import Communicator
from repro.mpi.request import waitall
from repro.mpi.topology import NodeTopology, topology_stats

__all__ = ["exchange_data", "EXCHANGE_MODES"]

EXCHANGE_MODES = ("alltoallw", "nonblocking", "two_layer")

_TAG_DATA = (1 << 19) + 3  # library p2p range: below COLLECTIVE_TAG_BASE
#: Leader↔leader frame exchange: collective range, so the inter-node
#: tier of the two-layer exchange rides the collective-network factor
#: exactly like the alltoallw it replaces.  The routing header and the
#: combined data frame travel on separate tags.
_TAG_TWO_LAYER = (1 << 20) + 8
_TAG_TWO_LAYER_DATA = (1 << 20) + 9

_EMPTY_FRAME = np.empty(0, dtype=np.uint8)


def exchange_data(
    comm: Communicator,
    cost: CostModel,
    mode: str,
    sendbuf: Optional[np.ndarray],
    send_batches: Sequence[Optional[SegmentBatch]],
    recvbuf: Optional[np.ndarray],
    recv_batches: Sequence[Optional[SegmentBatch]],
    skip: frozenset = frozenset(),
    topology: Optional[NodeTopology] = None,
) -> int:
    """Run one exchange round; returns bytes this rank sent.

    ``send_batches[p]`` addresses bytes of ``sendbuf`` destined for peer
    ``p``; ``recv_batches[p]`` addresses where peer ``p``'s bytes land
    in ``recvbuf``.  Batches must agree pairwise on byte counts (their
    data_offsets are order keys; both sides order by the client's
    monotonic file order).  Every rank must call this, every round.

    ``skip`` names suspect ranks excluded from the exchange (their
    batches must already be None/empty).  The alltoallw backend needs
    the set explicitly to keep its pairwise rounds matched; the
    nonblocking backend only posts non-empty batches, so empty batches
    exclude a suspect automatically.  The two_layer backend falls back
    to the flat alltoallw for the round: suspect-skipping is a liveness
    event, and re-electing leaders around a suspect mid-call is not
    worth the protocol complexity — the fallback keeps every leg
    matched at the phase boundary.

    ``topology`` selects the node grouping for ``two_layer`` (defaults
    to the communicator's cost-model topology; a flat cluster degrades
    to per-rank leaders, which is still correct, just not cheaper)."""
    if mode not in EXCHANGE_MODES:
        raise CollectiveIOError(f"unknown exchange mode {mode!r}; options {EXCHANGE_MODES}")
    sent = sum(b.total_bytes for b in send_batches if b is not None)
    if mode == "alltoallw":
        comm.alltoallw(sendbuf, list(send_batches), recvbuf, list(recv_batches), skip=skip)
        return sent
    if mode == "two_layer":
        if skip:
            topology_stats(comm.ctx.shared).flat_fallbacks += 1
            comm.alltoallw(
                sendbuf, list(send_batches), recvbuf, list(recv_batches), skip=skip
            )
            return sent
        _two_layer(comm, cost, sendbuf, send_batches, recvbuf, recv_batches, topology)
        return sent
    _nonblocking(comm, cost, sendbuf, send_batches, recvbuf, recv_batches)
    return sent


def _nonblocking(
    comm: Communicator,
    cost: CostModel,
    sendbuf: Optional[np.ndarray],
    send_batches: Sequence[Optional[SegmentBatch]],
    recvbuf: Optional[np.ndarray],
    recv_batches: Sequence[Optional[SegmentBatch]],
) -> None:
    ctx = comm.ctx
    rank = comm.rank
    pack_rate = cost.cpu_per_byte_touch + cost.cpu_per_byte_copy * cost.net_overlap_factor

    def pack(batch: SegmentBatch) -> np.ndarray:
        if sendbuf is None:
            raise CollectiveIOError("nonblocking exchange: send batch without a buffer")
        ctx.charge(batch.total_bytes * pack_rate)
        return gather_segments(sendbuf, batch)

    def unpack(batch: SegmentBatch, data: np.ndarray) -> None:
        if data.size != batch.total_bytes:
            raise CollectiveIOError(
                f"nonblocking exchange: got {data.size} bytes, expected {batch.total_bytes}"
            )
        if recvbuf is None:
            raise CollectiveIOError("nonblocking exchange: recv batch without a buffer")
        ctx.charge(batch.total_bytes * pack_rate)
        scatter_segments(recvbuf, batch, data)

    # Local transfer needs no messages.
    my_send = send_batches[rank]
    my_recv = recv_batches[rank]
    if my_send is not None and not my_send.empty:
        if my_recv is None or my_recv.total_bytes != my_send.total_bytes:
            raise CollectiveIOError("self-exchange batches disagree")
        unpack(my_recv, pack(my_send))

    # Post everything, then wait — the old code's structure, kept here
    # because the nonblocking backend serves both implementations.
    recv_reqs = []
    for peer in range(comm.size):
        b = recv_batches[peer]
        if peer != rank and b is not None and not b.empty:
            recv_reqs.append((peer, b, comm.irecv(peer, _TAG_DATA)))
    send_reqs = []
    for peer in range(comm.size):
        b = send_batches[peer]
        if peer != rank and b is not None and not b.empty:
            send_reqs.append(comm.isend(pack(b), peer, _TAG_DATA))
    for peer, b, req in recv_reqs:
        unpack(b, req.wait())
    waitall(send_reqs)


def _two_layer(
    comm: Communicator,
    cost: CostModel,
    sendbuf: Optional[np.ndarray],
    send_batches: Sequence[Optional[SegmentBatch]],
    recvbuf: Optional[np.ndarray],
    recv_batches: Sequence[Optional[SegmentBatch]],
    topology: Optional[NodeTopology],
) -> None:
    """Three-phase topology-aware exchange.

    A. every rank coalesces + packs one frame per destination and the
       node leader gathers them (intra-node tier);
    B. leaders route frames by destination *node* and exchange the
       per-node bundles pairwise (inter-node tier; every leader pair
       exchanges every round — empty bundles travel as ``None`` — so
       the legs stay matched without any advance agreement on who has
       data for whom);
    C. the destination leader splits its inbound bundle per member and
       scatters (intra-node tier); each member unpacks per source.

    Frames are kept per (source, destination) pair end to end: the two
    sides of a pairing agree on byte order only through their own
    data_offsets keys, which are not comparable *across* pairings, so
    merging frames from different sources would be unsound.  What the
    leader does merge is the message count — and coalescing shrinks the
    per-frame bookkeeping — which is exactly the inter-node saving.
    """
    ctx = comm.ctx
    rank = comm.rank
    stats = topology_stats(ctx.shared)
    stats.two_layer_rounds += 1
    pack_rate = cost.cpu_per_byte_touch + cost.cpu_per_byte_copy * cost.net_overlap_factor

    topo = topology if topology is not None else comm.topology
    layered = topo is not None and topo.procs_per_node > 1
    if layered:
        node_of = [topo.node_of(w) for w in comm.members]
    else:
        # Flat cluster: every rank leads its own one-member node.
        node_of = list(range(comm.size))
    groups: dict = {}
    for cr in range(comm.size):
        groups.setdefault(node_of[cr], []).append(cr)
    node_ids = sorted(groups)
    leaders = {nid: groups[nid][0] for nid in node_ids}
    my_node = node_of[rank]
    node_ranks = groups[my_node]

    # -- phase A: coalesce, pack, gather to the node leader ---------------
    frames: List[Tuple[int, np.ndarray]] = []
    for dst in range(comm.size):
        b = send_batches[dst]
        if b is None or b.empty:
            continue
        if sendbuf is None:
            raise CollectiveIOError("two_layer exchange: send batch without a buffer")
        cb = b.coalesce()
        stats.coalesce_runs_in += b.num_segments
        stats.coalesce_runs_out += cb.num_segments
        # One pass over the runs to merge them, then the pack itself.
        ctx.charge(b.num_segments * cost.cpu_per_flat_pair)
        ctx.charge(cb.total_bytes * pack_rate)
        frames.append((dst, gather_segments(sendbuf, cb)))
    if layered:
        node_comm = comm.node_subcomm(topo)
        gathered = node_comm.gather(frames, root=0)
        is_leader = node_comm.rank == 0
    else:
        node_comm = None
        gathered = [frames]
        is_leader = True

    # -- phase B: leaders bundle by destination node, pairwise exchange ---
    inbound: List[Tuple[int, int, np.ndarray]] = []
    if is_leader:
        by_node: dict = {nid: [] for nid in node_ids}
        for local_i, member_frames in enumerate(gathered):
            src = node_ranks[local_i]
            for dst, blob in member_frames:
                # Leader-side routing bookkeeping, one record per frame.
                ctx.charge(cost.cpu_heap_op)
                by_node[node_of[dst]].append((dst, src, blob))
        inbound.extend(by_node[my_node])
        my_li = node_ids.index(my_node)
        nleaders = len(node_ids)
        for step in range(1, nleaders):
            dst_nid = node_ids[(my_li + step) % nleaders]
            src_nid = node_ids[(my_li - step) % nleaders]
            outbound = by_node[dst_nid]
            # The routing header is a control message; the payload
            # travels as ONE raw combined frame per leader pair, so the
            # wire corruption model (and the ``integrity_network`` frame
            # checksums) cover the two-layer path exactly like the flat
            # modes' packed sends.  The data leg always runs — an empty
            # frame when there is nothing to say — keeping the pairwise
            # legs matched with no advance agreement.
            header = [(dst, src, blob.size) for dst, src, blob in outbound] or None
            if outbound:
                cat = np.concatenate([blob for _, _, blob in outbound])
                ctx.charge(cat.nbytes * cost.cpu_per_byte_copy)
            else:
                cat = _EMPTY_FRAME
            data_req = comm.isend(cat, leaders[dst_nid], _TAG_TWO_LAYER_DATA)
            got = comm.sendrecv(
                header,
                leaders[dst_nid],
                leaders[src_nid],
                _TAG_TWO_LAYER,
                _TAG_TWO_LAYER,
            )
            got_cat = comm.recv(leaders[src_nid], _TAG_TWO_LAYER_DATA)
            data_req.wait()
            if got:
                pos = 0
                for dst, src, size in got:
                    inbound.append((dst, src, got_cat[pos : pos + size]))
                    pos += size
                if pos != got_cat.size:
                    raise CollectiveIOError(
                        f"two_layer exchange: leader frame size mismatch "
                        f"({got_cat.size} bytes for a {pos}-byte header)"
                    )

    # -- phase C: scatter per member, unpack per source -------------------
    if node_comm is not None:
        if is_leader:
            per_member: dict = {cr: [] for cr in node_ranks}
            for dst, src, blob in inbound:
                per_member[dst].append((src, blob))
            objs: Optional[list] = [
                sorted(per_member[cr], key=lambda t: t[0]) for cr in node_ranks
            ]
        else:
            objs = None
        mine = node_comm.scatter(objs, root=0)
    else:
        mine = sorted(((src, blob) for _, src, blob in inbound), key=lambda t: t[0])

    expected = {
        src
        for src in range(comm.size)
        if recv_batches[src] is not None and not recv_batches[src].empty
    }
    delivered = set()
    for src, blob in mine:
        b = recv_batches[src]
        if b is None or b.empty:
            raise CollectiveIOError(
                f"two_layer exchange: unexpected data from rank {src}"
            )
        if recvbuf is None:
            raise CollectiveIOError("two_layer exchange: recv batch without a buffer")
        cb = b.coalesce()
        if blob.size != cb.total_bytes:
            raise CollectiveIOError(
                f"two_layer exchange: got {blob.size} bytes from rank {src}, "
                f"expected {cb.total_bytes}"
            )
        ctx.charge(b.num_segments * cost.cpu_per_flat_pair)
        ctx.charge(cb.total_bytes * pack_rate)
        scatter_segments(recvbuf, cb, blob)
        delivered.add(src)
    missing = expected - delivered
    if missing:
        raise CollectiveIOError(
            f"two_layer exchange: no data arrived from ranks {sorted(missing)}"
        )
