"""Shared state handed to the two-phase drivers, and per-file statistics.

:class:`CollStats` used to be a bag of bare dataclass ints; it is now a
thin view over :class:`~repro.obs.metrics.MetricsRegistry` instruments
keyed by rank, so the same numbers surface under stable dotted names
(``coll.rounds``, ``exchange.bytes``, ``coll.meta.bytes``, ...) in the
session-wide registry while every existing ``stats.x += 1`` site keeps
working unchanged.  The attribute names are kept non-warning because
the drivers themselves write through them; the *deprecated* surface is
:attr:`repro.core.file_handle.CollectiveFile.stats`, the old way of
reaching this object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional

from repro.config import CostModel
from repro.core.file_view import FileView
from repro.core.pfr import PFRState
from repro.io.adio import AdioFile
from repro.mpi.comm import Communicator
from repro.mpi.hints import Hints
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import RankContext

if TYPE_CHECKING:  # pragma: no cover - plancache imports env types
    from repro.core.plancache import PlanCache

__all__ = ["CollStats", "CollEnv"]


class CollStats:
    """Per-rank collective-I/O counters, backed by the metrics registry.

    These are the numbers MPE logging surfaced for the paper's
    analysis: where the datatype-processing time went, how much data
    and metadata moved, which flush methods ran.  Each attribute is a
    property over a registry :class:`~repro.obs.metrics.Counter` under
    the dotted name in :data:`CollStats.METRICS` (key = rank)."""

    #: legacy attribute -> registry metric name.
    METRICS: Dict[str, str] = {
        "collective_writes": "coll.writes",
        "collective_reads": "coll.reads",
        "rounds": "coll.rounds",
        "client_pairs": "coll.client.pairs",
        "client_tiles_skipped": "coll.client.tiles_skipped",
        "agg_pairs": "coll.agg.pairs",
        "agg_tiles_skipped": "coll.agg.tiles_skipped",
        "bytes_exchanged": "exchange.bytes",
        "meta_bytes": "coll.meta.bytes",
        "coherence_flush_pages": "coll.coherence.flush_pages",
        "agg_service_seconds": "coll.agg.service_seconds",
    }

    def __init__(
        self, registry: Optional[MetricsRegistry] = None, rank: Hashable = None
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.rank = rank
        self._instruments = {
            attr: self.registry.counter(name, rank)
            for attr, name in self.METRICS.items()
        }
        self._last_service = self.registry.gauge("coll.agg.last_service_seconds", rank)
        #: per-aggregator assigned realm bytes of the most recent call
        #: (pre-clip; identical on every rank).  Lets tests observe
        #: balanced-strategy boundary movement between calls.  A list,
        #: so it stays a plain attribute rather than an instrument.
        self.last_realm_bytes: List[int] = []

    # -- gauge-backed fields ------------------------------------------------
    @property
    def last_agg_service_seconds(self) -> float:
        """Aggregator service seconds of the most recent call only —
        the balanced strategy's straggler-aware feedback signal."""
        return self._last_service.value

    @last_agg_service_seconds.setter
    def last_agg_service_seconds(self, v: float) -> None:
        self._last_service.value = v

    # -- flush methods ------------------------------------------------------
    def note_flush(self, method: str) -> None:
        self.registry.counter(f"coll.flush.{method}", self.rank).inc()

    @property
    def flush_methods(self) -> Dict[str, int]:
        """Collective-buffer flush method usage (method -> count)."""
        out: Dict[str, int] = {}
        for name in self.registry.names():
            if name.startswith("coll.flush."):
                n = self.registry.value(name, self.rank)
                if n:
                    out[name[len("coll.flush."):]] = n
        return out

    def snapshot(self) -> Dict[str, object]:
        """The legacy flat dict (old field names), read from the registry."""
        d: Dict[str, object] = {
            attr: inst.value for attr, inst in self._instruments.items()
        }
        d["last_agg_service_seconds"] = self._last_service.value
        d["flush_methods"] = self.flush_methods
        d["last_realm_bytes"] = list(self.last_realm_bytes)
        return d


def _counter_property(attr: str) -> property:
    def getter(self):
        return self._instruments[attr].value

    def setter(self, v):
        self._instruments[attr].value = v

    return property(getter, setter)


for _attr in CollStats.METRICS:
    setattr(CollStats, _attr, _counter_property(_attr))
del _attr


@dataclass
class CollEnv:
    """Everything a two-phase driver needs for one collective call."""

    ctx: RankContext
    comm: Communicator
    cost: CostModel
    hints: Hints
    adio: AdioFile
    view: FileView
    stats: CollStats
    pfr: Optional[PFRState] = None
    # Persistent plan cache (docs/plan_cache.md); None = plan every call.
    plancache: Optional["PlanCache"] = None
