"""Shared state handed to the two-phase drivers, and per-file statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import CostModel
from repro.core.file_view import FileView
from repro.core.pfr import PFRState
from repro.io.adio import AdioFile
from repro.mpi.comm import Communicator
from repro.mpi.hints import Hints
from repro.sim.engine import RankContext

__all__ = ["CollStats", "CollEnv"]


@dataclass
class CollStats:
    """Cumulative counters for one open collective file (one rank's view).

    These are the numbers MPE logging surfaced for the paper's analysis:
    where the datatype-processing time went, how much data and metadata
    moved, which flush methods ran."""

    collective_writes: int = 0
    collective_reads: int = 0
    rounds: int = 0
    #: offset/length pairs evaluated while routing my access to realms.
    client_pairs: int = 0
    #: filetype tiles skipped wholesale (the succinct-datatype win).
    client_tiles_skipped: int = 0
    #: pairs evaluated on this rank acting as an aggregator.
    agg_pairs: int = 0
    agg_tiles_skipped: int = 0
    #: user-data bytes this rank sent during exchange phases.
    bytes_exchanged: int = 0
    #: access-description bytes this rank sent (flattened filetypes or
    #: offset/length lists).
    meta_bytes: int = 0
    #: collective-buffer flush method usage.
    flush_methods: Dict[str, int] = field(default_factory=dict)
    #: cache pages flushed by realm-coherence syncs (non-PFR epilogues).
    coherence_flush_pages: int = 0
    #: virtual seconds this rank spent servicing its aggregator role
    #: (routing + flushing), cumulative across collective calls.
    agg_service_seconds: float = 0.0
    #: the same, for the most recent collective call only — the
    #: balanced strategy's straggler-aware feedback signal.
    last_agg_service_seconds: float = 0.0
    #: per-aggregator assigned realm bytes of the most recent call
    #: (pre-clip; identical on every rank).  Lets tests observe
    #: balanced-strategy boundary movement between calls.
    last_realm_bytes: List[int] = field(default_factory=list)

    def note_flush(self, method: str) -> None:
        self.flush_methods[method] = self.flush_methods.get(method, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        d = self.__dict__.copy()
        d["flush_methods"] = dict(self.flush_methods)
        d["last_realm_bytes"] = list(self.last_realm_bytes)
        return d


@dataclass
class CollEnv:
    """Everything a two-phase driver needs for one collective call."""

    ctx: RankContext
    comm: Communicator
    cost: CostModel
    hints: Hints
    adio: AdioFile
    view: FileView
    stats: CollStats
    pfr: Optional[PFRState] = None
