"""MPI_File-like collective file handle.

One :class:`CollectiveFile` per rank per open file.  All ``*_all``
operations are collective: every rank of the communicator must call
them in the same order (a mismatch deadlocks, which the engine turns
into a :class:`~repro.errors.SimDeadlock` with a rank dump).

Cache-coherence protocol (the PFR story, §6.4): when the client cache
is *incoherent* and persistent file realms are **off**, realm
assignments may move between calls, so different aggregators may touch
the same bytes across calls.  The handle then conservatively

* invalidates the local cache before each collective call, and
* syncs (flushes dirty pages) after each collective write,

which is what keeps the file system state correct — and what makes the
non-PFR configurations slow in Figure 7.  With PFRs on, realms never
move, every byte has a single owner for the file's lifetime, and both
steps are skipped.
"""

from __future__ import annotations

import warnings
from typing import Hashable, Optional

import numpy as np

from repro.config import CostModel, DEFAULT_COST_MODEL
from repro.core.env import CollEnv, CollStats
from repro.core.file_view import FileView
from repro.core.pfr import PFRState
from repro.core.plancache import PlanCache
from repro.core.two_phase_new import read_all_new, write_all_new
from repro.core.two_phase_old import read_all_old, write_all_old
from repro.datatypes.base import BYTE, Datatype
from repro.datatypes.flatten import FlatType
from repro.errors import CollectiveIOError
from repro.fs.client import FSClient
from repro.fs.filesystem import SimFileSystem
from repro.integrity import IntegrityConfig, install_integrity
from repro.io.adio import AdioFile
from repro.liveness import LivenessState, install_liveness
from repro.config import LivenessConfig
from repro.io.retry import RetryBudget, RetryPolicy
from repro.liveness import find_crash_state
from repro.mpi.agreement import AliveGroup
from repro.mpi.comm import Communicator
from repro.mpi.hints import Hints
from repro.obs.metrics import MetricsView, metrics_registry
from repro.sim.engine import RankContext

__all__ = ["CollectiveFile", "CollStats"]


class CollectiveFile:
    """Collectively opened file with two-phase read/write."""

    def __init__(
        self,
        ctx: RankContext,
        comm: Communicator,
        fs: SimFileSystem,
        path: str,
        hints: Optional[Hints] = None,
        cost: CostModel = DEFAULT_COST_MODEL,
        client_id: Optional[Hashable] = None,
        resume_rank: Optional[int] = None,
    ) -> None:
        self.ctx = ctx
        self.comm = comm
        #: Rejoin replay mode (docs/crash_recovery.md): collective
        #: writes route through journal-replay resume instead of the
        #: two-phase drivers, rewriting only uncommitted bytes.
        self.resume_rank = resume_rank
        self._resume_calls = 0
        self.resume_rewritten = 0
        self.resume_skipped = 0
        self.fs = fs
        self.path = path
        self.hints = hints if hints is not None else Hints()
        self.cost = cost
        # Multi-tenant runs pass a (tenant, rank) client_id so that two
        # tenants' rank 0 never alias on the shared lock table / caches.
        client = FSClient(fs, ctx, client_id=client_id)
        self.local = client.open(
            path,
            cache_mode=self.hints["cache_mode"],
            cache_capacity_pages=self.hints["cache_pages"],
        )
        retry = RetryPolicy(
            retries=self.hints["io_retries"],
            backoff=self.hints["io_retry_backoff"],
            backoff_max=self.hints["retry_backoff_max"],
            jitter=self.hints["retry_jitter"],
            budget=(
                RetryBudget(self.hints["io_retry_budget"])
                if self.hints["io_retry_budget"]
                else None
            ),
        )
        self.adio = AdioFile(
            self.local, ds_buffer_size=self.hints["ds_buffer_size"], retry=retry
        )
        # Storage-side replication (docs/storage_faults.md): place each
        # stripe's pages on r distinct OSTs so an ost_crash degrades
        # instead of failing.  1 (default) = the seed's plain store.
        if self.hints["replication_factor"] > 1:
            fs.enable_replication(path, self.hints["replication_factor"])
        # End-to-end integrity (docs/integrity.md): arm the page sidecar
        # on the server and publish the config for the transport.  Both
        # default off, so the fast path never pays for the machinery.
        if self.hints["integrity_pages"] or self.hints["integrity_network"]:
            install_integrity(
                ctx.shared,
                IntegrityConfig(
                    pages=self.hints["integrity_pages"],
                    network=self.hints["integrity_network"],
                    net_retries=self.hints["io_retries"],
                    net_backoff=self.hints["io_retry_backoff"],
                    net_backoff_max=self.hints["retry_backoff_max"],
                ),
            )
        if self.hints["integrity_pages"]:
            fs.enable_integrity(path)
        # Liveness (docs/faults.md): a per-collective deadline and/or
        # suspect-driven failover.  Same dynamic-discovery pattern as
        # integrity — off by default, zero fast-path cost.
        if self.hints["coll_deadline"] > 0.0 or self.hints["liveness"]:
            install_liveness(
                ctx.shared,
                LivenessState(
                    LivenessConfig(deadline=self.hints["coll_deadline"]),
                    failover=self.hints["liveness"],
                ),
            )
        self.view = FileView(0, BYTE, BYTE)
        # Per-rank collective counters report into the simulation's
        # shared metrics registry (coll.* / exchange.* series).
        self.registry = metrics_registry(ctx.shared)
        self._stats = CollStats(self.registry, ctx.rank)
        self._call_seconds = self.registry.histogram("coll.call.seconds", ctx.rank)
        self.pfr = PFRState()
        # Persistent collective plans (docs/plan_cache.md): per-handle,
        # armed by the plan_cache hint; None keeps today's exact path.
        self.plancache = (
            PlanCache(self.registry, ctx.rank) if self.hints["plan_cache"] else None
        )
        #: Individual file pointer, counted in etypes (MPI semantics:
        #: advanced by pointer-relative operations, reset by set_view).
        self._pointer = 0
        self._open = True
        # Opening is collective in MPI; synchronize so later collective
        # calls start aligned (over the survivors once ranks have died
        # fail-stop — a corpse would deadlock the full barrier).
        self._alive_barrier()

    # -- observability -------------------------------------------------------
    @property
    def metrics(self) -> MetricsView:
        """This rank's registry view (``coll.*``/``exchange.*`` series)."""
        return self.registry.view(self.ctx.rank)

    @property
    def stats(self) -> CollStats:
        """Deprecated: the old per-handle stats object.

        The same numbers now live in the metrics registry under stable
        dotted names (see ``docs/observability.md``); read them via
        :attr:`metrics` or a session's registry."""
        warnings.warn(
            "CollectiveFile.stats is deprecated; use CollectiveFile.metrics "
            "or the session metrics registry instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._stats

    # -- views --------------------------------------------------------------
    def set_view(
        self, disp: int = 0, etype: Datatype = BYTE, filetype: Optional[Datatype] = None
    ) -> None:
        """Collective MPI_File_set_view analogue.

        Resets the individual file pointer to zero, per MPI."""
        self._require_open()
        self.view = FileView(disp, etype, filetype)
        self._pointer = 0
        if self.plancache is not None:
            # View epoch bump: every cached plan was carved against the
            # old view's flattened filetype and must not survive it.
            with self.ctx.trace("plan:invalidate", reason="set_view"):
                self.plancache.invalidate("set_view")
        self._alive_barrier()

    # -- individual file pointer ------------------------------------------------
    SEEK_SET = 0
    SEEK_CUR = 1

    def seek(self, offset_etypes: int, whence: int = SEEK_SET) -> None:
        """Move the individual file pointer (MPI_File_seek), counted in
        etypes relative to the view."""
        self._require_open()
        if whence == self.SEEK_SET:
            target = offset_etypes
        elif whence == self.SEEK_CUR:
            target = self._pointer + offset_etypes
        else:
            raise CollectiveIOError(f"unknown whence {whence!r}")
        if target < 0:
            raise CollectiveIOError(f"file pointer cannot go negative ({target})")
        self._pointer = target

    def get_position(self) -> int:
        """Current individual file pointer, in etypes (MPI_File_get_position)."""
        return self._pointer

    # -- helpers --------------------------------------------------------------
    def _crash_dead(self) -> frozenset:
        """Ranks known dead fail-stop in this simulation (empty when
        crashes were never armed)."""
        crash = find_crash_state(self.ctx.shared)
        return frozenset(crash.dead) if crash is not None else frozenset()

    def _alive_barrier(self) -> None:
        """Synchronize the live ranks.  Full-membership barriers
        deadlock forever once a rank died fail-stop; deaths only happen
        at collective-call boundaries, so every survivor reaching a
        teardown barrier sees the same dead set and interns the same
        shrunk communicator."""
        dead = self._crash_dead()
        if not dead:
            self.comm.barrier()
        else:
            AliveGroup(self.comm, dead, -2).barrier()

    def _require_open(self) -> None:
        if not self._open:
            raise CollectiveIOError(f"collective file {self.path!r} is closed")

    def _resolve_access(
        self, buf: np.ndarray, memtype: Optional[Datatype], count: int
    ) -> tuple[FlatType, int]:
        buf = np.asarray(buf)
        if buf.dtype != np.uint8 or buf.ndim != 1:
            raise CollectiveIOError("buffers must be 1-D numpy uint8 arrays")
        if count < 0:
            raise CollectiveIOError(f"count must be non-negative, got {count}")
        if memtype is None:
            # Whole buffer, contiguous.
            if count != 1:
                raise CollectiveIOError("count requires an explicit memtype")
            memflat = FlatType([0], [buf.size], buf.size) if buf.size else FlatType([], [], 0)
            if buf.size % self.view.etype.size != 0:
                raise CollectiveIOError(
                    f"access of {buf.size} bytes is not a whole number of etypes "
                    f"({self.view.etype.size} bytes)"
                )
            return memflat, buf.size
        memflat = memtype.flatten()
        total = memflat.size * count
        if count > 0 and memflat.size > 0:
            needed = (count - 1) * memflat.extent + memflat.span_hi
            if needed > buf.size:
                raise CollectiveIOError(
                    f"buffer of {buf.size} bytes too small for {count} x "
                    f"{memtype.name} (needs {needed})"
                )
        if total > 0 and total % self.view.etype.size != 0:
            raise CollectiveIOError(
                f"access of {total} bytes is not a whole number of etypes "
                f"({self.view.etype.size} bytes)"
            )
        # Tile the memory type to cover the full access.
        if count > 1:
            memflat = memflat.replicate(count)
        return memflat, total

    def _env(self) -> CollEnv:
        return CollEnv(
            ctx=self.ctx,
            comm=self.comm,
            cost=self.cost,
            hints=self.hints,
            adio=self.adio,
            view=self.view,
            stats=self._stats,
            pfr=self.pfr,
            plancache=self.plancache,
        )

    @property
    def _needs_realm_coherence(self) -> bool:
        return (
            self.hints["cache_mode"] == "incoherent"
            and not self.hints["persistent_file_realms"]
        )

    def _prologue(self) -> None:
        if self._needs_realm_coherence:
            # Realms may have moved since the last call: drop cached
            # pages so reads cannot see bytes another aggregator owns now.
            self.local.invalidate()

    def _epilogue_write(self) -> None:
        if self._needs_realm_coherence:
            # Coherence flushes hit the server too; retry them under the
            # same policy as the data path or a transient fault here
            # would kill an otherwise-survivable collective call.
            flushed = self.adio.retry.run(self.ctx, self.local.sync)
            self.local.invalidate()
            self._stats.coherence_flush_pages += flushed

    # -- collective operations ---------------------------------------------------
    def _collective_op(
        self,
        buf: np.ndarray,
        memtype: Optional[Datatype],
        count: int,
        *,
        write: bool,
        data_lo: Optional[int] = None,
    ) -> None:
        """Shared body of the *_all operations.

        ``data_lo`` is the starting data-stream byte; ``None`` means the
        individual file pointer (which then advances, per MPI)."""
        self._require_open()
        memflat, total = self._resolve_access(buf, memtype, count)
        use_pointer = data_lo is None
        start = self._pointer * self.view.etype.size if use_pointer else data_lo
        self._prologue()
        env = self._env()
        buf8 = np.asarray(buf, dtype=np.uint8)
        op_name = "write_all" if write else "read_all"
        t_begin = self.ctx.now
        with self.ctx.trace(op_name):
            if self.resume_rank is not None:
                # Rejoin replay (docs/crash_recovery.md): the Nth
                # collective call of the replayed program is resumed
                # against the Nth call's epoch records.
                from repro.core.resume import resume_write
                if not write:
                    raise CollectiveIOError(
                        "rejoin replay sessions support collective writes only"
                    )
                call = self._resume_calls
                self._resume_calls += 1
                rewritten, skipped = resume_write(
                    env, buf8, memflat, total, start,
                    call_index=call, rank=self.resume_rank,
                )
                self.resume_rewritten += rewritten
                self.resume_skipped += skipped
            elif write:
                driver = write_all_old if self.hints["coll_impl"] == "old" else write_all_new
                driver(env, buf8, memflat, total, start)
            else:
                driver = read_all_old if self.hints["coll_impl"] == "old" else read_all_new
                driver(env, buf8, memflat, total, start)
        self._call_seconds.record(self.ctx.now - t_begin)
        if write:
            self._epilogue_write()
        if use_pointer:
            self._pointer += total // self.view.etype.size

    def write_all(
        self, buf: np.ndarray, memtype: Optional[Datatype] = None, count: int = 1
    ) -> None:
        """Collective write at the individual file pointer
        (MPI_File_write_all); the pointer advances past the data."""
        self._collective_op(buf, memtype, count, write=True)

    def read_all(
        self, buf: np.ndarray, memtype: Optional[Datatype] = None, count: int = 1
    ) -> None:
        """Collective read at the individual file pointer
        (MPI_File_read_all); the pointer advances past the data."""
        self._collective_op(buf, memtype, count, write=False)

    def write_at_all(
        self,
        offset_etypes: int,
        buf: np.ndarray,
        memtype: Optional[Datatype] = None,
        count: int = 1,
    ) -> None:
        """Collective write at an explicit offset (MPI_File_write_at_all).

        ``offset_etypes`` counts etypes into the view's accessible data
        stream.  Any offset is allowed (including mid-filetype); the
        individual file pointer does not move, per MPI."""
        if offset_etypes < 0:
            raise CollectiveIOError(f"offset must be non-negative, got {offset_etypes}")
        self._collective_op(
            buf, memtype, count, write=True,
            data_lo=offset_etypes * self.view.etype.size,
        )

    def read_at_all(
        self,
        offset_etypes: int,
        buf: np.ndarray,
        memtype: Optional[Datatype] = None,
        count: int = 1,
    ) -> None:
        """Collective read at an explicit offset (MPI_File_read_at_all)."""
        if offset_etypes < 0:
            raise CollectiveIOError(f"offset must be non-negative, got {offset_etypes}")
        self._collective_op(
            buf, memtype, count, write=False,
            data_lo=offset_etypes * self.view.etype.size,
        )

    # -- independent I/O ---------------------------------------------------------
    def write_ind(self, buf: np.ndarray, memtype: Optional[Datatype] = None, count: int = 1) -> None:
        """Independent write through the view (MPI_File_write): no
        cooperation with other ranks, straight through the independent
        I/O layer with the hinted method (§5.1's reused code path)."""
        self._independent_op(buf, memtype, count, write=True)

    def read_ind(self, buf: np.ndarray, memtype: Optional[Datatype] = None, count: int = 1) -> None:
        """Independent read through the view (MPI_File_read)."""
        self._independent_op(buf, memtype, count, write=False)

    def _independent_op(
        self, buf: np.ndarray, memtype: Optional[Datatype], count: int, *, write: bool
    ) -> None:
        from repro.datatypes.packing import gather_segments, scatter_segments
        from repro.datatypes.segments import data_to_file_segments
        from repro.io.selection import choose_method

        self._require_open()
        memflat, total = self._resolve_access(buf, memtype, count)
        if total == 0:
            return
        buf = np.asarray(buf, dtype=np.uint8)
        start = self._pointer * self.view.etype.size
        batch = self.view.cursor(start + total, start).all_segments()
        # Rebase data offsets so they index the packed data stream.
        batch = type(batch)(
            batch.file_offsets,
            batch.lengths,
            batch.data_offsets - start,
            batch.pairs_evaluated,
            batch.tiles_skipped,
        )
        self.ctx.charge(batch.pairs_evaluated * self.cost.cpu_per_flat_pair)
        method = choose_method(self.hints, self.view.flat.extent, batch)
        self._stats.note_flush(method)
        mem_batch = data_to_file_segments(memflat, 0, 0, total)
        if write:
            # Gather the user data into data order; the file batch's
            # data_offsets already index that stream.
            data = gather_segments(buf, mem_batch)
            self.ctx.charge(total * self.cost.cpu_per_byte_touch)
            self.adio.write_strided(batch, data, method)
        else:
            data = self.adio.read_strided(batch, method)
            self.ctx.charge(total * self.cost.cpu_per_byte_touch)
            scatter_segments(buf, mem_batch, data[:total])
        self._pointer += total // self.view.etype.size

    # -- resize ---------------------------------------------------------------------
    def set_size(self, size: int) -> None:
        """Collective resize (MPI_File_set_size analogue).

        Every rank flushes its cached dirty data first — bytes past the
        cut are discarded server-side, not written back — then rank 0
        performs the single server resize and a barrier publishes it."""
        self._require_open()
        if size < 0:
            raise CollectiveIOError(f"file size must be non-negative, got {size}")
        self.adio.retry.run(self.ctx, self.local.sync)
        self._alive_barrier()
        # The resizing rank is the first *survivor* — rank 0 may be dead.
        dead = self._crash_dead()
        committer = next(r for r in range(self.comm.size) if r not in dead)
        if self.comm.rank == committer:
            self.adio.retry.run(
                self.ctx,
                lambda: self.fs.resize(
                    self.ctx, self.local.client.client_id, self.path, size
                ),
            )
        self._alive_barrier()

    # -- lifecycle ------------------------------------------------------------------
    def sync(self) -> None:
        """Collective flush of client caches to the server."""
        self._require_open()
        self.adio.retry.run(self.ctx, self.local.sync)
        self._alive_barrier()

    def close(self) -> None:
        """Collective close: flush, invalidate, synchronize.

        A rank that died fail-stop mid-collective still unwinds through
        its ``finally`` blocks before the engine reaps it; its close is
        a pure local teardown — a corpse's dirty cache dies with it
        (nothing may become durable after the crash point), and it
        cannot join the survivors' barrier it is dead in."""
        if not self._open:
            return
        self._publish_retry_budget()
        if self.comm.rank in self._crash_dead():
            self._open = False
            return
        # close() flushes dirty pages, which is a server write; give it
        # the same transient-fault protection as the data path.
        self.adio.retry.run(self.ctx, self.local.close)
        self._open = False
        self._alive_barrier()

    def _publish_retry_budget(self) -> None:
        """Surface the cross-operation retry budget in the registry so
        ``Session.summary()`` can report per-rank headroom."""
        budget = self.adio.retry.budget
        if budget is None:
            return
        self.registry.gauge("retry.budget.used", self.ctx.rank).set(budget.used)
        self.registry.gauge("retry.budget.remaining", self.ctx.rank).set(
            budget.remaining
        )

    def get_info(self) -> dict:
        """Effective hints (MPI_File_get_info analogue): every known key
        with its resolved value, explicit or default."""
        return {key: self.hints[key] for key in self.hints}

    @property
    def size(self) -> int:
        return self.local.size

    def __enter__(self) -> "CollectiveFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
