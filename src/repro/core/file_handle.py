"""MPI_File-like collective file handle.

One :class:`CollectiveFile` per rank per open file.  All ``*_all``
operations are collective: every rank of the communicator must call
them in the same order (a mismatch deadlocks, which the engine turns
into a :class:`~repro.errors.SimDeadlock` with a rank dump).

Cache-coherence protocol (the PFR story, §6.4): when the client cache
is *incoherent* and persistent file realms are **off**, realm
assignments may move between calls, so different aggregators may touch
the same bytes across calls.  The handle then conservatively

* invalidates the local cache before each collective call, and
* syncs (flushes dirty pages) after each collective write,

which is what keeps the file system state correct — and what makes the
non-PFR configurations slow in Figure 7.  With PFRs on, realms never
move, every byte has a single owner for the file's lifetime, and both
steps are skipped.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Hashable, List, Optional

import numpy as np

from repro.config import CostModel, DEFAULT_COST_MODEL
from repro.core.env import CollEnv, CollStats
from repro.core.file_view import FileView
from repro.core.pfr import PFRState
from repro.core.plancache import PlanCache
from repro.core.request import Request
from repro.core.two_phase_new import read_all_new, write_all_new
from repro.core.two_phase_old import read_all_old, write_all_old
from repro.datatypes.base import BYTE, Datatype
from repro.datatypes.flatten import FlatType
from repro.errors import CollectiveIOError, RankCrashed
from repro.fs.client import FSClient
from repro.fs.filesystem import SimFileSystem
from repro.integrity import IntegrityConfig, install_integrity
from repro.io.adio import AdioFile
from repro.liveness import LivenessState, install_liveness
from repro.config import LivenessConfig
from repro.io.retry import RetryBudget, RetryPolicy
from repro.liveness import find_crash_state
from repro.mpi.agreement import AliveGroup
from repro.mpi.comm import Communicator
from repro.mpi.hints import Hints
from repro.obs.metrics import MetricsView, metrics_registry
from repro.sim.engine import RankContext

__all__ = ["CollectiveFile", "CollStats", "sanctioned_construction"]

#: Depth of active :func:`sanctioned_construction` scopes.  The engine
#: runs one thread at a time, so a plain counter is race-free.
_sanction_depth = 0


@contextmanager
def sanctioned_construction():
    """Mark direct :class:`CollectiveFile` construction as intentional.

    The documented way to open a file is :meth:`Session.open` +
    :meth:`Session.run` (see ``docs/api.md``); internal plumbing that
    still builds handles by hand wraps the construction in this scope
    to keep the user-facing :class:`DeprecationWarning` quiet."""
    global _sanction_depth
    _sanction_depth += 1
    try:
        yield
    finally:
        _sanction_depth -= 1


class CollectiveFile:
    """Collectively opened file with two-phase read/write."""

    def __init__(
        self,
        ctx: RankContext,
        comm: Communicator,
        fs: SimFileSystem,
        path: str,
        hints: Optional[Hints] = None,
        cost: CostModel = DEFAULT_COST_MODEL,
        client_id: Optional[Hashable] = None,
        resume_rank: Optional[int] = None,
    ) -> None:
        if _sanction_depth == 0:
            warnings.warn(
                "Direct CollectiveFile construction is deprecated; open "
                "files through repro.Session (Session.open(...).run(body) "
                "hands each rank an open handle — see docs/api.md)",
                DeprecationWarning,
                stacklevel=2,
            )
        self.ctx = ctx
        self.comm = comm
        #: Rejoin replay mode (docs/crash_recovery.md): collective
        #: writes route through journal-replay resume instead of the
        #: two-phase drivers, rewriting only uncommitted bytes.
        self.resume_rank = resume_rank
        self._resume_calls = 0
        self.resume_rewritten = 0
        self.resume_skipped = 0
        self.fs = fs
        self.path = path
        self.hints = hints if hints is not None else Hints()
        self.cost = cost
        # Multi-tenant runs pass a (tenant, rank) client_id so that two
        # tenants' rank 0 never alias on the shared lock table / caches.
        client = FSClient(fs, ctx, client_id=client_id)
        self.local = client.open(
            path,
            cache_mode=self.hints["cache_mode"],
            cache_capacity_pages=self.hints["cache_pages"],
        )
        retry = RetryPolicy(
            retries=self.hints["io_retries"],
            backoff=self.hints["io_retry_backoff"],
            backoff_max=self.hints["retry_backoff_max"],
            jitter=self.hints["retry_jitter"],
            budget=(
                RetryBudget(self.hints["io_retry_budget"])
                if self.hints["io_retry_budget"]
                else None
            ),
        )
        self.adio = AdioFile(
            self.local, ds_buffer_size=self.hints["ds_buffer_size"], retry=retry
        )
        # Storage-side replication (docs/storage_faults.md): place each
        # stripe's pages on r distinct OSTs so an ost_crash degrades
        # instead of failing.  1 (default) = the seed's plain store.
        if self.hints["replication_factor"] > 1:
            fs.enable_replication(path, self.hints["replication_factor"])
        # End-to-end integrity (docs/integrity.md): arm the page sidecar
        # on the server and publish the config for the transport.  Both
        # default off, so the fast path never pays for the machinery.
        if self.hints["integrity_pages"] or self.hints["integrity_network"]:
            install_integrity(
                ctx.shared,
                IntegrityConfig(
                    pages=self.hints["integrity_pages"],
                    network=self.hints["integrity_network"],
                    net_retries=self.hints["io_retries"],
                    net_backoff=self.hints["io_retry_backoff"],
                    net_backoff_max=self.hints["retry_backoff_max"],
                ),
            )
        if self.hints["integrity_pages"]:
            fs.enable_integrity(path)
        # Liveness (docs/faults.md): a per-collective deadline and/or
        # suspect-driven failover.  Same dynamic-discovery pattern as
        # integrity — off by default, zero fast-path cost.
        if self.hints["coll_deadline"] > 0.0 or self.hints["liveness"]:
            install_liveness(
                ctx.shared,
                LivenessState(
                    LivenessConfig(deadline=self.hints["coll_deadline"]),
                    failover=self.hints["liveness"],
                ),
            )
        self.view = FileView(0, BYTE, BYTE)
        # Per-rank collective counters report into the simulation's
        # shared metrics registry (coll.* / exchange.* series).
        self.registry = metrics_registry(ctx.shared)
        self._stats = CollStats(self.registry, ctx.rank)
        self._call_seconds = self.registry.histogram("coll.call.seconds", ctx.rank)
        self.pfr = PFRState()
        # Persistent collective plans (docs/plan_cache.md): per-handle,
        # armed by the plan_cache hint; None keeps today's exact path.
        self.plancache = (
            PlanCache(self.registry, ctx.rank) if self.hints["plan_cache"] else None
        )
        #: Individual file pointer, counted in etypes (MPI semantics:
        #: advanced by pointer-relative operations, reset by set_view).
        self._pointer = 0
        self._open = True
        # Nonblocking surface (docs/async_io.md): outstanding requests
        # and the tail of this rank's coroutine chain — each async op
        # first joins its predecessor, so one rank's collectives issue
        # in program order on the shared communicator queues.
        self._requests: List[Request] = []
        self._async_tail = None
        # Opening is collective in MPI; synchronize so later collective
        # calls start aligned (over the survivors once ranks have died
        # fail-stop — a corpse would deadlock the full barrier).
        self._alive_barrier()

    # -- observability -------------------------------------------------------
    @property
    def metrics(self) -> MetricsView:
        """This rank's registry view (``coll.*``/``exchange.*`` series)."""
        return self.registry.view(self.ctx.rank)

    @property
    def stats(self) -> CollStats:
        """Deprecated: the old per-handle stats object.

        The same numbers now live in the metrics registry under stable
        dotted names (see ``docs/observability.md``); read them via
        :attr:`metrics` or a session's registry."""
        warnings.warn(
            "CollectiveFile.stats is deprecated; use CollectiveFile.metrics "
            "or the session metrics registry instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._stats

    # -- views --------------------------------------------------------------
    def set_view(
        self, disp: int = 0, etype: Datatype = BYTE, filetype: Optional[Datatype] = None
    ) -> None:
        """Collective MPI_File_set_view analogue.

        Resets the individual file pointer to zero, per MPI."""
        self._require_open()
        self._drain_async()
        self.view = FileView(disp, etype, filetype)
        self._pointer = 0
        if self.plancache is not None:
            # View epoch bump: every cached plan was carved against the
            # old view's flattened filetype and must not survive it.
            with self.ctx.trace("plan:invalidate", reason="set_view"):
                self.plancache.invalidate("set_view")
        self._alive_barrier()

    # -- individual file pointer ------------------------------------------------
    SEEK_SET = 0
    SEEK_CUR = 1

    def seek(self, offset_etypes: int, whence: int = SEEK_SET) -> None:
        """Move the individual file pointer (MPI_File_seek), counted in
        etypes relative to the view."""
        self._require_open()
        if whence == self.SEEK_SET:
            target = offset_etypes
        elif whence == self.SEEK_CUR:
            target = self._pointer + offset_etypes
        else:
            raise CollectiveIOError(f"unknown whence {whence!r}")
        if target < 0:
            raise CollectiveIOError(f"file pointer cannot go negative ({target})")
        self._pointer = target

    def get_position(self) -> int:
        """Current individual file pointer, in etypes (MPI_File_get_position)."""
        return self._pointer

    # -- helpers --------------------------------------------------------------
    def _crash_dead(self) -> frozenset:
        """Ranks known dead fail-stop in this simulation (empty when
        crashes were never armed)."""
        crash = find_crash_state(self.ctx.shared)
        return frozenset(crash.dead) if crash is not None else frozenset()

    def _alive_barrier(self) -> None:
        """Synchronize the live ranks.  Full-membership barriers
        deadlock forever once a rank died fail-stop; deaths only happen
        at collective-call boundaries, so every survivor reaching a
        teardown barrier sees the same dead set and interns the same
        shrunk communicator."""
        dead = self._crash_dead()
        if not dead:
            self.comm.barrier()
        else:
            AliveGroup(self.comm, dead, -2).barrier()

    def _require_open(self) -> None:
        if not self._open:
            raise CollectiveIOError(f"collective file {self.path!r} is closed")

    def _resolve_access(
        self, buf: np.ndarray, memtype: Optional[Datatype], count: int
    ) -> tuple[FlatType, int]:
        buf = np.asarray(buf)
        if buf.dtype != np.uint8 or buf.ndim != 1:
            raise CollectiveIOError("buffers must be 1-D numpy uint8 arrays")
        if count < 0:
            raise CollectiveIOError(f"count must be non-negative, got {count}")
        if memtype is None:
            # Whole buffer, contiguous.
            if count != 1:
                raise CollectiveIOError("count requires an explicit memtype")
            memflat = FlatType([0], [buf.size], buf.size) if buf.size else FlatType([], [], 0)
            if buf.size % self.view.etype.size != 0:
                raise CollectiveIOError(
                    f"access of {buf.size} bytes is not a whole number of etypes "
                    f"({self.view.etype.size} bytes)"
                )
            return memflat, buf.size
        memflat = memtype.flatten()
        total = memflat.size * count
        if count > 0 and memflat.size > 0:
            needed = (count - 1) * memflat.extent + memflat.span_hi
            if needed > buf.size:
                raise CollectiveIOError(
                    f"buffer of {buf.size} bytes too small for {count} x "
                    f"{memtype.name} (needs {needed})"
                )
        if total > 0 and total % self.view.etype.size != 0:
            raise CollectiveIOError(
                f"access of {total} bytes is not a whole number of etypes "
                f"({self.view.etype.size} bytes)"
            )
        # Tile the memory type to cover the full access.
        if count > 1:
            memflat = memflat.replicate(count)
        return memflat, total

    def _env(self) -> CollEnv:
        return CollEnv(
            ctx=self.ctx,
            comm=self.comm,
            cost=self.cost,
            hints=self.hints,
            adio=self.adio,
            view=self.view,
            stats=self._stats,
            pfr=self.pfr,
            plancache=self.plancache,
        )

    @property
    def _needs_realm_coherence(self) -> bool:
        return (
            self.hints["cache_mode"] == "incoherent"
            and not self.hints["persistent_file_realms"]
        )

    def _prologue(self, adio: AdioFile) -> None:
        if self._needs_realm_coherence:
            # Realms may have moved since the last call: drop cached
            # pages so reads cannot see bytes another aggregator owns now.
            adio.local.invalidate()

    def _epilogue_write(self, ctx: RankContext, adio: AdioFile) -> None:
        if self._needs_realm_coherence:
            # Coherence flushes hit the server too; retry them under the
            # same policy as the data path or a transient fault here
            # would kill an otherwise-survivable collective call.
            flushed = adio.retry.run(ctx, adio.local.sync)
            adio.local.invalidate()
            self._stats.coherence_flush_pages += flushed

    # -- collective operations ---------------------------------------------------
    def _run_body(
        self,
        ctx: RankContext,
        comm: Communicator,
        adio: AdioFile,
        view: FileView,
        buf8: np.ndarray,
        memflat: FlatType,
        total: int,
        start: int,
        *,
        write: bool,
        resume_call: Optional[int],
    ) -> None:
        """The one collective body: prologue, driver, epilogue.

        Blocking operations run it inline (``ctx``/``comm``/``adio``
        are the handle's own); nonblocking operations run it in an
        engine coroutine with the task's context, a communicator clone
        on the same interned queues, and the adio view charging the
        task's clock."""
        self._prologue(adio)
        env = CollEnv(
            ctx=ctx,
            comm=comm,
            cost=self.cost,
            hints=self.hints,
            adio=adio,
            view=view,
            stats=self._stats,
            pfr=self.pfr,
            plancache=self.plancache,
        )
        op_name = "write_all" if write else "read_all"
        t_begin = ctx.now
        with ctx.trace(op_name):
            if resume_call is not None:
                # Rejoin replay (docs/crash_recovery.md): the Nth
                # collective call of the replayed program is resumed
                # against the Nth call's epoch records.
                from repro.core.resume import resume_write

                rewritten, skipped = resume_write(
                    env, buf8, memflat, total, start,
                    call_index=resume_call, rank=self.resume_rank,
                )
                self.resume_rewritten += rewritten
                self.resume_skipped += skipped
            elif write:
                driver = write_all_old if self.hints["coll_impl"] == "old" else write_all_new
                driver(env, buf8, memflat, total, start)
            else:
                driver = read_all_old if self.hints["coll_impl"] == "old" else read_all_new
                driver(env, buf8, memflat, total, start)
        self._call_seconds.record(ctx.now - t_begin)
        if write:
            self._epilogue_write(ctx, adio)

    def _isubmit(
        self,
        buf: np.ndarray,
        memtype: Optional[Datatype],
        count: int,
        *,
        write: bool,
        data_lo: Optional[int] = None,
        sync: bool,
    ) -> Request:
        """Shared entry of all collective operations.

        ``data_lo`` is the starting data-stream byte; ``None`` means
        the individual file pointer.  ``sync=True`` runs the body
        inline and returns an already-complete request (the blocking
        operations are thin wrappers over this path); ``sync=False``
        spawns the body as an engine coroutine and returns a pending
        :class:`~repro.core.request.Request`.

        Access resolution and pointer motion happen *at submit* in
        both cases (MPI nonblocking semantics: the buffer extent and
        offset are fixed when the operation starts), except that the
        inline path defers the pointer advance until the body
        succeeds, preserving the blocking surface's exact error
        behaviour."""
        self._require_open()
        memflat, total = self._resolve_access(buf, memtype, count)
        use_pointer = data_lo is None
        start = self._pointer * self.view.etype.size if use_pointer else data_lo
        buf8 = np.asarray(buf, dtype=np.uint8)
        view = self.view
        resume_call: Optional[int] = None
        if self.resume_rank is not None:
            if not write:
                raise CollectiveIOError(
                    "rejoin replay sessions support collective writes only"
                )
            resume_call = self._resume_calls
            self._resume_calls += 1
        op_name = ("iwrite_all" if write else "iread_all") if not sync else (
            "write_all" if write else "read_all"
        )
        if sync:
            # A blocking collective is ordered after everything already
            # in flight on this rank — same rule real MPI imposes on
            # mixing split and blocking collectives on one handle.
            self._drain_async()
            self._run_body(
                self.ctx, self.comm, self.adio, view, buf8, memflat, total,
                start, write=write, resume_call=resume_call,
            )
            if use_pointer:
                self._pointer += total // self.view.etype.size
            return Request.completed(op=op_name)
        # Nonblocking: the pointer advances now (deterministically, in
        # program order), the collective runs as a coroutine chained
        # after this rank's previous async operation.
        if use_pointer:
            self._pointer += total // self.view.etype.size
        prev = self._async_tail
        comm_rank = self.comm.rank

        def body(tctx: RankContext) -> None:
            if prev is not None:
                try:
                    tctx.join(prev)
                except Exception:  # noqa: BLE001 - that op reports at its wait()
                    pass
                # RankCrashed (a BaseException) falls through: once an
                # earlier operation crashed this rank fail-stop, no
                # later operation of its may run.
            with tctx.trace(op_name):
                comm = Communicator(
                    tctx,
                    self.cost,
                    _comm_id=self.comm.comm_id,
                    _rank=self.comm.rank,
                    _members=self.comm.members,
                )
                self._run_body(
                    tctx, comm, self.adio.rebound(tctx), view, buf8, memflat,
                    total, start, write=write, resume_call=resume_call,
                )

        lane = self.ctx._sim.lane_for(
            ("async", id(self.ctx.shared), comm_rank),
            f"rank {comm_rank} async I/O",
        )
        handle = self.ctx.spawn(
            body, label=f"{op_name}@r{comm_rank}", lane=lane
        )
        self._async_tail = handle
        request = Request(self.ctx, handle, op=op_name)
        self._requests = [r for r in self._requests if not r.done]
        self._requests.append(request)
        return request

    def _drain_async(self) -> None:
        """Settle every outstanding nonblocking operation.

        Deferred errors stay parked on their requests (the caller may
        still ``wait()``/``exception()`` them); a fail-stop
        :class:`~repro.errors.RankCrashed` propagates immediately."""
        for request in self._requests:
            if not request.done:
                try:
                    request._settle()
                except RankCrashed:
                    self._requests = [r for r in self._requests if not r.done]
                    raise
        self._requests = [r for r in self._requests if not r.done]
        self._async_tail = None

    def outstanding(self) -> List[Request]:
        """The still-pending nonblocking requests, oldest first."""
        return [r for r in self._requests if not r.done]

    def write_all(
        self, buf: np.ndarray, memtype: Optional[Datatype] = None, count: int = 1
    ) -> None:
        """Collective write at the individual file pointer
        (MPI_File_write_all); the pointer advances past the data."""
        self._isubmit(buf, memtype, count, write=True, sync=True).wait()

    def read_all(
        self, buf: np.ndarray, memtype: Optional[Datatype] = None, count: int = 1
    ) -> None:
        """Collective read at the individual file pointer
        (MPI_File_read_all); the pointer advances past the data."""
        self._isubmit(buf, memtype, count, write=False, sync=True).wait()

    def write_at_all(
        self,
        offset_etypes: int,
        buf: np.ndarray,
        memtype: Optional[Datatype] = None,
        count: int = 1,
    ) -> None:
        """Collective write at an explicit offset (MPI_File_write_at_all).

        ``offset_etypes`` counts etypes into the view's accessible data
        stream.  Any offset is allowed (including mid-filetype); the
        individual file pointer does not move, per MPI."""
        if offset_etypes < 0:
            raise CollectiveIOError(f"offset must be non-negative, got {offset_etypes}")
        self._isubmit(
            buf, memtype, count, write=True,
            data_lo=offset_etypes * self.view.etype.size, sync=True,
        ).wait()

    def read_at_all(
        self,
        offset_etypes: int,
        buf: np.ndarray,
        memtype: Optional[Datatype] = None,
        count: int = 1,
    ) -> None:
        """Collective read at an explicit offset (MPI_File_read_at_all)."""
        if offset_etypes < 0:
            raise CollectiveIOError(f"offset must be non-negative, got {offset_etypes}")
        self._isubmit(
            buf, memtype, count, write=False,
            data_lo=offset_etypes * self.view.etype.size, sync=True,
        ).wait()

    # -- nonblocking (split) collective operations -------------------------------
    def iwrite_all(
        self, buf: np.ndarray, memtype: Optional[Datatype] = None, count: int = 1
    ) -> Request:
        """Nonblocking collective write (MPI_File_iwrite_all analogue).

        The access is resolved and the individual file pointer advances
        *now*; the two-phase collective itself runs as an engine
        coroutine overlapping this rank's subsequent work.  Complete it
        with :meth:`~repro.core.request.Request.wait` — typed failures
        (``DeadlineExceeded``, ``RankCrashed``, storage errors) are
        re-raised there, identical to the blocking path.  The caller
        must not touch ``buf`` until the request completes."""
        return self._isubmit(buf, memtype, count, write=True, sync=False)

    def iread_all(
        self, buf: np.ndarray, memtype: Optional[Datatype] = None, count: int = 1
    ) -> Request:
        """Nonblocking collective read; ``buf`` fills by completion."""
        return self._isubmit(buf, memtype, count, write=False, sync=False)

    def iwrite_at_all(
        self,
        offset_etypes: int,
        buf: np.ndarray,
        memtype: Optional[Datatype] = None,
        count: int = 1,
    ) -> Request:
        """Nonblocking collective write at an explicit offset."""
        if offset_etypes < 0:
            raise CollectiveIOError(f"offset must be non-negative, got {offset_etypes}")
        return self._isubmit(
            buf, memtype, count, write=True,
            data_lo=offset_etypes * self.view.etype.size, sync=False,
        )

    def iread_at_all(
        self,
        offset_etypes: int,
        buf: np.ndarray,
        memtype: Optional[Datatype] = None,
        count: int = 1,
    ) -> Request:
        """Nonblocking collective read at an explicit offset."""
        if offset_etypes < 0:
            raise CollectiveIOError(f"offset must be non-negative, got {offset_etypes}")
        return self._isubmit(
            buf, memtype, count, write=False,
            data_lo=offset_etypes * self.view.etype.size, sync=False,
        )

    # -- independent I/O ---------------------------------------------------------
    def write_ind(self, buf: np.ndarray, memtype: Optional[Datatype] = None, count: int = 1) -> None:
        """Independent write through the view (MPI_File_write): no
        cooperation with other ranks, straight through the independent
        I/O layer with the hinted method (§5.1's reused code path)."""
        self._independent_op(buf, memtype, count, write=True)

    def read_ind(self, buf: np.ndarray, memtype: Optional[Datatype] = None, count: int = 1) -> None:
        """Independent read through the view (MPI_File_read)."""
        self._independent_op(buf, memtype, count, write=False)

    def _independent_op(
        self, buf: np.ndarray, memtype: Optional[Datatype], count: int, *, write: bool
    ) -> None:
        from repro.datatypes.packing import gather_segments, scatter_segments
        from repro.datatypes.segments import data_to_file_segments
        from repro.io.selection import choose_method

        self._require_open()
        self._drain_async()
        memflat, total = self._resolve_access(buf, memtype, count)
        if total == 0:
            return
        buf = np.asarray(buf, dtype=np.uint8)
        start = self._pointer * self.view.etype.size
        batch = self.view.cursor(start + total, start).all_segments()
        # Rebase data offsets so they index the packed data stream.
        batch = type(batch)(
            batch.file_offsets,
            batch.lengths,
            batch.data_offsets - start,
            batch.pairs_evaluated,
            batch.tiles_skipped,
        )
        self.ctx.charge(batch.pairs_evaluated * self.cost.cpu_per_flat_pair)
        method = choose_method(self.hints, self.view.flat.extent, batch)
        self._stats.note_flush(method)
        mem_batch = data_to_file_segments(memflat, 0, 0, total)
        if write:
            # Gather the user data into data order; the file batch's
            # data_offsets already index that stream.
            data = gather_segments(buf, mem_batch)
            self.ctx.charge(total * self.cost.cpu_per_byte_touch)
            self.adio.write_strided(batch, data, method)
        else:
            data = self.adio.read_strided(batch, method)
            self.ctx.charge(total * self.cost.cpu_per_byte_touch)
            scatter_segments(buf, mem_batch, data[:total])
        self._pointer += total // self.view.etype.size

    # -- resize ---------------------------------------------------------------------
    def set_size(self, size: int) -> None:
        """Collective resize (MPI_File_set_size analogue).

        Every rank flushes its cached dirty data first — bytes past the
        cut are discarded server-side, not written back — then rank 0
        performs the single server resize and a barrier publishes it."""
        self._require_open()
        if size < 0:
            raise CollectiveIOError(f"file size must be non-negative, got {size}")
        self._drain_async()
        self.adio.retry.run(self.ctx, self.local.sync)
        self._alive_barrier()
        # The resizing rank is the first *survivor* — rank 0 may be dead.
        dead = self._crash_dead()
        committer = next(r for r in range(self.comm.size) if r not in dead)
        if self.comm.rank == committer:
            self.adio.retry.run(
                self.ctx,
                lambda: self.fs.resize(
                    self.ctx, self.local.client.client_id, self.path, size
                ),
            )
        self._alive_barrier()

    # -- lifecycle ------------------------------------------------------------------
    def sync(self) -> None:
        """Collective flush of client caches to the server."""
        self._require_open()
        self._drain_async()
        self.adio.retry.run(self.ctx, self.local.sync)
        self._alive_barrier()

    def close(self) -> None:
        """Collective close: flush, invalidate, synchronize.

        A rank that died fail-stop mid-collective still unwinds through
        its ``finally`` blocks before the engine reaps it; its close is
        a pure local teardown — a corpse's dirty cache dies with it
        (nothing may become durable after the crash point), and it
        cannot join the survivors' barrier it is dead in."""
        if not self._open:
            return
        self._publish_retry_budget()
        # Outstanding nonblocking operations must finish before the
        # handle goes away; their deferred errors stay on the requests.
        # This runs *before* the crash-dead check: a rank whose own
        # coroutine crashed it fail-stop learns of its death here (the
        # drain re-raises RankCrashed) instead of limping on as a
        # zombie past its close.
        self._drain_async()
        if self.comm.rank in self._crash_dead():
            self._open = False
            return
        # close() flushes dirty pages, which is a server write; give it
        # the same transient-fault protection as the data path.
        self.adio.retry.run(self.ctx, self.local.close)
        self._open = False
        self._alive_barrier()

    def _publish_retry_budget(self) -> None:
        """Surface the cross-operation retry budget in the registry so
        ``Session.summary()`` can report per-rank headroom."""
        budget = self.adio.retry.budget
        if budget is None:
            return
        self.registry.gauge("retry.budget.used", self.ctx.rank).set(budget.used)
        self.registry.gauge("retry.budget.remaining", self.ctx.rank).set(
            budget.remaining
        )

    def get_info(self) -> dict:
        """Effective hints (MPI_File_get_info analogue): every known key
        with its resolved value, explicit or default."""
        return {key: self.hints[key] for key in self.hints}

    @property
    def size(self) -> int:
        return self.local.size

    def __enter__(self) -> "CollectiveFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
