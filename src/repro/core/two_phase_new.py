"""The new flexible two-phase implementation (§5).

Write path, per collective call:

1. every rank computes its access span; the aggregate access region is
   an allreduce;
2. realms are assigned by the pluggable strategy (or taken from the
   file's persistent-realm state) — a pure function of AAR + hints, so
   every rank derives them without extra communication;
3. every client ships its **flattened filetype** (D pairs + header) to
   every aggregator; aggregators rebuild a scan cursor per client
   (§5.3's representation trade: O(D·A) metadata instead of O(M), paid
   back with O(M·A) pair evaluations — unless whole-tile skipping
   applies);
4. rounds: each aggregator walks its realm domain in collective-buffer
   sized windows.  Clients intersect their access with every
   aggregator's window (per-aggregator cursors, binary-heap progress
   tracking); aggregators intersect every client's filetype with their
   own window;
5. data moves via alltoallw or nonblocking exchange into the collective
   buffer, which is flushed through the independent I/O layer with a
   per-flush method choice (conditional data sieving et al.).

The read path runs the phases in the opposite order.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.aggregation import select_aggregators
from repro.core.env import CollEnv
from repro.core.exchange import exchange_data
from repro.core.plan import (
    access_histogram,
    compute_aar,
    concat_batches,
    mem_batch_for,
    merge_extents,
)
from repro.core.realms import FileRealm, RealmDomain, resolve_strategy
from repro.datatypes.flatten import FlatType
from repro.datatypes.packing import gather_segments, scatter_segments
from repro.datatypes.segments import FlatCursor, SegmentBatch
from repro.datatypes.serialize import decode_flat, encode_flat
from repro.errors import (
    AggregatorLost,
    CollectiveAborted,
    CollectiveIOError,
    RankCrashed,
)
from repro.core.pipeline import maybe_pipeline, task_env
from repro.faults.plan import FAULTS_KEY
from repro.io.selection import choose_method
from repro.liveness import LIVENESS_KEY, install_crash_state
from repro.mpi.agreement import AliveGroup, agree_dead_set
from repro.mpi.topology import resolve_topology

__all__ = ["write_all_new", "read_all_new"]

_TAG_META = (1 << 19) + 1  # library p2p range: below COLLECTIVE_TAG_BASE
_EMPTY64 = np.empty(0, dtype=np.int64)


class _Plan:
    """Per-call planning state shared by the read and write paths.

    ``total_bytes`` is the number of data bytes carried; ``data_lo`` is
    the access's starting position in the view's data stream (the
    individual file pointer / explicit offset), so the touched stream
    range is [data_lo, data_lo + total_bytes)."""

    def __init__(
        self, env: CollEnv, memflat: FlatType, total_bytes: int, data_lo: int = 0
    ) -> None:
        self.env = env
        self.memflat = memflat
        self.total_bytes = total_bytes
        self.data_lo = data_lo
        self.data_hi = data_lo + total_bytes
        ctx, comm, hints = env.ctx, env.comm, env.hints
        view = env.view

        # Resilience state: which collective call this is (a pure
        # function of per-rank program order, so every rank agrees
        # without communication), which phase boundaries have passed,
        # and which aggregators have already been failed over.
        self._injector = ctx.shared.get(FAULTS_KEY)
        self._call_index = (
            self._injector.begin_collective(comm.rank)
            if self._injector is not None
            else 0
        )
        self._boundary = 0
        self._dead: set[int] = set()
        # Liveness state (suspect-driven failover): ranks stalled by a
        # ``rank_stall`` fault become *suspect* and are completed
        # around; ``skip`` feeds the exchange layer's exclusion.
        self._liveness = ctx.shared.get(LIVENESS_KEY)
        self._suspects: set[int] = set()
        self.i_am_suspect = False
        self._suspect_tails: Optional[List[RealmDomain]] = None
        #: Virtual seconds this rank spent servicing its aggregator
        #: role this call (routing + flushing); feeds the balanced
        #: strategy's straggler-aware weights on the *next* call.
        self.service_seconds = 0.0
        # Fail-stop crash machinery (docs/crash_recovery.md), armed only
        # when the plan carries ``rank_crash`` events so the fault-free
        # path is untouched.  ``group`` is the survivors' communicator
        # view: every *control* collective of the planning phase (AAR,
        # histogram, bounds, extent) runs on it, so planning a new call
        # never blocks waiting on a corpse from an earlier one.
        self._crash = None
        self._crash_pending: Optional[str] = None
        self._known_dead: set[int] = set()
        self.group: Optional[AliveGroup] = None
        if self._injector is not None and self._injector.enabled("rank_crash"):
            self._crash = install_crash_state(ctx.shared)
            self._known_dead = set(self._crash.dead)
            self.group = AliveGroup(comm, frozenset(self._known_dead), -1)
            quorum = hints["crash_quorum"]
            if self.group.size < quorum:
                raise CollectiveAborted(
                    -1, self.group.size, quorum, tuple(sorted(self._known_dead))
                )
        self.skip: frozenset = frozenset(self._known_dead)
        coll = self._coll

        lo, hi = view.access_span(self.data_hi, data_lo)
        self.aar_lo, self.aar_hi = compute_aar(coll, lo, hi, total_bytes > 0)
        # Node topology for this call: leader-aware aggregator placement
        # and the two_layer exchange's grouping.  None on flat clusters,
        # so the default path is untouched.
        self.topology = resolve_topology(hints, env.cost)
        self.aggs = select_aggregators(
            comm.size, hints["cb_nodes"], hints["cb_layout"], topology=self.topology
        )
        if self._known_dead:
            # Ranks that died fail-stop in earlier calls never regain
            # the aggregator role; if every chosen aggregator is a
            # corpse, re-aggregate elastically over the survivors.
            alive_aggs = [a for a in self.aggs if a not in self._known_dead]
            if alive_aggs:
                self.aggs = alive_aggs
            else:
                live = [x for x in range(comm.size) if x not in self._known_dead]
                self.aggs = live[: max(1, len(self.aggs))]
        if self._injector is not None:
            # Aggregators that died in *earlier* collective calls never
            # regain the role: drop them before realm assignment so
            # survivors partition the AAR among themselves.
            gone = self._injector.dead_aggregators(self._call_index, -1)
            if gone:
                alive = [a for a in self.aggs if a not in gone]
                if len(alive) != len(self.aggs):
                    if not hints["failover"]:
                        raise AggregatorLost(min(set(self.aggs) & gone))
                    if not alive:
                        raise AggregatorLost(self.aggs[0])
                    self.aggs = alive
        self.my_agg_index = self.aggs.index(comm.rank) if comm.rank in self.aggs else -1
        self.realms = self._assign_realms()
        self.domains: List[RealmDomain] = [
            r.domain(self.aar_lo, self.aar_hi) for r in self.realms
        ]
        # Assigned (pre-clip) per-aggregator realm bytes: what the
        # strategy decided, before request bounds shrink the iteration
        # space.  Tests use this to see balanced-strategy boundary
        # movement between calls.
        env.stats.last_realm_bytes = [int(d.total_bytes) for d in self.domains]
        cb = hints["cb_buffer_size"]
        self.cb = cb
        # The conditional-sieving metric: the largest filetype extent in
        # play (identical on all ranks for uniform views).
        my_ext = view.flat.extent if total_bytes > 0 else 0
        self.ft_extent = coll.allreduce(my_ext, op=max)

        # Client-side per-aggregator cursors over my own access.
        self.client_cursors: Optional[List[FlatCursor]] = None
        if total_bytes > 0:
            self.client_cursors = [
                view.cursor(self.data_hi, data_lo) for _ in self.aggs
            ]

        # Access-description exchange: flattened filetypes to aggregators.
        self.agg_cursors: Optional[List[Optional[FlatCursor]]] = None
        self._exchange_access_descriptions()

        # Clip every aggregator's iteration space to the bounds of the
        # requests it actually received (ROMIO's st_loc/end_loc): sparse
        # clusters must not inflate the round count with empty windows.
        # One allgather keeps clients and aggregators agreeing on the
        # window geometry.
        bounds = coll.allgather(self._request_bounds())
        for ai, a in enumerate(self.aggs):
            b = bounds[a]
            if b is None:
                self.domains[ai] = self.domains[ai].clip(0, 0)
            else:
                self.domains[ai] = self.domains[ai].clip(b[0], b[1])
        self.nrounds = max((d.nrounds(cb) for d in self.domains), default=0)

    # -- control-collective carrier -------------------------------------------
    @property
    def _coll(self):
        """The alive group when fail-stop crashes are armed, the full
        communicator otherwise — every planning-phase collective rides
        on this so corpses are never waited on."""
        return self.group if self.group is not None else self.env.comm

    # -- realms ---------------------------------------------------------------
    def _assign_realms(self) -> List[FileRealm]:
        env = self.env
        hints = env.hints
        naggs = len(self.aggs)
        if hints["persistent_file_realms"]:
            if env.pfr is None:
                raise CollectiveIOError("persistent_file_realms requires PFR state")
            return env.pfr.realms_for(
                self.aar_lo, self.aar_hi, naggs, hints["realm_alignment"]
            )
        strategy = resolve_strategy(hints)
        histogram = None
        weights = None
        if strategy.needs_histogram:
            local = access_histogram(
                (lambda: env.view.cursor(self.data_hi, self.data_lo))
                if self.total_bytes > 0
                else (lambda: _NullCursor()),
                self.aar_lo,
                self.aar_hi,
            )
            histogram = self._coll.allreduce(local, op=lambda a, b: a + b)
            # Straggler-aware rebalancing: feed each aggregator's
            # observed service time from the *previous* collective call
            # back as an inverse weight, so a slow aggregator's realm
            # shrinks.  One allgather, paid only on the balanced path.
            times = self._coll.allgather(env.stats.last_agg_service_seconds)
            per_agg = [float(times[a]) for a in self.aggs]
            if any(t > 0.0 for t in per_agg):
                known = [1.0 / t for t in per_agg if t > 0.0]
                fresh = sum(known) / len(known)  # no history = average share
                weights = [1.0 / t if t > 0.0 else fresh for t in per_agg]
        return strategy.assign(
            self.aar_lo, self.aar_hi, naggs, histogram=histogram, weights=weights
        )

    # -- metadata exchange -------------------------------------------------------
    def _exchange_access_descriptions(self) -> None:
        env = self.env
        comm, ctx, cost = env.comm, env.ctx, env.cost
        flat = env.view.flat
        payload = (
            (encode_flat(flat), env.view.disp, self.data_hi, self.data_lo)
            if self.total_bytes > 0
            else None
        )
        # Flattening cost on the client: one pass over the D pairs.
        if payload is not None:
            ctx.charge(flat.num_segments * cost.cpu_per_flat_pair)
            env.stats.meta_bytes += len(payload[0]) * sum(
                1 for a in self.aggs if a != comm.rank
            )
        for a in self.aggs:
            if a != comm.rank:
                comm.isend(payload, a, _TAG_META)
        if self.my_agg_index < 0:
            return
        cursors: List[Optional[FlatCursor]] = [None] * comm.size
        for c in range(comm.size):
            if c in self._known_dead:
                continue
            got = payload if c == comm.rank else comm.recv(c, _TAG_META)
            if got is None:
                continue
            blob, disp, d_hi, d_lo = got
            client_flat = decode_flat(blob)
            # Aggregator-side processing of the received description.
            ctx.charge(client_flat.num_segments * cost.cpu_per_flat_pair)
            cursors[c] = FlatCursor(client_flat, disp, d_hi, d_lo)
        self.agg_cursors = cursors

    def _request_bounds(self) -> Optional[tuple[int, int]]:
        """[min, max) file offsets of the requests inside my realm, or
        None when I am not an aggregator / received nothing.

        Span-based (each client's first..last byte intersected with my
        domain intervals): cheap, and exact at the outer edges, which is
        all the round clipping needs."""
        if self.my_agg_index < 0 or self.agg_cursors is None:
            return None
        dom = self.domains[self.my_agg_index]
        if dom.starts.size == 0:
            return None
        lo: Optional[int] = None
        hi: Optional[int] = None
        for cur in self.agg_cursors:
            if cur is None or cur.tiles == 0:
                continue
            c_lo, c_hi = cur.first_byte, cur.last_byte
            if c_hi <= c_lo:
                continue
            # First domain byte inside [c_lo, c_hi).
            i = int(np.searchsorted(dom.ends, c_lo, side="right"))
            if i < dom.starts.size and dom.starts[i] < c_hi:
                cand = max(int(dom.starts[i]), c_lo)
                lo = cand if lo is None else min(lo, cand)
            # Last domain byte inside [c_lo, c_hi).
            j = int(np.searchsorted(dom.starts, c_hi, side="left")) - 1
            if j >= 0 and dom.ends[j] > c_lo:
                cand = min(int(dom.ends[j]), c_hi)
                hi = cand if hi is None else max(hi, cand)
        if lo is None or hi is None or hi <= lo:
            return None
        return (lo, hi)

    # -- per-round routing ------------------------------------------------------
    def _charge_batch(self, batch: SegmentBatch, *, agg_side: bool) -> None:
        env = self.env
        cost = env.cost
        env.ctx.charge(
            batch.pairs_evaluated * cost.cpu_per_flat_pair
            + batch.tiles_skipped * cost.cpu_tile_skip
        )
        if agg_side:
            env.stats.agg_pairs += batch.pairs_evaluated
            env.stats.agg_tiles_skipped += batch.tiles_skipped
        else:
            env.stats.client_pairs += batch.pairs_evaluated
            env.stats.client_tiles_skipped += batch.tiles_skipped

    def _intersect_window(
        self, cursor: FlatCursor, window, *, agg_side: bool
    ) -> SegmentBatch:
        parts = []
        pairs = 0
        tiles = 0
        for w_lo, w_hi in window.intervals:
            b = cursor.intersect(w_lo, w_hi)
            pairs += b.pairs_evaluated
            tiles += b.tiles_skipped
            if not b.empty:
                parts.append(b)
        merged = concat_batches(parts)
        merged.pairs_evaluated = pairs
        merged.tiles_skipped = tiles
        self._charge_batch(merged, agg_side=agg_side)
        return merged

    def client_send_plan(self, r: int) -> List[Optional[SegmentBatch]]:
        """What my data contributes to each aggregator's round-r window,
        as memory-address batches."""
        env = self.env
        comm, cost, hints = env.comm, env.cost, env.hints
        plan: List[Optional[SegmentBatch]] = [None] * comm.size
        if self.client_cursors is None:
            return plan
        use_heap = hints["use_heap"]
        naggs = len(self.aggs)
        heap_cost = cost.cpu_heap_op * (1 + math.log2(naggs)) if use_heap else 0.0
        for ai, a in enumerate(self.aggs):
            window = self.domains[ai].window(r, self.cb)
            if window.empty:
                continue
            if use_heap:
                env.ctx.charge(heap_cost)
            batch = self._intersect_window(
                self.client_cursors[ai], window, agg_side=False
            )
            if batch.empty:
                continue
            plan[a] = mem_batch_for(
                self.memflat, batch.data_offsets - self.data_lo, batch.lengths
            )
        if not use_heap:
            # Without progress tracking the client rescans its access
            # from the start for every aggregator on the next round.
            for cur in self.client_cursors:
                cur.reset()
        return plan

    def agg_recv_layout(self, r: int):
        """(window, per-client buffer batches, merged write extents) for
        my aggregator role this round, or (None, ..., ...)."""
        env = self.env
        comm = env.comm
        if self.my_agg_index < 0 or self.agg_cursors is None:
            return None, [None] * comm.size, (None, None)
        window = self.domains[self.my_agg_index].window(r, self.cb)
        if window.empty:
            return None, [None] * comm.size, (None, None)
        per_client: List[Optional[SegmentBatch]] = [None] * comm.size
        ext_offs = []
        ext_lens = []
        for c in range(comm.size):
            cur = self.agg_cursors[c]
            if cur is None:
                continue
            batch = self._intersect_window(cur, window, agg_side=True)
            if batch.empty:
                continue
            bufpos = window.to_buffer(batch.file_offsets)
            # data_offsets keep file order (== the client's data order
            # for a monotonic view), which is the exchange's order key.
            per_client[c] = SegmentBatch(bufpos, batch.lengths, batch.file_offsets)
            ext_offs.append(batch.file_offsets)
            ext_lens.append(batch.lengths)
        merged = merge_extents(ext_offs, ext_lens)
        return window, per_client, merged

    # -- aggregator failover ------------------------------------------------
    def maybe_failover(self, r: int) -> bool:
        """Phase-boundary fault check, called before each round.

        ``r`` is the next round of the current epoch (== rounds
        completed since the last rebalance, so ``r * cb`` linear bytes
        of every domain are already flushed).  Detection needs no
        communication: both fault classes evaluated here are pure
        functions of the per-rank collective-call ordinal and a
        monotonic boundary counter, which every rank tracks
        identically:

        * ``agg_crash`` — permanent loss of an aggregator role;
        * ``rank_stall`` — a transient stall.  The stall itself always
          fires (the fault model does not read the hints); with the
          ``liveness`` hint armed, the stalled rank is additionally
          declared *suspect* and completed around — its aggregator
          realm merges into survivors, its already-exchanged access
          description is dropped from the aggregation, and its own
          remaining access becomes independent tail I/O
          (:meth:`run_suspect_tail`).

        Returns True when realms were rebalanced — the caller must
        restart its round counter at zero (``nrounds`` has been
        recomputed for the new domains), or, when ``i_am_suspect``,
        leave the round loop and run the tail."""
        inj = self._injector
        if inj is None:
            return False
        crash_on = inj.enabled("agg_crash")
        stall_on = inj.enabled("rank_stall")
        fail_stop_on = self._crash is not None
        if not crash_on and not stall_on and not fail_stop_on:
            return False
        env = self.env
        rank = env.comm.rank
        liv = self._liveness
        boundary = self._boundary
        self._boundary += 1

        stalls = inj.stalled_ranks(self._call_index, boundary) if stall_on else {}
        if rank in stalls:
            delay = stalls[rank]
            with env.ctx.trace("fault:stall", round=r):
                env.ctx.advance(delay)
            inj.note_stall(delay)
            if liv is not None:
                # Renew my own budget: the deadline guards against
                # waiting on *others*, not against having been slow.
                liv.begin_call(rank, env.ctx.now)

        dead = (
            inj.dead_aggregators(self._call_index, boundary)
            if crash_on
            else frozenset()
        )
        newly_dead = [a for a in self.aggs if a in dead and a not in self._dead]
        new_suspects: List[int] = []
        if stalls and liv is not None and liv.failover:
            new_suspects = sorted(
                s for s in stalls if s not in self._suspects and s not in dead
            )

        # Fail-stop crashes (docs/crash_recovery.md).  Detection is the
        # same pure plan evaluation as above; what follows differs per
        # role.  The *victim* records its death and dies at its site;
        # *survivors* run one epoch-agreement round, shrink the working
        # group, and re-carve the schedule without the corpses.
        crash_newly: List[int] = []
        if fail_stop_on:
            crashed = inj.crashed_ranks(self._call_index, boundary)
            crash_newly = sorted(c for c in crashed if c not in self._known_dead)
        reporter = 0
        if fail_stop_on and self._known_dead:
            # Once fail-stop deaths exist, "rank 0 reports" stops being
            # safe — the designated reporter is the first survivor.
            reporter = min(
                x for x in range(env.comm.size) if x not in self._known_dead
            )
        if crash_newly and rank in crash_newly:
            event = inj.crash_event_for(rank, self._call_index)
            site = event.site if event is not None else "boundary"
            if self._crash.mark_dead(rank, self._call_index, boundary):
                inj.note_crash()
            self._known_dead.add(rank)
            self.skip = frozenset(self.skip | {rank})
            if site == "boundary":
                raise RankCrashed(rank, site)
            # Die deeper in the round: keep walking the round
            # structure fully skipped (``dying``) until the site.
            self._crash_pending = site
            return False
        if fail_stop_on and self._known_dead and rank == reporter:
            # Plan events whose every target is already dead fire into
            # the void; count them (satellite of docs/crash_recovery.md)
            # *before* folding this boundary's fresh deaths in.
            sup = inj.suppressed_for(
                frozenset(self._known_dead), self._call_index, boundary
            )
            if sup:
                inj.note_suppressed(sup)
        if crash_newly:
            proposal = frozenset(self._known_dead | set(crash_newly))
            with env.ctx.trace("crash:agree", epoch=boundary):
                self.group = agree_dead_set(env.comm, proposal, boundary)
            for c in crash_newly:
                if self._crash.mark_dead(c, self._call_index, boundary):
                    inj.note_crash()
            self._known_dead.update(crash_newly)
            reporter = self.group.first_alive()
            if rank == reporter:
                inj.note_agreement()
            quorum = env.hints["crash_quorum"]
            if self.group.size < quorum:
                if rank == reporter:
                    inj.note_aborted()
                raise CollectiveAborted(
                    boundary,
                    self.group.size,
                    quorum,
                    tuple(sorted(self._known_dead)),
                )
            # Survivors stop expecting the corpses' data and stop
            # exchanging with them.
            if self.agg_cursors is not None:
                for c in crash_newly:
                    self.agg_cursors[c] = None
            self.skip = frozenset(self._suspects | self._known_dead)
        crash_lost = [a for a in self.aggs if a in crash_newly]

        if not newly_dead and not new_suspects and not crash_lost:
            # Pure-client deaths leave the window geometry untouched:
            # survivors carry on at the same round, minus the corpses.
            return False
        if newly_dead and not env.hints["failover"]:
            raise AggregatorLost(newly_dead[0])
        with env.ctx.trace("tp:failover", round=r):
            lost_ranks = set(newly_dead) | set(new_suspects) | set(crash_lost)
            gone = (
                self._dead | set(dead) | self._suspects | lost_ranks
                | self._known_dead
            )
            survivors = [ai for ai, a in enumerate(self.aggs) if a not in gone]
            if not survivors:
                raise AggregatorLost(min(lost_ranks))
            consumed = r * self.cb
            # Everyone's remaining work is its linear tail; a lost
            # aggregator's tail is carved evenly across the survivors.
            # Every aggregator already holds every client's filetype cursor
            # (the metadata exchange is all-to-all-aggregators), so
            # adopting file ranges needs no new communication.
            tails = [d.slice_linear(consumed, d.total_bytes) for d in self.domains]
            if rank in new_suspects:
                # The union of these tails is exactly the un-flushed file
                # region; my remaining access inside it is mine to carry.
                self.i_am_suspect = True
                self._suspect_tails = list(tails)
            shares: List[List[RealmDomain]] = [[] for _ in self.aggs]
            for ai in survivors:
                shares[ai].append(tails[ai])
            nsurv = len(survivors)
            dead_set = set(newly_dead) | set(crash_lost)
            for ai, a in enumerate(self.aggs):
                if a not in lost_ranks:
                    continue
                tail = tails[ai]
                total = tail.total_bytes
                if env.comm.rank == reporter and a in dead_set:
                    inj.note_failover(a, total)
                chunk = -(-total // nsurv) if total else 0
                for k, si in enumerate(survivors):
                    shares[si].append(tail.slice_linear(k * chunk, (k + 1) * chunk))
            empty = RealmDomain(_EMPTY64, _EMPTY64)
            surv = set(survivors)
            self.domains = [
                RealmDomain.merge(shares[ai]) if ai in surv else empty
                for ai in range(len(self.aggs))
            ]
            self._dead.update(newly_dead)
            self._dead.update(crash_lost)
            for s in new_suspects:
                self._suspects.add(s)
                if liv is not None and liv.mark_suspect(s):
                    inj.note_suspect()
                # Survivors stop expecting the suspect's data: its access
                # description simply drops out of the aggregation.
                if self.agg_cursors is not None:
                    self.agg_cursors[s] = None
            self.skip = frozenset(self._suspects | self._known_dead)
            # Adopted intervals may precede a cursor's current position:
            # every monotonic scan restarts from the top.
            if self.client_cursors is not None:
                for cur in self.client_cursors:
                    cur.reset()
            if self.agg_cursors is not None:
                for cur in self.agg_cursors:
                    if cur is not None:
                        cur.reset()
            self.nrounds = max((d.nrounds(self.cb) for d in self.domains), default=0)
        return True

    # -- fail-stop crash sites and epoch commits ------------------------------
    @property
    def dying(self) -> bool:
        """True once this rank's fail-stop death is pending: it keeps
        walking the round structure fully skipped (no exchange legs, no
        flush) until its designated site raises."""
        return self._crash_pending is not None

    def crash_point(self, site: str) -> None:
        """Raise the pending death when its site (``exchange`` |
        ``flush``) is reached."""
        if self._crash_pending == site:
            raise RankCrashed(self.env.comm.rank, site)

    def commit_epoch(self, r: int) -> None:
        """Make round ``r`` durable and cut its epoch commit record.

        Only runs with fail-stop crashes armed — the fault-free path
        pays nothing.  Durability first: each live aggregator flushes
        its client cache, so the round's bytes are on the server before
        any record claims them (journaled writes skip the flush — their
        durability point is the transaction commit, and their records
        stage inside the transaction until then).  Then one recorder —
        the first live aggregator — appends the record: the round's
        file intervals plus the ranks whose data entered the round.
        :meth:`Session.rejoin <repro.obs.session.Session.rejoin>`
        replays these records to rewrite only uncommitted bytes."""
        if self._crash is None:
            return
        env = self.env
        rank = env.comm.rank
        journaled = env.hints["journal_writes"]
        excluded = self._known_dead | self._suspects
        if not journaled and self.my_agg_index >= 0 and rank not in excluded:
            t0 = env.ctx.now
            env.adio.retry.run(env.ctx, env.adio.local.sync)
            self.service_seconds += env.ctx.now - t0
        recorder = next((a for a in self.aggs if a not in excluded), None)
        if recorder != rank:
            return
        intervals: List[tuple] = []
        for d in self.domains:
            w = d.window(r, self.cb)
            if not w.empty:
                intervals.extend(w.intervals)
        if not intervals:
            return
        local = env.adio.local
        local.fs.journal_record_epoch(
            local.path,
            call_index=self._call_index,
            epoch=self._boundary - 1,
            participants=[c for c in range(env.comm.size) if c not in excluded],
            intervals=intervals,
            journaled=journaled,
        )

    # -- suspect tail I/O ----------------------------------------------------
    def run_suspect_tail(self, buf: np.ndarray, *, write: bool) -> None:
        """Independent I/O for my remaining access after being declared
        suspect.

        The collective completes around a suspect: aggregators dropped
        my access description, so the bytes they will no longer move
        are mine to carry through the independent layer (on the write
        path this runs inside the call's journal, so crash consistency
        is preserved).  The remaining file region is the union of every
        domain's un-flushed linear tail, frozen at the boundary where I
        was suspected."""
        env = self.env
        if self._suspect_tails is None or self.total_bytes == 0:
            return
        remaining = RealmDomain.merge(self._suspect_tails)
        cur = env.view.cursor(self.data_hi, self.data_lo)
        parts: List[SegmentBatch] = []
        pairs = 0
        tiles = 0
        with env.ctx.trace("tp:suspect-tail"):
            for lo, hi in zip(remaining.starts.tolist(), remaining.ends.tolist()):
                b = cur.intersect(int(lo), int(hi))
                pairs += b.pairs_evaluated
                tiles += b.tiles_skipped
                if not b.empty:
                    parts.append(b)
            env.ctx.charge(
                pairs * env.cost.cpu_per_flat_pair + tiles * env.cost.cpu_tile_skip
            )
            env.stats.client_pairs += pairs
            env.stats.client_tiles_skipped += tiles
            batch = concat_batches(parts)
            if batch.empty:
                return
            # File batch with *dense* data offsets: the strided layer
            # expects data_offsets to index the packed stream it is
            # handed, and gather/scatter produce exactly that stream.
            dense = np.zeros(batch.lengths.size, dtype=np.int64)
            np.cumsum(batch.lengths[:-1], out=dense[1:])
            fbatch = SegmentBatch(batch.file_offsets, batch.lengths.copy(), dense)
            membatch = mem_batch_for(
                self.memflat, batch.data_offsets - self.data_lo, batch.lengths
            )
            method = choose_method(env.hints, self.ft_extent, fbatch)
            env.stats.note_flush(method)
            total = int(batch.total_bytes)
            env.ctx.charge(total * env.cost.cpu_per_byte_touch)
            if write:
                env.adio.write_strided(fbatch, gather_segments(buf, membatch), method)
            else:
                data = env.adio.read_strided(fbatch, method)
                scatter_segments(buf, membatch, data[:total])


class _NullCursor:
    """Cursor stand-in for ranks with no data (histogram path)."""

    def intersect(self, lo: int, hi: int) -> SegmentBatch:
        return SegmentBatch.empty_batch()


def _exchange_mode(env: CollEnv) -> str:
    """Effective exchange backend: ``node_aggregation`` forces
    two_layer regardless of the ``exchange`` hint."""
    if env.hints["node_aggregation"]:
        return "two_layer"
    return env.hints["exchange"]


def _journal_commit(env: CollEnv, plan: _Plan) -> None:
    """Commit the collective call's shadow transaction.

    Barrier — one committer publishes — barrier: the first barrier
    guarantees every aggregator's journal writes have landed, the
    second that no rank returns from the collective before the commit
    is visible.  The committer is the first *surviving* aggregator, so
    a crash-with-failover still commits; a crash with failover off
    raises :class:`~repro.errors.AggregatorLost` before reaching here
    and the transaction is simply never committed — the file stays at
    its pre-collective image (the crash-consistency contract)."""
    comm = env.comm
    local = env.adio.local
    # Teardown barriers run over the survivors: a corpse would deadlock
    # the full-membership barrier forever.
    sync = plan.group if plan.group is not None else comm
    excluded = plan._dead | plan._suspects | plan._known_dead
    sync.barrier()
    alive = [a for a in plan.aggs if a not in excluded]
    committer = alive[0] if alive else plan.aggs[0]
    if comm.rank == committer:
        env.adio.retry.run(
            env.ctx,
            lambda: local.fs.txn_commit(env.ctx, local.client.client_id, local.path),
        )
    sync.barrier()


def _flush_merged(env: CollEnv, ft_extent: int, window, merged, cbuf: np.ndarray) -> None:
    offs, lens = merged
    if offs is None or offs.size == 0:
        return
    bufpos = window.to_buffer(offs)
    wbatch = SegmentBatch(offs, lens.copy(), bufpos)
    method = choose_method(env.hints, ft_extent, wbatch)
    env.stats.note_flush(method)
    env.adio.write_strided(wbatch, cbuf, method)


def _fill_merged(env: CollEnv, ft_extent: int, window, merged) -> Optional[np.ndarray]:
    offs, lens = merged
    cbuf = np.zeros(window.total_bytes, dtype=np.uint8)
    if offs is None or offs.size == 0:
        return cbuf
    bufpos = window.to_buffer(offs)
    rbatch = SegmentBatch(offs, lens.copy(), bufpos)
    method = choose_method(env.hints, ft_extent, rbatch)
    env.stats.note_flush(method)
    data = env.adio.read_strided(rbatch, method)
    cbuf[: data.size] = data
    return cbuf


def _flush_task(env: CollEnv, ft_extent: int, window, merged, cbuf, r: int, svc: list):
    """Coroutine body flushing round ``r``'s collective buffer.

    Runs on the task's own clock via a context-rebound env; ``svc``
    accumulates the aggregator service seconds the serialized path
    would have charged inline."""

    def run(tctx) -> None:
        fenv = task_env(env, tctx)
        with tctx.trace("round:flush", round=r):
            t0 = tctx.now
            _flush_merged(fenv, ft_extent, window, merged, cbuf)
            svc.append(tctx.now - t0)

    return run


def _fill_task(env: CollEnv, ft_extent: int, window, merged, r: int, svc: list):
    """Coroutine body pre-filling round ``r``'s collective buffer from
    the file (the read-path prefetch); returns the buffer at join."""

    def run(tctx):
        fenv = task_env(env, tctx)
        with tctx.trace("round:fill", round=r):
            t0 = tctx.now
            cbuf = _fill_merged(fenv, ft_extent, window, merged)
            svc.append(tctx.now - t0)
            return cbuf

    return run


def _replay(env: CollEnv, entry, buf: np.ndarray, *, write: bool) -> None:
    """Replay a cached plan: the data path of the cold drivers with the
    planning phase elided entirely — no flattening, no AAR allreduce,
    no metadata exchange, no window intersection (zero offset/length
    pairs evaluated).  Per round: exchange along the recorded schedule,
    then flush (write) or pre-fill (read) the recorded merged extents.

    The replay only ever runs for a plan the cache agreed on
    collectively, and never while a realm-mutating fault kind is armed
    (PlanCache bypasses those), so the recorded schedule is exact."""
    comm, cost = env.comm, env.cost
    mode = _exchange_mode(env)
    # Data-path fault kinds (delays, flips, OST outages) key their event
    # windows on the collective-call ordinal; keep it advancing even
    # though no planning happens.
    inj = env.ctx.shared.get(FAULTS_KEY)
    call_index = inj.begin_collective(comm.rank) if inj is not None else 0
    liv = env.ctx.shared.get(LIVENESS_KEY)
    rank = comm.rank
    service = 0.0
    env.stats.last_realm_bytes = list(entry.realm_bytes)
    # Replays pipeline too: the recorded schedule is immutable, so the
    # flush/fill of round r overlaps neighbouring exchanges exactly as
    # on the cold path.
    pipe = maybe_pipeline(env)
    svc: List[float] = []

    def run_rounds() -> None:
        nonlocal service
        try:
            if write:
                for r, rp in enumerate(entry.rounds):
                    env.stats.rounds += 1
                    cbuf = (
                        np.zeros(rp.window.total_bytes, dtype=np.uint8)
                        if rp.window is not None
                        else None
                    )
                    if liv is not None:
                        liv.set_phase(rank, f"exchange[{r}]")
                    with env.ctx.trace(
                        "round:exchange" if pipe is not None else "tp:exchange",
                        round=r,
                    ):
                        env.stats.bytes_exchanged += exchange_data(
                            comm, cost, mode, buf, rp.send, cbuf, rp.recv,
                            skip=frozenset(), topology=entry.topology,
                        )
                    if pipe is not None:
                        if rp.window is not None and cbuf is not None:
                            pipe.submit(
                                _flush_task(
                                    env, entry.ft_extent, rp.window, rp.merged,
                                    cbuf, r, svc,
                                ),
                                round_no=r,
                                stage="round:flush",
                            )
                    else:
                        if liv is not None:
                            liv.set_phase(rank, f"io[{r}]")
                        with env.ctx.trace("tp:io", round=r):
                            if rp.window is not None and cbuf is not None:
                                t0 = env.ctx.now
                                _flush_merged(
                                    env, entry.ft_extent, rp.window, rp.merged, cbuf
                                )
                                service += env.ctx.now - t0
                if pipe is not None:
                    pipe.drain()
            elif pipe is None:
                for r, rp in enumerate(entry.rounds):
                    env.stats.rounds += 1
                    if liv is not None:
                        liv.set_phase(rank, f"io[{r}]")
                    with env.ctx.trace("tp:io", round=r):
                        if rp.window is not None:
                            t0 = env.ctx.now
                            cbuf = _fill_merged(
                                env, entry.ft_extent, rp.window, rp.merged
                            )
                            service += env.ctx.now - t0
                        else:
                            cbuf = None
                    if liv is not None:
                        liv.set_phase(rank, f"exchange[{r}]")
                    with env.ctx.trace("tp:exchange", round=r):
                        # Aggregator -> client, exactly like read_all_new:
                        # recorded receive layouts become send batches.
                        env.stats.bytes_exchanged += exchange_data(
                            comm, cost, mode, cbuf, rp.recv, buf, rp.send,
                            skip=frozenset(), topology=entry.topology,
                        )
            else:
                # Pipelined replay read: prefetch fills ahead of the
                # exchange, mirroring read_all_new's pipelined loop.
                routed: List[tuple] = []
                next_r = 0

                def route_one(rr: int) -> None:
                    rp = entry.rounds[rr]
                    env.stats.rounds += 1
                    handle = None
                    if rp.window is not None:
                        handle = pipe.submit(
                            _fill_task(
                                env, entry.ft_extent, rp.window, rp.merged, rr, svc
                            ),
                            round_no=rr,
                            stage="round:fill",
                        )
                    routed.append((rr, rp, handle))

                def prefetch() -> None:
                    nonlocal next_r
                    while next_r < len(entry.rounds) and (
                        not routed
                        or (pipe.free_slots > 0 and len(routed) <= pipe.depth)
                    ):
                        route_one(next_r)
                        next_r += 1

                prefetch()
                while routed:
                    rr, rp, handle = routed.pop(0)
                    cbuf = pipe.join(handle) if handle is not None else None
                    prefetch()
                    if liv is not None:
                        liv.set_phase(rank, f"exchange[{rr}]")
                    with env.ctx.trace("round:exchange", round=rr):
                        env.stats.bytes_exchanged += exchange_data(
                            comm, cost, mode, cbuf, rp.recv, buf, rp.send,
                            skip=frozenset(), topology=entry.topology,
                        )
                pipe.drain()
        except BaseException:
            if pipe is not None:
                pipe.drain(suppress=True)
            raise
        finally:
            service += sum(svc)
            svc.clear()

    if liv is not None:
        liv.begin_call(rank, env.ctx.now)
    try:
        if write and env.hints["journal_writes"]:
            local = env.adio.local
            local.fs.txn_begin(local.path, call_index)
            with env.adio.journaled():
                run_rounds()
            # Barrier — committer publishes — barrier, as in
            # _journal_commit; with no realm-mutating faults armed the
            # committer is simply the first recorded aggregator.
            comm.barrier()
            committer = entry.aggs[0] if entry.aggs else 0
            if comm.rank == committer:
                env.adio.retry.run(
                    env.ctx,
                    lambda: local.fs.txn_commit(
                        env.ctx, local.client.client_id, local.path
                    ),
                )
            comm.barrier()
        else:
            run_rounds()
    finally:
        if liv is not None:
            liv.end_call(rank)
    if write:
        env.stats.collective_writes += 1
    else:
        env.stats.collective_reads += 1
    env.stats.agg_service_seconds += service
    env.stats.last_agg_service_seconds = service


def write_all_new(
    env: CollEnv,
    buf: np.ndarray,
    memflat: FlatType,
    total_bytes: int,
    data_lo: int = 0,
) -> None:
    """Collective write of ``total_bytes`` from ``buf`` (laid out by
    ``memflat``) through the rank's file view, starting at data-stream
    position ``data_lo`` (the individual file pointer)."""
    cache = env.plancache
    if cache is not None:
        entry = cache.begin(env, memflat, total_bytes, data_lo, "new")
        if entry is not None:
            with env.ctx.trace("plan:replay", key=entry.key_id, impl="new"):
                _replay(env, entry, buf, write=True)
            return
    rec = cache.recording("new") if cache is not None else None
    with env.ctx.trace("tp:plan"):
        plan = _Plan(env, memflat, total_bytes, data_lo)
    comm, cost = env.comm, env.cost
    mode = _exchange_mode(env)
    liv = plan._liveness
    rank = comm.rank
    if liv is not None:
        liv.begin_call(rank, env.ctx.now)
    # Round pipelining (docs/async_io.md): when armed, flushes run as
    # engine coroutines so the exchange of round r+1 overlaps the flush
    # of round r.  The pipeline stands down (None) whenever a
    # realm-mutating fault kind is armed, so the failover / suspect /
    # epoch machinery below only ever runs on the serialized path.
    pipe = maybe_pipeline(env)
    svc: List[float] = []

    def run_rounds() -> None:
        try:
            r = 0
            while r < plan.nrounds:
                if plan.maybe_failover(r):
                    if rec is not None:
                        rec.mark_dirty()
                    if plan.i_am_suspect:
                        plan.run_suspect_tail(buf, write=True)
                        return
                    r = 0
                    continue
                env.stats.rounds += 1
                if liv is not None:
                    liv.set_phase(rank, f"route[{r}]")
                with env.ctx.trace("tp:route", round=r):
                    send_plan = plan.client_send_plan(r)
                    t0 = env.ctx.now
                    window, recv_plan, merged = plan.agg_recv_layout(r)
                    if window is not None:
                        plan.service_seconds += env.ctx.now - t0
                    cbuf = (
                        np.zeros(window.total_bytes, dtype=np.uint8)
                        if window is not None
                        else None
                    )
                if rec is not None:
                    rec.add_round(send_plan, window, recv_plan, merged)
                if liv is not None:
                    liv.set_phase(rank, f"exchange[{r}]")
                with env.ctx.trace(
                    "round:exchange" if pipe is not None else "tp:exchange", round=r
                ):
                    plan.crash_point("exchange")
                    if not plan.dying:
                        env.stats.bytes_exchanged += exchange_data(
                            comm, cost, mode, buf, send_plan, cbuf, recv_plan,
                            skip=plan.skip, topology=plan.topology,
                        )
                if pipe is not None:
                    if window is not None and cbuf is not None:
                        pipe.submit(
                            _flush_task(
                                env, plan.ft_extent, window, merged, cbuf, r, svc
                            ),
                            round_no=r,
                            stage="round:flush",
                        )
                else:
                    if liv is not None:
                        liv.set_phase(rank, f"io[{r}]")
                    with env.ctx.trace("tp:io", round=r):
                        plan.crash_point("flush")
                        if window is not None and cbuf is not None:
                            t0 = env.ctx.now
                            _flush_merged(env, plan.ft_extent, window, merged, cbuf)
                            plan.service_seconds += env.ctx.now - t0
                plan.commit_epoch(r)
                r += 1
            if pipe is not None:
                pipe.drain()
        except BaseException:
            if pipe is not None:
                # Never leave a flush coroutine running past its call;
                # its own error must not mask the primary exception.
                pipe.drain(suppress=True)
            raise
        finally:
            plan.service_seconds += sum(svc)
            svc.clear()

    try:
        if env.hints["journal_writes"]:
            # Crash-consistent path: aggregator flushes land in a shadow
            # transaction keyed by the collective-call ordinal (identical
            # on every rank without communication; a leftover transaction
            # under a *different* ordinal is a crashed call's journal and
            # is discarded by txn_begin).
            local = env.adio.local
            local.fs.txn_begin(local.path, plan._call_index)
            with env.adio.journaled():
                run_rounds()
            _journal_commit(env, plan)
        else:
            run_rounds()
    finally:
        if liv is not None:
            liv.end_call(rank)
    if rec is not None:
        with env.ctx.trace("plan:store", key=rec.key_id, impl="new"):
            cache.commit(
                rec,
                nrounds=plan.nrounds,
                aggs=plan.aggs,
                ft_extent=plan.ft_extent,
                topology=plan.topology,
                realm_bytes=env.stats.last_realm_bytes,
            )
    env.stats.collective_writes += 1
    env.stats.agg_service_seconds += plan.service_seconds
    env.stats.last_agg_service_seconds = plan.service_seconds


def read_all_new(
    env: CollEnv,
    buf: np.ndarray,
    memflat: FlatType,
    total_bytes: int,
    data_lo: int = 0,
) -> None:
    """Collective read into ``buf`` through the rank's file view,
    starting at data-stream position ``data_lo``."""
    cache = env.plancache
    if cache is not None:
        entry = cache.begin(env, memflat, total_bytes, data_lo, "new")
        if entry is not None:
            with env.ctx.trace("plan:replay", key=entry.key_id, impl="new"):
                _replay(env, entry, buf, write=False)
            return
    rec = cache.recording("new") if cache is not None else None
    with env.ctx.trace("tp:plan"):
        plan = _Plan(env, memflat, total_bytes, data_lo)
    comm, cost = env.comm, env.cost
    mode = _exchange_mode(env)
    liv = plan._liveness
    rank = comm.rank
    if liv is not None:
        liv.begin_call(rank, env.ctx.now)
    pipe = maybe_pipeline(env)
    svc: List[float] = []
    try:
        if pipe is None:
            r = 0
            while r < plan.nrounds:
                if plan.maybe_failover(r):
                    if rec is not None:
                        rec.mark_dirty()
                    if plan.i_am_suspect:
                        plan.run_suspect_tail(buf, write=False)
                        break
                    r = 0
                    continue
                env.stats.rounds += 1
                if liv is not None:
                    liv.set_phase(rank, f"route[{r}]")
                with env.ctx.trace("tp:route", round=r):
                    # On reads, data flows aggregator -> client: the aggregator's
                    # per-client layouts become SEND batches, the client's
                    # memory batches become RECV batches.
                    recv_plan = plan.client_send_plan(r)
                    t0 = env.ctx.now
                    window, send_plan, merged = plan.agg_recv_layout(r)
                    if window is not None:
                        plan.service_seconds += env.ctx.now - t0
                if rec is not None:
                    # Recorded direction-independently: client memory batches
                    # as ``send``, aggregator layouts as ``recv`` (the write
                    # orientation); a replay re-swaps for reads.
                    rec.add_round(recv_plan, window, send_plan, merged)
                if liv is not None:
                    liv.set_phase(rank, f"io[{r}]")
                with env.ctx.trace("tp:io", round=r):
                    plan.crash_point("flush")
                    if window is not None and not plan.dying:
                        t0 = env.ctx.now
                        cbuf = _fill_merged(env, plan.ft_extent, window, merged)
                        plan.service_seconds += env.ctx.now - t0
                    else:
                        cbuf = None
                if liv is not None:
                    liv.set_phase(rank, f"exchange[{r}]")
                with env.ctx.trace("tp:exchange", round=r):
                    plan.crash_point("exchange")
                    if not plan.dying:
                        env.stats.bytes_exchanged += exchange_data(
                            comm, cost, mode, cbuf, send_plan, buf, recv_plan,
                            skip=plan.skip, topology=plan.topology,
                        )
                r += 1
        else:
            # Pipelined read: route rounds ahead and launch their fills
            # as coroutines, so the fill of round r+1 prefetches from the
            # file while round r's exchange distributes data.  The
            # pipeline never coexists with the failover machinery
            # (maybe_pipeline stands down when those kinds are armed).
            routed: List[tuple] = []
            next_r = 0

            def route_one(rr: int) -> None:
                env.stats.rounds += 1
                if liv is not None:
                    liv.set_phase(rank, f"route[{rr}]")
                with env.ctx.trace("tp:route", round=rr):
                    recv_plan = plan.client_send_plan(rr)
                    t0 = env.ctx.now
                    window, send_plan, merged = plan.agg_recv_layout(rr)
                    if window is not None:
                        plan.service_seconds += env.ctx.now - t0
                if rec is not None:
                    rec.add_round(recv_plan, window, send_plan, merged)
                handle = None
                if window is not None:
                    handle = pipe.submit(
                        _fill_task(env, plan.ft_extent, window, merged, rr, svc),
                        round_no=rr,
                        stage="round:fill",
                    )
                routed.append((rr, send_plan, recv_plan, handle))

            def prefetch() -> None:
                nonlocal next_r
                while next_r < plan.nrounds and (
                    not routed
                    or (pipe.free_slots > 0 and len(routed) <= pipe.depth)
                ):
                    route_one(next_r)
                    next_r += 1

            try:
                prefetch()
                while routed:
                    rr, send_plan, recv_plan, handle = routed.pop(0)
                    cbuf = pipe.join(handle) if handle is not None else None
                    # A slot just freed: launch the next fill before the
                    # exchange blocks on remote ranks.
                    prefetch()
                    if liv is not None:
                        liv.set_phase(rank, f"exchange[{rr}]")
                    with env.ctx.trace("round:exchange", round=rr):
                        env.stats.bytes_exchanged += exchange_data(
                            comm, cost, mode, cbuf, send_plan, buf, recv_plan,
                            skip=plan.skip, topology=plan.topology,
                        )
                pipe.drain()
            except BaseException:
                pipe.drain(suppress=True)
                raise
    finally:
        plan.service_seconds += sum(svc)
        if liv is not None:
            liv.end_call(rank)
    if rec is not None:
        with env.ctx.trace("plan:store", key=rec.key_id, impl="new"):
            cache.commit(
                rec,
                nrounds=plan.nrounds,
                aggs=plan.aggs,
                ft_extent=plan.ft_extent,
                topology=plan.topology,
                realm_bytes=env.stats.last_realm_bytes,
            )
    env.stats.collective_reads += 1
    env.stats.agg_service_seconds += plan.service_seconds
    env.stats.last_agg_service_seconds = plan.service_seconds
