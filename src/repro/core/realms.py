"""Datatype-described file realms and assignment strategies (§5.2).

A :class:`FileRealm` is (flattened datatype, displacement), optionally
tiling forever — exactly the generalization the paper builds: realms
are no longer assumed identical or even contiguous, and deciding which
realm owns a byte is a search, not an O(1) division.

Strategies:

* :class:`EvenPartition` — ROMIO's default: the aggregate access region
  divided evenly among aggregators (contiguous realms);
* :class:`AlignedPartition` — interior boundaries snapped down to an
  alignment grid (file-system stripe or page), the §6.4 "file realm
  alignment" hint.  Snapping makes realms unequal — the imbalance the
  paper observed at small aggregator counts;
* :class:`BalancedPartition` — boundaries chosen from an access
  histogram so each aggregator handles roughly equal *data* rather than
  equal file span (the load-balancing opportunity §5.2 and §7 call
  out);
* cyclic persistent realms for PFR are built by
  :func:`make_cyclic_realms` and managed by :mod:`repro.core.pfr`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.datatypes.flatten import FlatType
from repro.datatypes.segments import FlatCursor
from repro.errors import CollectiveIOError
from repro.mpi.hints import Hints

__all__ = [
    "FileRealm",
    "RealmDomain",
    "Window",
    "RealmStrategy",
    "EvenPartition",
    "AlignedPartition",
    "BalancedPartition",
    "make_contiguous_realms",
    "make_cyclic_realms",
    "resolve_strategy",
]

_EMPTY = np.empty(0, dtype=np.int64)


class Window:
    """One round's slice of an aggregator's domain, linearized.

    The collective buffer for the round is the concatenation of the
    window's intervals; :meth:`to_buffer` maps absolute file offsets to
    buffer positions."""

    __slots__ = ("starts", "ends", "prefix")

    def __init__(self, starts: np.ndarray, ends: np.ndarray) -> None:
        self.starts = starts
        self.ends = ends
        sizes = ends - starts
        prefix = np.zeros(starts.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=prefix[1:])
        self.prefix = prefix

    @property
    def total_bytes(self) -> int:
        return int(self.prefix[-1])

    @property
    def empty(self) -> bool:
        return self.total_bytes == 0

    @property
    def intervals(self) -> list[tuple[int, int]]:
        return list(zip(self.starts.tolist(), self.ends.tolist()))

    def to_buffer(self, file_offsets: np.ndarray) -> np.ndarray:
        """Buffer position of each (window-contained) file offset."""
        if file_offsets.size == 0:
            return _EMPTY
        idx = np.searchsorted(self.starts, file_offsets, side="right") - 1
        if (idx < 0).any():
            raise CollectiveIOError("file offset below the window")
        pos = self.prefix[idx] + (file_offsets - self.starts[idx])
        if (file_offsets >= self.ends[idx]).any():
            raise CollectiveIOError("file offset outside the window intervals")
        return pos


class RealmDomain:
    """An aggregator's assigned intervals within the aggregate access
    region, with a linear (concatenated-bytes) coordinate for round
    slicing."""

    __slots__ = ("starts", "ends", "prefix")

    def __init__(self, starts: np.ndarray, ends: np.ndarray) -> None:
        keep = ends > starts
        self.starts = starts[keep]
        self.ends = ends[keep]
        prefix = np.zeros(self.starts.size + 1, dtype=np.int64)
        np.cumsum(self.ends - self.starts, out=prefix[1:])
        self.prefix = prefix

    @property
    def total_bytes(self) -> int:
        return int(self.prefix[-1])

    def nrounds(self, cb: int) -> int:
        if cb <= 0:
            raise CollectiveIOError(f"collective buffer size must be positive, got {cb}")
        return -(-self.total_bytes // cb)

    def clip(self, lo: int, hi: int) -> "RealmDomain":
        """Intersect the domain with file range [lo, hi).

        Used to shrink an aggregator's iteration space to the bounds of
        the requests it actually received (ROMIO's st_loc/end_loc): a
        sparse access far away must not inflate the round count with
        empty windows."""
        if hi <= lo or self.starts.size == 0:
            return RealmDomain(_EMPTY, _EMPTY)
        starts = np.maximum(self.starts, lo)
        ends = np.minimum(self.ends, hi)
        return RealmDomain(starts, ends)

    def window(self, r: int, cb: int) -> Window:
        """Intervals covering linear bytes [r*cb, (r+1)*cb)."""
        lo = r * cb
        hi = min((r + 1) * cb, self.total_bytes)
        if hi <= lo:
            return Window(_EMPTY, _EMPTY)
        starts, ends = self._linear_slice(lo, hi)
        return Window(starts, ends)

    def slice_linear(self, lo: int, hi: int) -> "RealmDomain":
        """Sub-domain covering linear bytes [lo, hi).

        The failover path uses this to carve a dead aggregator's
        *remaining* work (its linear tail) into per-survivor shares."""
        lo = max(lo, 0)
        hi = min(hi, self.total_bytes)
        if hi <= lo:
            return RealmDomain(_EMPTY, _EMPTY)
        starts, ends = self._linear_slice(lo, hi)
        return RealmDomain(starts, ends)

    def _linear_slice(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """Interval arrays for linear bytes [lo, hi); caller guarantees
        0 <= lo < hi <= total_bytes."""
        i0 = int(np.searchsorted(self.prefix, lo, side="right")) - 1
        i1 = int(np.searchsorted(self.prefix, hi, side="left"))
        starts = self.starts[i0:i1].copy()
        ends = self.ends[i0:i1].copy()
        starts[0] += lo - int(self.prefix[i0])
        ends[-1] -= int(self.prefix[i1]) - hi
        return starts, ends

    @staticmethod
    def merge(domains: Sequence["RealmDomain"]) -> "RealmDomain":
        """Union of pairwise-disjoint domains, ordered by file offset."""
        parts = [d for d in domains if d.starts.size]
        if not parts:
            return RealmDomain(_EMPTY, _EMPTY)
        starts = np.concatenate([d.starts for d in parts])
        ends = np.concatenate([d.ends for d in parts])
        order = np.argsort(starts, kind="stable")
        return RealmDomain(starts[order], ends[order])


class FileRealm:
    """A realm: flattened datatype tiled from ``disp``.

    ``tiles=None`` means the realm pattern repeats forever (persistent
    cyclic realms); a bounded realm covers exactly ``tiles`` instances.
    """

    __slots__ = ("flat", "disp", "tiles")

    def __init__(self, flat: FlatType, disp: int, tiles: Optional[int] = None) -> None:
        if disp < 0:
            raise CollectiveIOError(f"realm displacement must be non-negative, got {disp}")
        if not flat.is_monotonic:
            raise CollectiveIOError("realm datatypes must be monotonic")
        if tiles is not None and tiles < 0:
            raise CollectiveIOError(f"realm tile count must be non-negative, got {tiles}")
        self.flat = flat
        self.disp = int(disp)
        self.tiles = tiles

    @classmethod
    def interval(cls, lo: int, hi: int) -> "FileRealm":
        """A contiguous realm covering [lo, hi) (possibly empty)."""
        if hi < lo:
            raise CollectiveIOError(f"invalid realm interval [{lo}, {hi})")
        size = hi - lo
        if size == 0:
            return cls(FlatType([], [], 0), max(lo, 0), tiles=0)
        return cls(FlatType([0], [size], size), lo, tiles=1)

    def domain(self, lo: int, hi: int) -> RealmDomain:
        """This realm's intervals clipped to [lo, hi)."""
        if hi <= lo or self.flat.size == 0 or self.tiles == 0:
            return RealmDomain(_EMPTY, _EMPTY)
        if self.tiles is not None:
            total = self.tiles * self.flat.size
        else:
            # Unbounded tiling: enough tiles to pass hi.
            if self.flat.extent <= 0:
                raise CollectiveIOError("unbounded realms need a positive extent")
            span = max(hi - self.disp, 0)
            total = (span // self.flat.extent + 2) * self.flat.size
        if total == 0:
            return RealmDomain(_EMPTY, _EMPTY)
        batch = FlatCursor(self.flat, self.disp, total).intersect(lo, hi)
        return RealmDomain(batch.file_offsets, batch.file_offsets + batch.lengths)

    def describe(self) -> tuple:
        """Hashable identity used to detect realm changes across calls."""
        key = self.flat
        return (key.offsets.tobytes(), key.lengths.tobytes(), key.extent, self.disp, self.tiles)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FileRealm) and self.describe() == other.describe()

    def __hash__(self) -> int:
        return hash(self.describe())


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------

def make_contiguous_realms(boundaries: Sequence[int]) -> List[FileRealm]:
    """Realms from a non-decreasing boundary list b0..bA."""
    bounds = list(boundaries)
    if any(b1 < b0 for b0, b1 in zip(bounds, bounds[1:])):
        raise CollectiveIOError(f"realm boundaries must be non-decreasing: {bounds}")
    return [FileRealm.interval(lo, hi) for lo, hi in zip(bounds, bounds[1:])]


def make_cyclic_realms(naggs: int, block: int, anchor: int = 0) -> List[FileRealm]:
    """Block-cyclic realms: aggregator i owns blocks of ``block`` bytes
    at ``anchor + i*block`` with period ``naggs*block``, forever.

    These are genuinely datatype-described, non-contiguous realms — the
    construction PFRs use to cover the whole file from byte 0."""
    if naggs <= 0 or block <= 0:
        raise CollectiveIOError("cyclic realms need positive naggs and block")
    period = naggs * block
    flat = FlatType(np.array([0], dtype=np.int64), np.array([block], dtype=np.int64), period)
    return [FileRealm(flat, anchor + i * block, tiles=None) for i in range(naggs)]


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

class RealmStrategy:
    """Maps an aggregate access region to one realm per aggregator."""

    name = "abstract"
    #: True when :meth:`assign` wants an access histogram.
    needs_histogram = False

    def assign(
        self,
        aar_lo: int,
        aar_hi: int,
        naggs: int,
        histogram: Optional[np.ndarray] = None,
        weights: Optional[Sequence[float]] = None,
    ) -> List[FileRealm]:
        """One realm per aggregator covering [aar_lo, aar_hi).

        ``weights`` (one non-negative value per aggregator) scales each
        aggregator's *share* of the data — the straggler-aware
        rebalancing feed: a slow aggregator gets a small weight and
        therefore a small realm.  Strategies that ignore load simply
        ignore it."""
        raise NotImplementedError


class EvenPartition(RealmStrategy):
    """ROMIO's default: equal spans of the aggregate access region."""

    name = "even"

    def assign(self, aar_lo, aar_hi, naggs, histogram=None, weights=None):
        span = max(aar_hi - aar_lo, 0)
        chunk = -(-span // naggs) if span else 0
        bounds = [min(aar_lo + i * chunk, aar_hi) for i in range(naggs)] + [aar_hi]
        return make_contiguous_realms(bounds)


class AlignedPartition(RealmStrategy):
    """Even partition with interior boundaries snapped down to a grid.

    Snapping to the file-system stripe (or page) keeps every realm's
    server traffic inside exclusive lock granules; the cost is realm
    imbalance of up to one alignment unit per boundary."""

    name = "aligned"

    def __init__(self, alignment: int) -> None:
        if alignment <= 0:
            raise CollectiveIOError(f"alignment must be positive, got {alignment}")
        self.alignment = alignment

    def assign(self, aar_lo, aar_hi, naggs, histogram=None, weights=None):
        span = max(aar_hi - aar_lo, 0)
        chunk = -(-span // naggs) if span else 0
        a = self.alignment
        bounds = [aar_lo]
        for i in range(1, naggs):
            raw = aar_lo + i * chunk
            snapped = (raw // a) * a
            bounds.append(min(max(snapped, bounds[-1]), aar_hi))
        bounds.append(aar_hi)
        return make_contiguous_realms(bounds)


class BalancedPartition(RealmStrategy):
    """Boundaries at equal cumulative *data* from an access histogram.

    The histogram is bytes-accessed per equal-width bin across the
    aggregate access region (the driver computes and allreduces it).
    This is the aggregator load balancing the paper names as the
    obvious datatype-realm payoff.  ``weights`` tilts the shares: with
    per-aggregator service-time feedback (straggler-aware rebalancing)
    a slow aggregator's weight shrinks and its boundary moves in."""

    name = "balanced"
    needs_histogram = True

    def __init__(self, alignment: int = 0) -> None:
        if alignment < 0:
            raise CollectiveIOError("alignment must be non-negative")
        self.alignment = alignment

    @staticmethod
    def _shares(naggs: int, weights: Optional[Sequence[float]]) -> List[float]:
        """Per-aggregator fraction of the data, normalized to sum 1."""
        if weights is None:
            return [1.0 / naggs] * naggs
        w = [max(float(x), 0.0) for x in weights]
        if len(w) != naggs:
            raise CollectiveIOError(
                f"balanced weights need {naggs} entries, got {len(w)}"
            )
        total = sum(w)
        if total <= 0:
            return [1.0 / naggs] * naggs
        return [x / total for x in w]

    def assign(self, aar_lo, aar_hi, naggs, histogram=None, weights=None):
        shares = self._shares(naggs, weights)
        span = aar_hi - aar_lo
        if histogram is None or histogram.sum() == 0:
            if weights is None:
                return EvenPartition().assign(aar_lo, aar_hi, naggs)
            # No histogram yet: split the file span itself by weight.
            bounds = [aar_lo]
            acc = 0.0
            for i in range(1, naggs):
                acc += shares[i - 1]
                raw = aar_lo + int(round(span * acc))
                if self.alignment:
                    raw = (raw // self.alignment) * self.alignment
                bounds.append(min(max(raw, bounds[-1]), aar_hi))
            bounds.append(aar_hi)
            return make_contiguous_realms(bounds)
        nbins = histogram.size
        cum = np.concatenate([[0], np.cumsum(histogram)])
        total = cum[-1]
        bounds = [aar_lo]
        acc = 0.0
        for i in range(1, naggs):
            acc += shares[i - 1]
            target = total * acc
            b = int(np.searchsorted(cum, target, side="left"))
            raw = aar_lo + min(b, nbins) * span // nbins
            if self.alignment:
                raw = (raw // self.alignment) * self.alignment
            bounds.append(min(max(int(raw), bounds[-1]), aar_hi))
        bounds.append(aar_hi)
        return make_contiguous_realms(bounds)


def resolve_strategy(hints: Hints) -> RealmStrategy:
    """Build the realm strategy named by the hints (PFR wrapping is the
    file handle's job — it owns the cross-call state)."""
    name = hints["realm_strategy"]
    align = hints["realm_alignment"]
    if name == "even":
        return AlignedPartition(align) if align else EvenPartition()
    if name == "aligned":
        if not align:
            raise CollectiveIOError(
                "realm_strategy=aligned requires a non-zero realm_alignment hint"
            )
        return AlignedPartition(align)
    if name == "balanced":
        return BalancedPartition(align)
    raise CollectiveIOError(f"unknown realm strategy {name!r}")  # pragma: no cover
