"""Rejoin-time resumable collectives (docs/crash_recovery.md).

A rank killed fail-stop mid-collective left two durable artifacts
behind: the file bytes of every round the survivors committed with it
as a participant, and the per-epoch commit records the aggregators cut
into the write journal (:meth:`SimFileSystem.journal_record_epoch`).
``Session.rejoin`` restarts the rank in a one-process replay
simulation; when the replayed program reaches the collective write it
died in, :func:`resume_write` takes over instead of the two-phase
driver:

1. replay the epoch log and collect the committed intervals of every
   record for this call that lists the rank as a participant;
2. subtract them from the rank's own access — what remains is exactly
   the data the survivors completed *without* it;
3. rewrite only that remainder through the independent strided layer.

Committed rounds are never rewritten — that is the resume contract the
benchmarks verify (resume rewrites strictly fewer bytes than a restart
from scratch at every crash epoch > 0), and byte-identity with an
uninterrupted run is what the differential tests check.

:class:`ResumeComm` is the communicator stand-in for the replay: it
keeps the original rank/size coordinates so plans and views resolve
identically, but every collective is the one-process identity — the
replay never blocks on ranks that are not there.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from repro.core.env import CollEnv
from repro.core.plan import mem_batch_for, subtract_intervals
from repro.datatypes.packing import gather_segments
from repro.datatypes.segments import SegmentBatch
from repro.io.selection import choose_method

__all__ = ["ResumeComm", "resume_write"]


class ResumeComm:
    """One-process communicator facade for a rejoined rank.

    Presents the *original* ``rank`` and ``size`` so file views, realm
    math, and anything keyed on rank coordinates resolve exactly as in
    the crashed run, while every collective degenerates to the
    single-process identity."""

    def __init__(self, ctx, cost, rank: int, size: int) -> None:
        self.ctx = ctx
        self.cost = cost
        self.rank = rank
        self.size = size
        self.comm_id = f"resume:{rank}"
        self.members: Tuple[int, ...] = tuple(range(size))

    # -- collectives: single-process identities ---------------------------
    def barrier(self) -> None:
        return None

    def allreduce(self, value: Any, op: Optional[Callable] = None) -> Any:
        return value

    def allgather(self, value: Any) -> List[Any]:
        out: List[Any] = [None] * self.size
        out[self.rank] = value
        return out

    def bcast(self, value: Any, root: int = 0) -> Any:
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResumeComm rank={self.rank}/{self.size}>"


def committed_intervals(fs, path: str, call_index: int, rank: int) -> List[tuple]:
    """File intervals durably committed for ``rank`` in call
    ``call_index``, straight from the epoch log."""
    out: List[tuple] = []
    for rec in fs.journal_replay(path):
        if rec["call_index"] != call_index:
            continue
        if rank not in rec["participants"]:
            continue
        out.extend(rec["intervals"])
    return out


def resume_write(
    env: CollEnv,
    buf: np.ndarray,
    memflat,
    total_bytes: int,
    data_lo: int,
    *,
    call_index: int,
    rank: int,
) -> Tuple[int, int]:
    """Resume one collective write for a rejoined rank.

    Returns ``(rewritten, skipped)`` byte counts: what actually went
    back through the independent layer versus what the epoch records
    proved already durable."""
    if total_bytes == 0:
        return 0, 0
    local = env.adio.local
    committed = committed_intervals(local.fs, local.path, call_index, rank)
    cursor = env.view.cursor(data_lo + total_bytes, data_lo)
    batch = cursor.all_segments()
    env.ctx.charge(batch.pairs_evaluated * env.cost.cpu_per_flat_pair)
    env.stats.client_pairs += batch.pairs_evaluated
    total = 0 if batch.empty else int(batch.total_bytes)
    with env.ctx.trace("resume:write", call=call_index):
        missing = subtract_intervals(batch, committed)
        remaining = 0 if missing.empty else int(missing.total_bytes)
        skipped = total - remaining
        if remaining == 0:
            return 0, skipped
        # File batch with *dense* data offsets: the strided layer
        # expects data_offsets to index the packed stream it is handed.
        dense = np.zeros(missing.lengths.size, dtype=np.int64)
        np.cumsum(missing.lengths[:-1], out=dense[1:])
        fbatch = SegmentBatch(missing.file_offsets, missing.lengths.copy(), dense)
        membatch = mem_batch_for(
            memflat, missing.data_offsets - data_lo, missing.lengths
        )
        method = choose_method(env.hints, env.view.flat.extent, fbatch)
        env.stats.note_flush(method)
        env.ctx.charge(remaining * env.cost.cpu_per_byte_touch)
        env.adio.write_strided(fbatch, gather_segments(buf, membatch), method)
    return remaining, skipped
