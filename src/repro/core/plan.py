"""Shared planning helpers for both two-phase implementations."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.datatypes.flatten import FlatType
from repro.datatypes.segments import SegmentBatch, data_to_file_segments
from repro.mpi.comm import Communicator

__all__ = [
    "compute_aar",
    "mem_batch_for",
    "merge_extents",
    "concat_batches",
    "clip_to_range",
    "subtract_intervals",
    "access_histogram",
]

_EMPTY = np.empty(0, dtype=np.int64)
_INF = np.iinfo(np.int64).max


def compute_aar(
    comm: Communicator, lo: int, hi: int, has_data: bool
) -> Tuple[int, int]:
    """Allreduce the aggregate access region across the communicator.

    Ranks without data contribute the identity.  Returns (lo, hi);
    (0, 0) when nobody has data."""
    local = (lo, hi) if has_data else (_INF, -1)
    g_lo, g_hi = comm.allreduce(
        local, op=lambda a, b: (min(a[0], b[0]), max(a[1], b[1]))
    )
    if g_hi < 0:
        return (0, 0)
    return (int(g_lo), int(g_hi))


def mem_batch_for(
    memflat: FlatType, data_offsets: np.ndarray, lengths: np.ndarray
) -> SegmentBatch:
    """Memory-address segments carrying the given data-stream ranges.

    ``data_offsets`` must be ascending and disjoint (they come from a
    monotonic file view).  The returned batch's ``file_offsets`` are
    addresses into the user buffer; ``data_offsets`` keep the global
    stream positions as ordering keys."""
    if data_offsets.size == 0:
        return SegmentBatch.empty_batch()
    if memflat.is_contiguous:
        # Identity mapping: buffer address == stream offset.
        return SegmentBatch(data_offsets.copy(), lengths.copy(), data_offsets.copy())
    # Merge adjacent stream ranges so the expensive mapping call runs
    # once per *run*, not once per segment (a realm's worth of data is
    # usually one contiguous stream run).
    ends = data_offsets + lengths
    new_run = np.empty(data_offsets.size, dtype=bool)
    new_run[0] = True
    np.not_equal(data_offsets[1:], ends[:-1], out=new_run[1:])
    run_starts = data_offsets[new_run]
    run_ids = np.cumsum(new_run) - 1
    run_lens = np.zeros(run_starts.size, dtype=np.int64)
    np.add.at(run_lens, run_ids, lengths)
    parts = [
        data_to_file_segments(memflat, 0, int(lo), int(lo + ln))
        for lo, ln in zip(run_starts.tolist(), run_lens.tolist())
    ]
    return concat_batches(parts)


def concat_batches(parts: Sequence[SegmentBatch]) -> SegmentBatch:
    """Concatenate batches (summing their cost counters)."""
    parts = [p for p in parts if not p.empty]
    if not parts:
        return SegmentBatch.empty_batch()
    if len(parts) == 1:
        return parts[0]
    return SegmentBatch(
        np.concatenate([p.file_offsets for p in parts]),
        np.concatenate([p.lengths for p in parts]),
        np.concatenate([p.data_offsets for p in parts]),
        pairs_evaluated=sum(p.pairs_evaluated for p in parts),
        tiles_skipped=sum(p.tiles_skipped for p in parts),
    )


def merge_extents(
    offset_arrays: Sequence[np.ndarray], length_arrays: Sequence[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Union of extents: sorted by offset, adjacent/overlapping merged."""
    if not offset_arrays:
        return _EMPTY, _EMPTY
    offs = np.concatenate(list(offset_arrays))
    lens = np.concatenate(list(length_arrays))
    if offs.size == 0:
        return _EMPTY, _EMPTY
    order = np.argsort(offs, kind="stable")
    offs = offs[order]
    ends = offs + lens[order]
    # Merge runs where the next extent starts at or before the running end.
    run_end = np.maximum.accumulate(ends)
    new_run = np.empty(offs.size, dtype=bool)
    new_run[0] = True
    np.greater(offs[1:], run_end[:-1], out=new_run[1:])
    run_ids = np.cumsum(new_run) - 1
    out_offs = offs[new_run]
    out_ends = np.zeros(out_offs.size, dtype=np.int64)
    np.maximum.at(out_ends, run_ids, ends)
    return out_offs, out_ends - out_offs


def clip_to_range(batch: SegmentBatch, lo: int, hi: int) -> SegmentBatch:
    """Pieces of ``batch`` inside file range [lo, hi), data offsets
    shifted consistently.  Assumes file offsets ascending."""
    fo, ln, do = batch.file_offsets, batch.lengths, batch.data_offsets
    if fo.size == 0 or hi <= lo:
        return SegmentBatch.empty_batch()
    ends = fo + ln
    i0 = int(np.searchsorted(ends, lo, side="right"))
    i1 = int(np.searchsorted(fo, hi, side="left"))
    if i0 >= i1:
        return SegmentBatch.empty_batch()
    f = fo[i0:i1].copy()
    l = ln[i0:i1].copy()
    d = do[i0:i1].copy()
    front = max(lo - int(f[0]), 0)
    f[0] += front
    d[0] += front
    l[0] -= front
    over = max(int(f[-1] + l[-1]) - hi, 0)
    l[-1] -= over
    keep = l > 0
    if not keep.all():
        f, l, d = f[keep], l[keep], d[keep]
    return SegmentBatch(f, l, d)


def subtract_intervals(batch: SegmentBatch, covered) -> SegmentBatch:
    """The pieces of ``batch`` outside the ``covered`` file intervals.

    ``covered`` is an iterable of (lo, hi) byte ranges, in any order,
    possibly overlapping; it is normalized first.  The remainder is
    assembled by clipping to the complement intervals, so data offsets
    stay consistent with the original access.  Crash recovery uses this
    twice: the old two-phase path subtracts already-written rounds on a
    mid-call re-plan, and rejoin-time resume subtracts the epoch
    records' committed intervals (docs/crash_recovery.md)."""
    spans = sorted((int(lo), int(hi)) for lo, hi in covered if int(hi) > int(lo))
    if batch.empty or not spans:
        return batch
    merged: list = []
    for lo, hi in spans:
        if merged and lo <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])
    far = 1 << 62
    parts = []
    prev = -far
    for lo, hi in merged:
        parts.append(clip_to_range(batch, prev, lo))
        prev = hi
    parts.append(clip_to_range(batch, prev, far))
    return concat_batches(parts)


def access_histogram(
    cursor_factory,
    aar_lo: int,
    aar_hi: int,
    nbins: int = 256,
) -> np.ndarray:
    """Bytes accessed per equal-width bin over the AAR (local view).

    ``cursor_factory()`` must return a fresh scan cursor over the local
    access.  Used by the balanced realm strategy."""
    hist = np.zeros(nbins, dtype=np.int64)
    span = aar_hi - aar_lo
    if span <= 0:
        return hist
    cur = cursor_factory()
    edges = [aar_lo + (span * i) // nbins for i in range(nbins + 1)]
    for i in range(nbins):
        hist[i] = cur.intersect(edges[i], edges[i + 1]).total_bytes
    return hist
