"""Nonblocking collective-I/O requests (the split-collective surface).

:meth:`repro.core.file_handle.CollectiveFile.iwrite_all` /
``iread_all`` return a :class:`Request`: the collective runs as an
engine coroutine (:meth:`repro.sim.engine.RankContext.spawn`) sharing
the caller's communicator queues, while the calling rank keeps
computing.  ``wait()`` joins the coroutine — charging the rank's clock
to the operation's completion time — and re-raises the *original*
typed exception object on failure, so ``DeadlineExceeded`` /
``RankCrashed`` / storage errors observed at ``wait()`` are
indistinguishable from the blocking path's (the chaos classifier
whitelists them identically).

Distinct from :class:`repro.mpi.request.Request`, the point-to-point
message handle: that one completes at message delivery; this one
carries a whole collective's lifecycle — ``PENDING`` → ``COMPLETE`` /
``FAILED`` — plus deferred-error inspection (``test()`` never raises a
deferred error; ``exception()``/``result()``/``wait()`` surface it).

One deliberate asymmetry: a fail-stop :class:`~repro.errors.RankCrashed`
is a ``BaseException`` and is **never deferred** — ``test()``,
``waitany``, and drains all re-raise it immediately, because a dead
rank must stop running the instant its death is observed.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.errors import CollectiveIOError, RankCrashed, WaitTimeout
from repro.sim.engine import BLOCK_TIMEOUT, RankContext, TaskHandle

__all__ = ["Request", "waitall", "testall", "waitany"]

#: Request lifecycle states.
PENDING = "PENDING"
COMPLETE = "COMPLETE"
FAILED = "FAILED"


class Request:
    """Completion handle for one nonblocking collective operation.

    State machine: ``PENDING`` until the backing coroutine is joined
    (by ``wait()``, a successful ``test()``, or a drain), then exactly
    one of ``COMPLETE`` (``result()`` returns the value) or ``FAILED``
    (``wait()``/``result()`` re-raise the captured exception object;
    ``exception()`` returns it).  All transitions are idempotent: a
    second ``wait()`` returns/raises the same thing without touching
    the engine again."""

    __slots__ = ("_ctx", "_handle", "_state", "_value", "_error", "op")

    def __init__(
        self,
        ctx: Optional[RankContext],
        handle: Optional[TaskHandle],
        *,
        op: str = "",
    ) -> None:
        self._ctx = ctx
        self._handle = handle
        self._state = PENDING if handle is not None else COMPLETE
        self._value: Any = None
        self._error: Optional[BaseException] = None
        #: Operation label (``iwrite_all`` / ``iread_all`` / ...).
        self.op = op

    @classmethod
    def completed(cls, value: Any = None, *, op: str = "") -> "Request":
        """A request born complete — the blocking operations return
        these so both surfaces hand back the same type."""
        req = cls(None, None, op=op)
        req._value = value
        return req

    # -- state ----------------------------------------------------------
    @property
    def state(self) -> str:
        """``PENDING`` / ``COMPLETE`` / ``FAILED`` (settled view: a
        finished-but-unjoined coroutine still reads ``PENDING``)."""
        return self._state

    @property
    def done(self) -> bool:
        """True once settled (complete or failed)."""
        return self._state != PENDING

    def _settle(self) -> None:
        """Join the (finished or running) coroutine and record the
        outcome without raising deferred errors.  ``RankCrashed``
        propagates — fail-stop death cannot be parked in a handle the
        program might never look at."""
        if self._state != PENDING:
            return
        try:
            self._value = self._ctx.join(self._handle)
        except RankCrashed:
            # Record it (a later wait() on this request re-raises the
            # same object) but also let it unwind this rank right now.
            self._error = self._handle.error
            self._state = FAILED
            raise
        except Exception as exc:  # noqa: BLE001 - reported via wait()/result()
            self._error = exc
            self._state = FAILED
        else:
            self._state = COMPLETE

    # -- completion ------------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block (in virtual time) until the operation completes.

        Returns the operation's value; re-raises the operation's
        original exception object on failure (idempotently — every
        ``wait()`` on a failed request raises that same object).  With
        ``timeout`` (virtual seconds), raises
        :class:`~repro.errors.WaitTimeout` if the operation is still in
        flight when the budget expires — the request stays pending and
        can be waited again."""
        if self._state == PENDING:
            if timeout is not None and not self._handle.done:
                got = self._ctx.block(
                    lambda: True if self._handle.done else None,
                    f"wait:{self.op or 'request'}",
                    timeout_at=self._ctx.now + timeout,
                )
                if got is BLOCK_TIMEOUT:
                    raise WaitTimeout(self.op, self._ctx.rank, timeout)
            self._settle()
        if self._state == FAILED:
            raise self._error
        return self._value

    def test(self) -> bool:
        """Nonblocking completion probe (yields the scheduler once).

        True once the operation has finished — including finished *in
        error*: a deferred failure flips the request to ``FAILED`` and
        is surfaced by ``wait()``/``result()``/``exception()``, not
        raised here (``RankCrashed`` excepted, see module docs)."""
        if self._state != PENDING:
            return True
        self._ctx.yield_now()
        if not self._handle.done:
            return False
        self._settle()
        return True

    def result(self) -> Any:
        """``wait()`` under its asyncio-flavoured name."""
        return self.wait()

    def exception(self) -> Optional[BaseException]:
        """The captured exception after failure, ``None`` after
        success.  Raises :class:`~repro.errors.CollectiveIOError` while
        still pending — probe with ``test()`` or ``wait()`` first."""
        if self._state == PENDING:
            raise CollectiveIOError(
                f"request {self.op or ''!r} is still pending; "
                "call wait() or test() before exception()"
            )
        return self._error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Request({self.op or 'op'!r}, {self._state})"


def waitall(requests: Sequence[Request]) -> List[Any]:
    """Wait for *every* request; return their values in order.

    All requests are joined before any deferred error is re-raised (no
    coroutine may outlive the wait), then the first failure in sequence
    order is re-raised.  ``RankCrashed`` aborts immediately."""
    first: Optional[BaseException] = None
    values: List[Any] = []
    for req in requests:
        try:
            values.append(req.wait())
        except RankCrashed:
            raise
        except Exception as exc:  # noqa: BLE001 - deferred below
            values.append(None)
            if first is None:
                first = exc
    if first is not None:
        raise first
    return values


def testall(requests: Sequence[Request]) -> bool:
    """True when every request has finished (probes all of them — no
    short-circuit, so each gets its completion settled)."""
    done = [req.test() for req in requests]
    return all(done)


def waitany(requests: Sequence[Request]) -> int:
    """Block until at least one request finishes; return its index.

    Already-settled requests win immediately.  The returned request
    may have ``FAILED`` — inspect it; nothing is raised here except an
    immediate ``RankCrashed``."""
    if not requests:
        raise CollectiveIOError("waitany requires at least one request")
    for i, req in enumerate(requests):
        if req.done:
            return i
    for i, req in enumerate(requests):
        if req.test():
            return i
    pending = [(i, req) for i, req in enumerate(requests) if not req.done]
    ctx = pending[0][1]._ctx
    ctx.block(
        lambda: True if any(r._handle.done for _, r in pending) else None,
        "waitany",
    )
    for i, req in pending:
        if req._handle.done:
            req._settle()
            return i
    raise CollectiveIOError("waitany woke with no completed request")  # pragma: no cover
