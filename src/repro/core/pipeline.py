"""Round-level pipelining: double-buffered collective rounds.

Serialized two-phase rounds pay ``exchange + flush`` per round; the
paper conceded exactly this serialization (plus a copy) to layered
I/O.  :class:`RoundPipeline` recovers it: with the ``pipeline_depth``
hint set, the flush of round *k* runs as an engine coroutine (see
:meth:`repro.sim.engine.RankContext.spawn`) while the rank immediately
starts the exchange of round *k+1* — on the read path, the *fill* of
round *k+1* prefetches while round *k*'s exchange distributes.  The
pool is bounded: at most ``depth`` coroutines (collective buffers) are
in flight, and a submit past that limit back-pressures by joining the
oldest (counted in ``coll.pipeline.stalls``).

``pipeline_depth = 0`` (the default) never constructs a pipeline —
the drivers run their seed-identical serialized loop.  The pipeline
also *stands down* (returns ``None`` from :func:`maybe_pipeline`)
while any realm-mutating fault kind is armed: ``agg_crash`` /
``rank_stall`` / ``rank_crash`` restructure the round schedule at
phase boundaries (failover, suspects, epoch commits), which requires
the strictly-ordered serialized walk.  Data-path faults — transient
I/O errors, OST flaps, bit flips — stay live inside the coroutines;
their typed errors are captured by the task handle and re-raised at
the join, so the caller's handling is identical to the inline path.

Metrics: ``coll.pipeline.depth`` (gauge, configured depth),
``coll.pipeline.stalls`` (back-pressure joins), and
``coll.pipeline.overlap_seconds`` — virtual seconds of coroutine work
that ran concurrently with the spawning rank's own progress, the
number the bench asserts is nonzero at depth >= 2.

Trace: coroutines record ``round:flush`` / ``round:fill`` spans on
their own per-slot lanes (:meth:`repro.sim.engine.Simulator.lane_for`),
so the Chrome export shows them overlapping the rank's
``round:exchange`` spans instead of corrupting the rank's span stack.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, List, Optional, Tuple

from repro.core.env import CollEnv
from repro.core.plancache import PLAN_MUTATING_KINDS
from repro.faults.plan import FAULTS_KEY
from repro.sim.engine import RankContext, TaskHandle

__all__ = ["RoundPipeline", "maybe_pipeline", "task_env"]


def maybe_pipeline(env: CollEnv) -> Optional["RoundPipeline"]:
    """A :class:`RoundPipeline` for this call, or ``None``.

    ``None`` when the ``pipeline_depth`` hint is unset (seed-identical
    serialized rounds) or while a realm-mutating fault kind is armed —
    the same stand-down set the plan cache bypasses on, because both
    features assume the round schedule is fixed for the whole call."""
    depth = env.hints["pipeline_depth"]
    if depth <= 0:
        return None
    inj = env.ctx.shared.get(FAULTS_KEY)
    if inj is not None and any(inj.enabled(kind) for kind in PLAN_MUTATING_KINDS):
        return None
    return RoundPipeline(env, depth)


def task_env(env: CollEnv, tctx: RankContext) -> CollEnv:
    """``env`` rebound to a coroutine's context: the I/O stack charges
    the task's clock (via :meth:`repro.io.adio.AdioFile.rebound`) while
    hints, view, stats, and the plan cache stay shared."""
    return replace(env, ctx=tctx, adio=env.adio.rebound(tctx))


class RoundPipeline:
    """Bounded pool of in-flight round coroutines for one collective call.

    Slots double as trace lanes: slot *s* of rank *r* always records on
    the same interned lane, and a slot is only reused after its task is
    joined, so the tracer's per-lane span stack stays well nested."""

    def __init__(self, env: CollEnv, depth: int) -> None:
        self.env = env
        self.ctx = env.ctx
        self.depth = depth
        rank = env.stats.rank
        self._rank = env.comm.rank
        registry = env.stats.registry
        self._stalls = registry.counter("coll.pipeline.stalls", rank)
        self._overlap = registry.counter("coll.pipeline.overlap_seconds", rank)
        registry.gauge("coll.pipeline.depth", rank).value = depth
        #: In-flight (handle, slot) pairs, oldest first.
        self._inflight: List[Tuple[TaskHandle, int]] = []
        self._free = list(range(depth))

    @property
    def free_slots(self) -> int:
        return len(self._free)

    def submit(
        self,
        fn: Callable[[RankContext], Any],
        *,
        round_no: int,
        stage: str,
    ) -> TaskHandle:
        """Launch ``fn`` on a pool slot; back-pressure when full."""
        if not self._free:
            self._stalls.inc()
            self.join(self._inflight[0][0])
        slot = self._free.pop(0)
        lane = self.ctx._sim.lane_for(
            ("pipe", id(self.ctx.shared), self._rank, slot),
            f"rank {self._rank} pipeline[{slot}]",
        )
        handle = self.ctx.spawn(
            fn, label=f"{stage}[{round_no}]@r{self._rank}", lane=lane
        )
        self._inflight.append((handle, slot))
        return handle

    def join(self, handle: TaskHandle) -> Any:
        """Join one task: free its slot, account realized overlap, and
        return its value (or re-raise its captured error).  Joining a
        handle the pool already reclaimed (via back-pressure) is safe —
        the engine's join is idempotent."""
        entry = next((e for e in self._inflight if e[0] is handle), None)
        if entry is None:
            return self.ctx.join(handle)
        t_before = self.ctx.now
        try:
            return self.ctx.join(handle)
        finally:
            self._inflight.remove(entry)
            self._free.append(entry[1])
            self._free.sort()
            # Overlap = the part of the task's virtual-time span the
            # parent covered with its own work before joining.
            self._overlap.value += max(
                0.0, min(t_before, handle.t_end) - handle.t_start
            )

    def drain(self, *, suppress: bool = False) -> None:
        """Join everything still in flight, oldest first.

        The first captured error is re-raised after *all* tasks are
        joined (a coroutine must never be left running past its call);
        ``suppress=True`` swallows errors instead — used on the unwind
        path so a flush error never masks the primary exception."""
        first: Optional[BaseException] = None
        while self._inflight:
            try:
                self.join(self._inflight[0][0])
            except Exception as exc:  # noqa: BLE001 - deferred to caller
                if first is None:
                    first = exc
        if first is not None and not suppress:
            raise first
