"""Liveness layer: per-collective deadlines, suspicion, lock leases.

PR 1 made the stack survive crashes and PR 2 corruption; this module
closes the last failure class — *hangs*.  It owns the shared mutable
state that turns the ``coll_deadline`` / ``liveness`` hints into
behaviour:

* **Deadline propagation** — :meth:`LivenessState.begin_call` arms a
  per-rank virtual-time budget when a collective call starts;
  :class:`~repro.mpi.comm.Communicator` consults
  :meth:`LivenessState.deadline_for` in every blocking receive and
  raises a typed :class:`~repro.errors.DeadlineExceeded` (site, rank,
  phase) instead of blocking past it.
* **Suspicion** — ranks stalled by a ``rank_stall`` fault are declared
  *suspect*; with the ``liveness`` hint on, the collective layer
  excludes a suspect mid-call (aggregator realms merge into survivors,
  a suspect client's already-exchanged access is served without it).
  Suspicion here, like crash detection, is a pure function of the
  fault plan that every rank evaluates identically — no
  failure-detector messages.
* **Lock leases** — :class:`~repro.fs.locks.ExtentLockManager` caps how
  long a pinned (wedged-callback) lock may be held; the lease length
  comes from the installed :class:`~repro.config.LivenessConfig`.

Everything is found dynamically via ``shared[LIVENESS_KEY]`` (the same
pattern as :mod:`repro.integrity`), so the fast path with liveness off
costs one dict lookup that already fails today — byte-identical
behaviour and cost.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.config import LivenessConfig

__all__ = [
    "LIVENESS_KEY",
    "LivenessConfig",
    "LivenessState",
    "install_liveness",
    "find_liveness",
    "CRASH_KEY",
    "CrashState",
    "install_crash_state",
    "find_crash_state",
]

#: Key under which the active :class:`LivenessState` lives in
#: ``Simulator.shared`` (installed at collective-file open).
LIVENESS_KEY = "liveness-state"


class LivenessState:
    """Shared, engine-ordered liveness bookkeeping for one simulation.

    Mutated only by the single running rank thread (the engine's
    invariant), so plain dicts suffice.  One instance per simulation,
    shared by every rank."""

    __slots__ = ("config", "failover", "_deadlines", "_phases", "suspects")

    def __init__(self, config: LivenessConfig, *, failover: bool = False) -> None:
        config.validate()
        self.config = config
        #: True when the ``liveness`` hint armed suspect-driven failover
        #: (deadlines alone may be armed without it).
        self.failover = failover
        self._deadlines: Dict[int, float] = {}
        self._phases: Dict[int, str] = {}
        #: Ranks ever declared suspect this simulation (for reporting).
        self.suspects: Set[int] = set()

    # -- deadlines -------------------------------------------------------
    def begin_call(self, rank: int, now: float) -> None:
        """Arm this rank's budget for one collective call."""
        if self.config.deadline > 0.0:
            self._deadlines[rank] = now + self.config.deadline
        self._phases[rank] = ""

    def end_call(self, rank: int) -> None:
        """Disarm after the collective call returned (or raised)."""
        self._deadlines.pop(rank, None)
        self._phases.pop(rank, None)

    def deadline_for(self, rank: int) -> Optional[float]:
        """Absolute virtual-time deadline, or None when unarmed."""
        return self._deadlines.get(rank)

    # -- phase labels (for DeadlineExceeded diagnostics) -----------------
    def set_phase(self, rank: int, phase: str) -> None:
        if rank in self._phases or phase == "":
            self._phases[rank] = phase

    def phase_of(self, rank: int) -> str:
        return self._phases.get(rank, "")

    # -- suspicion -------------------------------------------------------
    def mark_suspect(self, rank: int) -> bool:
        """Record ``rank`` as suspect; True the first time."""
        if rank in self.suspects:
            return False
        self.suspects.add(rank)
        return True


#: Key under which the simulation's :class:`CrashState` lives in
#: ``Simulator.shared`` (installed at collective-file open when the
#: fault plan carries ``rank_crash`` events).
CRASH_KEY = "crash-state"


class CrashState:
    """Fail-stop membership bookkeeping for one simulation.

    Tracks which ranks died (``rank_crash``), at which agreement epoch
    each death was converged on, and how many agreement rounds ran.
    Mutated only at phase boundaries by the single running rank thread
    (the engine's invariant); every component that must avoid
    communicating with a corpse — collective teardown, the session's
    closing allreduce, journal commit — reads the same instance."""

    __slots__ = ("dead", "epoch_of", "agreement_epochs")

    def __init__(self) -> None:
        #: World ranks dead fail-stop, cumulative over the run.
        self.dead: Set[int] = set()
        #: rank -> (call_index, boundary) at which its death was agreed.
        self.epoch_of: Dict[int, tuple] = {}
        #: Distinct (call_index, boundary) epochs that ran an agreement.
        self.agreement_epochs: Set[tuple] = set()

    def mark_dead(self, rank: int, call_index: int, boundary: int) -> bool:
        """Record ``rank`` as dead; True the first time."""
        if rank in self.dead:
            return False
        self.dead.add(rank)
        self.epoch_of[rank] = (call_index, boundary)
        return True

    def is_dead(self, rank: int) -> bool:
        return rank in self.dead


def install_crash_state(shared: dict, state: Optional[CrashState] = None) -> CrashState:
    """Arm (or find) the simulation's crash bookkeeping.  Idempotent:
    the first install wins, so all ranks and files share one state."""
    return shared.setdefault(CRASH_KEY, state if state is not None else CrashState())


def find_crash_state(shared: dict) -> Optional[CrashState]:
    """The installed :class:`CrashState`, if any."""
    return shared.get(CRASH_KEY)


def install_liveness(shared: dict, state: LivenessState) -> None:
    """Arm the liveness layer for every component of this simulation.

    Idempotent per simulation: the first open wins, so all ranks (and
    all files) of one run share a single :class:`LivenessState`."""
    shared.setdefault(LIVENESS_KEY, state)


def find_liveness(shared: dict) -> Optional[LivenessState]:
    """The installed :class:`LivenessState`, if any."""
    return shared.get(LIVENESS_KEY)
