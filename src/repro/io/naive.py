"""Naive strided I/O: one file-system call per contiguous segment.

No extra buffering and no gap traffic — each segment is written or read
exactly; the price is a per-call overhead for every segment (and
page-RMW penalties for unaligned segments).  Figure 5 shows where this
beats data sieving: large filetype extents, where sieving's window
pre-read would drag in mostly gap bytes.
"""

from __future__ import annotations

import numpy as np

from repro.datatypes.segments import SegmentBatch
from repro.fs.client import LocalFile

__all__ = ["naive_write", "naive_read"]


def naive_write(local: LocalFile, batch: SegmentBatch, data: np.ndarray) -> None:
    """Write each segment with its own call.

    Contract (shared by all strided I/O methods): ``batch.data_offsets``
    index directly into ``data``."""
    if batch.empty:
        return
    data = np.asarray(data, dtype=np.uint8)
    cost = local.fs.cost
    local.ctx.charge(batch.num_segments * cost.cpu_request_setup)
    for fo, ln, do in zip(
        batch.file_offsets.tolist(), batch.lengths.tolist(), batch.data_offsets.tolist()
    ):
        local.write(fo, data[do : do + ln])


def naive_read(local: LocalFile, batch: SegmentBatch) -> np.ndarray:
    """Read each segment with its own call.

    Returns an array indexed by ``batch.data_offsets`` (sized to their
    upper bound); bytes outside the batch are zero."""
    if batch.empty:
        return np.empty(0, dtype=np.uint8)
    size = int((batch.data_offsets + batch.lengths).max())
    out = np.zeros(size, dtype=np.uint8)
    cost = local.fs.cost
    local.ctx.charge(batch.num_segments * cost.cpu_request_setup)
    for fo, ln, do in zip(
        batch.file_offsets.tolist(), batch.lengths.tolist(), batch.data_offsets.tolist()
    ):
        out[do : do + ln] = local.read(fo, ln)
    return out
