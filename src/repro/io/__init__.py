"""Independent I/O layer (the ADIO analogue).

The new collective implementation's Section 5.1 claim is that flushing
the collective buffer through the *independent* I/O layer — instead of
a second, integrated data-sieving implementation — buys per-flush
choice of I/O method at the price of one extra buffer copy.  This
package provides those methods:

* :func:`~repro.io.datasieve.datasieve_write` /
  :func:`~repro.io.datasieve.datasieve_read` — read-modify-write
  through a sieve buffer window;
* :func:`~repro.io.naive.naive_write` / ``naive_read`` — one file-system
  call per contiguous segment;
* :func:`~repro.io.listio.listio_write` / ``listio_read`` — all
  segments in a single list-I/O call;
* :class:`~repro.io.adio.AdioFile` — the dispatching facade;
* :func:`~repro.io.selection.choose_method` — hint-driven selection
  including the paper's *conditional data sieving* by filetype extent;
* :class:`~repro.io.retry.RetryPolicy` — transparent retry/backoff for
  injected transient I/O faults, shared by every method above.
"""

from repro.io.adio import AdioFile
from repro.io.retry import RetryPolicy
from repro.io.selection import choose_method

__all__ = ["AdioFile", "RetryPolicy", "choose_method"]
