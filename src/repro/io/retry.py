"""Retry/backoff policy for transient I/O faults.

The independent-I/O layer wraps every strided/contiguous operation in a
:class:`RetryPolicy`: a :class:`~repro.errors.TransientIOError` raised
anywhere below (server call, cache flush, sieve pre-read) aborts the
attempt, the rank sleeps an exponentially growing *virtual* backoff,
and the whole operation is reissued.  Reissue is safe because every
strided method is idempotent — writes put the same bytes at the same
offsets, reads have no side effects — and the injected fault fires
before the server mutates the store.

When the budget is exhausted (or retries are disabled with
``io_retries=0``) the last fault is rethrown as
:class:`~repro.errors.RetryExhausted`, carrying the injection site so
chaos-test failures point at the faulting layer, not the facade.

Backoff is charged with ``ctx.advance`` — it is simulated time, visible
to the scheduler, so other ranks (and the fault window itself) make
progress while this rank waits; riding out a timed outage window is
exactly the behaviour the ``io-outage`` scenario verifies.

Two storm-control refinements (``docs/storage_faults.md``):

* **Full jitter** (``jitter=True``, the ``retry_jitter`` hint): each
  sleep is ``u * capped_exponential`` with ``u`` a *seeded* uniform
  draw from the fault injector, keyed per rank — so ranks that fault
  together stop retrying in lockstep waves against a recovering OST,
  while a fixed plan seed still replays the exact same delays.
* **Retry budget** (:class:`RetryBudget`, the ``io_retry_budget``
  hint): a mutable cross-operation allowance shared by all of one
  client's policies.  When it runs dry the client stops retrying
  *anything* and fails fast with a typed
  :class:`~repro.errors.RetryBudgetExhausted` — bounded load on a sick
  storage system instead of an open-ended storm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, TypeVar

from repro.config import DEFAULT_FAULT_CONFIG, FaultConfig
from repro.errors import RetryBudgetExhausted, RetryExhausted, TransientIOError
from repro.faults.plan import FAULTS_KEY

__all__ = ["RetryPolicy", "RetryBudget"]

T = TypeVar("T")


class RetryBudget:
    """A client's cross-operation retry allowance (0 limit = unlimited).

    Mutable on purpose: one budget instance is shared by every policy
    of a client, so retries anywhere draw down the same pool."""

    __slots__ = ("limit", "used")

    def __init__(self, limit: int = 0) -> None:
        if limit < 0:
            raise ValueError(f"retry budget must be >= 0, got {limit}")
        self.limit = int(limit)
        self.used = 0

    @property
    def remaining(self) -> Optional[int]:
        """Retries left, or ``None`` when unlimited."""
        if self.limit == 0:
            return None
        return max(0, self.limit - self.used)

    def spend(self) -> bool:
        """Consume one retry; False when the budget is already dry."""
        if self.limit and self.used >= self.limit:
            return False
        self.used += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RetryBudget(used={self.used}, limit={self.limit})"


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to reissue a faulted I/O operation, and how long
    to back off (in virtual seconds) between attempts."""

    retries: int = DEFAULT_FAULT_CONFIG.io_retries
    backoff: float = DEFAULT_FAULT_CONFIG.retry_backoff
    backoff_factor: float = DEFAULT_FAULT_CONFIG.retry_backoff_factor
    #: Ceiling on one backoff sleep: exponential growth is the right
    #: shape for the first few attempts, but with a deep retry budget
    #: the uncapped tail (factor^n) dominates total recovery time for
    #: no extra politeness — real clients cap it.
    backoff_max: float = DEFAULT_FAULT_CONFIG.retry_backoff_max
    #: Full-jitter: sleep a seeded uniform fraction of the capped
    #: exponential instead of the whole thing (needs an installed
    #: injector for the draw; falls back to no jitter without one).
    jitter: bool = DEFAULT_FAULT_CONFIG.retry_jitter
    #: Shared cross-operation budget (``None`` = per-operation retries
    #: only).  The dataclass stays frozen; the budget object mutates.
    budget: Optional[RetryBudget] = None

    @classmethod
    def from_config(cls, config: FaultConfig) -> "RetryPolicy":
        return cls(
            retries=config.io_retries,
            backoff=config.retry_backoff,
            backoff_factor=config.retry_backoff_factor,
            backoff_max=config.retry_backoff_max,
            jitter=config.retry_jitter,
            budget=RetryBudget(config.retry_budget) if config.retry_budget else None,
        )

    def run(self, ctx: Any, op: Callable[[], T]) -> T:
        """Execute ``op`` under this policy; returns its result.

        ``ctx`` is the rank's :class:`~repro.sim.engine.RankContext`
        (for the backoff clock and injector stats discovery)."""
        injector = ctx.shared.get(FAULTS_KEY)
        attempt = 0
        while True:
            try:
                return op()
            except TransientIOError as exc:
                attempt += 1
                if attempt > self.retries:
                    if injector is not None:
                        injector.note_retry_exhausted()
                    raise RetryExhausted(exc.site, attempt) from exc
                if self.budget is not None and not self.budget.spend():
                    if injector is not None:
                        injector.note_retry_exhausted()
                    raise RetryBudgetExhausted(
                        exc.site, attempt, self.budget.limit
                    ) from exc
                delay = min(
                    self.backoff * self.backoff_factor ** (attempt - 1),
                    self.backoff_max,
                )
                if self.jitter and injector is not None:
                    delay *= injector.retry_jitter(ctx.rank)
                if injector is not None:
                    injector.note_retry(delay)
                ctx.advance(delay)
