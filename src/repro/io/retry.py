"""Retry/backoff policy for transient I/O faults.

The independent-I/O layer wraps every strided/contiguous operation in a
:class:`RetryPolicy`: a :class:`~repro.errors.TransientIOError` raised
anywhere below (server call, cache flush, sieve pre-read) aborts the
attempt, the rank sleeps an exponentially growing *virtual* backoff,
and the whole operation is reissued.  Reissue is safe because every
strided method is idempotent — writes put the same bytes at the same
offsets, reads have no side effects — and the injected fault fires
before the server mutates the store.

When the budget is exhausted (or retries are disabled with
``io_retries=0``) the last fault is rethrown as
:class:`~repro.errors.RetryExhausted`, carrying the injection site so
chaos-test failures point at the faulting layer, not the facade.

Backoff is charged with ``ctx.advance`` — it is simulated time, visible
to the scheduler, so other ranks (and the fault window itself) make
progress while this rank waits; riding out a timed outage window is
exactly the behaviour the ``io-outage`` scenario verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.config import DEFAULT_FAULT_CONFIG, FaultConfig
from repro.errors import RetryExhausted, TransientIOError
from repro.faults.plan import FAULTS_KEY

__all__ = ["RetryPolicy"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to reissue a faulted I/O operation, and how long
    to back off (in virtual seconds) between attempts."""

    retries: int = DEFAULT_FAULT_CONFIG.io_retries
    backoff: float = DEFAULT_FAULT_CONFIG.retry_backoff
    backoff_factor: float = DEFAULT_FAULT_CONFIG.retry_backoff_factor
    #: Ceiling on one backoff sleep: exponential growth is the right
    #: shape for the first few attempts, but with a deep retry budget
    #: the uncapped tail (factor^n) dominates total recovery time for
    #: no extra politeness — real clients cap it.
    backoff_max: float = DEFAULT_FAULT_CONFIG.retry_backoff_max

    @classmethod
    def from_config(cls, config: FaultConfig) -> "RetryPolicy":
        return cls(
            retries=config.io_retries,
            backoff=config.retry_backoff,
            backoff_factor=config.retry_backoff_factor,
            backoff_max=config.retry_backoff_max,
        )

    def run(self, ctx: Any, op: Callable[[], T]) -> T:
        """Execute ``op`` under this policy; returns its result.

        ``ctx`` is the rank's :class:`~repro.sim.engine.RankContext`
        (for the backoff clock and injector stats discovery)."""
        injector = ctx.shared.get(FAULTS_KEY)
        attempt = 0
        while True:
            try:
                return op()
            except TransientIOError as exc:
                attempt += 1
                if attempt > self.retries:
                    if injector is not None:
                        injector.note_retry_exhausted()
                    raise RetryExhausted(exc.site, attempt) from exc
                delay = min(
                    self.backoff * self.backoff_factor ** (attempt - 1),
                    self.backoff_max,
                )
                if injector is not None:
                    injector.note_retry(delay)
                ctx.advance(delay)
