"""I/O-method selection, including conditional data sieving.

Section 6.3's experiment: the best way to flush a collective buffer to
non-contiguous file space depends on the access, and the paper's simple
but effective metric is the **filetype extent** — data sieving wins for
small extents (per-call overhead dominates, gaps are cheap to carry),
naive per-segment I/O wins for large extents (sieving drags in mostly
gap bytes).  Their Lustre crossover sat near a 16 KB extent; the
threshold here is the ``ds_threshold_extent`` hint.

The contiguous fast path mirrors the "contiguous in memory, contiguous
in file" branch that produces the 100% spikes in Figure 5.
"""

from __future__ import annotations

from repro.datatypes.segments import SegmentBatch
from repro.errors import CollectiveIOError
from repro.mpi.hints import Hints

__all__ = ["choose_method", "is_contiguous_batch"]

_METHODS = ("datasieve", "naive", "listio")


def is_contiguous_batch(batch: SegmentBatch) -> bool:
    """True when the batch is a single contiguous extent."""
    return batch.num_segments == 1


def choose_method(hints: Hints, filetype_extent: int, batch: SegmentBatch) -> str:
    """Resolve the I/O method for one collective-buffer flush.

    Returns one of ``"contig"``, ``"datasieve"``, ``"naive"``,
    ``"listio"``.  ``filetype_extent`` is the access pattern's tile
    extent (the conditional metric); ``batch`` is the flush at hand.
    """
    if batch.empty or is_contiguous_batch(batch):
        return "contig"
    method = hints["io_method"]
    if method == "conditional":
        threshold = hints["ds_threshold_extent"]
        return "datasieve" if 0 < filetype_extent <= threshold else "naive"
    if method not in _METHODS:  # pragma: no cover - Hints validates already
        raise CollectiveIOError(f"unknown io_method {method!r}")
    return method
