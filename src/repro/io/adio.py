"""ADIO-like facade: strided reads/writes with a pluggable method.

One :class:`AdioFile` per open file per rank.  The collective layer
flushes its buffer through :meth:`write_strided` / fills it through
:meth:`read_strided`; independent I/O users can call it directly (this
is the code-reuse point Section 5.1 argues for).

Every operation runs under the file's :class:`~repro.io.retry.RetryPolicy`:
transient faults injected below (server calls, cache flushes) are
retried with exponential virtual-time backoff, and exhaustion surfaces
as :class:`~repro.errors.RetryExhausted`.  Placing the retry at this
layer means *both* I/O paths — independent users and collective-buffer
flushes — inherit resilience from the same code, the Section 5.1 reuse
argument extended to fault handling.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datatypes.segments import SegmentBatch
from repro.errors import CollectiveIOError
from repro.fs.client import LocalFile
from repro.io.datasieve import datasieve_read, datasieve_write
from repro.io.listio import listio_read, listio_write
from repro.io.naive import naive_read, naive_write
from repro.io.retry import RetryPolicy

__all__ = ["AdioFile"]


class AdioFile:
    """Strided-I/O dispatcher over a :class:`~repro.fs.client.LocalFile`."""

    def __init__(
        self,
        local: LocalFile,
        *,
        ds_buffer_size: int = 512 * 1024,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if ds_buffer_size <= 0:
            raise CollectiveIOError("ds_buffer_size must be positive")
        self.local = local
        self.ds_buffer_size = ds_buffer_size
        self.retry = retry if retry is not None else RetryPolicy()
        #: Flush-method usage counters (inspected by tests/benches).
        self.method_counts: dict[str, int] = {}

    def _count(self, method: str) -> None:
        self.method_counts[method] = self.method_counts.get(method, 0) + 1

    def journaled(self):
        """Route this file's I/O through its open shadow transaction
        (see :meth:`repro.fs.client.LocalFile.journaled`) for the
        duration of the context."""
        return self.local.journaled()

    def rebound(self, ctx) -> "AdioFile":
        """A view of this dispatcher charging time to ``ctx``.

        Shares the retry policy (so cross-operation budgets stay one
        pool) and the method counters with the base; the underlying
        :class:`LocalFile` is rebound the same way, so coroutine I/O
        advances the coroutine's clock."""
        view = AdioFile(
            self.local.rebound(ctx),
            ds_buffer_size=self.ds_buffer_size,
            retry=self.retry,
        )
        view.method_counts = self.method_counts
        return view

    # -- contiguous ---------------------------------------------------------
    def write_contig(self, offset: int, data: np.ndarray) -> None:
        self._count("contig")
        self.retry.run(self.local.ctx, lambda: self.local.write(offset, data))

    def read_contig(self, offset: int, nbytes: int) -> np.ndarray:
        self._count("contig")
        return self.retry.run(self.local.ctx, lambda: self.local.read(offset, nbytes))

    # -- strided -------------------------------------------------------------
    def write_strided(
        self,
        batch: SegmentBatch,
        data: np.ndarray,
        method: str,
        *,
        integrated: bool = False,
    ) -> None:
        """Write ``batch`` (``data_offsets`` index into ``data``).

        ``method`` is one of ``contig``/``datasieve``/``naive``/
        ``listio``; ``integrated`` models the old implementation's fused
        sieve buffer (no extra copy charged)."""
        if batch.empty:
            return
        self._count(method)

        def attempt() -> None:
            if method == "contig":
                if batch.num_segments != 1:
                    raise CollectiveIOError("contig method requires a single segment")
                do = int(batch.data_offsets[0])
                ln = int(batch.lengths[0])
                self.local.write(int(batch.file_offsets[0]), data[do : do + ln])
            elif method == "datasieve":
                datasieve_write(
                    self.local, batch, data, buffer_size=self.ds_buffer_size, integrated=integrated
                )
            elif method == "naive":
                naive_write(self.local, batch, data)
            elif method == "listio":
                listio_write(self.local, batch, data)
            else:
                raise CollectiveIOError(f"unknown strided write method {method!r}")

        self.retry.run(self.local.ctx, attempt)

    def read_strided(self, batch: SegmentBatch, method: str, *, integrated: bool = False) -> np.ndarray:
        """Read ``batch``; the result is indexed by ``batch.data_offsets``."""
        if batch.empty:
            return np.empty(0, dtype=np.uint8)
        self._count(method)

        def attempt() -> np.ndarray:
            if method == "contig":
                if batch.num_segments != 1:
                    raise CollectiveIOError("contig method requires a single segment")
                size = int((batch.data_offsets + batch.lengths).max())
                out = np.zeros(size, dtype=np.uint8)
                do = int(batch.data_offsets[0])
                ln = int(batch.lengths[0])
                out[do : do + ln] = self.local.read(int(batch.file_offsets[0]), ln)
                return out
            if method == "datasieve":
                return datasieve_read(
                    self.local, batch, buffer_size=self.ds_buffer_size, integrated=integrated
                )
            if method == "naive":
                return naive_read(self.local, batch)
            if method == "listio":
                return listio_read(self.local, batch)
            raise CollectiveIOError(f"unknown strided read method {method!r}")

        return self.retry.run(self.local.ctx, attempt)
