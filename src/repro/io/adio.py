"""ADIO-like facade: strided reads/writes with a pluggable method.

One :class:`AdioFile` per open file per rank.  The collective layer
flushes its buffer through :meth:`write_strided` / fills it through
:meth:`read_strided`; independent I/O users can call it directly (this
is the code-reuse point Section 5.1 argues for).
"""

from __future__ import annotations

import numpy as np

from repro.datatypes.segments import SegmentBatch
from repro.errors import CollectiveIOError
from repro.fs.client import LocalFile
from repro.io.datasieve import datasieve_read, datasieve_write
from repro.io.listio import listio_read, listio_write
from repro.io.naive import naive_read, naive_write

__all__ = ["AdioFile"]


class AdioFile:
    """Strided-I/O dispatcher over a :class:`~repro.fs.client.LocalFile`."""

    def __init__(self, local: LocalFile, *, ds_buffer_size: int = 512 * 1024) -> None:
        if ds_buffer_size <= 0:
            raise CollectiveIOError("ds_buffer_size must be positive")
        self.local = local
        self.ds_buffer_size = ds_buffer_size
        #: Flush-method usage counters (inspected by tests/benches).
        self.method_counts: dict[str, int] = {}

    def _count(self, method: str) -> None:
        self.method_counts[method] = self.method_counts.get(method, 0) + 1

    # -- contiguous ---------------------------------------------------------
    def write_contig(self, offset: int, data: np.ndarray) -> None:
        self._count("contig")
        self.local.write(offset, data)

    def read_contig(self, offset: int, nbytes: int) -> np.ndarray:
        self._count("contig")
        return self.local.read(offset, nbytes)

    # -- strided -------------------------------------------------------------
    def write_strided(
        self,
        batch: SegmentBatch,
        data: np.ndarray,
        method: str,
        *,
        integrated: bool = False,
    ) -> None:
        """Write ``batch`` (``data_offsets`` index into ``data``).

        ``method`` is one of ``contig``/``datasieve``/``naive``/
        ``listio``; ``integrated`` models the old implementation's fused
        sieve buffer (no extra copy charged)."""
        if batch.empty:
            return
        self._count(method)
        if method == "contig":
            if batch.num_segments != 1:
                raise CollectiveIOError("contig method requires a single segment")
            do = int(batch.data_offsets[0])
            ln = int(batch.lengths[0])
            self.local.write(int(batch.file_offsets[0]), data[do : do + ln])
        elif method == "datasieve":
            datasieve_write(
                self.local, batch, data, buffer_size=self.ds_buffer_size, integrated=integrated
            )
        elif method == "naive":
            naive_write(self.local, batch, data)
        elif method == "listio":
            listio_write(self.local, batch, data)
        else:
            raise CollectiveIOError(f"unknown strided write method {method!r}")

    def read_strided(self, batch: SegmentBatch, method: str, *, integrated: bool = False) -> np.ndarray:
        """Read ``batch``; the result is indexed by ``batch.data_offsets``."""
        if batch.empty:
            return np.empty(0, dtype=np.uint8)
        self._count(method)
        if method == "contig":
            if batch.num_segments != 1:
                raise CollectiveIOError("contig method requires a single segment")
            size = int((batch.data_offsets + batch.lengths).max())
            out = np.zeros(size, dtype=np.uint8)
            do = int(batch.data_offsets[0])
            ln = int(batch.lengths[0])
            out[do : do + ln] = self.local.read(int(batch.file_offsets[0]), ln)
            return out
        if method == "datasieve":
            return datasieve_read(
                self.local, batch, buffer_size=self.ds_buffer_size, integrated=integrated
            )
        if method == "naive":
            return naive_read(self.local, batch)
        if method == "listio":
            return listio_read(self.local, batch)
        raise CollectiveIOError(f"unknown strided read method {method!r}")
