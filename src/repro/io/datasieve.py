"""Data sieving: strided I/O through a contiguous sieve-buffer window.

Writes are read-modify-write: read the window span, scatter the new
bytes into it, write the whole span back.  Holes between segments are
carried by the pre-read, so the write-back is always one contiguous
extent — few large file-system calls instead of many small ones.  The
span write implicitly requires the extent lock on the window, which the
file-system layer charges.

``integrated=True`` models the *old* ROMIO implementation's fusion of
the sieve buffer with the collective buffer: the scatter copy into the
sieve buffer is not charged because the data is already there (Section
5.1's "one less buffer").
"""

from __future__ import annotations

import numpy as np

from repro.datatypes.segments import SegmentBatch
from repro.errors import CollectiveIOError
from repro.fs.client import LocalFile

__all__ = ["datasieve_write", "datasieve_read"]


def _windows(lo: int, hi: int, size: int):
    pos = lo
    while pos < hi:
        yield pos, min(pos + size, hi)
        pos = min(pos + size, hi)


def _clip_batch(batch: SegmentBatch, lo: int, hi: int):
    """Segment pieces of ``batch`` inside [lo, hi): (file_off, len, data_off)."""
    fo, ln, do = batch.file_offsets, batch.lengths, batch.data_offsets
    ends = fo + ln
    sel = (ends > lo) & (fo < hi)
    if not sel.any():
        return None
    f = fo[sel].copy()
    l = ln[sel].copy()
    d = do[sel].copy()
    front = np.maximum(lo - f, 0)
    f += front
    d += front
    l -= front
    over = np.maximum((f + l) - hi, 0)
    l -= over
    keep = l > 0
    return f[keep], l[keep], d[keep]


def datasieve_write(
    local: LocalFile,
    batch: SegmentBatch,
    data: np.ndarray,
    *,
    buffer_size: int,
    integrated: bool = False,
) -> None:
    """Write ``batch``'s segments (bytes in ``data``, data order) using
    sieve windows of at most ``buffer_size`` bytes."""
    if batch.empty:
        return
    if buffer_size <= 0:
        raise CollectiveIOError(f"sieve buffer size must be positive, got {buffer_size}")
    cost = local.fs.cost
    ctx = local.ctx
    lo = int(batch.file_offsets.min())
    hi = int((batch.file_offsets + batch.lengths).max())
    data = np.asarray(data, dtype=np.uint8)
    for w_lo, w_hi in _windows(lo, hi, buffer_size):
        clipped = _clip_batch(batch, w_lo, w_hi)
        if clipped is None:
            continue
        f, l, d = clipped
        span_lo = int(f.min())
        span_hi = int((f + l).max())
        span = span_hi - span_lo
        covered = int(l.sum())
        if covered < span:
            # Holes exist: pre-read the span so the write-back preserves
            # the gap bytes (the defining RMW of data sieving).
            sieve = local.read(span_lo, span)
        else:
            sieve = np.empty(span, dtype=np.uint8)
        if not integrated:
            # Collective buffer -> sieve buffer copy (the double-buffer
            # cost the old integrated implementation avoids).
            ctx.charge(covered * cost.cpu_per_byte_copy)
        ctx.charge(covered * cost.cpu_per_byte_touch)
        for fo_i, ln_i, do_i in zip(f.tolist(), l.tolist(), d.tolist()):
            sieve[fo_i - span_lo : fo_i - span_lo + ln_i] = data[do_i : do_i + ln_i]
        local.write(span_lo, sieve)


def datasieve_read(
    local: LocalFile,
    batch: SegmentBatch,
    *,
    buffer_size: int,
    integrated: bool = False,
) -> np.ndarray:
    """Read ``batch``'s segments via sieve windows; returns data-order bytes."""
    if batch.empty:
        return np.empty(0, dtype=np.uint8)
    if buffer_size <= 0:
        raise CollectiveIOError(f"sieve buffer size must be positive, got {buffer_size}")
    cost = local.fs.cost
    ctx = local.ctx
    out = np.zeros(int((batch.data_offsets + batch.lengths).max()), dtype=np.uint8)
    lo = int(batch.file_offsets.min())
    hi = int((batch.file_offsets + batch.lengths).max())
    for w_lo, w_hi in _windows(lo, hi, buffer_size):
        clipped = _clip_batch(batch, w_lo, w_hi)
        if clipped is None:
            continue
        f, l, d = clipped
        span_lo = int(f.min())
        span = int((f + l).max()) - span_lo
        sieve = local.read(span_lo, span)
        covered = int(l.sum())
        if not integrated:
            ctx.charge(covered * cost.cpu_per_byte_copy)
        ctx.charge(covered * cost.cpu_per_byte_touch)
        for fo_i, ln_i, do_i in zip(f.tolist(), l.tolist(), d.tolist()):
            out[do_i : do_i + ln_i] = sieve[fo_i - span_lo : fo_i - span_lo + ln_i]
    return out
