"""List I/O: all segments in one file-system call.

Models the PVFS list-I/O interface reachable "with a simple MPI hint"
(Section 5.1): one client call overhead, per-segment service cost on
the servers, and no extra data buffer (the double-buffering issue
disappears, as the paper notes).
"""

from __future__ import annotations

import numpy as np

from repro.datatypes.segments import SegmentBatch
from repro.fs.client import LocalFile

__all__ = ["listio_write", "listio_read"]


def listio_write(local: LocalFile, batch: SegmentBatch, data: np.ndarray) -> None:
    """Write every segment in one list-I/O call.

    ``batch.data_offsets`` index into ``data``."""
    if batch.empty:
        return
    data = np.asarray(data, dtype=np.uint8)
    order = np.argsort(batch.data_offsets, kind="stable")
    # The wire format carries the segments back-to-back.
    parts = [
        data[do : do + ln]
        for do, ln in zip(batch.data_offsets[order].tolist(), batch.lengths[order].tolist())
    ]
    local.write_batch(
        batch.file_offsets[order], batch.lengths[order], np.concatenate(parts)
    )


def listio_read(local: LocalFile, batch: SegmentBatch) -> np.ndarray:
    """Read every segment in one list-I/O call.

    Returns an array indexed by ``batch.data_offsets``."""
    if batch.empty:
        return np.empty(0, dtype=np.uint8)
    order = np.argsort(batch.data_offsets, kind="stable")
    packed = local.read_batch(batch.file_offsets[order], batch.lengths[order])
    out = np.zeros(int((batch.data_offsets + batch.lengths).max()), dtype=np.uint8)
    pos = 0
    for do, ln in zip(batch.data_offsets[order].tolist(), batch.lengths[order].tolist()):
        out[do : do + ln] = packed[pos : pos + ln]
        pos += ln
    return out
