"""Per-rank virtual clock."""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically non-decreasing simulated clock.

    Each rank owns one.  All performance accounting in the library goes
    through :meth:`advance` (relative) or :meth:`advance_to` (absolute,
    used when an operation completes at an externally determined time,
    e.g. a message arrival or an OST service completion).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start negative: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Advance by ``dt`` seconds (must be >= 0); returns the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt: {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Advance to absolute time ``t`` if it is in the future.

        A ``t`` in the past is a no-op (the clock never runs backwards);
        this is exactly the ``max(now, event_time)`` rule used for
        message arrival and resource service completion.
        """
        if t > self._now:
            self._now = float(t)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.9f})"
