"""Deterministic virtual-time execution engine.

Every rank of the simulated MPI job runs as a real Python thread, but
the :class:`Simulator` lets exactly one thread execute at any moment and
always resumes the *runnable rank with the smallest virtual clock*
(rank id breaks ties).  Shared simulation state is therefore mutated by
one thread at a time, in virtual-time order, which makes the whole
simulation deterministic and race free without any locking above the
engine.

Rank code interacts with the engine through its :class:`RankContext`:

* ``ctx.charge(dt)`` — advance the local clock without giving up the
  processor (cheap, for bulk CPU accounting);
* ``ctx.advance(dt)`` — charge and then reschedule, so ranks that are
  now earlier in virtual time get to run;
* ``ctx.block(check)`` — block until ``check()`` returns a non-``None``
  value (re-evaluated at every scheduling decision);
* ``ctx.trace(state)`` — record an MPE-style state interval.

If every live rank is blocked the engine raises :class:`SimDeadlock`
with a per-rank state dump, which turns collective-call mismatches into
actionable errors instead of hangs.

Implementation note: the processor handoff uses one ``threading.Event``
per rank (set exactly when that rank is dispatched), not a shared
condition variable — ``notify_all`` would wake every parked rank at
every scheduling decision, which measures as a >2x slowdown at 64
ranks.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator, MutableMapping, Optional, Sequence

from repro.errors import RankCrashed, RankFailed, SimDeadlock, SimHang, SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.trace import Tracer

__all__ = [
    "Simulator",
    "RankContext",
    "ScopedContext",
    "TaskHandle",
    "Watchdog",
    "BLOCK_TIMEOUT",
]

# Rank thread states.
_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"

_JOIN_TIMEOUT = 600.0  # wall-clock safety net for runaway simulations

#: First trace lane (Chrome tid) handed out for coroutine spans — far
#: above any realistic rank count so task lanes never collide with the
#: per-rank rows.
_LANE_BASE = 4096


class _BlockTimeout:
    """Singleton wake value for a timed block that expired."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "BLOCK_TIMEOUT"


#: Returned by :meth:`RankContext.block` when ``timeout_at`` expired
#: before the predicate held.  Compare with ``is``.
BLOCK_TIMEOUT = _BlockTimeout()


class _SimAborted(BaseException):
    """Raised inside rank threads to unwind them when the run is aborted.

    Derives from BaseException so user-level ``except Exception`` blocks
    cannot swallow it.
    """


class _Proc:
    """Internal per-rank record."""

    __slots__ = (
        "rank",
        "clock",
        "state",
        "thread",
        "check",
        "wake_value",
        "blocked_on",
        "timeout_at",
        "last_progress",
        "result",
        "event",
    )

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.clock = VirtualClock()
        self.state = _READY
        self.thread: Optional[threading.Thread] = None
        self.check: Optional[Callable[[], Any]] = None
        self.wake_value: Any = None
        self.blocked_on: str = ""
        #: Virtual time at which a timed block gives up (None = untimed).
        self.timeout_at: Optional[float] = None
        #: Virtual time of this rank's last scheduler interaction — the
        #: progress mark the watchdog compares against the frontier.
        self.last_progress: float = 0.0
        self.result: Any = None
        #: Set exactly when this rank is dispatched to run.
        self.event = threading.Event()


class TaskHandle:
    """Completion handle for an engine coroutine (see
    :meth:`RankContext.spawn`).

    ``done`` flips exactly once, under the engine's single-thread
    invariant; ``value`` or ``error`` is set before it does.  ``t_start``
    / ``t_end`` bracket the task in virtual time so a joiner can charge
    its clock forward to the task's completion."""

    __slots__ = ("label", "done", "value", "error", "t_start", "t_end")

    def __init__(self, label: str) -> None:
        self.label = label
        self.done = False
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.t_start = 0.0
        self.t_end = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done else "running"
        return f"TaskHandle({self.label!r}, {state})"


class RankContext:
    """Handle through which rank code talks to the engine.

    One per rank; passed as the first argument to the rank main
    function.  Also carries ``rank``, ``nprocs``, and the simulator's
    ``shared`` dictionary for modelling shared hardware (file system,
    network)."""

    __slots__ = ("_sim", "_proc", "rank", "nprocs")

    def __init__(self, sim: "Simulator", proc: _Proc) -> None:
        self._sim = sim
        self._proc = proc
        self.rank = proc.rank
        self.nprocs = sim.nprocs

    # -- time ----------------------------------------------------------
    @property
    def now(self) -> float:
        """This rank's current virtual time (seconds)."""
        return self._proc.clock.now

    def _perturbed(self, dt: float) -> float:
        """Apply the straggler fault model, if one is installed.

        Relative CPU charges stretch by the rank's current slowdown
        factor; absolute charges (message arrivals, OST completions)
        are externally determined times and pass through untouched."""
        faults = self._sim.faults
        if faults is None or dt <= 0.0:
            return dt
        factor = faults.cpu_factor(self.rank, self._proc.clock.now)
        if factor != 1.0:
            faults.note_straggler(dt * (factor - 1.0))
            return dt * factor
        return dt

    def charge(self, dt: float) -> None:
        """Advance the local clock by ``dt`` without rescheduling.

        Use for bulk CPU accounting between synchronization points; the
        clock change becomes visible to the scheduler at the next
        reschedule (advance/block/finish)."""
        self._proc.clock.advance(self._perturbed(dt))

    def charge_to(self, t: float) -> None:
        """Advance the local clock to absolute time ``t`` (if future)."""
        self._proc.clock.advance_to(t)

    def advance(self, dt: float) -> None:
        """Charge ``dt`` and yield to whichever rank is now earliest."""
        self._proc.clock.advance(self._perturbed(dt))
        self._sim._reschedule(self._proc)

    def advance_to(self, t: float) -> None:
        """Advance to absolute time ``t`` and yield."""
        self._proc.clock.advance_to(t)
        self._sim._reschedule(self._proc)

    def yield_now(self) -> None:
        """Give other ranks at earlier virtual times a chance to run."""
        self._sim._reschedule(self._proc)

    # -- blocking --------------------------------------------------------
    def block(
        self,
        check: Callable[[], Any],
        reason: str = "",
        timeout_at: Optional[float] = None,
    ) -> Any:
        """Block until ``check()`` returns non-``None``; return that value.

        ``check`` runs under the engine's single-thread invariant, so it
        may freely read shared state.  It is re-evaluated at every
        scheduling decision.

        With ``timeout_at`` (absolute virtual time), the wait is
        *timed*: if the predicate still fails once no other rank can
        run before ``timeout_at``, the clock advances to the timeout
        and :data:`BLOCK_TIMEOUT` is returned instead.  A predicate
        that becomes true at exactly the timeout wins the tie."""
        return self._sim._block(self._proc, check, reason, timeout_at)

    # -- shared state and tracing ----------------------------------------
    @property
    def shared(self) -> dict:
        """Simulator-wide dictionary for shared hardware models."""
        return self._sim.shared

    @property
    def tracer(self) -> Tracer:
        return self._sim.tracer

    def trace(self, state: str, **info: Any):
        """Context manager recording an MPE-style state interval."""
        return self.tracer.interval(self.rank, state, self._proc.clock, **info)

    # -- coroutines ------------------------------------------------------
    def spawn(
        self,
        fn: Callable[["RankContext"], Any],
        *,
        label: str = "",
        lane: Optional[int] = None,
    ) -> "TaskHandle":
        """Launch ``fn(task_ctx)`` as an engine coroutine.

        The task gets its own scheduling identity (its clock starts at
        this context's ``now``) but keeps this context's logical
        ``rank`` and ``shared`` dict, so metrics, faults, and liveness
        attribute to the spawning rank.  ``lane`` picks the trace lane
        (tid) its spans record under — see :meth:`Simulator.lane_for`.
        Join with :meth:`join`."""
        return self._sim.spawn(self, fn, label=label, lane=lane)

    def join(self, handle: "TaskHandle") -> Any:
        """Block until ``handle`` completes; charge this clock to the
        task's finish time; return its value or re-raise its error."""
        return self._sim.join(self, handle)


class ScopedContext(RankContext):
    """A rank context whose ``shared`` dict is an overlay.

    Multi-tenant admission (``repro.tenancy``) wraps each rank's real
    context in one of these so per-job state keyed in ``shared`` —
    communicator queues, fault injectors, liveness state, the metrics
    registry — resolves per tenant, while the overlay's fall-through
    reads still reach the cluster-wide hardware models (the shared
    file system).  Time, blocking, and tracing stay on the real
    engine ``_Proc``, so scoping changes *naming*, never scheduling."""

    __slots__ = ("_overlay",)

    def __init__(self, ctx: RankContext, overlay: MutableMapping) -> None:
        super().__init__(ctx._sim, ctx._proc)
        self._overlay = overlay

    @property
    def shared(self) -> MutableMapping:
        """The tenant-scoped overlay (reads fall through to the sim)."""
        return self._overlay


class _TaskContext(RankContext):
    """The context an engine coroutine runs under.

    Scheduling identity (``_proc``) is the task's own, so it competes
    in the dispatch order like any rank; *naming* is the parent's —
    ``rank``/``nprocs``/``shared`` all delegate to the spawning
    context, so metrics, fault evaluation, deadline lookups, and
    tenancy overlays resolve exactly as they would inline.  Trace
    spans record under the task's ``lane`` (a distinct tid), keeping
    the tracer's per-key stack discipline while the parent's own spans
    continue on the rank's lane."""

    __slots__ = ("_parent", "lane")

    def __init__(
        self, sim: "Simulator", proc: _Proc, parent: RankContext, lane: int
    ) -> None:
        super().__init__(sim, proc)
        self._parent = parent
        self.rank = parent.rank
        self.nprocs = parent.nprocs
        self.lane = lane

    @property
    def shared(self) -> MutableMapping:
        return self._parent.shared

    def trace(self, state: str, **info: Any):
        return self.tracer.interval(self.lane, state, self._proc.clock, **info)


class Watchdog:
    """Virtual-time progress monitor over a simulation's ranks.

    Every dispatch stamps the rank's ``last_progress`` mark; a rank
    whose mark trails the frontier (the most advanced rank clock) by
    more than ``heartbeat`` virtual seconds is *suspect* — it exists
    but is not keeping up.  Purely observational: consulted by the
    liveness layer and by the engine's hang diagnostics, never blocks
    or wakes anything itself."""

    __slots__ = ("_sim", "heartbeat")

    def __init__(self, sim: "Simulator", heartbeat: float = 0.05) -> None:
        self._sim = sim
        self.heartbeat = heartbeat

    def frontier(self) -> float:
        """The most advanced rank clock (0 before the run starts)."""
        procs = self._sim._procs
        return max((p.clock.now for p in procs), default=0.0)

    def suspects(self) -> list[int]:
        """Ranks alive but trailing the frontier by > heartbeat."""
        frontier = self.frontier()
        return [
            p.rank
            for p in self._sim._procs
            if p.state != _DONE and frontier - p.last_progress > self.heartbeat
        ]


class Simulator:
    """Runs ``nprocs`` rank functions under deterministic virtual time.

    Example::

        sim = Simulator(4)
        def main(ctx):
            ctx.advance(1e-3)
            return ctx.rank * 10
        results = sim.run(main)   # [0, 10, 20, 30]
    """

    def __init__(
        self,
        nprocs: int,
        tracer: Optional[Tracer] = None,
        join_timeout: float = _JOIN_TIMEOUT,
    ) -> None:
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        if join_timeout <= 0:
            raise ValueError(f"join_timeout must be positive, got {join_timeout}")
        self.nprocs = nprocs
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: Wall-clock seconds to wait for rank threads before declaring
        #: a hang (see :class:`repro.errors.SimHang`).
        self.join_timeout = join_timeout
        #: Virtual-time progress monitor over the rank procs.
        self.watchdog = Watchdog(self)
        #: Shared hardware models (file system, network, ...) live here.
        self.shared: dict = {}
        #: Installed :class:`repro.faults.FaultInjector`, or ``None``.
        #: Set via ``FaultPlan.install(sim)``; consulted by
        #: :meth:`RankContext.charge`/:meth:`RankContext.advance` for
        #: the straggler model (other layers find it in ``shared``).
        self.faults = None
        #: Ranks that died fail-stop (:class:`repro.errors.RankCrashed`).
        #: A crashed rank's ``run`` result is ``None``; the remaining
        #: ranks keep running — death is a survivable event, not an
        #: abort.
        self.crashed: set[int] = set()
        self._mu = threading.Lock()
        self._done_event = threading.Event()
        self._procs: list[_Proc] = []
        #: Engine coroutines (see :meth:`spawn`) — scheduled alongside
        #: the rank procs but excluded from ``times``/``makespan`` and
        #: the watchdog, which reason about *ranks*.
        self._tasks: list[_Proc] = []
        self._next_task_id = nprocs
        #: Interned trace lanes: stable key -> tid (see :meth:`lane_for`).
        self._lanes: dict = {}
        self._next_lane = _LANE_BASE
        self._fatal: Optional[BaseException] = None
        self._started = False

    # -- public ----------------------------------------------------------
    def run(
        self,
        main: Callable[..., Any],
        *args: Any,
        per_rank_args: Optional[Sequence[tuple]] = None,
    ) -> list:
        """Execute ``main(ctx, *args)`` on every rank; return all results.

        ``per_rank_args`` optionally supplies a distinct positional
        argument tuple per rank (appended after ``args``).  A
        :class:`Simulator` is single-shot: create a new one per run.
        """
        if self._started:
            raise SimulationError("Simulator.run() may only be called once")
        self._started = True
        if per_rank_args is not None and len(per_rank_args) != self.nprocs:
            raise ValueError(
                f"per_rank_args has {len(per_rank_args)} entries for {self.nprocs} ranks"
            )

        self._procs = [_Proc(r) for r in range(self.nprocs)]
        threads = []
        for proc in self._procs:
            extra = tuple(per_rank_args[proc.rank]) if per_rank_args is not None else ()
            t = threading.Thread(
                target=self._thread_main,
                args=(proc, main, args + extra),
                name=f"sim-rank-{proc.rank}",
                daemon=True,
            )
            proc.thread = t
            threads.append(t)

        for t in threads:
            t.start()
        with self._mu:
            self._dispatch_next()
        while not self._done_event.wait(timeout=self.join_timeout):
            if self._fatal is not None or all(
                p.state == _DONE for p in self._everyone()
            ):
                break  # pragma: no cover - safety net
            # Wall-clock hang: some rank thread is stuck outside the
            # engine's control.  Diagnose it instead of spinning.
            with self._mu:
                if self._fatal is None:
                    self._fatal = SimHang(
                        "simulation hung (wall-clock "
                        f"{self.join_timeout:g}s with no progress): "
                        + self._hang_dump()
                    )
                self._abort_all()
            break

        for t in threads:
            t.join(timeout=self.join_timeout)
            if t.is_alive():
                # A truly wedged (daemon) thread cannot be reclaimed;
                # stop joining and report the hang with diagnostics.
                if self._fatal is None:
                    self._fatal = SimHang(
                        f"thread {t.name} failed to terminate: "
                        + self._hang_dump()
                    )
                break

        if self._fatal is not None:
            raise self._fatal
        return [p.result for p in self._procs]

    def _everyone(self) -> list[_Proc]:
        """Rank procs plus any spawned coroutine procs."""
        return self._procs + self._tasks if self._tasks else self._procs

    def _hang_dump(self) -> str:
        """Per-rank diagnosis for a wall-clock hang: state, blocked-on
        reason, clock, watchdog suspicion, and last trace event."""
        suspects = set(self.watchdog.suspects())
        parts = []
        for p in self._everyone():
            if p.state == _DONE:
                continue
            kind = "rank" if p.rank < self.nprocs else "task"
            line = f"{kind} {p.rank}: {p.state}"
            if p.state == _BLOCKED and p.blocked_on:
                line += f" on {p.blocked_on}"
            line += f" at t={p.clock.now:.6f}"
            if p.rank in suspects:
                line += " [suspect]"
            last = self.tracer.last_event(p.rank)
            if last is not None:
                line += f"; last event {last.state!r} [{last.t0:.6f}..{last.t1:.6f}]"
            parts.append(line)
        return "; ".join(parts) if parts else "(all ranks done)"

    @property
    def times(self) -> list[float]:
        """Final virtual time of every rank (valid after :meth:`run`)."""
        return [p.clock.now for p in self._procs]

    @property
    def makespan(self) -> float:
        """Virtual time at which the last rank finished."""
        return max(self.times) if self._procs else 0.0

    # -- scheduling core ---------------------------------------------------
    # All methods below require self._mu to be held.

    def _runnable(self) -> Optional[_Proc]:
        """Wake any blocked rank whose predicate now holds, then return
        the ready rank with the smallest (clock, rank).

        A *timed* blocked rank competes as a candidate scheduled at
        ``max(clock, timeout_at)``: it fires (waking with
        :data:`BLOCK_TIMEOUT`) only when no ready rank could run before
        its timeout — so any message that could still arrive in virtual
        time beats the timeout."""
        best: Optional[_Proc] = None
        best_key = None
        timed: Optional[_Proc] = None
        timed_key = None
        for p in self._everyone():
            if p.state == _BLOCKED:
                value = p.check() if p.check is not None else None
                if value is not None:
                    p.wake_value = value
                    p.check = None
                    p.timeout_at = None
                    p.state = _READY
                elif p.timeout_at is not None:
                    key = (max(p.clock.now, p.timeout_at), p.rank)
                    if timed is None or key < timed_key:
                        timed, timed_key = p, key
            if p.state == _READY:
                key = (p.clock.now, p.rank)
                if best is None or key < best_key:
                    best, best_key = p, key
        if timed is not None and (best is None or timed_key < best_key):
            timed.clock.advance_to(timed.timeout_at)
            timed.wake_value = BLOCK_TIMEOUT
            timed.check = None
            timed.timeout_at = None
            timed.state = _READY
            return timed
        return best

    def _dispatch_next(self) -> None:
        """Pick the next rank to run and wake it (or detect deadlock)."""
        if self._fatal is not None:
            self._abort_all()
            return
        nxt = self._runnable()
        if nxt is not None:
            nxt.state = _RUNNING
            nxt.last_progress = nxt.clock.now
            nxt.event.set()
            return
        if all(p.state == _DONE for p in self._everyone()):
            self._done_event.set()
            return
        # No runnable rank, some blocked: deadlock.
        dump = "; ".join(
            f"{'rank' if p.rank < self.nprocs else 'task'} {p.rank}: {p.state}"
            + (f" on {p.blocked_on}" if p.state == _BLOCKED and p.blocked_on else "")
            + f" at t={p.clock.now:.6f}"
            for p in self._everyone()
            if p.state != _DONE
        )
        self._fatal = SimDeadlock(f"all live ranks are blocked: {dump}")
        self._abort_all()

    def _abort_all(self) -> None:
        """Wake everything so threads can unwind; requires _mu held."""
        for p in self._everyone():
            p.event.set()
        self._done_event.set()

    # -- handoff (called by rank threads) ------------------------------------
    def _park(self, proc: _Proc) -> None:
        """Wait (outside the mutex) until this rank is dispatched."""
        while not proc.event.wait(timeout=self.join_timeout):
            if self._fatal is not None:  # pragma: no cover - safety net
                break
        proc.event.clear()
        if self._fatal is not None:
            raise _SimAborted()

    def _reschedule(self, proc: _Proc) -> None:
        """Voluntarily yield: let the earliest ready rank run next."""
        with self._mu:
            proc.state = _READY
            self._dispatch_next()
        self._park(proc)

    def _block(
        self,
        proc: _Proc,
        check: Callable[[], Any],
        reason: str,
        timeout_at: Optional[float] = None,
    ) -> Any:
        with self._mu:
            proc.check = check
            proc.blocked_on = reason
            proc.timeout_at = timeout_at
            proc.state = _BLOCKED
            self._dispatch_next()
        self._park(proc)
        proc.blocked_on = ""
        value, proc.wake_value = proc.wake_value, None
        return value

    # -- coroutines ----------------------------------------------------------
    def lane_for(self, key: Any, label: str) -> int:
        """Intern a stable trace lane (Chrome tid) for ``key``.

        Lanes are how overlapping coroutine spans coexist with the
        rank's own spans: the tracer keeps one open-span stack per tid,
        so each concurrently-active task needs its own lane.  Callers
        reuse a lane only for one task at a time (e.g. per buffer-pool
        slot), which preserves the stack discipline across reuse."""
        lane = self._lanes.get(key)
        if lane is None:
            lane = self._next_lane
            self._next_lane += 1
            self._lanes[key] = lane
        self.tracer.thread_labels[lane] = label
        return lane

    def spawn(
        self,
        parent: RankContext,
        fn: Callable[[RankContext], Any],
        *,
        label: str = "",
        lane: Optional[int] = None,
    ) -> TaskHandle:
        """Launch ``fn(task_ctx)`` as an engine coroutine (see
        :meth:`RankContext.spawn`).  Must be called from a running
        rank/task thread — the engine's single-thread invariant makes
        the bookkeeping here race free."""
        task_id = self._next_task_id
        self._next_task_id += 1
        handle = TaskHandle(label or f"task-{task_id}")
        proc = _Proc(task_id)
        proc.clock.advance_to(parent.now)
        proc.last_progress = parent.now
        handle.t_start = parent.now
        ctx = _TaskContext(self, proc, parent, lane if lane is not None else task_id)
        t = threading.Thread(
            target=self._task_main,
            args=(proc, handle, ctx, fn),
            name=f"sim-task-{task_id}",
            daemon=True,
        )
        proc.thread = t
        with self._mu:
            self._tasks.append(proc)
        t.start()
        return handle

    def join(self, ctx: RankContext, handle: TaskHandle) -> Any:
        """Block ``ctx`` until ``handle`` completes; charge the joiner's
        clock to the task's end time; return its value or re-raise the
        captured error (the original exception object, so typed payloads
        and cause chains survive the join unchanged)."""
        if not handle.done:
            ctx.block(
                lambda: True if handle.done else None,
                reason=f"join:{handle.label}",
            )
        ctx.charge_to(handle.t_end)
        if handle.error is not None:
            raise handle.error
        return handle.value

    def _task_main(
        self, proc: _Proc, handle: TaskHandle, ctx: "_TaskContext", fn: Callable
    ) -> None:
        try:
            self._park(proc)
            handle.t_start = proc.clock.now
            handle.value = fn(ctx)
            handle.t_end = proc.clock.now
            handle.done = True
            with self._mu:
                proc.state = _DONE
                self._dispatch_next()
        except _SimAborted:
            handle.t_end = proc.clock.now
            handle.done = True
            with self._mu:
                proc.state = _DONE
                self._done_event.set()
        except (Exception, RankCrashed) as exc:  # noqa: BLE001 - delivered at join
            # Typed failures (RankCrashed, DeadlineExceeded, storage
            # errors, ...) are *captured*, not fatal: the joining rank
            # re-raises the same object and its own handling applies.
            # RankCrashed is a BaseException so no handler between the
            # crash site and here can swallow it — but a *task's* death
            # belongs to the rank that joins it, not to the engine.
            handle.error = exc
            handle.t_end = proc.clock.now
            handle.done = True
            with self._mu:
                proc.state = _DONE
                self._dispatch_next()
        except BaseException as exc:  # noqa: BLE001 - report any task failure
            failure = RankFailed(ctx.rank, repr(exc))
            failure.__cause__ = exc
            handle.error = failure
            handle.t_end = proc.clock.now
            handle.done = True
            with self._mu:
                if self._fatal is None:
                    self._fatal = failure
                proc.state = _DONE
                self._abort_all()

    # -- rank thread ---------------------------------------------------------
    def _thread_main(self, proc: _Proc, main: Callable[..., Any], args: tuple) -> None:
        ctx = RankContext(self, proc)
        try:
            self._park(proc)
            proc.result = main(ctx, *args)
            with self._mu:
                proc.state = _DONE
                self._dispatch_next()
        except _SimAborted:
            with self._mu:
                proc.state = _DONE
                self._done_event.set()
        except RankCrashed:
            # Fail-stop death: this rank is gone, the others live on.
            # Its result stays None; messages queued for it rot
            # harmlessly in the communicator state.
            with self._mu:
                self.crashed.add(proc.rank)
                proc.state = _DONE
                self._dispatch_next()
        except BaseException as exc:  # noqa: BLE001 - report any rank failure
            failure = RankFailed(proc.rank, repr(exc))
            failure.__cause__ = exc
            with self._mu:
                if self._fatal is None:
                    self._fatal = failure
                proc.state = _DONE
                self._abort_all()


def run_simulation(
    nprocs: int,
    main: Callable[..., Any],
    *args: Any,
    tracer: Optional[Tracer] = None,
    per_rank_args: Optional[Sequence[tuple]] = None,
) -> tuple[list, "Simulator"]:
    """Convenience wrapper: build a Simulator, run it, return (results, sim)."""
    sim = Simulator(nprocs, tracer=tracer)
    results = sim.run(main, *args, per_rank_args=per_rank_args)
    return results, sim


def iter_ranks(n: int) -> Iterator[int]:
    """Tiny helper used in docs/examples."""
    return iter(range(n))
