"""Deterministic discrete-event substrate.

Ranks run as ordinary Python threads, but a global scheduler allows
exactly one to execute at a time and always resumes the runnable rank
with the smallest virtual clock (rank id breaks ties).  This yields:

* determinism — given deterministic rank code, every run produces the
  same virtual timings and the same event order;
* race freedom — shared simulation state (file system servers, the lock
  manager, message queues) is only ever touched by the single running
  thread, so no fine-grained locking is needed anywhere above the
  engine.

The public pieces are :class:`~repro.sim.engine.Simulator`,
:class:`~repro.sim.engine.RankContext`, and the MPE-style
:class:`~repro.sim.trace.Tracer`.
"""

from repro.sim.clock import VirtualClock
from repro.sim.engine import BLOCK_TIMEOUT, RankContext, Simulator, Watchdog
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "VirtualClock",
    "Simulator",
    "RankContext",
    "Tracer",
    "TraceEvent",
    "Watchdog",
    "BLOCK_TIMEOUT",
]
