"""MPE-style state tracing.

The paper used MPE logging to attribute the new implementation's
slowdowns to datatype-processing overhead.  :class:`Tracer` plays the
same role here: rank code wraps phases in ``ctx.trace("io")`` /
``ctx.trace("comm")`` / ``ctx.trace("compute")`` intervals, and the
analysis helpers aggregate virtual time per state so experiments can
report *where* time went, not just how much.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.sim.clock import VirtualClock

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One closed state interval on one rank, in virtual time."""

    rank: int
    state: str
    t0: float
    t1: float
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class Tracer:
    """Collects :class:`TraceEvent` records; cheap no-op when disabled."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    @contextmanager
    def interval(
        self, rank: int, state: str, clock: VirtualClock, **info: Any
    ) -> Iterator[None]:
        """Record a state interval spanning the clock's virtual time."""
        if not self.enabled:
            yield
            return
        t0 = clock.now
        try:
            yield
        finally:
            self.events.append(TraceEvent(rank, state, t0, clock.now, dict(info)))

    def clear(self) -> None:
        self.events.clear()

    # -- analysis --------------------------------------------------------
    def time_by_state(self, rank: Optional[int] = None) -> Dict[str, float]:
        """Total virtual seconds per state, optionally for one rank.

        Nested intervals are all counted (the caller chooses
        non-overlapping states when exclusive accounting is wanted)."""
        totals: Dict[str, float] = {}
        for ev in self.events:
            if rank is not None and ev.rank != rank:
                continue
            totals[ev.state] = totals.get(ev.state, 0.0) + ev.duration
        return totals

    def ranks(self) -> List[int]:
        return sorted({ev.rank for ev in self.events})

    def last_event(self, rank: int) -> Optional[TraceEvent]:
        """The most recently *closed* interval on ``rank`` (or None).

        Used by the engine's hang diagnostics: when a rank never
        terminates, its last closed interval is the best available clue
        to where it got stuck."""
        for ev in reversed(self.events):
            if ev.rank == rank:
                return ev
        return None

    def summary(self) -> str:
        """Human-readable table: per-state totals across all ranks."""
        totals = self.time_by_state()
        if not totals:
            return "(no trace events)"
        width = max(len(s) for s in totals)
        lines = [
            f"{state:<{width}}  {seconds * 1e3:10.3f} ms"
            for state, seconds in sorted(totals.items(), key=lambda kv: -kv[1])
        ]
        return "\n".join(lines)

    def to_jsonl(self) -> str:
        """Serialize all events as JSON lines (one event per line),
        suitable for external timeline viewers or diffing runs."""
        import json

        lines = []
        for ev in self.events:
            lines.append(
                json.dumps(
                    {
                        "rank": ev.rank,
                        "state": ev.state,
                        "t0": ev.t0,
                        "t1": ev.t1,
                        "info": ev.info,
                    },
                    sort_keys=True,
                )
            )
        return "\n".join(lines)

    @classmethod
    def from_jsonl(cls, text: str) -> "Tracer":
        """Rebuild a tracer from :meth:`to_jsonl` output."""
        import json

        tracer = cls(enabled=True)
        for line in text.splitlines():
            if not line.strip():
                continue
            d = json.loads(line)
            tracer.events.append(
                TraceEvent(d["rank"], d["state"], d["t0"], d["t1"], d.get("info", {}))
            )
        return tracer

    def timeline(self, rank: int, width: int = 60) -> str:
        """ASCII timeline of one rank's top-level states.

        Each state gets a row; '#' marks the buckets of virtual time
        during which an interval of that state was open."""
        events = [ev for ev in self.events if ev.rank == rank]
        if not events:
            return f"(no events for rank {rank})"
        t_end = max(ev.t1 for ev in events)
        t_start = min(ev.t0 for ev in events)
        span = max(t_end - t_start, 1e-12)
        states = sorted({ev.state for ev in events})
        name_w = max(len(s) for s in states)
        rows = []
        for state in states:
            cells = [" "] * width
            for ev in events:
                if ev.state != state:
                    continue
                b0 = int((ev.t0 - t_start) / span * (width - 1))
                b1 = int((ev.t1 - t_start) / span * (width - 1))
                for b in range(b0, b1 + 1):
                    cells[b] = "#"
            rows.append(f"{state:<{name_w}} |{''.join(cells)}|")
        header = (
            f"rank {rank}: {t_start * 1e3:.3f} ms .. {t_end * 1e3:.3f} ms "
            f"({span * 1e3:.3f} ms span)"
        )
        return "\n".join([header] + rows)
