"""MPE-style state tracing, upgraded to structured nested spans.

The paper used MPE logging to attribute the new implementation's
slowdowns to datatype-processing overhead.  :class:`Tracer` plays the
same role here: rank code wraps phases in ``ctx.trace("tp:io")`` /
``ctx.trace("tp:exchange")`` intervals, and the analysis helpers
aggregate virtual time per state so experiments can report *where*
time went, not just how much.

Spans nest: an interval opened while another is open on the same rank
records the enclosing span as its ``parent`` (``sid`` identifies each
span).  The per-state aggregation (:meth:`Tracer.time_by_state`) is
unchanged — nested spans are all counted — and two structured exports
ride on top:

* :meth:`Tracer.to_chrome_trace` — Chrome ``trace_event`` JSON
  (``{"traceEvents": [...]}``, complete ``"X"`` events, one thread per
  rank), loadable in Perfetto / ``chrome://tracing``;
* :meth:`Tracer.to_jsonl` — the line-per-event diffable form.

Phase-boundary hooks (:meth:`Tracer.add_hook`) fire at every span open
and close, so harnesses and benchmarks can meter phases live instead
of poking implementation internals.  Hooks fire even when event
*recording* is disabled; with neither enabled the trace context is a
bare ``yield`` — zero overhead on the fast path.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.sim.clock import VirtualClock

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One closed span on one rank, in virtual time.

    ``sid`` identifies the span; ``parent`` is the enclosing open
    span's sid (``None`` at top level) and ``depth`` its nesting depth
    — 0 for top-level spans."""

    rank: int
    state: str
    t0: float
    t1: float
    info: Dict[str, Any] = field(default_factory=dict)
    sid: int = 0
    parent: Optional[int] = None
    depth: int = 0

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class Tracer:
    """Collects :class:`TraceEvent` spans; cheap no-op when disabled."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        #: Phase-boundary hooks (objects with span_open/span_close).
        self._hooks: List[Any] = []
        #: Per-rank stack of open span sids.
        self._open: Dict[int, List[int]] = {}
        #: Optional rank -> display label (multi-tenant runs set e.g.
        #: ``"A:r0"`` so one Chrome trace attributes rows per tenant).
        self.thread_labels: Dict[int, str] = {}
        self._next_sid = 1

    # -- hooks -----------------------------------------------------------
    def add_hook(self, hook: Any) -> Any:
        """Register a phase-boundary hook and return it.

        ``hook.span_open(rank, state, t, depth, info)`` fires when a
        span opens, ``hook.span_close(event)`` with the closed
        :class:`TraceEvent` when it closes.  Hooks fire even when the
        tracer's event recording is disabled."""
        self._hooks.append(hook)
        return hook

    def remove_hook(self, hook: Any) -> None:
        self._hooks.remove(hook)

    # -- recording -------------------------------------------------------
    @contextmanager
    def interval(
        self, rank: int, state: str, clock: VirtualClock, **info: Any
    ) -> Iterator[None]:
        """Record a span covering the clock's virtual time."""
        if not self.enabled and not self._hooks:
            yield
            return
        stack = self._open.setdefault(rank, [])
        sid = self._next_sid
        self._next_sid += 1
        parent = stack[-1] if stack else None
        depth = len(stack)
        stack.append(sid)
        t0 = clock.now
        for hook in self._hooks:
            hook.span_open(rank, state, t0, depth, info)
        try:
            yield
        finally:
            stack.pop()
            ev = TraceEvent(rank, state, t0, clock.now, dict(info), sid, parent, depth)
            if self.enabled:
                self.events.append(ev)
            for hook in self._hooks:
                hook.span_close(ev)

    def clear(self) -> None:
        self.events.clear()
        self._open.clear()

    # -- analysis --------------------------------------------------------
    def time_by_state(self, rank: Optional[int] = None) -> Dict[str, float]:
        """Total virtual seconds per state, optionally for one rank.

        Nested spans are all counted (the caller chooses
        non-overlapping states when exclusive accounting is wanted)."""
        totals: Dict[str, float] = {}
        for ev in self.events:
            if rank is not None and ev.rank != rank:
                continue
            totals[ev.state] = totals.get(ev.state, 0.0) + ev.duration
        return totals

    def ranks(self) -> List[int]:
        return sorted({ev.rank for ev in self.events})

    def children_of(self, span: "TraceEvent | int") -> List[TraceEvent]:
        """Closed spans directly nested under ``span`` (an event or sid)."""
        sid = span.sid if isinstance(span, TraceEvent) else span
        return [ev for ev in self.events if ev.parent == sid]

    def top_level(self, rank: Optional[int] = None) -> List[TraceEvent]:
        """Closed spans with no enclosing span (optionally one rank)."""
        return [
            ev
            for ev in self.events
            if ev.parent is None and (rank is None or ev.rank == rank)
        ]

    def last_event(self, rank: int) -> Optional[TraceEvent]:
        """The most recently *closed* span on ``rank`` (or None).

        Used by the engine's hang diagnostics: when a rank never
        terminates, its last closed span is the best available clue
        to where it got stuck."""
        for ev in reversed(self.events):
            if ev.rank == rank:
                return ev
        return None

    def summary(self) -> str:
        """Human-readable table: per-state totals across all ranks."""
        totals = self.time_by_state()
        if not totals:
            return "(no trace events)"
        width = max(len(s) for s in totals)
        lines = [
            f"{state:<{width}}  {seconds * 1e3:10.3f} ms"
            for state, seconds in sorted(totals.items(), key=lambda kv: -kv[1])
        ]
        return "\n".join(lines)

    # -- structured exports ----------------------------------------------
    def to_chrome_trace(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` JSON object (Perfetto-loadable).

        One complete (``"X"``) event per closed span — microsecond
        timestamps, ``tid`` = rank — plus thread-name metadata so the
        viewer labels each row ``rank N`` (or the entry from
        :attr:`thread_labels`, e.g. ``"A:r0"`` in multi-tenant runs).
        Span attributes travel in ``args`` along with the span/parent
        ids, so the nesting recorded here is recoverable from the
        export."""
        events: List[Dict[str, Any]] = []
        for rank in self.ranks():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": rank,
                    "ts": 0,
                    "args": {
                        "name": self.thread_labels.get(rank, f"rank {rank}")
                    },
                }
            )
        for ev in sorted(self.events, key=lambda e: (e.t0, e.rank, e.sid)):
            args: Dict[str, Any] = {"sid": ev.sid}
            if ev.parent is not None:
                args["parent"] = ev.parent
            args.update(ev.info)
            events.append(
                {
                    "name": ev.state,
                    "cat": ev.state.partition(":")[0],
                    "ph": "X",
                    "pid": 0,
                    "tid": ev.rank,
                    "ts": ev.t0 * 1e6,
                    "dur": ev.duration * 1e6,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_jsonl(self) -> str:
        """Serialize all spans as JSON lines (one event per line),
        suitable for external timeline viewers or diffing runs."""
        import json

        lines = []
        for ev in self.events:
            lines.append(
                json.dumps(
                    {
                        "rank": ev.rank,
                        "state": ev.state,
                        "t0": ev.t0,
                        "t1": ev.t1,
                        "info": ev.info,
                        "sid": ev.sid,
                        "parent": ev.parent,
                        "depth": ev.depth,
                    },
                    sort_keys=True,
                )
            )
        return "\n".join(lines)

    @classmethod
    def from_jsonl(cls, text: str) -> "Tracer":
        """Rebuild a tracer from :meth:`to_jsonl` output."""
        import json

        tracer = cls(enabled=True)
        max_sid = 0
        for line in text.splitlines():
            if not line.strip():
                continue
            d = json.loads(line)
            sid = d.get("sid", 0)
            max_sid = max(max_sid, sid)
            tracer.events.append(
                TraceEvent(
                    d["rank"],
                    d["state"],
                    d["t0"],
                    d["t1"],
                    d.get("info", {}),
                    sid,
                    d.get("parent"),
                    d.get("depth", 0),
                )
            )
        tracer._next_sid = max_sid + 1
        return tracer

    def timeline(self, rank: int, width: int = 60) -> str:
        """ASCII timeline of one rank's top-level states.

        Each state gets a row; '#' marks the buckets of virtual time
        during which a span of that state was open."""
        events = [ev for ev in self.events if ev.rank == rank]
        if not events:
            return f"(no events for rank {rank})"
        t_end = max(ev.t1 for ev in events)
        t_start = min(ev.t0 for ev in events)
        span = max(t_end - t_start, 1e-12)
        states = sorted({ev.state for ev in events})
        name_w = max(len(s) for s in states)
        rows = []
        for state in states:
            cells = [" "] * width
            for ev in events:
                if ev.state != state:
                    continue
                b0 = int((ev.t0 - t_start) / span * (width - 1))
                b1 = int((ev.t1 - t_start) / span * (width - 1))
                for b in range(b0, b1 + 1):
                    cells[b] = "#"
            rows.append(f"{state:<{name_w}} |{''.join(cells)}|")
        header = (
            f"rank {rank}: {t_start * 1e3:.3f} ms .. {t_end * 1e3:.3f} ms "
            f"({span * 1e3:.3f} ms span)"
        )
        return "\n".join([header] + rows)
