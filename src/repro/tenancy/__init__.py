"""Multi-tenant shared-filesystem engine (docs/multi_tenant.md).

One :class:`Cluster` = one shared file system + N concurrent tenant
jobs in one simulator, with per-OST scheduling policies, per-tenant
metric namespaces, per-tenant fault plans, and synthetic background
traffic."""

from repro.tenancy.cluster import Cluster, TenantResult, TenantSpec
from repro.tenancy.traffic import (
    TRAFFIC_KINDS,
    make_traffic,
    metadata_churn,
    small_random_io,
    streaming_scan,
)

__all__ = [
    "Cluster",
    "TenantSpec",
    "TenantResult",
    "streaming_scan",
    "metadata_churn",
    "small_random_io",
    "make_traffic",
    "TRAFFIC_KINDS",
]
