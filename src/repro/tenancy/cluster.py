"""Multi-tenant admission: N concurrent jobs on one shared file system.

The single-job :class:`~repro.obs.session.Session` leaves the OSTs and
lock manager idle except for the workload under test — exactly the gap
EXPERIMENTS.md records against the paper's production-Lustre numbers.
A :class:`Cluster` closes it: one shared
:class:`~repro.fs.filesystem.SimFileSystem` (hence one set of OST
queues, one page store per path, one extent lock table) admits several
*tenant* jobs into **one** :class:`~repro.sim.engine.Simulator`, so
their collectives genuinely interleave in virtual time.

Isolation is by construction, not convention:

* each tenant's ranks get a :class:`~repro.sim.engine.ScopedContext`
  whose ``shared`` dict is a :class:`_TenantShared` overlay — reads
  fall through to the cluster-wide dict, writes land per-tenant — so
  communicator queues, fault injectors, liveness state, and the
  metrics registry resolve per job while the hardware stays shared;
* metrics write through a ``tenant.<name>.`` prefix view of the one
  cluster registry (:class:`~repro.obs.metrics.PrefixRegistry`), so a
  tenant's slice can be folded out and compared against its solo run;
* file-system clients identify as ``(tenant, local_rank)`` composite
  ids, so two tenants' rank 0 never alias on the lock table, the cache
  revocation map, or the waits-for deadlock graph;
* fault plans are per tenant: each gets its own
  :class:`~repro.faults.FaultInjector` (addressing the tenant's *local*
  ranks) in its overlay, and the engine's global straggler hook is a
  :class:`_ClusterFaults` composite that routes a world rank to the
  owning tenant's injector.

Scheduling contention is the shared file system's job — see
:mod:`repro.fs.schedule` for the ``fifo`` / ``fair`` / ``wfq`` OST
policies and the ``tenant_priority`` hint that feeds ``wfq`` weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, MutableMapping, Optional, Tuple, Union

from repro.config import CostModel, DEFAULT_COST_MODEL
from repro.errors import SimulationError
from repro.faults.plan import FAULTS_KEY
from repro.obs.metrics import METRICS_KEY, MetricsRegistry

__all__ = ["TenantSpec", "TenantResult", "Cluster"]


class _TenantShared(MutableMapping):
    """Copy-on-write overlay over the simulator's ``shared`` dict.

    Reads fall through to the base (the cluster's shared hardware
    models); writes — including ``setdefault`` misses, which is how
    the communicator, liveness, and integrity layers intern their
    state — land in the tenant-local layer.  One overlay per tenant,
    shared by all of that tenant's ranks."""

    __slots__ = ("_base", "_local")

    def __init__(self, base: MutableMapping) -> None:
        self._base = base
        self._local: Dict[Any, Any] = {}

    def __getitem__(self, key: Any) -> Any:
        if key in self._local:
            return self._local[key]
        return self._base[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._local[key] = value

    def __delitem__(self, key: Any) -> None:
        del self._local[key]

    def __iter__(self) -> Iterator[Any]:
        seen = set(self._local)
        yield from self._local
        for key in self._base:
            if key not in seen:
                yield key

    def __len__(self) -> int:
        return sum(1 for _ in self)


class _ClusterFaults:
    """Engine-facing fault composite: routes world ranks to tenants.

    The engine's straggler hook (:meth:`RankContext._perturbed`) calls
    ``cpu_factor(world_rank, now)`` then — if slowed — immediately
    ``note_straggler(extra)`` on the same object, single-threaded; the
    composite resolves the world rank to the owning tenant's injector
    and local rank, memoizing the injector between the two calls."""

    def __init__(self) -> None:
        #: world rank -> (tenant injector, tenant-local rank).
        self._map: Dict[int, Tuple[Any, int]] = {}
        self._last: Any = None

    def register(self, world_rank: int, injector: Any, local_rank: int) -> None:
        self._map[world_rank] = (injector, local_rank)

    def cpu_factor(self, rank: int, now: float) -> float:
        entry = self._map.get(rank)
        if entry is None:
            self._last = None
            return 1.0
        injector, local = entry
        self._last = injector
        return injector.cpu_factor(local, now)

    def note_straggler(self, extra: float) -> None:
        if self._last is not None:
            self._last.note_straggler(extra)


@dataclass
class TenantSpec:
    """One admitted job: shape, workload, and its private knobs.

    ``kind`` selects the harness: ``"collective"`` opens a
    :class:`~repro.core.CollectiveFile` per rank and calls
    ``body(ctx, comm, f)``; ``"raw"`` (traffic generators) hands the
    body a bare :class:`~repro.fs.client.FSClient` instead —
    ``body(ctx, comm, client)``."""

    name: str
    body: Callable[..., Any]
    nprocs: int = 4
    path: str = ""
    hints: Any = None
    plan: Any = None
    arrival: float = 0.0
    kind: str = "collective"
    #: Filled at admission: this tenant's world ranks.
    members: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def weight(self) -> float:
        """QoS weight (the ``tenant_priority`` hint) for ``wfq``."""
        return float(self.hints["tenant_priority"])


@dataclass
class TenantResult:
    """Per-tenant outcome of one :meth:`Cluster.run`."""

    name: str
    #: One ``body`` return value per tenant-local rank.
    results: List[Any]
    #: Post-open barrier time (allreduce-max over the tenant's ranks).
    t0: float
    #: Slowest rank's completion time.
    t1: float

    @property
    def makespan(self) -> float:
        return max(self.t1 - self.t0, 0.0)


class Cluster:
    """N concurrent tenant jobs contending for one shared file system.

    Parameters
    ----------
    cost:
        The cluster-wide cost model (OST count, stripe size, network).
    scheduler:
        Per-OST serving discipline for the shared file system —
        ``"fifo"`` (the single-job default), ``"fair"``, or ``"wfq"``
        (see :mod:`repro.fs.schedule`).
    lock_granularity:
        Optional extent-lock granularity override.
    trace:
        Record structured spans; the one Chrome trace labels each row
        ``<tenant>:r<local_rank>``.
    storage_faults:
        ``None``, a scenario spec, or a
        :class:`~repro.faults.FaultPlan` of **storage-side** events
        (``ost_crash`` / ``ost_slow`` / ``ost_flap``).  Per-tenant
        ``faults=`` plans live in each tenant's overlay and mask the
        shared injector, so OST outages — which belong to the shared
        hardware, not any one job — install here, on the file system
        itself, and hit every tenant (``docs/storage_faults.md``).
    queue_limit / breaker:
        Admission bound and per-OST circuit breakers, forwarded to the
        shared :class:`~repro.fs.filesystem.SimFileSystem`.

    Usage::

        cl = Cluster(scheduler="fair")
        cl.add_tenant("A", body_a, nprocs=4, hints={"coll_impl": "new"})
        cl.add_tenant("B", body_b, nprocs=2, arrival=0.002)
        cl.add_background("scan", nprocs=1)
        out = cl.run()                    # {"A": TenantResult, ...}
        cl.registry.value("tenant.A.fs.bytes.written")
    """

    def __init__(
        self,
        *,
        cost: CostModel = DEFAULT_COST_MODEL,
        scheduler: Any = "fifo",
        lock_granularity: Optional[int] = None,
        trace: bool = False,
        storage_faults: Any = None,
        queue_limit: Optional[float] = None,
        breaker: Any = True,
    ) -> None:
        from repro.faults.injector import FaultInjector
        from repro.fs.filesystem import SimFileSystem
        from repro.obs.session import Session
        from repro.sim.trace import Tracer

        self.cost = cost
        #: The one cluster-wide registry; tenants write through
        #: ``tenant.<name>.`` prefix views of it.
        self.registry = MetricsRegistry()
        self.tracer = Tracer(enabled=trace)
        self.storage_plan = Session._resolve_plan(storage_faults)
        storage_injector = None
        if self.storage_plan is not None:
            storage_injector = FaultInjector(self.storage_plan)
            storage_injector.stats.rebind(self.registry)
        self.storage_faults = storage_injector
        self.fs = SimFileSystem(
            cost,
            lock_granularity=lock_granularity,
            registry=self.registry,
            scheduler=scheduler,
            storage_faults=storage_injector,
            queue_limit=queue_limit,
            breaker=breaker,
        )
        self.tenants: List[TenantSpec] = []
        self._background = 0
        #: The most recent run's simulator (``None`` before any run).
        self.sim = None
        self._results: Dict[str, TenantResult] = {}

    # -- admission -------------------------------------------------------
    def add_tenant(
        self,
        name: str,
        body: Callable[..., Any],
        *,
        nprocs: int = 4,
        path: Optional[str] = None,
        hints: Union[None, Dict[str, Any], Any] = None,
        faults: Any = None,
        arrival: float = 0.0,
        kind: str = "collective",
    ) -> TenantSpec:
        """Admit one job.  ``path`` defaults to a private per-tenant
        file (tenants still contend on the shared OST queues); pass the
        same path to two tenants to add lock-table interference.
        ``arrival`` delays the job's start in virtual seconds (loosely
        coupled admission).  ``faults`` is a plan/scenario private to
        this tenant, addressing its *local* ranks."""
        from repro.mpi.hints import Hints
        from repro.obs.session import Session

        if nprocs <= 0:
            raise SimulationError(f"tenant {name!r}: nprocs must be positive")
        if arrival < 0.0:
            raise SimulationError(f"tenant {name!r}: arrival must be >= 0")
        if kind not in ("collective", "raw"):
            raise SimulationError(f"tenant {name!r}: unknown kind {kind!r}")
        if any(t.name == name for t in self.tenants):
            raise SimulationError(f"duplicate tenant name {name!r}")
        if hints is None:
            hints = Hints()
        elif not isinstance(hints, Hints):
            hints = Hints(**dict(hints))
        spec = TenantSpec(
            name=name,
            body=body,
            nprocs=nprocs,
            path=path if path is not None else f"/data/{name}",
            hints=hints,
            plan=Session._resolve_plan(faults),
            arrival=arrival,
            kind=kind,
        )
        self.tenants.append(spec)
        return spec

    def add_background(
        self,
        kind: str,
        *,
        name: Optional[str] = None,
        nprocs: int = 1,
        path: Optional[str] = None,
        arrival: float = 0.0,
        priority: int = 1,
        **params: Any,
    ) -> TenantSpec:
        """Admit a synthetic background-traffic tenant.

        ``kind`` is a :data:`repro.tenancy.traffic.TRAFFIC_KINDS` name
        (``scan`` / ``metadata`` / ``random``); ``params`` are passed
        to the generator factory."""
        from repro.tenancy.traffic import make_traffic

        self._background += 1
        name = name if name is not None else f"bg{self._background}-{kind}"
        body = make_traffic(kind, **params)
        return self.add_tenant(
            name,
            body,
            nprocs=nprocs,
            path=path,
            hints={"tenant_priority": priority},
            arrival=arrival,
            kind="raw",
        )

    # -- running ---------------------------------------------------------
    @property
    def nprocs(self) -> int:
        """Total world size (sum of tenant sizes)."""
        return sum(t.nprocs for t in self.tenants)

    def run(self) -> Dict[str, TenantResult]:
        """Run every admitted tenant concurrently; returns per-tenant
        results keyed by name.  Single-shot, like the simulator."""
        from repro.core.file_handle import CollectiveFile, sanctioned_construction
        from repro.faults.injector import FaultInjector
        from repro.fs.client import FSClient
        from repro.mpi.comm import Communicator
        from repro.sim.engine import ScopedContext, Simulator

        if not self.tenants:
            raise SimulationError("Cluster.run() with no admitted tenants")
        sim = Simulator(self.nprocs, tracer=self.tracer)
        sim.shared[METRICS_KEY] = self.registry
        composite = _ClusterFaults()
        have_faults = False

        per_rank: List[Tuple[TenantSpec, _TenantShared, int]] = []
        base = 0
        for spec in self.tenants:
            spec.members = tuple(range(base, base + spec.nprocs))
            base += spec.nprocs
            overlay = _TenantShared(sim.shared)
            overlay[METRICS_KEY] = self.registry.view(prefix=f"tenant.{spec.name}.")
            injector = None
            if spec.plan is not None:
                injector = FaultInjector(spec.plan)
                injector.stats.rebind(overlay[METRICS_KEY])
                overlay[FAULTS_KEY] = injector
                have_faults = True
            for local, world in enumerate(spec.members):
                if injector is not None:
                    composite.register(world, injector, local)
                self.fs.register_tenant(
                    (spec.name, local), spec.name, weight=spec.weight
                )
                self.tracer.thread_labels[world] = f"{spec.name}:r{local}"
                per_rank.append((spec, overlay, local))
        if have_faults:
            sim.faults = composite

        cluster = self

        def main(ctx, spec: TenantSpec, overlay: _TenantShared, local: int):
            scoped = ScopedContext(ctx, overlay)
            if spec.arrival > 0.0:
                scoped.advance_to(spec.arrival)
            comm = Communicator(
                scoped,
                cluster.cost,
                _comm_id=f"tenant:{spec.name}",
                _rank=local,
                _members=spec.members,
            )
            client_id = (spec.name, local)
            if spec.kind == "collective":
                with sanctioned_construction():
                    f = CollectiveFile(
                        scoped,
                        comm,
                        cluster.fs,
                        spec.path,
                        hints=spec.hints,
                        cost=cluster.cost,
                        client_id=client_id,
                    )
                t0 = comm.allreduce(scoped.now, op=max)
                try:
                    out = spec.body(scoped, comm, f)
                finally:
                    f.close()
            else:
                client = FSClient(cluster.fs, scoped, client_id=client_id)
                t0 = comm.allreduce(scoped.now, op=max)
                out = spec.body(scoped, comm, client)
            t1 = comm.allreduce(scoped.now, op=max)
            return (spec.name, out, t0, t1)

        self.sim = sim
        raw = sim.run(main, per_rank_args=per_rank)

        self._results = {}
        for spec in self.tenants:
            rows = [raw[w] for w in spec.members]
            self._results[spec.name] = TenantResult(
                name=spec.name,
                results=[r[1] for r in rows],
                t0=rows[0][2],
                t1=rows[0][3],
            )
        return self._results

    # -- results ---------------------------------------------------------
    @property
    def results(self) -> Dict[str, TenantResult]:
        return self._results

    @property
    def makespans(self) -> Dict[str, float]:
        """Per-tenant makespans of the most recent run."""
        return {name: r.makespan for name, r in self._results.items()}

    @property
    def spread(self) -> float:
        """Cross-tenant makespan spread (max − min) — the fairness
        figure of merit the schedulers are compared on."""
        spans = list(self.makespans.values())
        return max(spans) - min(spans) if spans else 0.0

    def tenant_metrics(self, name: str) -> MetricsRegistry:
        """Tenant ``name``'s namespace folded out as a standalone
        registry (bare names — comparable against a solo run's)."""
        return self.registry.fold(f"tenant.{name}.")

    def conservation(self, metric: str) -> Tuple[float, float]:
        """(sum of per-tenant mirrors, shared-fs global) for ``metric``
        (e.g. ``"fs.bytes.written"``).  Equal when every byte of server
        traffic is attributed to exactly one tenant."""
        per_tenant = sum(
            self.registry.value(f"tenant.{t.name}.{metric}") for t in self.tenants
        )
        return per_tenant, self.registry.total(metric)

    def chrome_trace(self) -> Dict[str, Any]:
        """The one cluster-wide Chrome trace (per-tenant row labels).

        When the cluster has storage faults, per-OST health lanes are
        appended below the tenant rows."""
        doc = self.tracer.to_chrome_trace()
        if self.storage_plan is not None:
            from repro.faults.plan import OST_KINDS
            from repro.fs.ostfault import chrome_lane_events

            events = [e for e in self.storage_plan.events if e.kind in OST_KINDS]
            if events:
                horizon = max(
                    (
                        (ev["ts"] + ev.get("dur", 0.0)) / 1e6
                        for ev in doc["traceEvents"]
                        if ev["ph"] == "X"
                    ),
                    default=0.0,
                )
                doc["traceEvents"].extend(
                    chrome_lane_events(events, self.cost.num_osts, horizon)
                )
        return doc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(t.name for t in self.tenants)
        return f"Cluster({self.fs.scheduler.name}; tenants=[{names}])"
