"""Synthetic background-traffic tenants for the multi-tenant engine.

Real shared file systems are never idle: the job under test competes
with other users' streaming scans, metadata storms, and small random
I/O.  These generators model those as ``kind="raw"`` tenant bodies —
``body(ctx, comm, client)`` over a bare
:class:`~repro.fs.client.FSClient` — so a :class:`~repro.tenancy.Cluster`
can admit them next to collective jobs and measure the interference
they cause on the shared OST queues.

All three are deterministic: randomness comes from
``numpy.random.default_rng`` seeded by ``(seed, rank)``, never from
wall clock, so two runs of the same cluster are identical.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "streaming_scan",
    "metadata_churn",
    "small_random_io",
    "make_traffic",
    "TRAFFIC_KINDS",
]


def streaming_scan(
    *,
    total_bytes: int = 1 << 20,
    request_bytes: int = 1 << 16,
    path: str = "/bg/scan",
    think: float = 0.0,
) -> Callable:
    """A sequential reader: writes its region once, then streams it
    back in ``request_bytes`` chunks (cache off, so every request hits
    the shared OSTs).  Each rank scans a disjoint region."""

    def body(ctx, comm, client):
        f = client.open(f"{path}.{comm.rank}", cache_mode="off")
        region = np.full(total_bytes, (comm.rank + 1) & 0xFF, dtype=np.uint8)
        f.write(0, region)
        nread = 0
        offset = 0
        while offset < total_bytes:
            n = min(request_bytes, total_bytes - offset)
            nread += int(f.read(offset, n).size)
            offset += n
            if think > 0.0:
                ctx.advance(think)
        f.close()
        return nread

    return body


def metadata_churn(
    *,
    files: int = 32,
    file_bytes: int = 512,
    path: str = "/bg/meta",
    think: float = 0.0,
) -> Callable:
    """A metadata storm: creates many tiny files, writes a sliver to
    each, stats it, and truncates it away — lots of server calls and
    lock RPCs, almost no data."""

    def body(ctx, comm, client):
        ops = 0
        sliver = np.arange(file_bytes, dtype=np.uint8) if file_bytes else None
        for i in range(files):
            f = client.open(f"{path}.{comm.rank}.{i}", cache_mode="off")
            if sliver is not None:
                f.write(0, sliver)
            ops += 1 if f.size >= 0 else 0
            f.truncate(0)
            f.close()
            if think > 0.0:
                ctx.advance(think)
        return ops

    return body


def small_random_io(
    *,
    ops: int = 64,
    op_bytes: int = 4096,
    region_bytes: int = 1 << 20,
    write_fraction: float = 0.5,
    seed: int = 1234,
    path: str = "/bg/rand",
    think: float = 0.0,
) -> Callable:
    """Small random reads/writes over a private region (cache off) —
    the classic mouse workload a fair scheduler must protect from
    elephants."""

    def body(ctx, comm, client):
        rng = np.random.default_rng((seed, comm.rank))
        f = client.open(f"{path}.{comm.rank}", cache_mode="off")
        f.write(0, np.zeros(region_bytes, dtype=np.uint8))
        span = max(region_bytes - op_bytes, 1)
        moved = 0
        block = np.full(op_bytes, 0x5A, dtype=np.uint8)
        for _ in range(ops):
            offset = int(rng.integers(0, span))
            if rng.random() < write_fraction:
                f.write(offset, block)
            else:
                f.read(offset, op_bytes)
            moved += op_bytes
            if think > 0.0:
                ctx.advance(think)
        f.close()
        return moved

    return body


#: Generator-factory registry consulted by ``Cluster.add_background``.
TRAFFIC_KINDS: Dict[str, Callable[..., Callable]] = {
    "scan": streaming_scan,
    "metadata": metadata_churn,
    "random": small_random_io,
}


def make_traffic(kind: str, **params: Any) -> Callable:
    """Resolve a traffic-generator body from its registry name."""
    factory = TRAFFIC_KINDS.get(str(kind).strip().lower())
    if factory is None:
        raise SimulationError(
            f"unknown traffic kind {kind!r}; known: {sorted(TRAFFIC_KINDS)}"
        )
    return factory(**params)
