"""End-to-end data integrity (checksums, corruption detection, fsck).

PR 1 hardened the stack against *loud* failures; this package closes
the silent ones.  A collective write crosses four places where a bit
can flip without anyone noticing — the exchange buffers, the wire, the
client page cache, and the page store — so protection is layered the
way real deployments layer it:

* **Page checksums** (:mod:`repro.fs.store`): every allocated page
  carries a CRC32 sidecar, updated on write and verified on read.  A
  mismatch raises :class:`~repro.errors.IntegrityError` with the page
  index and verification site — never a silently wrong byte.
* **Frame checksums** (:mod:`repro.mpi.comm`): data-frame payloads are
  CRC'd at send and verified at receive; a bad frame triggers a bounded
  re-request driven by the existing
  :class:`~repro.io.retry.RetryPolicy` (corruption on the wire is
  transient — the sender's buffered copy is intact).
* **Crash-consistent commits** (:mod:`repro.fs.filesystem` +
  :mod:`repro.core.two_phase_new`): journaled collective writes land in
  shadow pages and publish atomically at collective completion, so an
  aggregator crash mid-call leaves the file at its pre-collective image
  instead of a torn mix.
* **Scrub/repair** (:mod:`repro.integrity.fsck`): an offline pass that
  verifies every page sidecar and reports — or repairs — bad pages
  (the ``repro fsck`` CLI subcommand).

Everything is gated by hints (``integrity_pages``,
``integrity_network``, ``journal_writes``) so the fault-free fast path
is unchanged when off.  The gates live in one
:class:`IntegrityConfig` installed in the simulator's shared dict under
:data:`INTEGRITY_KEY` when a :class:`~repro.core.file_handle.CollectiveFile`
opens with integrity hints set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DEFAULT_FAULT_CONFIG
from repro.integrity.checksum import (
    corruptible,
    crc32_of,
    flip_payload_bit,
    payload_crc,
)
from repro.integrity.fsck import REPAIR_MODES, FsckReport, fsck, scrub_store

__all__ = [
    "INTEGRITY_KEY",
    "IntegrityConfig",
    "crc32_of",
    "corruptible",
    "payload_crc",
    "flip_payload_bit",
    "FsckReport",
    "scrub_store",
    "fsck",
    "REPAIR_MODES",
]

#: Key under which the active :class:`IntegrityConfig` lives in
#: ``Simulator.shared`` (installed at collective-file open).
INTEGRITY_KEY = "integrity-config"


@dataclass(frozen=True)
class IntegrityConfig:
    """Which integrity layers are armed, plus the re-request policy
    the transport uses when a frame checksum fails."""

    #: Verify page CRC sidecars on every store read.
    pages: bool = False
    #: Checksum data-frame payloads; verify + re-request at receive.
    network: bool = False
    #: Bounded re-requests for a corrupt frame (reuses the I/O retry
    #: budget: the transport and the I/O stack share one patience).
    net_retries: int = DEFAULT_FAULT_CONFIG.io_retries
    net_backoff: float = DEFAULT_FAULT_CONFIG.retry_backoff
    net_backoff_max: float = DEFAULT_FAULT_CONFIG.retry_backoff_max

    @property
    def any_enabled(self) -> bool:
        return self.pages or self.network


def install_integrity(shared: dict, config: IntegrityConfig) -> None:
    """Arm integrity checking for every component of this simulation."""
    shared[INTEGRITY_KEY] = config


def find_integrity(shared: dict):
    """The installed :class:`IntegrityConfig`, if any."""
    return shared.get(INTEGRITY_KEY)


__all__ += ["install_integrity", "find_integrity"]
