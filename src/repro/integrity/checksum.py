"""Checksum primitives shared by the page store and the transport.

Both sides use the same CRC32 (zlib's, the Castagnoli-free classic):
pages checksum their full ``page_size`` bytes into a per-page sidecar
word, the network checksums a frame's payload bytes into the message
envelope.  CRC32 is what real parallel file systems (and TCP offload
engines) deploy for this job: cheap, and certain to catch the single
bit flips the fault model injects.

The transport can only protect payloads whose bytes it can see:
:func:`corruptible` is the predicate (contiguous numpy arrays and byte
strings — i.e. the data frames moved by the exchange phase and the
list-I/O layer).  Structured control payloads (tuples of scalars,
encoded filetypes) are not bit-flippable by the fault model either, so
the protection boundary and the threat model coincide.
"""

from __future__ import annotations

import zlib
from typing import Any, Optional

import numpy as np

__all__ = ["crc32_of", "corruptible", "flip_payload_bit", "payload_crc"]


def crc32_of(data: bytes | np.ndarray) -> int:
    """CRC32 of raw bytes or a numpy array's buffer."""
    if isinstance(data, np.ndarray):
        data = np.ascontiguousarray(data).tobytes()
    return zlib.crc32(data) & 0xFFFFFFFF


def corruptible(obj: Any) -> bool:
    """True when the fault model can flip bits in this payload (and the
    transport can checksum it): raw byte strings and numpy arrays."""
    if isinstance(obj, (bytes, bytearray)):
        return len(obj) > 0
    if isinstance(obj, np.ndarray):
        return obj.size > 0
    return False


def payload_crc(obj: Any) -> Optional[int]:
    """Frame checksum of a payload, or ``None`` when not corruptible."""
    if not corruptible(obj):
        return None
    if isinstance(obj, (bytes, bytearray)):
        return crc32_of(bytes(obj))
    return crc32_of(obj)


def flip_payload_bit(obj: Any, draw: int) -> Any:
    """A copy of ``obj`` with one bit flipped, chosen by ``draw``.

    The caller keeps the pristine original; the copy models what the
    wire delivered.  ``draw`` is a deterministic 64-bit value from the
    injector, so the same seed flips the same bit."""
    if isinstance(obj, (bytes, bytearray)):
        buf = bytearray(obj)
        bit = draw % (len(buf) * 8)
        buf[bit >> 3] ^= 1 << (bit & 7)
        return bytes(buf)
    if isinstance(obj, np.ndarray):
        out = np.ascontiguousarray(obj).copy()
        view = out.view(np.uint8).reshape(-1)
        bit = draw % (view.size * 8)
        view[bit >> 3] ^= 1 << (bit & 7)
        return out
    raise TypeError(f"cannot flip bits in payload of type {type(obj).__name__}")
