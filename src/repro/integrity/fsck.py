"""Offline scrub/repair of checksummed page stores (``repro fsck``).

A scrub walks every allocated page of a store, recomputes its CRC32,
and compares it against the sidecar — the same verification the read
path does online, but exhaustive and without charging virtual time
(fsck models an administrative pass, not a client workload).

Repair strategies for a bad page:

* ``"zero"`` — drop the page back to a hole (data loss, reported);
* ``"accept"`` — recompute the sidecar from the current bytes (the
  corruption becomes the new truth; what a checksum-less system does
  silently on every read);
* ``"reference"`` — rewrite the page from a caller-supplied good copy
  (a replica, a backup, or a test oracle);
* ``"replica"`` — for a :class:`~repro.fs.store.ReplicatedStore` only:
  rewrite the page from a surviving replica whose copy still verifies
  (the self-healing mode replication exists for — no external image
  needed).  Pages with *no* good replica stay bad and are reported.

On a replicated store the scrub walks every shard, so divergence that
the read path would silently fail over past (one replica corrupt, the
primary fine) is surfaced and healed.  ``fsck(fs)`` runs the scrub over
every file of a :class:`~repro.fs.filesystem.SimFileSystem` and also
finishes any pending re-replication (stale replicas left by an OST
outage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import FileSystemError
from repro.fs.store import ReplicatedStore

__all__ = ["FsckReport", "scrub_store", "fsck", "REPAIR_MODES"]

REPAIR_MODES = ("zero", "accept", "reference", "replica")


@dataclass
class FsckReport:
    """Result of scrubbing one file's page store."""

    path: str
    pages_scanned: int
    bad_pages: List[int] = field(default_factory=list)
    repaired: List[int] = field(default_factory=list)
    repair: Optional[str] = None

    @property
    def clean(self) -> bool:
        """No corruption left behind (none found, or all repaired)."""
        return len(self.bad_pages) == len(self.repaired)

    def format(self) -> str:
        if not self.bad_pages:
            return f"  {self.path}: {self.pages_scanned} pages scanned, all clean"
        action = (
            f"repaired ({self.repair})" if self.repaired else "NOT repaired"
        )
        return (
            f"  {self.path}: {self.pages_scanned} pages scanned, "
            f"{len(self.bad_pages)} BAD {sorted(self.bad_pages)} — {action}"
        )


def scrub_store(
    store,
    path: str = "<store>",
    *,
    repair: Optional[str] = None,
    reference: Optional[np.ndarray] = None,
) -> FsckReport:
    """Scrub one :class:`~repro.fs.store.PageStore`; optionally repair.

    The store must have integrity enabled (there is no sidecar to check
    otherwise).  ``reference`` is the whole-file good image required by
    ``repair="reference"``."""
    if not store.integrity:
        raise FileSystemError(
            f"fsck: {path!r} has no checksum sidecar (integrity disabled)"
        )
    if repair is not None and repair not in REPAIR_MODES:
        raise FileSystemError(
            f"fsck: unknown repair mode {repair!r}; options: {REPAIR_MODES}"
        )
    if repair == "reference" and reference is None:
        raise FileSystemError("fsck: repair='reference' needs a reference image")
    replicated = isinstance(store, ReplicatedStore)
    if repair == "replica" and not replicated:
        raise FileSystemError(
            f"fsck: repair='replica' needs a replicated store, {path!r} is plain"
        )
    report = FsckReport(
        path=path,
        pages_scanned=store.allocated_pages,
        bad_pages=store.verify_all(),
        repair=repair,
    )
    if repair is None:
        return report
    ps = store.page_size
    for idx in report.bad_pages:
        if repair == "zero":
            store.zero_page(idx)
        elif repair == "accept":
            store.accept_page(idx)
        elif repair == "replica":
            good = _good_replica_copy(store, idx)
            if good is None:
                continue  # no surviving good copy — stays bad, reported
            store.rewrite_page(idx, good)
        else:
            lo = idx * ps
            good = np.zeros(ps, dtype=np.uint8)
            ref = np.asarray(reference, dtype=np.uint8)
            chunk = ref[lo : lo + ps]
            good[: chunk.size] = chunk
            store.rewrite_page(idx, good)
        report.repaired.append(idx)
    return report


def _good_replica_copy(store: ReplicatedStore, index: int) -> Optional[np.ndarray]:
    """The page's bytes from a replica that still verifies, if any.

    Stale replicas (pending re-replication) are not good sources — they
    verify but hold pre-outage bytes."""
    lo = index * store.page_size
    hi = lo + store.page_size
    for ost in store.replicas_of(lo):
        shard = store.shards[ost]
        if index not in shard._pages:
            continue
        if store.stale[ost].overlaps(lo, hi):
            continue
        if shard.verify_page(index):
            return shard.read(lo, store.page_size, verify=False)
    return None


def fsck(
    fs,
    path: Optional[str] = None,
    *,
    repair: Optional[str] = None,
    references: Optional[Dict[str, np.ndarray]] = None,
) -> List[FsckReport]:
    """Scrub one file (or every file) of a ``SimFileSystem``.

    Replicated files additionally get any pending re-replication
    finished first (fsck runs after recovery, when every OST is up), so
    the scrub sees fully-redundant files."""
    paths = [path] if path is not None else fs.paths()
    reports = []
    for p in paths:
        fs.rereplicate(p)
        ref = references.get(p) if references else None
        reports.append(
            scrub_store(fs.page_store(p), p, repair=repair, reference=ref)
        )
    return reports
