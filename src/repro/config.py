"""Cost model and tunable parameters for the simulated cluster.

All virtual-time charging in the library is driven by one
:class:`CostModel` instance so that experiments are reproducible and the
model is auditable in a single place.  The defaults are calibrated (see
EXPERIMENTS.md) so simulated bandwidths land in the same magnitude range
as the paper's ASC Vplant / Lustre numbers; the *relative* behaviour —
who wins, where crossovers fall — is what the model is designed to
preserve.

Three cost groups:

* CPU — datatype processing (per offset/length pair evaluated, per
  filetype tile skipped) and memory movement (per byte copied between
  buffers, per byte scattered/gathered non-contiguously).
* Network — LogGP-ish: per message overhead plus per byte time.  The
  collective algorithms in :mod:`repro.mpi.collectives` are built from
  point-to-point messages, so tree/pairwise factors emerge naturally.
* I/O — client-side per-call overhead, per-OST service latency and byte
  time (serialized per OST, which models contention), penalties for
  read-modify-write of partial pages, extent-lock acquisition and
  revocation, and client-cache flushes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "FaultConfig",
    "DEFAULT_FAULT_CONFIG",
    "LivenessConfig",
    "DEFAULT_LIVENESS_CONFIG",
]


@dataclass(frozen=True)
class CostModel:
    """Virtual-time costs (all in simulated seconds / seconds-per-byte)."""

    # --- CPU: datatype processing -------------------------------------
    #: Cost to evaluate one offset/length pair while walking an access.
    cpu_per_flat_pair: float = 1.2e-7
    #: Cost to test-and-skip one whole filetype tile that cannot
    #: intersect the target range (the succinct-datatype optimization).
    cpu_tile_skip: float = 2.0e-8
    #: Cost per byte for a straight memcpy between two buffers
    #: (e.g. collective buffer <-> sieve buffer double buffering).
    cpu_per_byte_copy: float = 2.5e-10
    #: Cost per byte for scatter/gather of non-contiguous regions
    #: (pack/unpack of derived datatypes).
    cpu_per_byte_touch: float = 6.0e-10
    #: Fixed cost per heap push/pop when merging per-aggregator streams.
    cpu_heap_op: float = 8.0e-8
    #: Fixed bookkeeping cost per I/O request record built.
    cpu_request_setup: float = 5.0e-7

    # --- Network (TCP/IP over Myrinet, as in the paper) ----------------
    #: Per-message overhead on each side (latency + software overhead).
    net_latency: float = 5.5e-5
    #: Seconds per byte of payload (~110 MB/s effective TCP as in paper).
    net_byte_time: float = 1.0 / (110.0 * 1024 * 1024)
    #: Extra fixed cost for posting a nonblocking operation.
    net_post_overhead: float = 2.0e-6
    #: Fraction of pack/unpack CPU cost hidden by overlapping
    #: communication with computation in the nonblocking exchange path.
    net_overlap_factor: float = 0.5
    #: Per-message overhead multiplier for messages sent inside
    #: collective operations.  1.0 models a commodity network; values
    #: below 1 model machines whose interconnect is specialized for
    #: collectives (the paper's BG/L discussion in §5.4), which is when
    #: the MPI_Alltoallw exchange pays off.
    net_collective_factor: float = 1.0

    # --- Network topology (two tiers: intra-node vs inter-node) --------
    #: Ranks per simulated node.  1 (the default) means every rank is
    #: its own node: no intra-node tier exists and every message prices
    #: exactly as the flat model above — the fast path pays nothing for
    #: the topology machinery.  Values > 1 arm the two-tier model: node
    #: of world rank ``r`` is ``r // procs_per_node``.
    procs_per_node: int = 1
    #: Per-message overhead between ranks sharing a node (shared-memory
    #: transport: no NIC traversal, no TCP stack).
    net_intra_latency: float = 1.5e-6
    #: Seconds per byte between ranks sharing a node (~6 GB/s memcpy
    #: bandwidth through a shared-memory segment).
    net_intra_byte_time: float = 1.0 / (6.0 * 1024 * 1024 * 1024)
    #: Wire envelope (header + matching metadata) accounted per message
    #: in the inter/intra-node traffic *counters*.  Accounting only —
    #: it never enters transit timing, so arming the topology changes
    #: no virtual timestamp of same-tier traffic.
    net_envelope_bytes: int = 64

    # --- File system (Lustre-like) -------------------------------------
    #: Client-side fixed cost per file-system call issued.
    io_call_overhead: float = 1.1e-4
    #: Per-OST fixed service latency per request.
    ost_op_latency: float = 3.5e-4
    #: Per-OST seconds per byte (~160 MB/s per OST).
    ost_byte_time: float = 1.0 / (160.0 * 1024 * 1024)
    #: Extra service cost when a write touches only part of a page and
    #: the server must read-modify-write it.
    page_rmw_penalty: float = 2.2e-4
    #: Round-trip cost of one lock-manager RPC (enqueue/grant).
    lock_rpc: float = 2.5e-4
    #: Cost charged to the *revoking* client per conflicting extent lock
    #: called back (on top of flushing its dirty pages).
    lock_revoke: float = 6.0e-4
    #: Cost per dirty page flushed from a client cache on revocation
    #: or sync (in addition to the write's normal service time).
    cache_flush_page: float = 3.0e-5
    #: Seconds per byte to compute/verify a CRC32 frame or page checksum
    #: (hardware-assisted CRC is cheaper than a copy, but not free).
    crc_byte_time: float = 4.0e-10
    #: Cost per shadow page published at journal commit (a block remap
    #: in the server's metadata, not a data copy over the wire).
    journal_commit_page: float = 2.0e-5

    # --- Geometry -------------------------------------------------------
    #: File-system page size in bytes (Lustre client page granularity).
    page_size: int = 4096
    #: Stripe size in bytes (Lustre default in the paper's experiments).
    stripe_size: int = 2 * 1024 * 1024
    #: Number of object storage targets the file is striped over.
    num_osts: int = 4

    def replace(self, **kwargs: object) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def validate(self) -> None:
        """Raise ``ValueError`` if any parameter is nonsensical."""
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, (int, float)) and value < 0:
                raise ValueError(f"CostModel.{field.name} must be >= 0, got {value}")
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.stripe_size <= 0 or self.stripe_size % self.page_size:
            raise ValueError("stripe_size must be a positive multiple of page_size")
        if self.num_osts <= 0:
            raise ValueError("num_osts must be positive")
        if self.procs_per_node <= 0:
            raise ValueError("procs_per_node must be positive")


@dataclass(frozen=True)
class FaultConfig:
    """Resilience knobs: how the library reacts to injected faults.

    Injection itself is configured by :class:`repro.faults.FaultPlan`;
    this describes the *response* — the independent-I/O retry policy
    and whether the collective layer fails over dead aggregators.
    """

    #: Retries per independent-I/O operation after a transient fault
    #: (0 = fail immediately with :class:`repro.errors.RetryExhausted`).
    io_retries: int = 4
    #: Virtual seconds slept before the first retry.
    retry_backoff: float = 1e-3
    #: Multiplier applied to the backoff after each failed attempt.
    retry_backoff_factor: float = 2.0
    #: Ceiling on any single backoff sleep (virtual seconds): long retry
    #: chains stop doubling here instead of advancing virtual time
    #: unboundedly.
    retry_backoff_max: float = 0.25
    #: Full-jitter backoff: each sleep is a seeded uniform draw in
    #: [0, capped exponential] instead of the cap itself, so ranks
    #: faulted together do not retry in lockstep waves.  Off by
    #: default — deterministic lockstep is what the pinned fault
    #: timings of earlier PRs assume.
    retry_jitter: bool = False
    #: Cross-operation retry budget per client (0 = unlimited): once a
    #: client has spent this many retries in total, further transient
    #: faults raise :class:`repro.errors.RetryBudgetExhausted`
    #: immediately — the storm-control companion of the per-operation
    #: ``io_retries``.
    retry_budget: int = 0
    #: Rebalance a dead aggregator's file realm across survivors
    #: instead of raising :class:`repro.errors.AggregatorLost`.
    failover: bool = True

    def replace(self, **kwargs: object) -> "FaultConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def validate(self) -> None:
        """Raise ``ValueError`` if any parameter is nonsensical."""
        if self.io_retries < 0:
            raise ValueError(f"io_retries must be >= 0, got {self.io_retries}")
        if self.retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {self.retry_backoff}")
        if self.retry_backoff_factor < 1.0:
            raise ValueError(
                f"retry_backoff_factor must be >= 1, got {self.retry_backoff_factor}"
            )
        if self.retry_backoff_max < self.retry_backoff:
            raise ValueError(
                f"retry_backoff_max ({self.retry_backoff_max}) must be >= "
                f"retry_backoff ({self.retry_backoff})"
            )
        if self.retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {self.retry_budget}")


@dataclass(frozen=True)
class LivenessConfig:
    """Liveness knobs: deadlines, suspicion, and lock leases.

    Installed into the simulation by the ``coll_deadline`` / ``liveness``
    hints (see :mod:`repro.liveness`); everything here is measured in
    *virtual* seconds except ``join_timeout``, which bounds real
    wall-clock waiting in :class:`repro.sim.Simulator`.
    """

    #: Per-collective-call virtual-time budget (0 = no deadline).
    deadline: float = 0.0
    #: Lease on a pinned extent lock: a lock wedged by a stalled holder
    #: is reclaimed after this many virtual seconds.
    lock_lease: float = 0.02
    #: Watchdog heartbeat: a rank making no progress marks for this many
    #: virtual seconds is declared *suspect*.
    watchdog_heartbeat: float = 0.05
    #: Wall-clock seconds the engine waits for rank threads to finish
    #: before aborting with :class:`repro.errors.SimHang`.
    join_timeout: float = 600.0

    def replace(self, **kwargs: object) -> "LivenessConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def validate(self) -> None:
        """Raise ``ValueError`` if any parameter is nonsensical."""
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value < 0:
                raise ValueError(
                    f"LivenessConfig.{field.name} must be >= 0, got {value}"
                )
        if self.join_timeout <= 0:
            raise ValueError("join_timeout must be positive")


#: Shared default instances; treat as immutable.
DEFAULT_COST_MODEL = CostModel()
DEFAULT_COST_MODEL.validate()
DEFAULT_FAULT_CONFIG = FaultConfig()
DEFAULT_FAULT_CONFIG.validate()
DEFAULT_LIVENESS_CONFIG = LivenessConfig()
DEFAULT_LIVENESS_CONFIG.validate()
