#!/usr/bin/env python
"""Plugging in a custom file-realm strategy (the paper's §5.2 pitch).

Because file realms are just (datatype, displacement) pairs, "one can
easily plug in a new optimization function to determine the file realms
in a completely different scheme".  This example builds a deliberately
skewed workload — half the ranks write a dense block at the front of
the file, the other half tiny regions far away — and compares:

* the default even partition of the aggregate access region (one
  aggregator ends up with almost all the data);
* the histogram-driven load-balanced partition shipped with the
  library;
* a hand-written strategy (realm boundaries chosen by eye), installed
  by subclassing :class:`RealmStrategy` — three lines of real logic.

Run:  python examples/custom_realms.py
"""

from __future__ import annotations

import numpy as np

from repro import BYTE, Session, contiguous, resized
from repro.core.realms import EvenPartition, RealmStrategy, make_contiguous_realms
import repro.core.two_phase_new as tp

NPROCS = 8
DENSE_REGION = 64 << 10
DENSE_COUNT = 64
SPARSE_OFFSET = 1 << 30  # the sparse cluster sits 1 GB away


class FrontLoadedRealms(RealmStrategy):
    """Hand-written: realms sized by where we KNOW the data is.

    The first naggs-1 realms split the dense prefix; the last realm
    takes the long sparse tail."""

    name = "front-loaded"

    def __init__(self, dense_end: int) -> None:
        self.dense_end = dense_end

    def assign(self, aar_lo, aar_hi, naggs, histogram=None, weights=None):
        dense_hi = min(self.dense_end, aar_hi)
        chunk = max(-(-(dense_hi - aar_lo) // max(naggs - 1, 1)), 1)
        bounds = [min(aar_lo + i * chunk, dense_hi) for i in range(naggs)] + [aar_hi]
        return make_contiguous_realms(bounds)


def run(strategy_hint: str, custom: RealmStrategy | None = None) -> tuple[float, bool]:
    session = Session.open(
        "/skewed.dat",
        nprocs=NPROCS,
        hints={
            "cb_nodes": 4,
            "cache_mode": "off",
            "realm_strategy": strategy_hint if not custom else "even",
        },
    )

    # Installing a custom strategy = overriding the resolver the driver
    # uses; a production API would hang this off the hints object.
    original = tp.resolve_strategy
    if custom is not None:
        tp.resolve_strategy = lambda hints: custom

    def body(ctx, comm, f):
        rank = comm.rank
        if rank < NPROCS // 2:
            f.set_view(
                disp=rank * DENSE_REGION,
                filetype=resized(contiguous(DENSE_REGION, BYTE), 0, DENSE_REGION * (NPROCS // 2)),
            )
            buf = np.full(DENSE_REGION * DENSE_COUNT, rank + 1, dtype=np.uint8)
        else:
            f.set_view(disp=SPARSE_OFFSET + rank * 4096, filetype=contiguous(4096, BYTE))
            buf = np.full(4096, rank + 1, dtype=np.uint8)
        f.write_all(buf)
        return buf.size

    try:
        sizes = session.run(body)
    finally:
        tp.resolve_strategy = original

    elapsed = session.makespan
    total = sum(sizes)
    fs = session.fs
    # Spot-check the dense block and one sparse region.
    ok = bool(
        (fs.raw_bytes("/skewed.dat", 0, DENSE_REGION) == 1).all()
        and (fs.raw_bytes("/skewed.dat", SPARSE_OFFSET + 6 * 4096, 4096) == 7).all()
    )
    return total / (1 << 20) / elapsed, ok


if __name__ == "__main__":
    even_mbs, ok1 = run("even")
    balanced_mbs, ok2 = run("balanced")
    custom_mbs, ok3 = run("even", custom=FrontLoadedRealms(DENSE_REGION * (NPROCS // 2) * DENSE_COUNT))
    assert ok1 and ok2 and ok3, "data corruption"
    print("skewed workload (dense prefix + tiny far-away cluster):")
    print(f"  even partition of the AAR : {even_mbs:8.2f} MB/s  (one aggregator does ~everything)")
    print(f"  histogram load-balanced   : {balanced_mbs:8.2f} MB/s")
    print(f"  hand-written FrontLoaded  : {custom_mbs:8.2f} MB/s")
    assert balanced_mbs > even_mbs, "balanced realms should beat the even split here"
