#!/usr/bin/env python
"""Checkpointing a block-cyclic distributed matrix with darray views.

A 2-D global array is distributed over a 2x2 process grid —
block-distributed rows, cyclic(2) columns (the ScaLAPACK-style layout).
Each rank hands ``set_view`` the darray filetype for its share and the
collective write assembles the canonical row-major global array on
disk; a collective read restores it.  No rank ever computes a file
offset by hand.

Run:  python examples/darray_checkpoint.py
"""

from __future__ import annotations

import numpy as np

from repro import BYTE, Session
from repro.datatypes import DISTRIBUTE_BLOCK, DISTRIBUTE_CYCLIC, darray
from repro.datatypes.packing import gather_segments
from repro.datatypes.segments import FlatCursor

ROWS, COLS = 16, 24
PSIZES = [2, 2]
NPROCS = 4


def my_filetype(rank):
    return darray(
        [ROWS, COLS],
        [DISTRIBUTE_BLOCK, DISTRIBUTE_CYCLIC],
        [0, 2],  # default row blocks; column blocks of 2
        PSIZES,
        rank,
        BYTE,
    )


def body(ctx, comm, f):
    ft = my_filetype(comm.rank)
    f.set_view(disp=0, filetype=ft)

    # Local share: every element tagged with its owner (rank+1).
    local = np.full(ft.size, comm.rank + 1, dtype=np.uint8)
    f.write_all(local)

    # Restore into a fresh buffer and verify locally (rewind the
    # individual file pointer first).
    f.seek(0)
    restored = np.zeros_like(local)
    f.read_all(restored)
    assert np.array_equal(restored, local), f"rank {comm.rank} restore mismatch"
    return ft.size


if __name__ == "__main__":
    session = Session.open("/matrix.ckpt", nprocs=NPROCS)
    shares = session.run(body)
    assert sum(shares) == ROWS * COLS

    # The file is the canonical global array: check the ownership map.
    img = session.fs.raw_bytes("/matrix.ckpt", 0, ROWS * COLS).reshape(ROWS, COLS)
    expect = np.zeros((ROWS, COLS), dtype=np.uint8)
    for rank in range(NPROCS):
        ft = my_filetype(rank)
        batch = FlatCursor(ft.flatten(), 0, ft.size).all_segments()
        for fo, ln in zip(batch.file_offsets.tolist(), batch.lengths.tolist()):
            expect.ravel()[fo : fo + ln] = rank + 1
    assert np.array_equal(img, expect)

    print(f"{ROWS}x{COLS} global array, 2x2 grid, block rows x cyclic(2) columns")
    print("ownership map on disk (one digit per element):")
    for row in img[: min(ROWS, 8)]:
        print("  " + "".join(str(v) for v in row))
    if ROWS > 8:
        print(f"  ... ({ROWS - 8} more rows)")
    print("\ncheckpoint written, restored, and verified collectively.")
