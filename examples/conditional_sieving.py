#!/usr/bin/env python
"""Conditional data sieving: let the library pick the flush method.

The §6.3 experiment in miniature.  The same HPIO-style strided write is
run with three ``io_method`` hints — ``datasieve``, ``naive``, and
``conditional`` — on one *dense* pattern (small filetype extent, where
sieving wins) and one *sparse* pattern (large extent, where naive
per-segment I/O wins).  The conditional hint compares the filetype
extent against ``ds_threshold_extent`` (16 KB, the paper's crossover)
and should match the better fixed method on both patterns without the
user knowing where the crossover sits.

Run:  python examples/conditional_sieving.py
"""

from __future__ import annotations

from repro.bench.harness import run_hpio_write
from repro.hpio.patterns import HPIOPattern
from repro.mpi import Hints

NPROCS = 8
AGGS = 4

# Dense: 1 KB extent, regions are half of it -> sieve-friendly.
DENSE = HPIOPattern(
    nprocs=NPROCS, region_size=512, region_count=512,
    region_spacing=512, mem_contig=True,
)
# Sparse: 64 KB extent, small useful region -> naive-friendly.
SPARSE = HPIOPattern(
    nprocs=NPROCS, region_size=8192, region_count=64,
    region_spacing=57344, mem_contig=True,
)


def measure(pattern: HPIOPattern, method: str) -> float:
    result = run_hpio_write(
        pattern,
        impl="new",
        representation="succinct",
        hints=Hints(cb_nodes=AGGS, io_method=method),
        label=f"{method}",
    )
    assert result.verified
    return result.bandwidth_mbs


if __name__ == "__main__":
    for name, pattern in (("dense (1 KB extent)", DENSE), ("sparse (64 KB extent)", SPARSE)):
        extent = pattern.slot * pattern.nprocs
        print(f"{name}: filetype extent = {extent // 1024} KB per tile")
        rates = {m: measure(pattern, m) for m in ("datasieve", "naive", "conditional")}
        for m, mbs in rates.items():
            print(f"  io_method={m:<12} {mbs:8.2f} MB/s")
        best_fixed = max(("datasieve", "naive"), key=rates.get)
        print(f"  -> conditional picked the {best_fixed} side "
              f"({rates['conditional'] / rates[best_fixed] * 100:.0f}% of the better fixed method)\n")
        assert rates["conditional"] >= 0.9 * rates[best_fixed]
