#!/usr/bin/env python
"""HPIO scaling study: old vs new implementation, struct vs vector types.

A miniature of the paper's Figure 4 experiment.  All three method
combinations write the identical non-contiguous (memory and file)
HPIO pattern; the table shows simulated bandwidth plus the datatype-
processing counters that explain the differences:

* ``old+vect``  — flattens everything up front: O(M) pairs total;
* ``new+struct``— ships the succinct filetype and skips whole tiles;
* ``new+vect``  — ships the fully enumerated filetype: the per-
  aggregator linear scans cost O(M·A) pair evaluations.

Run:  python examples/hpio_scaling.py
"""

from __future__ import annotations

from repro.bench.harness import run_hpio_write
from repro.hpio.patterns import HPIOPattern
from repro.mpi import Hints

NPROCS = 16
REGION_SIZES = [16, 128, 1024]
COUNT = 256
AGGS = 8

METHODS = [
    ("new+struct", "new", "succinct"),
    ("new+vect", "new", "enumerated"),
    ("old+vect", "old", "succinct"),
]

if __name__ == "__main__":
    header = (
        f"{'region':>8} {'method':>12} {'MB/s':>9} {'pairs eval':>11} "
        f"{'tiles skip':>11} {'meta KB':>8}"
    )
    print(f"HPIO: {NPROCS} procs, {COUNT} regions/proc, 128 B spacing, {AGGS} aggregators")
    print(header)
    print("-" * len(header))
    for region in REGION_SIZES:
        pattern = HPIOPattern(
            nprocs=NPROCS,
            region_size=region,
            region_count=COUNT,
            region_spacing=128,
            mem_contig=False,
            file_contig=False,
        )
        for label, impl, rep in METHODS:
            r = run_hpio_write(
                pattern,
                impl=impl,
                representation=rep,
                hints=Hints(cb_nodes=AGGS),
                label=label,
            )
            assert r.verified, f"corrupt data from {label}"
            print(
                f"{region:>8} {label:>12} {r.bandwidth_mbs:>9.2f} "
                f"{r.counters['client_pairs_total']:>11} "
                f"{r.counters['client_tiles_skipped_total']:>11} "
                f"{r.counters['meta_bytes_total'] / 1024:>8.1f}"
            )
        print()
    print(
        "new+vect evaluates ~A times more pairs than new+struct (no tile\n"
        "skipping) and ships A times more access metadata; the old code's\n"
        "single flatten pass stays cheapest, which is the paper's headline\n"
        "performance observation."
    )
