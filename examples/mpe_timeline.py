#!/usr/bin/env python
"""Where does collective-I/O time go?  (The paper's MPE-logging method.)

Section 6.2 attributes the new implementation's slowdowns using MPE
logging: "the main cause for the differences is the additional
computational overhead tied directly to the number of aggregators."
This example reproduces that analysis: the same HPIO write runs with
the succinct and the enumerated filetype, and the tracer breaks the
simulated time into the two-phase phases (route / exchange / io), plus
an ASCII timeline of one aggregator's activity.

Run:  python examples/mpe_timeline.py
"""

from __future__ import annotations

import numpy as np

from repro import CollectiveFile, Communicator, SimFileSystem, Simulator, Tracer
from repro.hpio.patterns import HPIOPattern
from repro.hpio.verify import fill_pattern
from repro.mpi import Hints

NPROCS = 16
AGGS = 8
PATTERN = HPIOPattern(
    nprocs=NPROCS, region_size=32, region_count=1024, region_spacing=128
)


def run(representation: str):
    tracer = Tracer()
    fs = SimFileSystem()
    hints = Hints(cb_nodes=AGGS, cb_buffer_size=256 * 1024)

    def main(ctx):
        comm = Communicator(ctx)
        f = CollectiveFile(ctx, comm, fs, "/trace.dat", hints=hints)
        f.set_view(
            disp=PATTERN.file_disp(comm.rank),
            filetype=PATTERN.filetype(comm.rank, representation),
        )
        buf = fill_pattern(PATTERN, comm.rank)
        memtype = PATTERN.memtype()
        f.write_all(buf, memtype=memtype, count=1)
        f.close()

    sim = Simulator(NPROCS, tracer=tracer)
    sim.run(main)
    return tracer, sim.makespan


if __name__ == "__main__":
    print(PATTERN.describe(), f"write via {AGGS} aggregators\n")
    results = {}
    for rep in ("succinct", "enumerated"):
        tracer, makespan = run(rep)
        totals = tracer.time_by_state()
        results[rep] = (tracer, makespan, totals)
        phases = {k: v for k, v in totals.items() if k.startswith("tp:")}
        span = sum(phases.values()) or 1.0
        print(f"filetype = {rep} (makespan {makespan * 1e3:.2f} ms)")
        for state in ("tp:route", "tp:exchange", "tp:io"):
            t = phases.get(state, 0.0)
            bar = "#" * int(40 * t / span)
            print(f"  {state:<12} {t * 1e3:9.3f} ms  {bar}")
        print()

    route_succ = results["succinct"][2].get("tp:route", 0.0)
    route_enum = results["enumerated"][2].get("tp:route", 0.0)
    print(
        f"routing (datatype processing) time: succinct {route_succ * 1e3:.2f} ms, "
        f"enumerated {route_enum * 1e3:.2f} ms "
        f"({route_enum / max(route_succ, 1e-12):.1f}x)"
    )
    print("\none aggregator's activity over the run (enumerated filetype):")
    print(results["enumerated"][0].timeline(0, width=64))
