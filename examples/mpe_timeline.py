#!/usr/bin/env python
"""Where does collective-I/O time go?  (The paper's MPE-logging method.)

Section 6.2 attributes the new implementation's slowdowns using MPE
logging: "the main cause for the differences is the additional
computational overhead tied directly to the number of aggregators."
This example reproduces that analysis on the structured span API: the
same HPIO write runs with the succinct and the enumerated filetype,
each under a traced :class:`repro.Session`.  The recorded spans are
*nested* — every ``tp:plan`` / ``tp:route`` / ``tp:exchange`` /
``tp:io`` interval is a child of its ``write_all`` span — so the
script can walk one collective call's phase tree, not just flat
per-state totals, and it finishes by exporting a Chrome
``trace_event`` JSON that Perfetto / ``chrome://tracing`` renders as
the figure the paper drew by hand.

Run:  python examples/mpe_timeline.py
"""

from __future__ import annotations

from repro import Session
from repro.hpio.patterns import HPIOPattern
from repro.hpio.verify import fill_pattern

NPROCS = 16
AGGS = 8
PATTERN = HPIOPattern(
    nprocs=NPROCS, region_size=32, region_count=1024, region_spacing=128
)


def run(representation: str) -> Session:
    session = Session.open(
        "/trace.dat",
        nprocs=NPROCS,
        hints={"cb_nodes": AGGS, "cb_buffer_size": 256 * 1024},
        trace=True,
    )

    def body(ctx, comm, f):
        f.set_view(
            disp=PATTERN.file_disp(comm.rank),
            filetype=PATTERN.filetype(comm.rank, representation),
        )
        buf = fill_pattern(PATTERN, comm.rank)
        f.write_all(buf, memtype=PATTERN.memtype(), count=1)

    session.run(body)
    return session


if __name__ == "__main__":
    print(PATTERN.describe(), f"write via {AGGS} aggregators\n")
    sessions = {}
    for rep in ("succinct", "enumerated"):
        session = sessions[rep] = run(rep)
        totals = session.time_by_state()
        phases = {k: v for k, v in totals.items() if k.startswith("tp:")}
        span = sum(phases.values()) or 1.0
        print(f"filetype = {rep} (makespan {session.makespan * 1e3:.2f} ms)")
        for state in ("tp:plan", "tp:route", "tp:exchange", "tp:io"):
            t = phases.get(state, 0.0)
            bar = "#" * int(40 * t / span)
            print(f"  {state:<12} {t * 1e3:9.3f} ms  {bar}")
        print()

    route_succ = sessions["succinct"].time_by_state().get("tp:route", 0.0)
    route_enum = sessions["enumerated"].time_by_state().get("tp:route", 0.0)
    print(
        f"routing (datatype processing) time: succinct {route_succ * 1e3:.2f} ms, "
        f"enumerated {route_enum * 1e3:.2f} ms "
        f"({route_enum / max(route_succ, 1e-12):.1f}x)"
    )

    # The spans are nested: walk rank 0's write_all phase tree.
    tracer = sessions["enumerated"].tracer
    call = next(e for e in tracer.top_level(0) if e.state == "write_all")
    print("\nrank 0's write_all span tree (enumerated filetype):")
    print(f"  write_all {(call.t1 - call.t0) * 1e3:9.3f} ms")
    for child in tracer.children_of(call):
        label = child.state + (
            f"[{child.info['round']}]" if "round" in child.info else ""
        )
        print(f"    {label:<16} {(child.t1 - child.t0) * 1e3:9.3f} ms")

    print("\none aggregator's activity over the run (enumerated filetype):")
    print(tracer.timeline(0, width=64))

    # Export the whole run for Perfetto / chrome://tracing.
    doc = sessions["enumerated"].write_trace("mpe_timeline.json")
    print(f"\nwrote mpe_timeline.json ({len(doc['traceEvents'])} trace events)")
