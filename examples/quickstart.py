#!/usr/bin/env python
"""Quickstart: collective write and read-back on a simulated cluster.

Four ranks share one file.  Each rank's file view interleaves 64-byte
regions round-robin (rank r owns region r, r+4, r+8, ...).  A single
``write_all`` moves everyone's data through the two-phase engine; a
``read_all`` gets it back; the script verifies both against the file
server's raw bytes and prints where the simulated time went.

Everything runs through a :class:`repro.Session` — the documented
front door — so the per-rank counters afterwards come from the
session's metrics registry under stable dotted names
(``coll.rounds``, ``exchange.bytes``, ...) instead of ad-hoc stats
attributes.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BYTE, Session, contiguous, resized

NPROCS = 4
REGION = 64
COUNT = 16  # regions per rank


def body(ctx, comm, f):
    rank = comm.rank

    # File view: this rank's regions, every NPROCS * REGION bytes.
    tile = resized(contiguous(REGION, BYTE), 0, REGION * NPROCS)
    f.set_view(disp=rank * REGION, filetype=tile)

    # Write: rank r fills its regions with the byte value r+1.
    data = np.full(REGION * COUNT, rank + 1, dtype=np.uint8)
    f.write_all(data)

    # Read back through the same view (the individual file pointer
    # advanced past the data, so rewind first — MPI semantics).
    f.seek(0)
    back = np.zeros_like(data)
    f.read_all(back)
    assert np.array_equal(back, data), f"rank {rank}: read-back mismatch"
    return {"rank": rank, "finished_at_ms": ctx.now * 1e3}


if __name__ == "__main__":
    session = Session.open(
        "/quickstart.dat",
        nprocs=NPROCS,
        hints={
            "cb_nodes": 2,               # two of the four ranks aggregate
            "io_method": "conditional",  # pick datasieve/naive per flush
        },
        trace=True,
    )
    results = session.run(body)

    # Verify the interleaving on the server's raw bytes.
    image = session.fs.raw_bytes("/quickstart.dat", 0, REGION * NPROCS * COUNT)
    for i in range(NPROCS * COUNT):
        owner = i % NPROCS
        region = image[i * REGION : (i + 1) * REGION]
        assert (region == owner + 1).all(), f"region {i} corrupted"

    print("collective write + read-back verified on the server")
    reg = session.metrics
    for r in results:
        rank = r["rank"]
        view = reg.view(rank)  # this rank's slice of the registry
        print(
            f"  rank {rank}: {view.value('coll.rounds')} two-phase rounds, "
            f"{view.value('exchange.bytes')} bytes exchanged, "
            f"done at {r['finished_at_ms']:.3f} ms"
        )
    print(
        f"\ntotals: {reg.total('coll.rounds')} rounds, "
        f"{reg.total('exchange.bytes')} bytes exchanged "
        f"(makespan {session.makespan * 1e3:.3f} ms)"
    )
    print("\nsimulated time by activity:")
    for state, seconds in sorted(
        session.time_by_state().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {state:<12} {seconds * 1e3:8.3f} ms")
