#!/usr/bin/env python
"""Persistent file realms for a netCDF-like time-series checkpoint.

Reproduces the scenario of the paper's Figure 6/7 at example scale: a
write-only application appends one time slice per collective call, all
time steps of a data point stored together.  With an *incoherent*
client write-back cache this is only safe if every file byte has a
single owner for the file's lifetime — which is exactly what persistent
file realms guarantee.  The example runs the same workload with and
without PFRs and shows:

* both produce the correct file (the non-PFR run stays correct because
  the implementation conservatively flushes/invalidates around every
  collective call);
* the PFR run needs far fewer server operations and finishes sooner.

Run:  python examples/pfr_checkpoint.py
"""

from __future__ import annotations

import numpy as np

from repro import Session
from repro.config import DEFAULT_COST_MODEL
from repro.hpio.timeseries import TimeSeriesPattern

NPROCS = 8
TS = TimeSeriesPattern(
    nprocs=NPROCS, element_size=32, elems_per_point=20, points=256, timesteps=8
)


def run(pfr: bool) -> Session:
    session = Session.open(
        "/checkpoint.nc",
        nprocs=NPROCS,
        lock_granularity=DEFAULT_COST_MODEL.stripe_size,
        hints={
            "cb_nodes": NPROCS // 2,
            "cache_mode": "incoherent",
            "persistent_file_realms": pfr,
            "realm_alignment": DEFAULT_COST_MODEL.stripe_size,
            "io_method": "datasieve",
        },
    )

    def body(ctx, comm, f):
        for step in range(TS.timesteps):
            f.set_view(disp=0, filetype=TS.filetype(comm.rank, step))
            f.write_all(TS.step_buffer(comm.rank, step))

    session.run(body)
    return session


def expected_image() -> np.ndarray:
    from repro.datatypes.packing import scatter_segments
    from repro.datatypes.segments import FlatCursor

    out = np.zeros(TS.file_bytes, dtype=np.uint8)
    for step in range(TS.timesteps):
        for rank in range(NPROCS):
            total = TS.bytes_per_rank_per_step(rank) * TS.points
            batch = FlatCursor(TS.filetype(rank, step).flatten(), 0, total).all_segments()
            scatter_segments(out, batch, TS.step_buffer(rank, step))
    return out


if __name__ == "__main__":
    oracle = expected_image()
    print(TS.describe())
    for pfr in (False, True):
        session = run(pfr)
        got = session.fs.raw_bytes("/checkpoint.nc", 0, TS.file_bytes)
        ok = np.array_equal(got, oracle)
        # Per-file server counters under their registry names, read
        # through the file's slice of the session registry.
        view = session.metrics.view("/checkpoint.nc")
        mb = TS.bytes_per_step * TS.timesteps / (1 << 20)
        print(
            f"  PFR={'on ' if pfr else 'off'}: data {'OK' if ok else 'CORRUPT'}, "
            f"{mb / session.makespan:6.2f} MB/s, "
            f"server writes={view.value('fs.server.writes')}, "
            f"reads={view.value('fs.server.reads')}, "
            f"lock revocations={view.value('lock.revocations')}"
        )
        assert ok
    print(
        "\nPFRs keep realm ownership fixed across calls, so the incoherent"
        "\nwrite-back cache can batch an entire checkpoint before flushing."
    )
