"""Property-style round-trip tests across I/O paths.

For randomized seeded access patterns (interleaved per-rank tiles with
random slot geometry and random payload bytes), every write path must
produce the same file image — the direct scatter of each rank's
accesses — and read it back byte-perfectly:

* ``two_phase_new`` — the paper's flexible implementation;
* ``two_phase_old`` — the ROMIO-style baseline;
* ``independent``  — naive per-rank I/O through the ADIO layer, no
  collective machinery at all.

A second sweep repeats the round trip with the end-to-end integrity
hints armed (page sidecars, frame checksums, and — on the new
implementation — journaled writes): under no faults the integrity
machinery must be invisible in the produced bytes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CostModel
from repro.core import CollectiveFile
from repro.datatypes.base import RawFlatType
from repro.datatypes.flatten import FlatType
from repro.datatypes.packing import scatter_segments
from repro.datatypes.segments import FlatCursor
from repro.fs import SimFileSystem
from repro.mpi import Communicator, Hints
from repro.sim import Simulator

COST = CostModel(page_size=64, stripe_size=256, num_osts=2)
PATH = "/rt"
IMPLS = ("new", "old", "independent")
SEEDS = (1, 7, 23, 99, 1234, 777216)


def geometry(seed: int):
    """Seeded random interleaved pattern, disjoint across ranks."""
    rng = np.random.default_rng(seed)
    nprocs = int(rng.integers(2, 5))
    slot = int(rng.integers(8, 25))
    seg_lo = int(rng.integers(0, slot))
    seg_len = int(rng.integers(1, slot - seg_lo + 1))
    tiles = int(rng.integers(1, 7))
    total = seg_len * tiles
    payloads = [
        rng.integers(1, 255, size=total, dtype=np.uint8) for _ in range(nprocs)
    ]
    return nprocs, slot, seg_lo, seg_len, total, payloads


def build_view(rank, nprocs, slot, seg_lo, seg_len):
    flat = FlatType(
        np.array([seg_lo], dtype=np.int64),
        np.array([seg_len], dtype=np.int64),
        slot * nprocs,
    )
    return rank * slot, RawFlatType(flat, name=f"r{rank}")


def reference(nprocs, slot, seg_lo, seg_len, total, payloads):
    """The file image a direct scatter of every access produces."""
    size = slot * nprocs * (total // max(1, (slot - seg_lo)) + total + 1)
    out = np.zeros(size, dtype=np.uint8)
    for rank in range(nprocs):
        disp, ft = build_view(rank, nprocs, slot, seg_lo, seg_len)
        batch = FlatCursor(ft.flatten(), disp, total).all_segments()
        scatter_segments(out, batch, payloads[rank])
    return out


def roundtrip(impl: str, seed: int, hints: Hints):
    """Write the seeded pattern via ``impl``, read it back, and return
    (file image, per-rank read-back arrays, reference image)."""
    nprocs, slot, seg_lo, seg_len, total, payloads = geometry(seed)
    fs = SimFileSystem(COST)

    def main(ctx):
        comm = Communicator(ctx, COST)
        f = CollectiveFile(ctx, comm, fs, PATH, hints=hints, cost=COST)
        disp, ft = build_view(comm.rank, nprocs, slot, seg_lo, seg_len)
        out = np.zeros(total, dtype=np.uint8)
        if impl == "independent":
            # Naive independent I/O: each rank drives the ADIO layer
            # directly — no aggregators, no exchange, no rounds.
            batch = FlatCursor(ft.flatten(), disp, total).all_segments()
            f.adio.write_strided(batch, payloads[comm.rank].copy(), "naive")
            f.sync()
            batch = FlatCursor(ft.flatten(), disp, total).all_segments()
            out[:] = f.adio.read_strided(batch, "naive")[:total]
        else:
            f.set_view(disp=disp, filetype=ft)
            f.write_all(payloads[comm.rank].copy())
            f.seek(0)
            f.read_all(out)
        f.close()
        return out

    results = Simulator(nprocs).run(main)
    ref = reference(nprocs, slot, seg_lo, seg_len, total, payloads)
    got = fs.raw_bytes(PATH, 0, ref.size)
    return got, results, ref, payloads


def impl_hints(impl: str) -> Hints:
    if impl == "independent":
        return Hints(cb_nodes=2, cb_buffer_size=128)
    return Hints(coll_impl=impl, cb_nodes=2, cb_buffer_size=128)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("impl", IMPLS)
def test_roundtrip_matches_reference(impl, seed):
    got, results, ref, payloads = roundtrip(impl, seed, impl_hints(impl))
    assert np.array_equal(got, ref), (impl, seed)
    for rank, out in enumerate(results):
        assert np.array_equal(out, payloads[rank]), (impl, seed, rank)


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_all_paths_agree_byte_for_byte(seed):
    images = {
        impl: roundtrip(impl, seed, impl_hints(impl))[0] for impl in IMPLS
    }
    assert np.array_equal(images["new"], images["old"]), seed
    assert np.array_equal(images["new"], images["independent"]), seed


@pytest.mark.parametrize("seed", SEEDS[:3])
@pytest.mark.parametrize("impl", IMPLS)
def test_roundtrip_with_integrity_armed_is_invisible(impl, seed):
    hints = impl_hints(impl).replace(
        integrity_pages=True,
        integrity_network=True,
        journal_writes=(impl == "new"),
    )
    plain, _, ref, _ = roundtrip(impl, seed, impl_hints(impl))
    armed, results, _, payloads = roundtrip(impl, seed, hints)
    assert np.array_equal(armed, ref), (impl, seed)
    assert np.array_equal(armed, plain), (impl, seed)
    for rank, out in enumerate(results):
        assert np.array_equal(out, payloads[rank]), (impl, seed, rank)
