"""Deprecated accessors still return correct values (with warnings).

This module is deliberately excluded from the CI deprecation gate
(``-W error::DeprecationWarning``): its whole point is to exercise the
legacy attribute surface and pin its behaviour until removal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BYTE, Session, contiguous, resized


def _run_session():
    session = Session(
        "/legacy", nprocs=2, hints={"cb_nodes": 2, "cb_buffer_size": 512}
    )

    def body(ctx, comm, f):
        region = 64
        tile = resized(contiguous(region, BYTE), 0, region * comm.size)
        f.set_view(disp=comm.rank * region, filetype=tile)
        data = np.full(region * 4, comm.rank + 1, dtype=np.uint8)
        f.write_all(data)
        with pytest.deprecated_call():
            stats = f.stats
        return {
            "rounds": stats.rounds,
            "writes": stats.collective_writes,
            "bytes": stats.bytes_exchanged,
            "metrics_rounds": f.metrics.value("coll.rounds"),
            "metrics_bytes": f.metrics.value("exchange.bytes"),
        }

    return session, session.run(body)


class TestCollectiveFileStats:
    def test_deprecated_stats_matches_registry(self):
        session, results = _run_session()
        for r in results:
            assert r["writes"] == 1
            assert r["rounds"] == r["metrics_rounds"] > 0
            assert r["bytes"] == r["metrics_bytes"]
        # And the same numbers via the session registry.
        assert session.registry.total("coll.writes") == 2

    def test_legacy_snapshot_keeps_old_field_names(self):
        session = Session("/legacy", nprocs=2)

        def body(ctx, comm, f):
            f.set_view(disp=comm.rank * 16, filetype=resized(contiguous(16, BYTE), 0, 32))
            f.write_all(np.zeros(64, dtype=np.uint8))
            with pytest.deprecated_call():
                snap = f.stats.snapshot()
            return snap

        for snap in session.run(body):
            # The pre-registry snapshot keys survive for old consumers.
            for legacy_key in ("rounds", "collective_writes", "bytes_exchanged"):
                assert legacy_key in snap


class TestCacheStats:
    def test_deprecated_cache_counters_match_registry(self):
        session = Session(
            "/legacy", nprocs=2, hints={"cache_mode": "coherent", "cb_nodes": 2}
        )

        def body(ctx, comm, f):
            f.set_view(disp=comm.rank * 64, filetype=resized(contiguous(64, BYTE), 0, 128))
            f.write_all(np.full(128, comm.rank + 1, dtype=np.uint8))
            cache = f.adio.local.cache
            if cache is None:
                return None
            with pytest.deprecated_call():
                hits = cache.stats_hits
            with pytest.deprecated_call():
                misses = cache.stats_misses
            with pytest.deprecated_call():
                flushed = cache.stats_flushed_pages
            return {
                "hits": hits,
                "misses": misses,
                "flushed": flushed,
                "reg_hits": cache.metrics.value("cache.hits"),
                "reg_misses": cache.metrics.value("cache.misses"),
                "reg_flushed": cache.metrics.value("cache.flushed_pages"),
            }

        results = [r for r in session.run(body) if r is not None]
        assert results, "no rank had a client cache"
        for r in results:
            assert r["hits"] == r["reg_hits"]
            assert r["misses"] == r["reg_misses"]
            assert r["flushed"] == r["reg_flushed"]


class TestDirectConstruction:
    def test_direct_construction_warns_and_still_works(self):
        """Hand-built CollectiveFile handles warn (docs/api.md migration)
        but keep working until removal."""
        from repro import Communicator, SimFileSystem, Simulator
        from repro.core.file_handle import CollectiveFile

        fs = SimFileSystem()

        def main(ctx):
            comm = Communicator(ctx)
            with pytest.warns(
                DeprecationWarning,
                match="Direct CollectiveFile construction is deprecated",
            ):
                f = CollectiveFile(ctx, comm, fs, "/legacy-direct")
            f.write_all(np.full(32, comm.rank + 1, dtype=np.uint8))
            f.close()
            return True

        assert all(Simulator(2).run(main))

    def test_session_open_path_does_not_warn(self):
        """The documented Session surface never triggers the migration
        warning."""
        import warnings

        session = Session("/legacy-clean", nprocs=2)

        def body(ctx, comm, f):
            f.write_all(np.zeros(16, dtype=np.uint8))

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session.run(body)
