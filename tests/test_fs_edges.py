"""Edge-case tests: file system batch operations, OST splitting, cache
eviction policies, and multi-file isolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CostModel
from repro.errors import FileSystemError
from repro.fs import FSClient, SimFileSystem
from repro.fs.filesystem import SimFileSystem as FS
from repro.sim import Simulator

COST = CostModel(page_size=64, stripe_size=256, num_osts=2)


def run_one(fn, cost=COST, lock_granularity=None):
    fs = SimFileSystem(cost, lock_granularity=lock_granularity)

    def main(ctx):
        return fn(ctx, FSClient(fs, ctx), fs)

    return Simulator(1).run(main)[0], fs


class TestOstSplitting:
    def test_bytes_and_requests_per_ost(self):
        fs = SimFileSystem(COST)
        offs = np.array([0, 256, 600], dtype=np.int64)
        lens = np.array([256, 256, 100], dtype=np.int64)
        bytes_per, reqs_per = fs._split_over_osts(offs, lens)
        # stripe 0 -> ost0 (256B), stripe 1 -> ost1 (256B),
        # extent at 600 stays in stripe 2 -> ost0 (100B).
        assert bytes_per.tolist() == [356, 256]
        assert reqs_per.tolist() == [2, 1]

    def test_extent_crossing_stripes_fragments(self):
        fs = SimFileSystem(COST)
        offs = np.array([200], dtype=np.int64)
        lens = np.array([200], dtype=np.int64)  # crosses 256 boundary
        bytes_per, reqs_per = fs._split_over_osts(offs, lens)
        assert bytes_per.tolist() == [56, 144]
        assert reqs_per.tolist() == [1, 1]

    def test_empty_batch(self):
        fs = SimFileSystem(COST)
        b, r = fs._split_over_osts(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert b.sum() == 0 and r.sum() == 0


class TestPartialPages:
    @pytest.mark.parametrize(
        "off,length,expected",
        [
            (0, 64, 0),     # exactly one page
            (0, 128, 0),    # two full pages
            (1, 63, 1),     # one partial page
            (1, 64, 2),     # spans two pages, both partial
            (0, 65, 1),     # full + 1-byte tail
            (63, 2, 2),     # tiny straddle
            (64, 64, 0),
        ],
    )
    def test_rmw_counting(self, off, length, expected):
        got = FS._partial_pages(
            np.array([off], dtype=np.int64), np.array([length], dtype=np.int64), 64
        )
        assert got == expected

    def test_batch_sums(self):
        offs = np.array([1, 64, 130], dtype=np.int64)
        lens = np.array([63, 64, 10], dtype=np.int64)
        assert FS._partial_pages(offs, lens, 64) == 1 + 0 + 1


class TestServerBatchValidation:
    def test_mismatched_data_size_rejected(self):
        def body(ctx, client, fs):
            with pytest.raises(FileSystemError):
                fs.server_write(
                    ctx, 0, "/a",
                    np.array([0]), np.array([8]),
                    np.zeros(4, dtype=np.uint8),
                )
            return True

        def main(ctx, client, fs):
            fs.ensure_file("/a")
            return body(ctx, client, fs)

        ok, _ = run_one(main)
        assert ok

    def test_negative_extent_rejected(self):
        def main(ctx, client, fs):
            fs.ensure_file("/a")
            with pytest.raises(FileSystemError):
                fs.server_read(ctx, 0, "/a", np.array([-4]), np.array([4]))
            return True

        ok, _ = run_one(main)
        assert ok

    def test_unknown_file_rejected(self):
        def main(ctx, client, fs):
            with pytest.raises(FileSystemError):
                fs.server_read(ctx, 0, "/nope", np.array([0]), np.array([4]))
            return True

        ok, _ = run_one(main)
        assert ok

    def test_zero_length_extents_dropped(self):
        def main(ctx, client, fs):
            fs.ensure_file("/a")
            fs.server_write(
                ctx, 0, "/a",
                np.array([0, 10, 20]), np.array([4, 0, 4]),
                np.arange(8, dtype=np.uint8),
            )
            return fs.raw_bytes("/a", 20, 4).tolist()

        got, _ = run_one(main)
        assert got == [4, 5, 6, 7]


class TestCacheEviction:
    def test_clean_pages_evicted_before_dirty(self):
        def main(ctx, client, fs):
            fs.raw_write("/a", 0, np.zeros(64 * 8, dtype=np.uint8))
            f = client.open("/a", cache_mode="incoherent", cache_capacity_pages=4)
            f.write(0, np.full(64, 1, dtype=np.uint8))     # dirty page 0
            for i in range(1, 8):
                f.read(i * 64, 64)                          # clean pages
            # Dirty page survives; nothing was flushed.
            assert f.cache.dirty_pages == 1
            assert fs.stats("/a").server_writes == 0
            return True

        ok, _ = run_one(main)
        assert ok

    def test_batched_dirty_writeout(self):
        def main(ctx, client, fs):
            f = client.open("/a", cache_mode="incoherent", cache_capacity_pages=8)
            for i in range(16):
                f.write(i * 64, np.full(64, i, dtype=np.uint8))
            # Eviction flushed in batches, not page by page.
            assert fs.stats("/a").server_writes <= 4
            f.close()
            return fs.raw_bytes("/a", 0, 16 * 64)

        got, _ = run_one(main)
        expect = np.repeat(np.arange(16, dtype=np.uint8), 64)
        assert np.array_equal(got, expect)

    def test_capacity_validation(self):
        def main(ctx, client, fs):
            with pytest.raises(FileSystemError):
                client.open("/a", cache_capacity_pages=0)
            with pytest.raises(FileSystemError):
                client.open("/a", cache_mode="warp")
            return True

        ok, _ = run_one(main)
        assert ok


class TestMultiFileIsolation:
    def test_caches_and_stats_separate(self):
        def main(ctx, client, fs):
            a = client.open("/a", cache_mode="incoherent")
            b = client.open("/b", cache_mode="incoherent")
            a.write(0, np.full(64, 1, dtype=np.uint8))
            b.write(0, np.full(64, 2, dtype=np.uint8))
            a.sync()
            assert fs.stats("/a").server_writes == 1
            assert fs.stats("/b").server_writes == 0
            b.sync()
            return (fs.raw_bytes("/a", 0, 1)[0], fs.raw_bytes("/b", 0, 1)[0])

        got, _ = run_one(main)
        assert got == (1, 2)

    def test_locks_per_file(self):
        def main(ctx, client, fs):
            a = client.open("/a", cache_mode="off")
            b = client.open("/b", cache_mode="off")
            a.write(0, np.zeros(64, dtype=np.uint8))
            b.write(0, np.zeros(64, dtype=np.uint8))
            assert fs.stats("/a").lock_rpcs == 1
            assert fs.stats("/b").lock_rpcs == 1
            return True

        ok, _ = run_one(main)
        assert ok


class TestGetInfo:
    def test_effective_hints_exposed(self):
        from repro.core import CollectiveFile
        from repro.mpi import Communicator, Hints

        fs = SimFileSystem(COST)

        def main(ctx):
            comm = Communicator(ctx, COST)
            f = CollectiveFile(ctx, comm, fs, "/i", hints=Hints(cb_nodes=2), cost=COST)
            info = f.get_info()
            f.close()
            return info

        info = Simulator(1).run(main)[0]
        assert info["cb_nodes"] == 2
        assert info["coll_impl"] == "new"  # default visible too
