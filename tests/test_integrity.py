"""Tests for the end-to-end integrity subsystem (repro.integrity).

The contract under test:

* detection — with the integrity hints armed, every injected bit-flip
  (stored page or in-flight frame) is caught: a typed
  :class:`IntegrityError` on the read path, a transparent frame
  re-request on the network path, never a silent wrong answer;
* honesty about the baseline — with the hints off, the same faults
  corrupt data silently (that is the gap the subsystem closes);
* crash consistency — a journaled collective write that dies
  mid-collective leaves the file byte-identical to its pre-collective
  contents, and a stale journal is discarded, never committed;
* tooling — `fsck` scrubs exactly the damaged pages and repairs them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import ChaosHarness
from repro.config import CostModel, FaultConfig
from repro.core import CollectiveFile
from repro.datatypes import BYTE, contiguous, resized
from repro.errors import (
    FileSystemError,
    IntegrityError,
    RankFailed,
    RetryExhausted,
    TransientIOError,
)
from repro.faults import FaultPlan
from repro.fs import SimFileSystem
from repro.fs.store import PageStore
from repro.integrity import FsckReport, fsck, scrub_store
from repro.io.retry import RetryPolicy
from repro.mpi import Communicator, Hints
from repro.sim import Simulator

COST = CostModel(page_size=64, stripe_size=256, num_osts=2)
NPROCS = 4
REGION = 16
COUNT = 12
SIZE = REGION * NPROCS * COUNT
HINTS = Hints(cb_buffer_size=96, cb_nodes=2)
PATH = "/data"


def oracle(ncalls: int = 1) -> np.ndarray:
    """Expected file image after the canonical tiled workload."""
    out = np.zeros(SIZE, dtype=np.uint8)
    for rank in range(NPROCS):
        for t in range(COUNT):
            off = (t * NPROCS + rank) * REGION
            out[off : off + REGION] = rank + ncalls
    return out


def run_workload(plan=None, hints=HINTS, ncalls=1, read_back=False, fs=None):
    """The canonical tiled collective write (optionally + read back);
    returns (fs, read-back results per rank, injector).

    ``ncalls=0`` makes it a read-only run.  Close happens only on
    success — closing a handle whose collective just died would hang
    the run in a mismatched barrier, exactly as real MPI would."""
    if fs is None:
        fs = SimFileSystem(COST)

    def main(ctx):
        comm = Communicator(ctx, COST)
        f = CollectiveFile(ctx, comm, fs, PATH, hints=hints, cost=COST)
        tile = resized(contiguous(REGION, BYTE), 0, REGION * NPROCS)
        f.set_view(disp=comm.rank * REGION, filetype=tile)
        for c in range(ncalls):
            f.seek(0)
            f.write_all(
                np.full(REGION * COUNT, comm.rank + 1 + c, dtype=np.uint8)
            )
        out = None
        if read_back:
            f.seek(0)
            out = np.zeros(REGION * COUNT, dtype=np.uint8)
            f.read_all(out)
        f.close()
        return out

    sim = Simulator(NPROCS)
    injector = plan.install(sim) if plan is not None else None
    results = sim.run(main)
    return fs, results, injector


def chain(exc):
    """Flatten an exception's __cause__/__context__ chain."""
    out, seen = [], set()
    while exc is not None and id(exc) not in seen:
        seen.add(id(exc))
        out.append(exc)
        exc = exc.__cause__ or exc.__context__
    return out


# ---------------------------------------------------------------------------
class TestPageStoreSidecar:
    def test_flip_is_detected_on_read(self):
        store = PageStore(64, integrity=True)
        store.write(0, np.arange(200, dtype=np.uint8))
        store.flip_bit(1, 13)
        with pytest.raises(IntegrityError) as info:
            store.read(64, 64)
        assert info.value.site == "page-read"
        assert info.value.page_index == 1
        # Out-of-band access (oracles, fsck) still works.
        assert store.read(64, 64, verify=False).size == 64
        # Untouched pages stay readable.
        assert store.read(0, 64).size == 64

    def test_verify_all_lists_exactly_the_damage(self):
        store = PageStore(64, integrity=True)
        store.write(0, np.ones(256, dtype=np.uint8))
        store.flip_bit(0, 5)
        store.flip_bit(3, 511)
        assert store.verify_all() == [0, 3]

    def test_no_sidecar_without_integrity(self):
        store = PageStore(64)
        store.write(0, np.ones(64, dtype=np.uint8))
        store.flip_bit(0, 0)
        assert store.verify_all() == []
        store.read(0, 64)  # silent — no sidecar to disagree with

    def test_enable_integrity_trusts_existing_and_is_idempotent(self):
        store = PageStore(64)
        store.write(0, np.full(64, 7, dtype=np.uint8))
        store.enable_integrity()
        assert store.verify_all() == []
        store.enable_integrity()  # no-op, no re-fingerprint surprises
        store.flip_bit(0, 3)
        assert store.verify_all() == [0]

    def test_flip_unallocated_page_rejected(self):
        store = PageStore(64, integrity=True)
        with pytest.raises(FileSystemError):
            store.flip_bit(0, 0)

    def test_write_refreshes_sidecar(self):
        store = PageStore(64, integrity=True)
        store.write(0, np.ones(64, dtype=np.uint8))
        store.flip_bit(0, 9)
        store.write(0, np.full(64, 3, dtype=np.uint8))
        # The overwrite re-stamped the page: damage is gone.
        assert store.verify_all() == []
        assert np.array_equal(store.read(0, 64), np.full(64, 3, dtype=np.uint8))


class TestChecksumSkipsZeroPages:
    def test_hole_equals_explicit_zero_page(self):
        sparse = PageStore(64)
        sparse.write(128, np.full(64, 9, dtype=np.uint8))
        dense = PageStore(64)
        dense.write(0, np.zeros(128, dtype=np.uint8))  # explicit zeros
        dense.write(128, np.full(64, 9, dtype=np.uint8))
        assert sparse.allocated_pages < dense.allocated_pages
        assert sparse.checksum() == dense.checksum()

    def test_nonzero_content_still_distinguishes(self):
        a = PageStore(64)
        a.write(0, np.full(64, 1, dtype=np.uint8))
        b = PageStore(64)
        b.write(0, np.full(64, 2, dtype=np.uint8))
        assert a.checksum() != b.checksum()


class TestTruncate:
    def test_shrink_trims_pages_and_zeroes_boundary_tail(self):
        store = PageStore(64, integrity=True)
        store.write(0, np.full(256, 5, dtype=np.uint8))
        store.truncate(100)
        assert store.size == 100
        assert store.allocated_pages == 2  # pages 2,3 dropped
        # Boundary page's tail must read zero if the file regrows.
        store.truncate(256)
        got = store.read(0, 256)
        assert np.array_equal(got[:100], np.full(100, 5, dtype=np.uint8))
        assert not got[100:].any()
        # Sidecars were maintained through the whole dance.
        assert store.verify_all() == []

    def test_exact_page_boundary_drops_whole_page(self):
        store = PageStore(64)
        store.write(0, np.ones(128, dtype=np.uint8))
        store.truncate(64)
        assert store.allocated_pages == 1
        assert store.size == 64

    def test_grow_is_a_hole(self):
        store = PageStore(64)
        store.write(0, np.ones(10, dtype=np.uint8))
        store.truncate(500)
        assert store.size == 500
        assert store.allocated_pages == 1
        assert not store.read(10, 490).any()

    def test_negative_rejected(self):
        with pytest.raises(FileSystemError):
            PageStore(64).truncate(-1)


# ---------------------------------------------------------------------------
class TestFsck:
    def _store(self):
        store = PageStore(64, integrity=True)
        image = (np.arange(256, dtype=np.int64) % 251).astype(np.uint8)
        store.write(0, image)
        return store, image

    def test_requires_sidecar(self):
        with pytest.raises(FileSystemError):
            scrub_store(PageStore(64))

    def test_report_only_finds_damage_and_repairs_nothing(self):
        store, _ = self._store()
        store.flip_bit(2, 100)
        rep = scrub_store(store, "/x")
        assert isinstance(rep, FsckReport)
        assert rep.bad_pages == [2] and rep.repaired == [] and not rep.clean
        assert store.verify_all() == [2]  # untouched
        assert "BAD" in rep.format()

    def test_repair_zero_drops_page_to_hole(self):
        store, _ = self._store()
        store.flip_bit(1, 3)
        rep = scrub_store(store, "/x", repair="zero")
        assert rep.clean and rep.repaired == [1]
        assert store.verify_all() == []
        assert not store.read(64, 64).any()

    def test_repair_accept_blesses_corruption(self):
        store, image = self._store()
        store.flip_bit(1, 3)
        rep = scrub_store(store, "/x", repair="accept")
        assert rep.clean
        assert store.verify_all() == []
        # The bytes are still wrong — accept makes corruption the truth.
        assert not np.array_equal(store.read(0, 256), image)

    def test_repair_reference_restores_bytes(self):
        store, image = self._store()
        store.flip_bit(0, 7)
        store.flip_bit(3, 42)
        rep = scrub_store(store, "/x", repair="reference", reference=image)
        assert rep.clean and rep.repaired == [0, 3]
        assert np.array_equal(store.read(0, 256), image)

    def test_reference_mode_needs_an_image(self):
        store, _ = self._store()
        with pytest.raises(FileSystemError):
            scrub_store(store, repair="reference")

    def test_unknown_mode_rejected(self):
        store, _ = self._store()
        with pytest.raises(FileSystemError):
            scrub_store(store, repair="pray")

    def test_filesystem_level_scrub(self):
        fs = SimFileSystem(COST)
        image = np.full(128, 6, dtype=np.uint8)
        fs.raw_write("/a", 0, image)
        fs.raw_write("/b", 0, image)
        fs.enable_integrity("/a")
        fs.enable_integrity("/b")
        fs.page_store("/b").flip_bit(1, 17)
        reports = {r.path: r for r in fsck(fs)}
        assert reports["/a"].clean and not reports["/b"].clean
        fsck(fs, "/b", repair="reference", references={"/b": image})
        assert all(r.clean for r in fsck(fs))
        assert np.array_equal(fs.raw_bytes("/b", 0, 128), image)


# ---------------------------------------------------------------------------
class TestEndToEndDetection:
    def test_page_corruption_raises_typed_error_on_read(self):
        hints = HINTS.replace(integrity_pages=True)
        fs, _, injector = run_workload(
            plan=FaultPlan(seed=5).page_bitflip(rate=1.0), hints=hints
        )
        assert injector.stats.page_bits_flipped > 0
        bad = fs.page_store(PATH).verify_all()
        assert bad  # the scrub sees the damage offline...
        # A read-only run must die loudly (a fresh *write* would re-stamp
        # the sidecars and launder the damage — hence ncalls=0).
        with pytest.raises(RankFailed) as info:
            run_workload(hints=hints, ncalls=0, read_back=True, fs=fs)
        hits = [e for e in chain(info.value) if isinstance(e, IntegrityError)]
        assert hits
        assert hits[0].page_index in bad
        assert hits[0].path == PATH

    def test_page_corruption_is_silent_without_the_hint(self):
        fs, _, injector = run_workload(
            plan=FaultPlan(seed=5).page_bitflip(rate=1.0)
        )
        assert injector.stats.page_bits_flipped > 0
        got = fs.raw_bytes(PATH, 0, SIZE)
        assert not np.array_equal(got, oracle())  # the silent wrong answer
        assert fs.page_store(PATH).verify_all() == []  # nothing to catch it

    def test_net_corruption_detected_and_redelivered(self):
        hints = HINTS.replace(integrity_network=True)
        fs, results, injector = run_workload(
            plan=FaultPlan(seed=3).net_bitflip(rate=0.3),
            hints=hints,
            read_back=True,
        )
        stats = injector.stats
        assert stats.net_bits_flipped > 0
        assert stats.net_corruptions_detected > 0
        assert stats.net_redeliveries > 0
        # Every frame was healed in flight: contents are byte-perfect.
        assert np.array_equal(fs.raw_bytes(PATH, 0, SIZE), oracle())
        for rank, out in enumerate(results):
            assert np.array_equal(
                out, np.full(REGION * COUNT, rank + 1, dtype=np.uint8)
            )

    def test_net_corruption_is_silent_without_the_hint(self):
        fs, _, injector = run_workload(
            plan=FaultPlan(seed=3).net_bitflip(rate=0.3)
        )
        assert injector.stats.net_bits_flipped > 0
        assert injector.stats.net_corruptions_detected == 0
        assert not np.array_equal(fs.raw_bytes(PATH, 0, SIZE), oracle())

    def test_persistent_net_corruption_exhausts_rerequests(self):
        hints = HINTS.replace(integrity_network=True)
        with pytest.raises(RankFailed) as info:
            run_workload(
                plan=FaultPlan(seed=1).net_bitflip(rate=1.0), hints=hints
            )
        hits = [e for e in chain(info.value) if isinstance(e, RetryExhausted)]
        assert hits and hits[0].site == "net-frame"

    def test_fast_path_pays_nothing_with_hints_off(self):
        def timed(hints):
            fs = SimFileSystem(COST)

            def main(ctx):
                comm = Communicator(ctx, COST)
                f = CollectiveFile(ctx, comm, fs, PATH, hints=hints, cost=COST)
                tile = resized(contiguous(REGION, BYTE), 0, REGION * NPROCS)
                f.set_view(disp=comm.rank * REGION, filetype=tile)
                f.write_all(np.full(REGION * COUNT, comm.rank + 1, dtype=np.uint8))
                f.close()
                return ctx.now

            return Simulator(NPROCS).run(main)

        # Hints off must be *identical* to the pre-integrity fast path
        # (not "within noise" — nothing may even look at the config).
        assert timed(HINTS) == timed(HINTS)
        on = timed(HINTS.replace(integrity_pages=True, integrity_network=True))
        assert max(on) >= max(timed(HINTS))


# ---------------------------------------------------------------------------
class TestJournal:
    JHINTS = HINTS.replace(journal_writes=True)

    def test_commit_publishes_and_counts(self):
        fs, results, _ = run_workload(hints=self.JHINTS, read_back=True)
        assert np.array_equal(fs.raw_bytes(PATH, 0, SIZE), oracle())
        stats = fs.stats(PATH)
        assert stats.journal_commits == 1
        assert stats.journal_writes > 0
        assert stats.journal_pages_committed > 0
        assert not fs.txn_active(PATH)
        for rank, out in enumerate(results):
            assert np.array_equal(
                out, np.full(REGION * COUNT, rank + 1, dtype=np.uint8)
            )

    def test_sieving_sees_its_own_journaled_bytes(self):
        # Data sieving pre-reads its window; inside a transaction those
        # reads must overlay the journal's bytes (read-your-writes).
        hints = self.JHINTS.replace(io_method="datasieve")
        fs, _, _ = run_workload(hints=hints, ncalls=2)
        assert np.array_equal(fs.raw_bytes(PATH, 0, SIZE), oracle(ncalls=2))
        assert fs.stats(PATH).journal_commits == 2

    def test_journal_composes_with_page_integrity(self):
        hints = self.JHINTS.replace(integrity_pages=True)
        fs, _, _ = run_workload(hints=hints)
        assert np.array_equal(fs.raw_bytes(PATH, 0, SIZE), oracle())
        assert fs.page_store(PATH).verify_all() == []

    def test_crash_mid_collective_preserves_preimage(self):
        # Call 0 commits; call 1 dies at a phase boundary with failover
        # off.  The journal was never committed, so the file must be
        # byte-identical to the post-call-0 image.
        hints = self.JHINTS.replace(failover=False)
        fs, _, _ = run_workload(hints=hints)  # call-free warmup: image P1
        pre = fs.raw_bytes(PATH, 0, SIZE)
        plan = FaultPlan(seed=2).agg_crash(rank=0, call_index=0, round_index=1)
        with pytest.raises(RankFailed):
            run_workload(plan=plan, hints=hints, ncalls=2, fs=fs)
        assert np.array_equal(fs.raw_bytes(PATH, 0, SIZE), pre)
        assert fs.txn_active(PATH)  # the orphaned journal survives...
        assert fs.stats(PATH).journal_commits == 1  # ...uncommitted

    def test_stale_journal_is_discarded_not_committed(self):
        # Crash the *second* call (txid 1), then run a fresh workload
        # without an injector (txid 0): txn_begin must treat the
        # leftover journal as a crash remnant and discard it.
        hints = self.JHINTS.replace(failover=False)
        plan = FaultPlan(seed=2).agg_crash(rank=0, call_index=1, round_index=1)
        fs = SimFileSystem(COST)
        with pytest.raises(RankFailed):
            run_workload(plan=plan, hints=hints, ncalls=2, fs=fs)
        assert fs.txn_active(PATH)
        aborts_before = fs.stats(PATH).journal_aborts
        fs2, _, _ = run_workload(hints=self.JHINTS, fs=fs)
        assert fs2.stats(PATH).journal_aborts == aborts_before + 1
        assert np.array_equal(fs2.raw_bytes(PATH, 0, SIZE), oracle())

    def test_crash_with_failover_still_commits(self):
        plan = FaultPlan(seed=2).agg_crash(rank=0, call_index=0, round_index=1)
        fs, _, injector = run_workload(plan=plan, hints=self.JHINTS)
        assert injector.stats.agg_crashes == 1
        assert np.array_equal(fs.raw_bytes(PATH, 0, SIZE), oracle())
        assert fs.stats(PATH).journal_commits == 1
        assert not fs.txn_active(PATH)


# ---------------------------------------------------------------------------
class TestResize:
    def test_collective_set_size_shrink_then_grow(self):
        fs = SimFileSystem(COST)
        cut = SIZE // 2

        def main(ctx):
            comm = Communicator(ctx, COST)
            f = CollectiveFile(ctx, comm, fs, PATH, hints=HINTS, cost=COST)
            tile = resized(contiguous(REGION, BYTE), 0, REGION * NPROCS)
            f.set_view(disp=comm.rank * REGION, filetype=tile)
            f.write_all(np.full(REGION * COUNT, comm.rank + 1, dtype=np.uint8))
            f.set_size(cut)
            size_after_shrink = f.size
            f.set_size(SIZE)
            f.close()
            return size_after_shrink

        sizes = Simulator(NPROCS).run(main)
        assert all(s == cut for s in sizes)
        assert fs.file_size(PATH) == SIZE
        got = fs.raw_bytes(PATH, 0, SIZE)
        assert np.array_equal(got[:cut], oracle()[:cut])
        assert not got[cut:].any()  # truncated tail regrew as zeros

    def test_shrink_keeps_sidecars_consistent(self):
        fs = SimFileSystem(COST)
        hints = HINTS.replace(integrity_pages=True)

        def main(ctx):
            comm = Communicator(ctx, COST)
            f = CollectiveFile(ctx, comm, fs, PATH, hints=hints, cost=COST)
            tile = resized(contiguous(REGION, BYTE), 0, REGION * NPROCS)
            f.set_view(disp=comm.rank * REGION, filetype=tile)
            f.write_all(np.full(REGION * COUNT, comm.rank + 1, dtype=np.uint8))
            f.set_size(100)  # mid-page cut: boundary tail gets zeroed
            f.close()

        Simulator(NPROCS).run(main)
        assert fs.file_size(PATH) == 100
        assert fs.page_store(PATH).verify_all() == []

    def test_negative_size_rejected(self):
        fs = SimFileSystem(COST)

        def main(ctx):
            comm = Communicator(ctx, COST)
            f = CollectiveFile(ctx, comm, fs, PATH, hints=HINTS, cost=COST)
            f.set_size(-1)

        with pytest.raises(RankFailed):
            Simulator(NPROCS).run(main)


# ---------------------------------------------------------------------------
class _FakeCtx:
    """Just enough RankContext for RetryPolicy: a shared map and a
    backoff clock that records what it was charged."""

    def __init__(self):
        self.shared = {}
        self.delays = []

    def advance(self, dt):
        self.delays.append(dt)


class TestBackoffCap:
    def test_delay_is_capped(self):
        ctx = _FakeCtx()
        policy = RetryPolicy(
            retries=6, backoff=1e-3, backoff_factor=4.0, backoff_max=5e-3
        )
        calls = {"n": 0}

        def op():
            calls["n"] += 1
            if calls["n"] <= 4:
                raise TransientIOError("unit", 0)
            return 7

        assert policy.run(ctx, op) == 7
        assert ctx.delays == [1e-3, 4e-3, 5e-3, 5e-3]

    def test_hint_reaches_the_policy(self):
        assert Hints(retry_backoff_max=0.5)["retry_backoff_max"] == 0.5

    def test_config_validates_cap_ordering(self):
        with pytest.raises(ValueError):
            FaultConfig(retry_backoff=2e-3, retry_backoff_max=1e-3).validate()
        FaultConfig(retry_backoff=1e-3, retry_backoff_max=1e-3).validate()


# ---------------------------------------------------------------------------
class TestChaosAcceptance:
    def test_every_flip_detected_with_integrity_on(self):
        report = ChaosHarness("bit-flip:42", integrity=True).sweep()
        assert report.all_verified
        flips = sum(
            p.fault_stats.get("page_bits_flipped", 0)
            + p.fault_stats.get("net_bits_flipped", 0)
            for p in report.points
        )
        assert flips > 0  # the sweep actually injected corruption
        assert any(p.detected for p in report.points)

    def test_same_sweep_is_silent_corruption_without_integrity(self):
        report = ChaosHarness("bit-flip:42").sweep()
        assert not report.all_verified
