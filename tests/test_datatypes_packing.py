"""Tests for gather/scatter packing and wire serialization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import (
    BYTE,
    contiguous,
    decode_flat,
    encode_flat,
    gather_bytes,
    hindexed,
    resized,
    scatter_bytes,
    vector,
    wire_size,
)
from repro.datatypes.flatten import FlatType
from repro.datatypes.packing import expand_indices, gather_segments, scatter_segments
from repro.datatypes.segments import data_to_file_segments
from repro.datatypes.serialize import HEADER_BYTES, PAIR_BYTES
from repro.errors import DatatypeError


class TestExpandIndices:
    def test_basic(self):
        idx = expand_indices(np.array([3, 10]), np.array([2, 3]))
        assert idx.tolist() == [3, 4, 10, 11, 12]

    def test_single_run(self):
        assert expand_indices(np.array([5]), np.array([4])).tolist() == [5, 6, 7, 8]

    def test_zero_lengths_skipped(self):
        idx = expand_indices(np.array([1, 5, 9]), np.array([2, 0, 1]))
        assert idx.tolist() == [1, 2, 9]

    def test_empty(self):
        assert expand_indices(np.array([]), np.array([])).size == 0

    def test_descending_starts(self):
        idx = expand_indices(np.array([10, 0]), np.array([2, 2]))
        assert idx.tolist() == [10, 11, 0, 1]


class TestGatherScatter:
    def test_gather_strided(self):
        buf = np.arange(20, dtype=np.uint8)
        flat = vector(3, 2, 5, BYTE).flatten()
        out = gather_bytes(buf, flat, 0, 6)
        assert out.tolist() == [0, 1, 5, 6, 10, 11]

    def test_gather_partial_window(self):
        buf = np.arange(20, dtype=np.uint8)
        flat = vector(3, 2, 5, BYTE).flatten()
        assert gather_bytes(buf, flat, 1, 5).tolist() == [1, 5, 6, 10]

    def test_scatter_inverse_of_gather(self):
        flat = vector(4, 3, 7, BYTE).flatten()
        src = np.arange(40, dtype=np.uint8)
        data = gather_bytes(src, flat, 2, 11)
        dst = np.zeros(40, dtype=np.uint8)
        scatter_bytes(dst, flat, 2, 11, data)
        check = gather_bytes(dst, flat, 2, 11)
        assert np.array_equal(check, data)

    def test_scatter_wrong_size_rejected(self):
        flat = contiguous(4, BYTE).flatten()
        with pytest.raises(DatatypeError):
            scatter_bytes(np.zeros(4, dtype=np.uint8), flat, 0, 4, np.zeros(3, dtype=np.uint8))

    def test_nonuint8_rejected(self):
        flat = contiguous(4, BYTE).flatten()
        with pytest.raises(DatatypeError):
            gather_bytes(np.zeros(4, dtype=np.int32), flat, 0, 4)

    def test_gather_nonmonotonic_memory_type(self):
        buf = np.arange(10, dtype=np.uint8)
        flat = hindexed([2, 2], [6, 0], BYTE).flatten()
        assert gather_bytes(buf, flat, 0, 4).tolist() == [6, 7, 0, 1]

    def test_large_segments_use_slice_path(self):
        buf = np.arange(8192, dtype=np.int64).astype(np.uint8)
        flat = resized(contiguous(2048, BYTE), 0, 4096).flatten()
        out = gather_bytes(buf, flat, 0, 4096)
        assert out.size == 4096
        assert np.array_equal(out[:2048], buf[:2048])
        assert np.array_equal(out[2048:], buf[4096:6144])

    def test_empty_batch_roundtrip(self):
        flat = contiguous(4, BYTE).flatten()
        batch = data_to_file_segments(flat, 0, 0, 0)
        buf = np.zeros(4, dtype=np.uint8)
        assert gather_segments(buf, batch).size == 0
        scatter_segments(buf, batch, np.empty(0, dtype=np.uint8))

    def test_scatter_data_for_empty_batch_rejected(self):
        flat = contiguous(4, BYTE).flatten()
        batch = data_to_file_segments(flat, 0, 0, 0)
        with pytest.raises(DatatypeError):
            scatter_segments(np.zeros(4, dtype=np.uint8), batch, np.ones(1, dtype=np.uint8))


class TestSerialize:
    def test_roundtrip(self):
        flat = vector(5, 3, 9, BYTE).flatten()
        assert decode_flat(encode_flat(flat)) == flat

    def test_wire_size_formula(self):
        flat = vector(5, 3, 9, BYTE).flatten()
        payload = encode_flat(flat)
        assert len(payload) == wire_size(flat) == HEADER_BYTES + PAIR_BYTES * 5

    def test_empty_type(self):
        flat = FlatType([], [], 0)
        assert decode_flat(encode_flat(flat)) == flat

    def test_bad_magic_rejected(self):
        flat = contiguous(4, BYTE).flatten()
        payload = bytearray(encode_flat(flat))
        payload[0] ^= 0xFF
        with pytest.raises(DatatypeError):
            decode_flat(bytes(payload))

    def test_truncated_rejected(self):
        flat = contiguous(4, BYTE).flatten()
        with pytest.raises(DatatypeError):
            decode_flat(encode_flat(flat)[:-1])
        with pytest.raises(DatatypeError):
            decode_flat(b"abc")

    def test_succinct_much_smaller_than_enumerated(self):
        succinct = resized(contiguous(64, BYTE), 0, 192).flatten()
        enumerated = succinct.replicate(4096)
        assert wire_size(succinct) * 100 < wire_size(enumerated)


@st.composite
def mem_patterns(draw):
    nseg = draw(st.integers(1, 5))
    offs = draw(
        st.lists(st.integers(0, 40), min_size=nseg, max_size=nseg, unique=True)
    )
    lens = draw(st.lists(st.integers(1, 5), min_size=nseg, max_size=nseg))
    # Keep segments disjoint by spreading them out.
    offs = sorted(offs)
    spread_offs = [o * 6 for o in offs]
    order = draw(st.permutations(range(nseg)))
    o = [spread_offs[i] for i in order]
    l = [lens[i] for i in order]
    extent = max(a + b for a, b in zip(o, l)) + draw(st.integers(0, 5))
    return FlatType(np.array(o), np.array(l), extent)


@given(mem_patterns(), st.integers(0, 20), st.integers(0, 20), st.integers(2, 3))
@settings(max_examples=150, deadline=None)
def test_gather_scatter_roundtrip_property(flat, lo, width, tiles):
    total = flat.size * tiles
    data_lo = min(lo, total)
    data_hi = min(data_lo + width, total)
    rng = np.random.default_rng(42)
    buf = rng.integers(0, 255, size=flat.extent * tiles + 8, dtype=np.uint8)
    data = gather_bytes(buf, flat, data_lo, data_hi)
    assert data.size == data_hi - data_lo
    target = np.zeros_like(buf)
    scatter_bytes(target, flat, data_lo, data_hi, data)
    assert np.array_equal(gather_bytes(target, flat, data_lo, data_hi), data)


@given(mem_patterns())
@settings(max_examples=100, deadline=None)
def test_serialize_roundtrip_property(flat):
    assert decode_flat(encode_flat(flat)) == flat
