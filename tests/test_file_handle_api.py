"""Tests for the MPI_File-like API surface: explicit-offset collectives,
independent I/O, hints plumbing, and lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CostModel
from repro.core import CollectiveFile
from repro.datatypes import BYTE, INT, contiguous, resized, vector
from repro.errors import CollectiveIOError, HintError
from repro.fs import SimFileSystem
from repro.mpi import Communicator, Hints
from repro.sim import Simulator

COST = CostModel(page_size=64, stripe_size=256, num_osts=2)


def run(nprocs, body, hints=None):
    fs = SimFileSystem(COST)
    hints = hints or Hints()

    def main(ctx):
        comm = Communicator(ctx, COST)
        f = CollectiveFile(ctx, comm, fs, "/f", hints=hints, cost=COST)
        try:
            return body(ctx, comm, f)
        finally:
            f.close()

    return Simulator(nprocs).run(main), fs


class TestExplicitOffsets:
    def test_write_at_all_lands_later_records(self):
        """Each collective writes one 'record' (a filetype instance);
        write_at_all addresses records directly."""

        def body(ctx, comm, f):
            f.set_view(disp=comm.rank * 8, filetype=resized(contiguous(8, BYTE), 0, 16))
            f.write_at_all(0, np.full(8, 1, dtype=np.uint8))
            f.write_at_all(8, np.full(8, 2, dtype=np.uint8))  # skip 1 record
            return True

        results, fs = run(2, body)
        assert all(results)
        # Tile extent is 16: rank r's record k sits at r*8 + k*16.
        assert fs.raw_bytes("/f", 0, 8).tolist() == [1] * 8    # r0 rec0
        assert fs.raw_bytes("/f", 8, 8).tolist() == [1] * 8    # r1 rec0
        assert fs.raw_bytes("/f", 16, 8).tolist() == [2] * 8   # r0 rec1
        assert fs.raw_bytes("/f", 24, 8).tolist() == [2] * 8   # r1 rec1

    def test_read_at_all_roundtrip(self):
        def body(ctx, comm, f):
            f.set_view(disp=comm.rank * 8, filetype=resized(contiguous(8, BYTE), 0, 16))
            f.write_at_all(8, np.full(8, comm.rank + 5, dtype=np.uint8))
            out = np.zeros(8, dtype=np.uint8)
            f.read_at_all(8, out)
            return out.tolist()

        results, _ = run(2, body)
        assert results[0] == [5] * 8
        assert results[1] == [6] * 8

    def test_mid_tile_offset_supported(self):
        """Explicit offsets may land mid-filetype-instance: the data
        stream position maps through the typemap exactly."""

        def body(ctx, comm, f):
            f.set_view(disp=0, filetype=resized(contiguous(8, BYTE), 0, 16))
            # Offset 3 etypes (= bytes): data bytes 3..11 of the stream:
            # file bytes 3..8 (tail of tile 0) and 16..19 (head of tile 1).
            f.write_at_all(3, np.full(8, 9, dtype=np.uint8))
            return True

        results, fs = run(1, body)
        assert all(results)
        img = fs.raw_bytes("/f", 0, 20).tolist()
        assert img[0:3] == [0, 0, 0]
        assert img[3:8] == [9] * 5
        assert img[8:16] == [0] * 8
        assert img[16:19] == [9] * 3
        assert img[19] == 0

    def test_pointer_advances_and_seeks(self):
        def body(ctx, comm, f):
            f.set_view(disp=comm.rank * 8, filetype=resized(contiguous(8, BYTE), 0, 16))
            assert f.get_position() == 0
            f.write_all(np.full(8, 1, dtype=np.uint8))
            assert f.get_position() == 8
            f.write_all(np.full(8, 2, dtype=np.uint8))  # appends
            assert f.get_position() == 16
            f.seek(0)
            out = np.zeros(16, dtype=np.uint8)
            f.read_all(out)
            assert f.get_position() == 16
            f.seek(-8, f.SEEK_CUR)
            assert f.get_position() == 8
            return out.tolist()

        results, fs = run(2, body)
        assert results[0] == [1] * 8 + [2] * 8
        # Records interleave by rank; record 1 lands one tile later.
        assert fs.raw_bytes("/f", 16, 8).tolist() == [2] * 8

    def test_seek_validation(self):
        def body(ctx, comm, f):
            with pytest.raises(CollectiveIOError):
                f.seek(-1)
            with pytest.raises(CollectiveIOError):
                f.seek(0, whence=7)
            return True

        results, _ = run(1, body)
        assert all(results)

    def test_at_all_does_not_move_pointer(self):
        def body(ctx, comm, f):
            f.set_view(disp=0, filetype=contiguous(8, BYTE))
            f.write_at_all(4, np.zeros(8, dtype=np.uint8))
            return f.get_position()

        results, _ = run(1, body)
        assert results[0] == 0

    def test_negative_offset_rejected(self):
        def body(ctx, comm, f):
            with pytest.raises(CollectiveIOError):
                f.write_at_all(-1, np.zeros(4, dtype=np.uint8))
            return True

        run(1, body)

    def test_view_restored_after_at_all(self):
        def body(ctx, comm, f):
            f.set_view(disp=64, filetype=contiguous(8, BYTE))
            f.write_at_all(8, np.zeros(8, dtype=np.uint8))
            return f.view.disp

        results, _ = run(1, body)
        assert results[0] == 64


class TestIndependentIO:
    def test_write_ind_strided(self):
        def body(ctx, comm, f):
            # set_view is collective; the independent write is not.
            f.set_view(disp=0, filetype=resized(contiguous(4, BYTE), 0, 12))
            if comm.rank == 0:
                f.write_ind(np.arange(16, dtype=np.uint8))
            return True

        results, fs = run(2, body)
        img = fs.raw_bytes("/f", 0, 48)
        for tile in range(4):
            assert img[tile * 12 : tile * 12 + 4].tolist() == list(range(tile * 4, tile * 4 + 4))
            assert img[tile * 12 + 4 : tile * 12 + 12].tolist() == [0] * 8

    def test_read_ind_roundtrip(self):
        def body(ctx, comm, f):
            f.set_view(disp=comm.rank * 100, filetype=resized(contiguous(4, BYTE), 0, 12))
            data = np.arange(16, dtype=np.uint8) + comm.rank
            f.write_ind(data)
            f.seek(0)
            out = np.zeros_like(data)
            f.read_ind(out)
            return np.array_equal(out, data)

        results, _ = run(2, body)
        assert all(results)

    def test_write_ind_noncontig_memory(self):
        def body(ctx, comm, f):
            f.set_view(disp=0, filetype=contiguous(8, BYTE))
            mt = vector(2, 4, 8, BYTE)  # 8 data bytes from a 12-byte buffer
            buf = np.arange(12, dtype=np.uint8)
            f.write_ind(buf, memtype=mt, count=1)
            return True

        results, fs = run(1, body)
        assert fs.raw_bytes("/f", 0, 8).tolist() == [0, 1, 2, 3, 8, 9, 10, 11]

    def test_ind_uses_hinted_method(self):
        def body(ctx, comm, f):
            f.set_view(disp=0, filetype=resized(contiguous(4, BYTE), 0, 12))
            f.write_ind(np.zeros(16, dtype=np.uint8))
            snap = f.metrics.snapshot()
            pre = "coll.flush."
            return {k[len(pre):]: v for k, v in snap.items() if k.startswith(pre)}

        results, _ = run(1, body, Hints(io_method="naive"))
        assert results[0] == {"naive": 1}

    def test_zero_size_noop(self):
        def body(ctx, comm, f):
            f.set_view(disp=0, filetype=contiguous(4, BYTE))
            f.write_ind(np.empty(0, dtype=np.uint8))
            return True

        results, _ = run(1, body)
        assert all(results)


class TestHints:
    def test_unknown_key_rejected(self):
        with pytest.raises(HintError):
            Hints(bogus_key=1)

    def test_bad_value_rejected(self):
        with pytest.raises(HintError):
            Hints(cb_buffer_size=-4)
        with pytest.raises(HintError):
            Hints(io_method="turbo")
        with pytest.raises(HintError):
            Hints(use_heap="maybe")

    def test_defaults_resolve(self):
        h = Hints()
        assert h["coll_impl"] == "new"
        assert h["cb_buffer_size"] == 4 * 1024 * 1024
        assert h["io_method"] == "datasieve"
        assert h["use_heap"] is True

    def test_string_booleans_and_ints(self):
        h = Hints(use_heap="false", cb_buffer_size="1048576")
        assert h["use_heap"] is False
        assert h["cb_buffer_size"] == 1 << 20

    def test_replace_overrides(self):
        a = Hints(cb_nodes=4)
        b = a.replace(cb_nodes=8, io_method="naive")
        assert a["cb_nodes"] == 4
        assert b["cb_nodes"] == 8
        assert b["io_method"] == "naive"

    def test_explicit_only_set_keys(self):
        assert Hints(cb_nodes=2).explicit() == {"cb_nodes": 2}

    def test_mapping_interface(self):
        h = Hints()
        assert len(h) == len(Hints.known_keys())
        assert set(iter(h)) == set(Hints.known_keys())
        assert Hints.default("exchange") == "alltoallw"

    def test_aligned_strategy_requires_alignment(self):
        def body(ctx, comm, f):
            f.set_view(disp=0, filetype=contiguous(8, BYTE))
            with pytest.raises(CollectiveIOError):
                f.write_all(np.zeros(8, dtype=np.uint8))
            return True

        results, _ = run(1, body, Hints(realm_strategy="aligned"))
        assert all(results)


class TestLifecycle:
    def test_set_view_is_collective(self):
        def body(ctx, comm, f):
            f.set_view(disp=0, etype=INT, filetype=contiguous(4, INT))
            return f.view.etype.size

        results, _ = run(3, body)
        assert results == [4, 4, 4]

    def test_double_close_safe(self):
        def body(ctx, comm, f):
            f.close()
            f.close()
            return True

        results, _ = run(2, body)
        assert all(results)

    def test_context_manager(self):
        fs = SimFileSystem(COST)

        def main(ctx):
            comm = Communicator(ctx, COST)
            with CollectiveFile(ctx, comm, fs, "/cm", cost=COST) as f:
                f.write_all(np.full(8, 3, dtype=np.uint8))
            return True

        assert all(Simulator(2).run(main))
        assert fs.raw_bytes("/cm", 0, 8).tolist() == [3] * 8

    def test_sync_flushes_cache(self):
        def body(ctx, comm, f):
            f.write_all(np.full(64, 9, dtype=np.uint8))
            f.sync()
            return True

        results, fs = run(1, body, Hints(cache_mode="incoherent", persistent_file_realms=True))
        assert fs.raw_bytes("/f", 0, 64).tolist() == [9] * 64

    def test_size_property(self):
        def body(ctx, comm, f):
            f.write_all(np.zeros(100, dtype=np.uint8))
            f.sync()
            return f.size

        results, _ = run(1, body)
        assert results[0] == 100
