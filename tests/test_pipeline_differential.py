"""Differential property for double-buffered (pipelined) rounds.

``pipeline_depth`` only overlaps round *timing* — flush/fill coroutines
run concurrently with the next round's exchange — so for every depth in
{1, 2, 4}, all four exchange backends, and both implementations, the
file image and every read-back must be byte-identical to the serialized
(depth 0) run of the same program.  A second block re-runs a fixed case
with composed faults: an ``ost_flap`` (data-path — the pipeline stays
live and the coroutines retry through it) plus a ``rank_crash``
(realm-mutating — the pipeline stands down, exactly like the plan
cache) with ``plan_cache=True``, proving the three features compose
without changing a byte.

A third block pins the payoff: at depth >= 2 a multi-round workload
must report nonzero ``coll.pipeline.overlap_seconds`` and a makespan no
worse than serialized.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CostModel
from repro.core import CollectiveFile
from repro.datatypes.base import RawFlatType
from repro.datatypes.flatten import FlatType
from repro.datatypes.packing import scatter_segments
from repro.datatypes.segments import FlatCursor
from repro.faults import FaultPlan
from repro.fs import SimFileSystem
from repro.mpi import Communicator, Hints
from repro.obs.session import Session
from repro.sim import Simulator

COST = CostModel(page_size=64, stripe_size=256, num_osts=2)
PATH = "/pipeline"
STEPS = 2
DEPTHS = (1, 2, 4)

MODES = (
    ("new+two_layer", "new", "two_layer"),
    ("new+alltoallw", "new", "alltoallw"),
    ("new+nonblocking", "new", "nonblocking"),
    ("old", "old", None),
)

_SETTINGS = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def cases(draw):
    nprocs = draw(st.integers(min_value=2, max_value=5))
    slot = draw(st.integers(min_value=8, max_value=24))
    seg_lo = draw(st.integers(min_value=0, max_value=slot - 1))
    seg_len = draw(st.integers(min_value=1, max_value=slot - seg_lo))
    return dict(
        nprocs=nprocs,
        slot=slot,
        seg_lo=seg_lo,
        seg_len=seg_len,
        tiles=draw(st.integers(min_value=1, max_value=6)),
        ppn=draw(st.integers(min_value=1, max_value=nprocs)),
        cb=draw(st.sampled_from((96, 160, 256))),
        cb_nodes=draw(st.integers(min_value=0, max_value=3)),
        strategy=draw(st.sampled_from(("even", "aligned"))),
        io_method=draw(st.sampled_from(("datasieve", "naive"))),
        depth=draw(st.sampled_from(DEPTHS)),
        empty_last=draw(st.booleans()),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
    )


def _build_view(rank, case):
    flat = FlatType(
        np.array([case["seg_lo"]], dtype=np.int64),
        np.array([case["seg_len"]], dtype=np.int64),
        case["slot"] * case["nprocs"],
    )
    return rank * case["slot"], RawFlatType(flat, name=f"r{rank}")


def _payloads(case):
    rng = np.random.default_rng(case["seed"])
    total = case["seg_len"] * case["tiles"]
    totals = [total] * case["nprocs"]
    if case["empty_last"] and case["nprocs"] > 2:
        totals[-1] = 0
    return [
        [rng.integers(1, 255, size=n, dtype=np.uint8) for n in totals]
        for _ in range(STEPS)
    ]


def _reference(case, payloads):
    size = case["slot"] * case["nprocs"] * (case["tiles"] + 2)
    out = np.zeros(size, dtype=np.uint8)
    for step in range(STEPS):
        for rank, payload in enumerate(payloads[step]):
            if payload.size == 0:
                continue
            disp, ft = _build_view(rank, case)
            batch = FlatCursor(ft.flatten(), disp, payload.size).all_segments()
            scatter_segments(out, batch, payload)
    return out


def _hints(case, impl, exchange, depth, **extra):
    values = dict(
        coll_impl=impl,
        cb_nodes=case["cb_nodes"],
        cb_buffer_size=case["cb"],
        realm_strategy=case["strategy"],
        realm_alignment=64 if case["strategy"] == "aligned" else 0,
        io_method=case["io_method"],
        pipeline_depth=depth,
    )
    if exchange is not None:
        values["exchange"] = exchange
    if exchange == "two_layer":
        values["procs_per_node"] = case["ppn"]
    values.update(extra)
    return Hints(values)


def _checkpoint_loop(case, impl, exchange, payloads, image_size, depth, *,
                     plan=None, hint_extra=None):
    """STEPS× (write_at_all(0), read_at_all(0)); returns the file image,
    per-rank last read-backs, and the crashed-rank set."""
    fs = SimFileSystem(COST)
    hints = _hints(case, impl, exchange, depth, **(hint_extra or {}))

    def main(ctx):
        comm = Communicator(ctx, COST)
        f = CollectiveFile(ctx, comm, fs, PATH, hints=hints, cost=COST)
        disp, ft = _build_view(comm.rank, case)
        f.set_view(disp=disp, filetype=ft)
        out = None
        for step in range(STEPS):
            payload = payloads[step][comm.rank]
            f.write_at_all(0, payload.copy())
            out = np.zeros(payload.size, dtype=np.uint8)
            f.read_at_all(0, out)
        f.close()
        return out

    sim = Simulator(case["nprocs"])
    if plan is not None:
        plan.install(sim)
    readbacks = sim.run(main)
    return fs.raw_bytes(PATH, 0, image_size), readbacks, frozenset(sim.crashed)


def _check_case(case, *, plan_factory=None, hint_extra=None):
    payloads = _payloads(case)
    ref = _reference(case, payloads)
    for label, impl, exchange in MODES:
        plan = plan_factory() if plan_factory is not None else None
        piped, piped_back, piped_dead = _checkpoint_loop(
            case, impl, exchange, payloads, ref.size, case["depth"],
            plan=plan, hint_extra=hint_extra,
        )
        plan = plan_factory() if plan_factory is not None else None
        serial, serial_back, serial_dead = _checkpoint_loop(
            case, impl, exchange, payloads, ref.size, 0,
            plan=plan, hint_extra=hint_extra,
        )
        assert piped_dead == serial_dead, (label, case)
        assert np.array_equal(piped, serial), (label, case)
        for rank in range(case["nprocs"]):
            if rank in piped_dead:
                continue
            assert np.array_equal(piped_back[rank], serial_back[rank]), (
                label, rank, case,
            )
        if not piped_dead:
            assert np.array_equal(piped, ref), (label, case)
            for rank in range(case["nprocs"]):
                assert np.array_equal(
                    piped_back[rank], payloads[-1][rank]
                ), (label, rank, case)


@given(case=cases())
@settings(max_examples=20, **_SETTINGS)
def test_pipelined_vs_serialized_byte_identical_quick(case):
    """Tier-1 slice of the pipelined-vs-serialized property."""
    _check_case(case)


@pytest.mark.slow
@given(case=cases())
@settings(max_examples=200, **_SETTINGS)
def test_pipelined_vs_serialized_byte_identical_sweep(case):
    """The full drawn sweep (dedicated CI job)."""
    _check_case(case)


#: Fixed multi-round case for the composed-fault differentials.
_FAULT_CASE = {
    "nprocs": 4, "slot": 20, "seg_lo": 3, "seg_len": 9, "tiles": 5,
    "ppn": 2, "cb": 160, "cb_nodes": 2, "strategy": "even",
    "io_method": "datasieve", "empty_last": False, "seed": 11,
}


@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.parametrize("label,impl,exchange", MODES)
def test_pipelined_under_ost_flap(label, impl, exchange, depth):
    """OST flaps are data-path faults: the pipeline stays live and its
    flush/fill coroutines must retry through the outages to the same
    bytes the serialized run produces."""
    case = dict(_FAULT_CASE, depth=depth)
    _check_case(
        case,
        plan_factory=lambda: FaultPlan(seed=7).ost_flap(
            [0], period=2e-3, start=0.0, end=2e-2
        ),
        hint_extra=dict(io_retries=8),
    )


@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.parametrize("label,impl,exchange", MODES)
def test_pipelined_under_composed_crash_flap_cached(label, impl, exchange, depth):
    """The kitchen sink: rank crash (stands the pipeline down) + OST
    flap (data-path) + cached plans.  Survivor bytes must match the
    serialized run's exactly, dead sets must agree."""
    case = dict(_FAULT_CASE, depth=depth)
    _check_case(
        case,
        plan_factory=lambda: (
            FaultPlan(seed=7)
            .rank_crash(1, call_index=0, round_index=1, site="exchange")
            .ost_flap([0], period=2e-3, start=0.0, end=2e-2)
        ),
        hint_extra=dict(io_retries=8, plan_cache=True),
    )


# -- the payoff: overlap exists and costs nothing ---------------------------


@pytest.mark.parametrize("impl", ("new", "old"))
def test_depth2_overlaps_and_is_no_slower(impl):
    def run(depth):
        s = Session(
            PATH,
            nprocs=4,
            hints=dict(
                coll_impl=impl, cb_nodes=2, cb_buffer_size=256,
                pipeline_depth=depth,
            ),
            cost=COST,
        )

        def body(ctx, comm, f):
            from repro.datatypes import BYTE, contiguous, resized

            region = 256
            tile = resized(contiguous(region, BYTE), 0, region * comm.size)
            f.set_view(disp=comm.rank * region, filetype=tile)
            f.write_all(np.full(region * 16, comm.rank + 1, dtype=np.uint8))

        s.run(body)
        return s

    serial = run(0)
    piped = run(2)
    overlap = sum(
        piped.registry.value("coll.pipeline.overlap_seconds", r) or 0.0
        for r in range(4)
    )
    assert overlap > 0.0
    assert piped.makespan <= serial.makespan
    assert piped.registry.value("coll.pipeline.depth", 0) == 2
