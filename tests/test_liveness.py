"""Tests for the liveness layer (deadlines, hang detection, lock
leases, deadlock breaking, straggler-aware rebalancing).

The contract under test, end to end:

* boundedness — under stall / lock-hold / gray faults with the
  liveness hints armed, every collective run terminates with either
  verified bytes or a typed liveness error; a hang is impossible;
* transparency — with liveness off, the same faults merely slow the
  run down: contents stay byte-identical to the fault-free baseline,
  and an armed-but-untripped deadline perturbs neither bytes nor
  virtual times;
* honesty — a blocking receive that would outlive its budget raises
  :class:`DeadlineExceeded` naming the site, rank and phase; a
  waits-for cycle raises :class:`LockDeadlock` naming the cycle; a
  wall-clock hang aborts with :class:`SimHang` naming the stuck rank.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import ChaosHarness
from repro.config import CostModel, LivenessConfig
from repro.core import CollectiveFile
from repro.core.realms import BalancedPartition
from repro.datatypes import BYTE, contiguous, resized
from repro.errors import (
    CollectiveIOError,
    DeadlineExceeded,
    LockDeadlock,
    RankFailed,
    SimHang,
)
from repro.faults import FaultPlan, load_scenario, scenario_names
from repro.faults.injector import FaultInjector
from repro.fs import SimFileSystem
from repro.io import RetryPolicy
from repro.liveness import LivenessState, find_liveness, install_liveness
from repro.mpi import Communicator, Hints
from repro.sim import BLOCK_TIMEOUT, Simulator

COST = CostModel(page_size=64, stripe_size=256, num_osts=2)
NPROCS = 4
REGION = 16
COUNT = 12
SIZE = REGION * NPROCS * COUNT
# Same geometry as test_faults: 2 aggregators own 384 linear bytes each
# -> 4 rounds of 96, so phase boundaries (where stalls fire) exist.
HINTS = Hints(cb_buffer_size=96, cb_nodes=2)
LIVE_HINTS = HINTS.replace(coll_deadline=0.5, liveness=True)


def run_workload(plan=None, hints=HINTS, ncalls=1, read_back=False):
    """The canonical tiled collective write (optionally + read);
    returns (file bytes, per-rank end times, injector, sim)."""
    fs = SimFileSystem(COST)

    def main(ctx):
        comm = Communicator(ctx, COST)
        f = CollectiveFile(ctx, comm, fs, "/data", hints=hints, cost=COST)
        try:
            tile = resized(contiguous(REGION, BYTE), 0, REGION * NPROCS)
            f.set_view(disp=comm.rank * REGION, filetype=tile)
            for c in range(ncalls):
                f.seek(0)
                f.write_all(np.full(REGION * COUNT, comm.rank + 1 + c, dtype=np.uint8))
            if read_back:
                f.seek(0)
                out = np.zeros(REGION * COUNT, dtype=np.uint8)
                f.read_all(out)
                assert np.array_equal(
                    out, np.full(REGION * COUNT, comm.rank + ncalls, dtype=np.uint8)
                )
        finally:
            f.close()
        return ctx.now

    sim = Simulator(NPROCS)
    injector = plan.install(sim) if plan is not None else None
    times = sim.run(main)
    return fs.raw_bytes("/data", 0, SIZE), times, injector, sim


@pytest.fixture(scope="module")
def baseline():
    contents, times, _, _ = run_workload()
    return contents, times


def stall_plan(seed=7):
    """One aggregator-side stall at the second phase boundary."""
    return FaultPlan(seed).rank_stall(0, delay=5e-2, round_index=1)


class TestEngineTimedBlocks:
    def test_timeout_fires_at_timeout_at(self):
        def main(ctx):
            woke = ctx.block(lambda: None, reason="never", timeout_at=2.5e-3)
            return woke is BLOCK_TIMEOUT, ctx.now

        (result,) = Simulator(1).run(main)
        timed_out, now = result
        assert timed_out
        assert now == pytest.approx(2.5e-3)

    def test_early_wake_beats_timeout(self):
        def main(ctx):
            if ctx.rank == 1:
                ctx.advance(1e-3)
                ctx.shared["box"] = ctx.now
                return None
            woke = ctx.block(
                lambda: ctx.shared.get("box"), reason="box", timeout_at=1.0
            )
            # Check-based wakes carry the *value*, not the clock: the
            # waiter charges itself to the causal time.
            assert woke is not BLOCK_TIMEOUT
            assert ctx.now < 1e-3
            ctx.charge_to(float(woke))
            return woke, ctx.now

        results = Simulator(2).run(main)
        woke, now = results[0]
        assert woke == pytest.approx(1e-3)
        assert now == pytest.approx(1e-3)


class TestSimHang:
    def test_wall_clock_hang_aborts_with_diagnostics(self):
        def main(ctx):
            if ctx.rank == 1:
                time.sleep(0.6)  # stuck outside the engine's control
            return ctx.now

        sim = Simulator(2, join_timeout=0.15)
        with pytest.raises(SimHang) as info:
            sim.run(main)
        # The abort names the stuck rank instead of spinning silently.
        assert "rank 1" in str(info.value)

    def test_bad_join_timeout_rejected(self):
        with pytest.raises(ValueError):
            Simulator(2, join_timeout=0.0)


class TestDeadlineExceeded:
    def test_blocking_recv_raises_typed_error(self):
        def main(ctx):
            comm = Communicator(ctx, COST)
            if ctx.rank == 1:
                return None  # never sends
            liv = find_liveness(ctx.shared)
            liv.begin_call(0, ctx.now)
            liv.set_phase(0, "exchange[0]")
            try:
                comm.recv(1, 7)
            except DeadlineExceeded as e:
                return e.site, e.rank, e.phase, e.deadline, ctx.now
            return None

        sim = Simulator(2)
        install_liveness(sim.shared, LivenessState(LivenessConfig(deadline=0.05)))
        results = sim.run(main)
        site, rank, phase, deadline, now = results[0]
        assert site
        assert rank == 0
        assert phase == "exchange[0]"
        assert deadline == pytest.approx(0.05)
        # The raise happens exactly at the budget, not later.
        assert now == pytest.approx(0.05)

    def test_stalled_collective_blows_deadline_without_failover(self, baseline):
        # Deadline armed, failover off: waiters on the stalled rank die
        # loudly (and at a bounded time) instead of waiting it out.
        hints = HINTS.replace(coll_deadline=2e-2)
        with pytest.raises(RankFailed) as info:
            run_workload(stall_plan(), hints=hints)
        chain, exc = [], info.value
        while exc is not None and exc not in chain:
            chain.append(exc)
            exc = exc.__cause__ or exc.__context__
        assert any(isinstance(e, DeadlineExceeded) for e in chain)

    def test_quiet_deadline_is_invisible(self, baseline):
        # An armed deadline that never trips must not perturb bytes or
        # virtual times: liveness off the fault path is free.
        contents, times, _, _ = run_workload(hints=HINTS.replace(coll_deadline=0.5))
        base_contents, base_times = baseline
        assert np.array_equal(contents, base_contents)
        assert times == base_times


class TestSuspectFailover:
    @pytest.mark.parametrize("exchange", ["alltoallw", "nonblocking"])
    def test_stalled_aggregator_failed_over(self, baseline, exchange):
        hints = LIVE_HINTS.replace(exchange=exchange)
        contents, times, injector, sim = run_workload(stall_plan(), hints=hints)
        assert np.array_equal(contents, baseline[0])
        assert injector.stats.suspects_declared == 1
        assert injector.stats.rank_stalls == 1
        assert find_liveness(sim.shared).suspects == {0}

    def test_stalled_client_failed_over_on_read(self, baseline):
        # Rank 3 stalls during the read call: its realm (if any) merges
        # into survivors and it serves its own access independently.
        plan = FaultPlan(11).rank_stall(3, delay=5e-2, call_index=1, round_index=0)
        contents, _, injector, _ = run_workload(
            plan, hints=LIVE_HINTS, read_back=True
        )
        assert np.array_equal(contents, baseline[0])
        assert injector.stats.suspects_declared == 1

    def test_stall_without_liveness_just_slows_down(self, baseline):
        contents, times, injector, sim = run_workload(stall_plan())
        assert np.array_equal(contents, baseline[0])
        assert injector.stats.suspects_declared == 0
        assert injector.stats.stall_seconds == pytest.approx(5e-2)
        assert max(times) > max(baseline[1])
        assert find_liveness(sim.shared) is None

    def test_failover_completion_is_stall_bounded(self):
        # With failover the makespan is the stall plus the suspect's own
        # short tail — never a multiple of the stall, never a hang.  (At
        # this small geometry the independent tail can cost slightly
        # more than the skipped collective rounds; the chaos-scale test
        # asserts the wall-clock win.)
        _, live_times, _, _ = run_workload(stall_plan(), hints=LIVE_HINTS)
        assert 5e-2 <= max(live_times) < 5e-2 + 2e-2

    @pytest.mark.parametrize("exchange", ["alltoallw", "nonblocking"])
    def test_straggler_and_drops_compose_with_both_backends(self, baseline, exchange):
        plan = FaultPlan(5).straggler(factor=3.0, ranks=[1]).net_drop(
            rate=0.05, timeout=2e-3
        )
        contents, _, injector, _ = run_workload(
            plan, hints=HINTS.replace(exchange=exchange)
        )
        assert np.array_equal(contents, baseline[0])
        assert injector.stats.straggler_events > 0


class TestLockLiveness:
    """Pin waits driven directly through SimFileSystem.server_write."""

    PATH = "/locked"

    def _write(self, fs, ctx, client, granule, value):
        data = np.full(64, value, dtype=np.uint8)
        fs.server_write(ctx, client, self.PATH, [granule * 64], [64], data)

    def test_lease_reclaims_wedged_pin(self):
        # Holder pins for 5e-2 and never recovers in time; the 2e-2
        # lease reclaims the lock early and the waiter proceeds.
        fs = SimFileSystem(COST)
        fs.ensure_file(self.PATH)

        def main(ctx):
            if ctx.rank == 0:
                self._write(fs, ctx, 0, 0, 1)
                ctx.advance(1.0)  # wedged: never unlocks
            else:
                ctx.advance(1e-3)
                self._write(fs, ctx, 1, 0, 2)
            return ctx.now

        sim = Simulator(2)
        injector = FaultPlan(seed=4).lock_hold(rate=1.0, hold=5e-2).install(sim)
        install_liveness(sim.shared, LivenessState(LivenessConfig(lock_lease=2e-2)))
        times = sim.run(main)
        assert injector.stats.lock_lease_reclaims >= 1
        # Woke at t_pinned + lease, well before the 5e-2 pin expiry.
        assert 2e-2 <= times[1] < 5e-2

    def test_without_lease_waiter_rides_out_full_hold(self):
        fs = SimFileSystem(COST)
        fs.ensure_file(self.PATH)

        def main(ctx):
            if ctx.rank == 0:
                self._write(fs, ctx, 0, 0, 1)
                ctx.advance(1.0)
            else:
                ctx.advance(1e-3)
                self._write(fs, ctx, 1, 0, 2)
            return ctx.now

        sim = Simulator(2)
        injector = FaultPlan(seed=4).lock_hold(rate=1.0, hold=5e-2).install(sim)
        times = sim.run(main)
        assert injector.stats.lock_lease_reclaims == 0
        assert times[1] >= 5e-2

    def test_late_unlock_wakes_waiter_before_lease(self):
        # The holder releases its pins just before the lease would
        # reclaim them: the waiter wakes at the release time (causal),
        # and no reclaim is counted.
        fs = SimFileSystem(COST)
        fs.ensure_file(self.PATH)

        def main(ctx):
            if ctx.rank == 0:
                self._write(fs, ctx, 0, 0, 1)
                ctx.advance_to(1e-2)
                fs._file(self.PATH).locks.release_all(0, ctx.now)
                ctx.advance(1.0)
            else:
                ctx.advance(1e-3)
                self._write(fs, ctx, 1, 0, 2)
            return ctx.now

        sim = Simulator(2)
        injector = FaultPlan(seed=4).lock_hold(rate=1.0, hold=5e-2).install(sim)
        install_liveness(sim.shared, LivenessState(LivenessConfig(lock_lease=2e-2)))
        times = sim.run(main)
        assert injector.stats.lock_lease_reclaims == 0
        assert 1e-2 <= times[1] < 2e-2

    def test_deadlock_cycle_broken_and_retried(self):
        # Classic AB-BA: each rank pins one granule then wants the
        # other's.  The second waiter finds the waits-for cycle, raises
        # a typed LockDeadlock, releases its pins, and the retry (plus
        # lease reclaim on the survivor's pin) completes both ranks.
        fs = SimFileSystem(COST)
        fs.ensure_file(self.PATH)
        retry = RetryPolicy(retries=4, backoff=2e-3)

        def main(ctx):
            if ctx.rank == 0:
                self._write(fs, ctx, 0, 0, 1)
                ctx.advance(1e-3)
                retry.run(ctx, lambda: self._write(fs, ctx, 0, 1, 1))
            else:
                ctx.advance(5e-4)
                self._write(fs, ctx, 1, 1, 2)
                ctx.advance(1e-3)
                retry.run(ctx, lambda: self._write(fs, ctx, 1, 0, 2))
            return ctx.now

        sim = Simulator(2)
        injector = FaultPlan(seed=4).lock_hold(rate=1.0, hold=0.2).install(sim)
        install_liveness(sim.shared, LivenessState(LivenessConfig(lock_lease=2e-2)))
        times = sim.run(main)
        assert injector.stats.lock_deadlocks >= 1
        assert injector.stats.retries >= 1
        # Bounded: lease reclaim caps the post-deadlock wait, nobody
        # waits for the full 0.2s pin.
        assert max(times) < 0.1

    def test_lock_deadlock_is_typed_and_retryable(self):
        err = LockDeadlock(1, (1, 0), "/f")
        from repro.errors import TransientIOError

        assert isinstance(err, TransientIOError)
        assert err.cycle == (1, 0)
        assert "1 -> 0" in str(err)


class TestBalancedRealms:
    def test_shares_normalize_and_validate(self):
        assert BalancedPartition._shares(3, None) == [1 / 3] * 3
        assert BalancedPartition._shares(3, [1.0, 1.0, 2.0]) == [0.25, 0.25, 0.5]
        # Negative weights clamp to zero; an all-zero vector degrades
        # to equal shares instead of dividing by zero.
        assert BalancedPartition._shares(2, [-1.0, 0.0]) == [0.5, 0.5]
        with pytest.raises(CollectiveIOError):
            BalancedPartition._shares(2, [1.0])

    def test_weighted_span_boundaries(self):
        # No histogram yet: the file span itself splits by weight.
        realms = BalancedPartition().assign(0, 100, 2, weights=[1.0, 3.0])
        assert realms[0].disp == 0 and realms[0].flat.size == 25
        assert realms[1].disp == 25 and realms[1].flat.size == 75

    def test_straggling_aggregator_realm_shrinks(self):
        # Two write_alls under a rank-0 straggler: the second call's
        # realm assignment feeds back call 1's service times, so the
        # slow aggregator's realm shrinks (and its byte load drops).
        fs = SimFileSystem()
        hints = Hints(cb_nodes=2, cb_buffer_size=512, realm_strategy="balanced")
        region, count, nprocs = 64, 16, 4
        realms = []

        def main(ctx):
            comm = Communicator(ctx)
            f = CollectiveFile(ctx, comm, fs, "/bal", hints=hints)
            tile = resized(contiguous(region, BYTE), 0, region * nprocs)
            f.set_view(disp=comm.rank * region, filetype=tile)
            buf = (np.arange(region * count) % 251).astype(np.uint8)
            for _ in range(2):
                f.seek(0)
                f.write_all(buf)
                if comm.rank == 0:
                    realms.append(list(f._stats.last_realm_bytes))
            f.close()

        sim = Simulator(nprocs)
        FaultPlan(seed=1).straggler(factor=8.0, ranks=[0]).install(sim)
        sim.run(main)
        first, second = realms
        # Call 1 has no feedback: realms split evenly.
        assert first[0] == first[1]
        # Call 2 moved the boundary away from the straggling agg 0.
        assert second[0] < first[0]
        assert second[0] < second[1]
        assert sum(second) == sum(first)


class TestChaosLiveness:
    def test_liveness_scenarios_registered(self):
        assert {"stall", "lock-hold", "gray"} <= set(scenario_names())
        plan = load_scenario("gray:7")
        assert plan.seed == 7
        assert {e.kind for e in plan.events} == {
            "rank_stall", "straggler", "net_drop", "lock_hold",
        }
        # Intensity scaling keeps deterministic events and scales rates.
        assert len(plan.scaled(0.5).events) == len(plan.events)

    @pytest.mark.parametrize(
        "spec", ["stall:42", "lock-hold:3", "lock-storm:3", "gray:7"]
    )
    def test_sweep_is_bounded_and_verified(self, spec):
        report = ChaosHarness(spec, liveness=True).sweep()
        assert report.all_verified
        for point in report.points:
            # Terminated (we got here) *and* bounded in virtual time:
            # nobody waited out a 5e-2 stall per round, let alone hung.
            assert point.sim_seconds < 1.0

    def test_liveness_run_beats_waiting(self):
        live = ChaosHarness("stall:42", liveness=True)
        wait = ChaosHarness("stall:42")
        live_s, ok_live, _, _, _ = live.run_once(live.plan.scaled(1.0))
        wait_s, ok_wait, _, _, _ = wait.run_once(wait.plan.scaled(1.0))
        assert ok_live and ok_wait
        assert live_s < wait_s


class TestFaultStatsLiveness:
    def test_liveness_hooks_count_uniformly(self):
        inj = FaultInjector(FaultPlan(seed=0))
        inj.note_straggler(0.25)
        inj.note_straggler(0.5)
        inj.note_stall(0.05)
        inj.note_suspect()
        inj.note_deadline_exceeded()
        inj.note_lock_reclaim(3)
        inj.note_lock_deadlock()
        s = inj.stats.snapshot()
        assert s["straggler_events"] == 2
        assert s["straggler_extra_seconds"] == pytest.approx(0.75)
        assert s["rank_stalls"] == 1
        assert s["stall_seconds"] == pytest.approx(0.05)
        assert s["suspects_declared"] == 1
        assert s["deadlines_exceeded"] == 1
        assert s["lock_lease_reclaims"] == 3
        assert s["lock_deadlocks"] == 1

    def test_snapshot_has_liveness_keys(self):
        keys = set(FaultInjector(FaultPlan()).stats.snapshot())
        assert {
            "rank_stalls", "stall_seconds", "lock_holds", "lock_hold_seconds",
            "lock_lease_reclaims", "lock_deadlocks", "suspects_declared",
            "deadlines_exceeded",
        } <= keys


class TestLivenessInstall:
    def test_state_installed_only_when_armed(self):
        _, _, _, plain = run_workload()
        assert find_liveness(plain.shared) is None
        _, _, _, armed = run_workload(hints=LIVE_HINTS)
        state = find_liveness(armed.shared)
        assert state is not None
        assert state.failover
        assert state.config.deadline == pytest.approx(0.5)

    def test_install_is_first_open_wins(self):
        shared = {}
        first = LivenessState(LivenessConfig(deadline=0.1))
        install_liveness(shared, first)
        install_liveness(shared, LivenessState(LivenessConfig(deadline=9.9)))
        assert find_liveness(shared) is first
