"""The metrics registry: instruments, interning, snapshot/diff, merge."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BYTE, MetricsRegistry, Session, contiguous, resized
from repro.obs.metrics import Counter, Gauge, Histogram, METRICS_KEY, metrics_registry


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        c.value += 2
        assert c.value == 7
        c.reset()
        assert c.value == 0

    def test_gauge_holds_last_value(self):
        g = Gauge("x")
        g.set(5)
        g.set(3)
        assert g.value == 3

    def test_histogram_buckets_powers_of_two(self):
        assert Histogram.bucket_of(0) == "zero"
        assert Histogram.bucket_of(1) == 0
        assert Histogram.bucket_of(2) == 1
        assert Histogram.bucket_of(3) == 2
        assert Histogram.bucket_of(4) == 2
        assert Histogram.bucket_of(5) == 3
        assert Histogram.bucket_of(0.25) == -2

    def test_histogram_summary_exact_moments(self):
        h = Histogram("t")
        for v in (0, 1, 2, 7):
            h.record(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["total"] == 10
        assert s["min"] == 0 and s["max"] == 7
        assert s["mean"] == pytest.approx(2.5)


class TestRegistry:
    def test_interning_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert reg.counter("a.b", 1) is not reg.counter("a.b", 2)

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(TypeError):
            reg.gauge("a.b")

    def test_value_defaults_to_zero(self):
        assert MetricsRegistry().value("never.registered") == 0

    def test_total_sums_counters_across_keys(self):
        reg = MetricsRegistry()
        reg.counter("c", 0).inc(3)
        reg.counter("c", 1).inc(4)
        assert reg.total("c") == 7

    def test_total_takes_max_of_gauges(self):
        reg = MetricsRegistry()
        reg.gauge("g", 0).set(3)
        reg.gauge("g", 1).set(9)
        assert reg.total("g") == 9

    def test_view_binds_key(self):
        reg = MetricsRegistry()
        v = reg.view(7)
        v.counter("hits").inc(2)
        assert reg.value("hits", 7) == 2
        assert v.value("hits") == 2
        assert v.snapshot() == {"hits": 2}

    def test_snapshot_labels_tuple_keys(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits", (3, "/data")).inc()
        assert reg.snapshot() == {"cache.hits[3:/data]": 1}

    def test_diff_reports_only_changes(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(5)
        reg.counter("b").inc(1)
        before = reg.snapshot()
        reg.counter("a").inc(2)
        reg.histogram("h").record(4)
        assert reg.diff(before) == {"a": 2, "h": {"count": 1, "total": 4}}


class TestMergeAlgebra:
    """Merge must be associative (and commutative) so rank registries
    can be folded in any grouping."""

    def _mk(self, seed: int) -> MetricsRegistry:
        rng = np.random.RandomState(seed)
        reg = MetricsRegistry()
        for key in (None, 0, 1):
            reg.counter("c", key).inc(int(rng.randint(0, 100)))
            reg.gauge("g", key).set(int(rng.randint(0, 100)))
            h = reg.histogram("h", key)
            for _ in range(int(rng.randint(1, 5))):
                h.record(float(rng.randint(0, 64)))
        return reg

    def _flat(self, reg: MetricsRegistry) -> dict:
        return reg.snapshot()

    def test_merge_is_associative(self):
        a, b, c = self._mk(1), self._mk(2), self._mk(3)
        left = MetricsRegistry.merged(MetricsRegistry.merged(a, b), c)
        right = MetricsRegistry.merged(a, MetricsRegistry.merged(b, c))
        assert self._flat(left) == self._flat(right)

    def test_merge_is_commutative(self):
        a, b = self._mk(4), self._mk(5)
        assert self._flat(MetricsRegistry.merged(a, b)) == self._flat(
            MetricsRegistry.merged(b, a)
        )

    def test_merged_never_mutates_inputs(self):
        a, b = self._mk(6), self._mk(7)
        before_a, before_b = self._flat(a), self._flat(b)
        MetricsRegistry.merged(a, b)
        assert self._flat(a) == before_a
        assert self._flat(b) == before_b


class TestConservation:
    """Invariants that tie independent instrument families together."""

    def _session(self, ppn: int = 0) -> Session:
        import dataclasses

        from repro import DEFAULT_COST_MODEL

        hints = {"coll_impl": "new", "cb_nodes": 2, "cb_buffer_size": 512}
        nprocs = 4
        cost = DEFAULT_COST_MODEL
        if ppn:
            # The node topology is armed by the *cost model*; the hints
            # additionally route the exchange through the two-layer path.
            cost = dataclasses.replace(DEFAULT_COST_MODEL, procs_per_node=ppn)
            hints.update(procs_per_node=ppn, node_aggregation=True)
            nprocs = 2 * ppn
        session = Session("/inv", nprocs=nprocs, hints=hints, cost=cost)

        def body(ctx, comm, f):
            region = 64
            tile = resized(contiguous(region, BYTE), 0, region * comm.size)
            f.set_view(disp=comm.rank * region, filetype=tile)
            f.write_all(
                (np.arange(region * 8, dtype=np.int64) * (comm.rank + 1) % 251)
                .astype(np.uint8)
            )
            return True

        assert all(session.run(body))
        return session

    @pytest.mark.parametrize("ppn", [2, 4])
    def test_network_tiers_partition_the_totals(self, ppn):
        reg = self._session(ppn).registry
        assert reg.total("net.bytes") > 0
        assert reg.total("net.intra.bytes") + reg.total("net.inter.bytes") == (
            reg.total("net.bytes")
        )
        assert reg.total("net.intra.msgs") + reg.total("net.inter.msgs") == (
            reg.total("net.msgs")
        )

    def test_rank_merge_reproduces_session_totals(self):
        """Splitting the session registry into per-rank registries and
        merging them back must reproduce every per-rank series."""
        session = self._session()
        reg = session.registry
        parts = []
        for rank in range(session.nprocs):
            part = MetricsRegistry()
            for inst in reg:
                if inst.key == rank and isinstance(inst, Counter):
                    part.counter(inst.name, rank).inc(inst.value)
            parts.append(part)
        folded = MetricsRegistry.merged(*parts)
        for name in ("coll.rounds", "exchange.bytes", "coll.client.pairs"):
            assert folded.total(name) == reg.total(name)


class TestSharedInterning:
    def test_metrics_registry_interns_in_shared(self):
        shared: dict = {}
        reg = metrics_registry(shared)
        assert metrics_registry(shared) is reg
        assert shared[METRICS_KEY] is reg

    def test_session_preinstalls_its_registry(self):
        session = Session("/x", nprocs=2)

        def body(ctx, comm, f):
            return metrics_registry(ctx.shared)

        regs = session.run(body)
        assert all(r is session.registry for r in regs)
