"""Tests for the CLI entry point and benchmark scale plumbing."""

from __future__ import annotations

import os

import pytest

import repro.__main__ as cli
from repro.bench.figures import bench_scale
from repro.errors import ReproError


class TestCLI:
    def test_selfcheck_passes(self, capsys):
        assert cli.selfcheck() == 0
        out = capsys.readouterr().out
        assert "all combinations verified" in out
        assert out.count(" ok") == 8

    def test_info_lists_model_and_hints(self, capsys):
        assert cli.info() == 0
        out = capsys.readouterr().out
        assert "cpu_per_flat_pair" in out
        assert "cb_buffer_size" in out
        assert "repro 1.0.0" in out

    def test_unknown_command(self, capsys):
        assert cli.main(["fly"]) == 2
        assert "usage" in capsys.readouterr().out

    def test_default_command_is_selfcheck(self, capsys):
        assert cli.main([]) == 0


class TestBenchScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == "standard"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        assert bench_scale() == "quick"
        monkeypatch.setenv("REPRO_BENCH_SCALE", " FULL ")
        assert bench_scale() == "full"

    def test_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "enormous")
        with pytest.raises(ReproError):
            bench_scale()

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        from repro.bench.figures import _FIG4_GRID

        assert set(_FIG4_GRID) == {"quick", "standard", "full"}


class TestScaleGridsSane:
    def test_fig_grids_monotone(self):
        from repro.bench.figures import _FIG4_GRID, _FIG5_GRID, _FIG7_GRID

        assert _FIG4_GRID["quick"]["counts"] <= _FIG4_GRID["standard"]["counts"] <= _FIG4_GRID["full"]["counts"]
        assert len(_FIG4_GRID["standard"]["regions"]) <= len(_FIG4_GRID["full"]["regions"])
        assert _FIG5_GRID["quick"]["file_mb"] <= _FIG5_GRID["standard"]["file_mb"] <= _FIG5_GRID["full"]["file_mb"]
        assert _FIG7_GRID["standard"]["timesteps"] <= _FIG7_GRID["full"]["timesteps"]

    def test_full_matches_paper_axes(self):
        from repro.bench.figures import _FIG4_GRID, _FIG5_GRID, _FIG7_GRID

        assert _FIG4_GRID["full"]["nprocs"] == 64
        assert _FIG4_GRID["full"]["aggs"] == [8, 16, 24, 32]
        assert _FIG4_GRID["full"]["regions"] == [8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
        assert _FIG5_GRID["full"]["extents"] == [1024, 8192, 16384, 65536]
        assert _FIG7_GRID["full"]["clients"] == [16, 32, 48, 64]
        assert _FIG7_GRID["full"]["timesteps"] == 32
